//! GSM 06.10 full-rate speech codec kernels (simplified but faithful in
//! structure).
//!
//! A GSM frame is 160 samples (20 ms at 8 kHz). The encoder pipeline:
//! preprocessing → **LPC autocorrelation** (the vectorizable
//! multiply-accumulate kernel) → reflection coefficients (scalar,
//! division-heavy Schur recursion) → per-subframe **LTP search** (a
//! cross-correlation — the other MAC kernel) → RPE subsampling and
//! quantization. The decoder inverts the path; its short-term synthesis
//! filter is a *recursive* IIR, which is why `gsmdec` barely vectorizes
//! (Table 3 shows nearly identical MMX/MOM instruction counts).

/// Samples per GSM full-rate frame.
pub const FRAME_SAMPLES: usize = 160;
/// Samples per subframe (4 subframes per frame).
pub const SUBFRAME_SAMPLES: usize = 40;
/// LPC order (number of reflection coefficients).
pub const LPC_ORDER: usize = 8;
/// LTP lag search range (GSM searches lags 40..=120).
pub const LTP_MIN_LAG: usize = 40;
/// Maximum LTP lag.
pub const LTP_MAX_LAG: usize = 120;

/// Autocorrelation of a frame for lags `0..=order`.
/// This is the textbook vectorizable MAC reduction.
#[must_use]
pub fn autocorrelation(frame: &[i16], order: usize) -> Vec<i64> {
    let mut acf = vec![0i64; order + 1];
    for (lag, a) in acf.iter_mut().enumerate() {
        let mut sum = 0i64;
        for n in lag..frame.len() {
            sum += i64::from(frame[n]) * i64::from(frame[n - lag]);
        }
        *a = sum;
    }
    acf
}

/// Schur recursion: reflection coefficients from autocorrelation,
/// in Q15. Scalar and division-bound, as in the reference coder.
#[must_use]
pub fn reflection_coefficients(acf: &[i64]) -> Vec<i16> {
    let order = acf.len() - 1;
    if acf[0] == 0 {
        return vec![0; order];
    }
    let mut r = vec![0i16; order];
    let mut p: Vec<f64> = acf.iter().map(|&v| v as f64).collect();
    let mut k = vec![0.0f64; order + 1];
    for i in 0..order {
        if p[0].abs() < 1.0 {
            break;
        }
        let refl = -p[1] / p[0];
        k[i] = refl;
        r[i] = (refl.clamp(-0.9999, 0.9999) * 32768.0) as i16;
        // Schur update.
        let mut np = vec![0.0f64; order + 1];
        for j in 0..order - i {
            np[j] = p[j] + refl * p[j + 1];
            if j + 2 <= order {
                np[j + 1] = p[j + 2] + refl * p[j + 1];
            }
        }
        // Standard simplified update: advance the window.
        for j in 0..order {
            p[j] = p[j + 1] + refl * p[j];
        }
    }
    r
}

/// Long-term-prediction search: the lag in `LTP_MIN_LAG..=max_lag` whose
/// cross-correlation with the subframe is maximal. Returns (lag, gain
/// numerator). The inner product is the vectorizable kernel.
#[must_use]
pub fn ltp_search(subframe: &[i16], history: &[i16], max_lag: usize) -> (usize, i64) {
    let mut best_lag = LTP_MIN_LAG;
    let mut best_corr = i64::MIN;
    for lag in LTP_MIN_LAG..=max_lag {
        let mut corr = 0i64;
        for (n, &s) in subframe.iter().enumerate() {
            let h_idx = history.len() as isize - lag as isize + n as isize;
            let h = if h_idx >= 0 && (h_idx as usize) < history.len() {
                history[h_idx as usize]
            } else {
                0
            };
            corr += i64::from(s) * i64::from(h);
        }
        if corr > best_corr {
            best_corr = corr;
            best_lag = lag;
        }
    }
    (best_lag, best_corr)
}

/// RPE grid selection and 3-bit quantization of a 40-sample subframe
/// residual: picks the densest of the 4 decimation grids and quantizes
/// its 13 samples. Returns (grid index, quantized samples).
#[must_use]
pub fn rpe_encode(residual: &[i16]) -> (usize, Vec<i8>) {
    debug_assert_eq!(residual.len(), SUBFRAME_SAMPLES);
    let mut best_grid = 0;
    let mut best_energy = -1i64;
    for grid in 0..4 {
        let energy: i64 = residual
            .iter()
            .skip(grid)
            .step_by(3)
            .take(13)
            .map(|&s| i64::from(s) * i64::from(s))
            .sum();
        if energy > best_energy {
            best_energy = energy;
            best_grid = grid;
        }
    }
    let max = residual
        .iter()
        .skip(best_grid)
        .step_by(3)
        .take(13)
        .map(|&s| i32::from(s).abs())
        .max()
        .unwrap_or(1)
        .max(1);
    let q: Vec<i8> = residual
        .iter()
        .skip(best_grid)
        .step_by(3)
        .take(13)
        .map(|&s| ((i32::from(s) * 7) / max).clamp(-7, 7) as i8)
        .collect();
    (best_grid, q)
}

/// Inverse RPE: reconstruct a 40-sample subframe from grid + levels.
#[must_use]
pub fn rpe_decode(grid: usize, levels: &[i8], scale: i16) -> Vec<i16> {
    let mut out = vec![0i16; SUBFRAME_SAMPLES];
    for (i, &l) in levels.iter().enumerate() {
        let pos = grid + i * 3;
        if pos < SUBFRAME_SAMPLES {
            out[pos] = i16::from(l) * scale / 7;
        }
    }
    out
}

/// Short-term synthesis filter (decoder): lattice IIR driven by the
/// reflection coefficients. Recursive sample-to-sample dependence —
/// fundamentally scalar.
#[must_use]
pub fn synthesis_filter(excitation: &[i16], refl: &[i16]) -> Vec<i16> {
    let order = refl.len();
    let mut v = vec![0i64; order + 1];
    let mut out = Vec::with_capacity(excitation.len());
    for &x in excitation {
        let mut sri = i64::from(x);
        for i in (0..order).rev() {
            let k = i64::from(refl[i]);
            sri -= (k * v[i]) >> 15;
            v[i + 1] = v[i] + ((k * sri) >> 15);
        }
        v[0] = sri;
        out.push(sri.clamp(-32768, 32767) as i16);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, period: usize, amp: i16) -> Vec<i16> {
        (0..n)
            .map(|i| {
                let phase = (i % period) as f64 / period as f64;
                (f64::from(amp) * (2.0 * std::f64::consts::PI * phase).sin()) as i16
            })
            .collect()
    }

    #[test]
    fn autocorrelation_lag0_is_energy() {
        let s = tone(FRAME_SAMPLES, 20, 1000);
        let acf = autocorrelation(&s, LPC_ORDER);
        let energy: i64 = s.iter().map(|&x| i64::from(x) * i64::from(x)).sum();
        assert_eq!(acf[0], energy);
        assert_eq!(acf.len(), LPC_ORDER + 1);
    }

    #[test]
    fn autocorrelation_peaks_at_period() {
        let s = tone(FRAME_SAMPLES, 8, 1000);
        let acf = autocorrelation(&s, 8);
        // lag 8 = one full period: strong positive correlation, close to lag 0.
        assert!(
            acf[8] > acf[0] * 8 / 10,
            "acf[8]={} acf[0]={}",
            acf[8],
            acf[0]
        );
        // lag 4 = half period: strong anticorrelation.
        assert!(acf[4] < 0);
    }

    #[test]
    fn reflection_coefficients_bounded() {
        let s = tone(FRAME_SAMPLES, 20, 2000);
        let acf = autocorrelation(&s, LPC_ORDER);
        let r = reflection_coefficients(&acf);
        assert_eq!(r.len(), LPC_ORDER);
        for &k in &r {
            assert!(k > i16::MIN, "reflection coefficient in (-1,1): {k}");
        }
    }

    #[test]
    fn silent_frame_gives_zero_coefficients() {
        let acf = autocorrelation(&vec![0i16; FRAME_SAMPLES], LPC_ORDER);
        assert_eq!(reflection_coefficients(&acf), vec![0i16; LPC_ORDER]);
    }

    #[test]
    fn ltp_finds_periodicity() {
        // History = same tone; subframe continues it. Period 50 ⇒ lag 50
        // (or a multiple) should win.
        let period = 50;
        let hist = tone(LTP_MAX_LAG + SUBFRAME_SAMPLES, period, 3000);
        let sub: Vec<i16> = (0..SUBFRAME_SAMPLES)
            .map(|i| {
                let gi = hist.len() + i;
                let phase = (gi % period) as f64 / period as f64;
                (3000.0 * (2.0 * std::f64::consts::PI * phase).sin()) as i16
            })
            .collect();
        let (lag, corr) = ltp_search(&sub, &hist, LTP_MAX_LAG);
        assert!(
            lag % period == 0 || (lag as i32 - period as i32).abs() <= 1,
            "lag {lag}"
        );
        assert!(corr > 0);
    }

    #[test]
    fn rpe_round_trip_preserves_grid_samples_roughly() {
        let res: Vec<i16> = (0..SUBFRAME_SAMPLES as i16)
            .map(|i| (i - 20) * 30)
            .collect();
        let (grid, q) = rpe_encode(&res);
        assert!(grid < 4);
        assert_eq!(q.len(), 13);
        let max = res
            .iter()
            .skip(grid)
            .step_by(3)
            .take(13)
            .map(|&s| i32::from(s).abs())
            .max()
            .unwrap() as i16;
        let dec = rpe_decode(grid, &q, max);
        // Reconstructed grid samples correlate positively with originals.
        let dot: i64 = dec
            .iter()
            .zip(res.iter())
            .map(|(&a, &b)| i64::from(a) * i64::from(b))
            .sum();
        assert!(dot > 0);
    }

    #[test]
    fn synthesis_filter_identity_with_zero_coefficients() {
        let x = tone(80, 16, 500);
        let y = synthesis_filter(&x, &[0i16; LPC_ORDER]);
        assert_eq!(x, y);
    }

    #[test]
    fn synthesis_filter_is_stable_for_small_coefficients() {
        let x = tone(FRAME_SAMPLES, 16, 500);
        let refl = vec![8000i16; LPC_ORDER]; // |k| < 0.25 in Q15
        let y = synthesis_filter(&x, &refl);
        assert_eq!(y.len(), x.len());
        assert!(
            y.iter().all(|&v| v > -32768 && v < 32767),
            "no clipping for mild filter"
        );
    }
}
