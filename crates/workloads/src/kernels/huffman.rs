//! Huffman-style entropy coding: bit writer/reader and a canonical code
//! over (run, level) events.
//!
//! This is the scalar, table-lookup, branch-heavy phase of the image and
//! video codecs — the part that stays on the integer pipeline and, per
//! the paper's thesis, dominates full-program behaviour.

use crate::kernels::zigzag::RunLevel;

/// A most-significant-bit-first bit writer.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bitpos: u8,
}

impl BitWriter {
    /// New empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the low `n` bits of `value` (MSB first).
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn put(&mut self, value: u32, n: u8) {
        assert!(n <= 32, "at most 32 bits at a time");
        for i in (0..n).rev() {
            let bit = (value >> i) & 1;
            if self.bitpos == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= (bit as u8) << (7 - self.bitpos);
            self.bitpos = (self.bitpos + 1) % 8;
        }
    }

    /// Total bits written.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        if self.bitpos == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.bitpos as usize
        }
    }

    /// Finish and return the byte buffer (zero-padded to a byte).
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// MSB-first bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Read from `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Read one bit; `None` at end of input.
    pub fn bit(&mut self) -> Option<u32> {
        let byte = self.bytes.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Some(u32::from(bit))
    }

    /// Read `n` bits MSB-first; `None` if input exhausts.
    pub fn take(&mut self, n: u8) -> Option<u32> {
        let mut v = 0;
        for _ in 0..n {
            v = (v << 1) | self.bit()?;
        }
        Some(v)
    }

    /// Bits consumed so far.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }
}

/// Code length (bits) for a (run, level) event under our canonical
/// MPEG-2-flavoured table: short codes for short runs and small levels.
#[must_use]
pub fn code_len(e: RunLevel) -> u8 {
    let level_mag = e.level.unsigned_abs().min(40) as u32;
    let base = match (e.run, level_mag) {
        (0, 1) => 2,
        (0, 2) => 4,
        (0, 3) => 5,
        (1, 1) => 3,
        (1, 2) => 6,
        (2, 1) => 5,
        (3, 1) => 6,
        (4..=6, 1) => 7,
        _ => 0,
    };
    if base > 0 {
        return base + 1; // +1 sign bit
    }
    // Escape: 6-bit escape prefix + 6-bit run + 12-bit level.
    24
}

/// Encode events of one block, terminated by a 2-bit end-of-block code.
pub fn encode_block(w: &mut BitWriter, events: &[RunLevel]) {
    for &e in events {
        let len = code_len(e);
        if len < 24 {
            // Canonical short code: emit (len-1) bits of pattern then sign.
            let pattern = (u32::from(e.run) << 2 | (e.level.unsigned_abs() as u32 & 0x3))
                & ((1 << (len - 1)) - 1);
            w.put(pattern, len - 1);
            w.put(u32::from(e.level < 0), 1);
        } else {
            w.put(0b111_111, 6);
            w.put(u32::from(e.run), 6);
            w.put((e.level as i32 & 0xfff) as u32, 12);
        }
    }
    w.put(0b10, 2); // end of block
}

/// Total bits block encoding takes (without writing).
#[must_use]
pub fn block_bits(events: &[RunLevel]) -> usize {
    events
        .iter()
        .map(|&e| usize::from(code_len(e)))
        .sum::<usize>()
        + 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_writer_packs_msb_first() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.put(0b01, 2);
        assert_eq!(w.bit_len(), 5);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1010_1000]);
    }

    #[test]
    fn bit_round_trip() {
        let mut w = BitWriter::new();
        let values = [(0b1101u32, 4u8), (0x5a, 8), (1, 1), (0x123, 12)];
        for &(v, n) in &values {
            w.put(v, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &values {
            assert_eq!(r.take(n), Some(v));
        }
    }

    #[test]
    fn reader_exhausts_cleanly() {
        let bytes = [0xffu8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.take(8), Some(0xff));
        assert_eq!(r.bit(), None);
        assert_eq!(r.take(4), None);
    }

    #[test]
    fn common_events_have_short_codes() {
        assert!(code_len(RunLevel { run: 0, level: 1 }) <= 3);
        assert!(code_len(RunLevel { run: 1, level: 1 }) <= 4);
        // Rare events escape to 24 bits.
        assert_eq!(
            code_len(RunLevel {
                run: 20,
                level: 300
            }),
            24
        );
        assert_eq!(
            code_len(RunLevel { run: 0, level: -1 }),
            code_len(RunLevel { run: 0, level: 1 })
        );
    }

    #[test]
    fn encode_block_writes_expected_bits() {
        let events = vec![
            RunLevel { run: 0, level: 1 },
            RunLevel { run: 2, level: -1 },
        ];
        let mut w = BitWriter::new();
        encode_block(&mut w, &events);
        assert_eq!(w.bit_len(), block_bits(&events));
    }

    #[test]
    fn empty_block_is_just_eob() {
        let mut w = BitWriter::new();
        encode_block(&mut w, &[]);
        assert_eq!(w.bit_len(), 2);
    }

    #[test]
    fn denser_blocks_take_more_bits() {
        let sparse = vec![RunLevel { run: 5, level: 1 }];
        let dense: Vec<RunLevel> = (0..20)
            .map(|i| RunLevel {
                run: 0,
                level: i - 10,
            })
            .collect();
        assert!(block_bits(&dense) > block_bits(&sparse));
    }
}
