//! Block motion estimation and compensation.
//!
//! The `mpeg2enc` hot loop: find, for each 16×16 macroblock of the
//! current frame, the best-matching block in a search window of the
//! reference frame (minimum sum of absolute differences), then form the
//! residual against that prediction. SAD over rows of 8/16 pixels is the
//! signature μ-SIMD kernel (`psadbw` / MOM `acc.sad.b`).

/// A luma plane with its geometry.
#[derive(Debug, Clone)]
pub struct Plane {
    /// Samples, row-major.
    pub data: Vec<u8>,
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
}

impl Plane {
    /// Create a plane filled with `fill`.
    #[must_use]
    pub fn new(width: usize, height: usize, fill: u8) -> Self {
        Plane {
            data: vec![fill; width * height],
            width,
            height,
        }
    }

    /// Sample at (x, y) with edge clamping.
    #[must_use]
    pub fn at(&self, x: isize, y: isize) -> u8 {
        let x = x.clamp(0, self.width as isize - 1) as usize;
        let y = y.clamp(0, self.height as isize - 1) as usize;
        self.data[y * self.width + x]
    }
}

/// Sum of absolute differences between a `bw`×`bh` block of `cur` at
/// (cx, cy) and of `reference` at (rx, ry).
#[must_use]
#[allow(clippy::too_many_arguments)] // mirrors the C reference signature
pub fn sad(
    cur: &Plane,
    cx: usize,
    cy: usize,
    reference: &Plane,
    rx: isize,
    ry: isize,
    bw: usize,
    bh: usize,
) -> u32 {
    let mut total = 0u32;
    for dy in 0..bh {
        for dx in 0..bw {
            let a = i32::from(cur.at((cx + dx) as isize, (cy + dy) as isize));
            let b = i32::from(reference.at(rx + dx as isize, ry + dy as isize));
            total += a.abs_diff(b);
        }
    }
    total
}

/// Result of a motion search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MotionVector {
    /// Horizontal displacement (pixels).
    pub dx: i8,
    /// Vertical displacement (pixels).
    pub dy: i8,
    /// SAD at the chosen displacement.
    pub sad: u32,
}

/// Full-search motion estimation of the 16×16 macroblock at (mx, my)
/// within ±`range` pixels. Returns the best vector (ties favor the
/// smaller displacement, searched in raster order).
#[must_use]
pub fn full_search(
    cur: &Plane,
    reference: &Plane,
    mx: usize,
    my: usize,
    range: i8,
) -> MotionVector {
    let mut best = MotionVector {
        dx: 0,
        dy: 0,
        sad: u32::MAX,
    };
    for dy in -range..=range {
        for dx in -range..=range {
            let s = sad(
                cur,
                mx,
                my,
                reference,
                mx as isize + dx as isize,
                my as isize + dy as isize,
                16,
                16,
            );
            if s < best.sad {
                best = MotionVector { dx, dy, sad: s };
            }
        }
    }
    best
}

/// Number of candidate positions a full search of ±`range` evaluates.
#[must_use]
pub fn candidates(range: i8) -> usize {
    let n = 2 * range as usize + 1;
    n * n
}

/// Form the 16×16 residual of the macroblock at (mx, my) against the
/// motion-compensated prediction.
#[must_use]
pub fn residual(
    cur: &Plane,
    reference: &Plane,
    mx: usize,
    my: usize,
    mv: MotionVector,
) -> [i16; 256] {
    let mut out = [0i16; 256];
    for dy in 0..16 {
        for dx in 0..16 {
            let a = i16::from(cur.at((mx + dx) as isize, (my + dy) as isize));
            let b = i16::from(reference.at(
                mx as isize + i16::from(mv.dx) as isize + dx as isize,
                my as isize + i16::from(mv.dy) as isize + dy as isize,
            ));
            out[dy * 16 + dx] = a - b;
        }
    }
    out
}

/// Motion-compensated reconstruction: prediction + residual, clamped to
/// pixel range (the decoder-side kernel).
pub fn reconstruct(
    dst: &mut Plane,
    reference: &Plane,
    mx: usize,
    my: usize,
    mv: MotionVector,
    residual: &[i16; 256],
) {
    for dy in 0..16 {
        for dx in 0..16 {
            let p = i16::from(reference.at(
                mx as isize + i16::from(mv.dx) as isize + dx as isize,
                my as isize + i16::from(mv.dy) as isize + dy as isize,
            ));
            let v = (p + residual[dy * 16 + dx]).clamp(0, 255) as u8;
            let x = (mx + dx).min(dst.width - 1);
            let y = (my + dy).min(dst.height - 1);
            dst.data[y * dst.width + x] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(width: usize, height: usize, phase: usize) -> Plane {
        let mut p = Plane::new(width, height, 0);
        for y in 0..height {
            for x in 0..width {
                p.data[y * width + x] = (((x + phase) * 7 + y * 13) % 251) as u8;
            }
        }
        p
    }

    #[test]
    fn sad_of_identical_blocks_is_zero() {
        let p = textured(64, 64, 0);
        assert_eq!(sad(&p, 16, 16, &p, 16, 16, 16, 16), 0);
    }

    #[test]
    fn sad_grows_with_mismatch() {
        let a = textured(64, 64, 0);
        let b = textured(64, 64, 3);
        // b(x) samples the texture at x+3, so b at x=13 equals a at x=16.
        let near = sad(&a, 16, 16, &b, 16 - 3, 16, 16, 16);
        let far = sad(&a, 16, 16, &b, 16, 16, 16, 16);
        assert_eq!(near, 0, "phase-3 texture matches at dx=-3");
        assert!(far > 0);
    }

    #[test]
    fn full_search_finds_known_shift() {
        let cur = textured(96, 96, 5);
        let reference = textured(96, 96, 0);
        // cur(x) = ref(x+5): block at mx matches reference at mx+5.
        let mv = full_search(&cur, &reference, 32, 32, 7);
        assert_eq!((mv.dx, mv.dy), (5, 0));
        assert_eq!(mv.sad, 0);
    }

    #[test]
    fn candidate_count() {
        assert_eq!(candidates(7), 225);
        assert_eq!(candidates(1), 9);
        assert_eq!(candidates(0), 1);
    }

    #[test]
    fn residual_plus_prediction_reconstructs() {
        let cur = textured(64, 64, 2);
        let reference = textured(64, 64, 0);
        let mv = full_search(&cur, &reference, 16, 16, 4);
        let res = residual(&cur, &reference, 16, 16, mv);
        let mut rec = Plane::new(64, 64, 0);
        reconstruct(&mut rec, &reference, 16, 16, mv, &res);
        for dy in 0..16 {
            for dx in 0..16 {
                assert_eq!(
                    rec.at((16 + dx) as isize, (16 + dy) as isize),
                    cur.at((16 + dx) as isize, (16 + dy) as isize)
                );
            }
        }
    }

    #[test]
    fn edge_clamping_in_at() {
        let p = textured(8, 8, 0);
        assert_eq!(p.at(-5, -5), p.at(0, 0));
        assert_eq!(p.at(100, 3), p.at(7, 3));
    }

    #[test]
    fn zero_range_search_returns_zero_vector() {
        let a = textured(64, 64, 0);
        let b = textured(64, 64, 1);
        let mv = full_search(&a, &b, 16, 16, 0);
        assert_eq!((mv.dx, mv.dy), (0, 0));
    }
}
