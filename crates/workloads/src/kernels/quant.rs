//! Coefficient quantization and dequantization.
//!
//! MPEG-2/JPEG style: a per-position quantization matrix scaled by a
//! quality factor. Quantization is where most coefficients become zero,
//! which in turn determines the entropy-coding work — the main
//! data-dependent scalar phase of the video codecs.

/// The default intra quantization matrix (MPEG-2 Table 7-2 shape).
pub const INTRA_MATRIX: [u16; 64] = [
    8, 16, 19, 22, 26, 27, 29, 34, //
    16, 16, 22, 24, 27, 29, 34, 37, //
    19, 22, 26, 27, 29, 34, 34, 38, //
    22, 22, 26, 27, 29, 34, 37, 40, //
    22, 26, 27, 29, 32, 35, 40, 48, //
    26, 27, 29, 32, 35, 40, 48, 58, //
    26, 27, 29, 34, 38, 46, 56, 69, //
    27, 29, 35, 38, 46, 56, 69, 83,
];

/// A flat matrix for inter (non-intra) blocks.
pub const INTER_MATRIX: [u16; 64] = [16; 64];

/// Quantize a DCT coefficient block with the given matrix and scale
/// (`qscale` ∈ 1..=31 as in MPEG-2). Returns the quantized levels.
#[must_use]
pub fn quantize(coef: &[i16; 64], matrix: &[u16; 64], qscale: u16) -> [i16; 64] {
    let mut out = [0i16; 64];
    for i in 0..64 {
        let q = i32::from(matrix[i]) * i32::from(qscale);
        let c = i32::from(coef[i]) * 16;
        // Symmetric rounding toward zero with a dead zone (MPEG-2 style).
        let level = if c >= 0 {
            (c + q / 2) / q
        } else {
            -((-c + q / 2) / q)
        };
        out[i] = level.clamp(-2047, 2047) as i16;
    }
    out
}

/// Dequantize levels back to coefficient magnitudes.
#[must_use]
pub fn dequantize(level: &[i16; 64], matrix: &[u16; 64], qscale: u16) -> [i16; 64] {
    let mut out = [0i16; 64];
    for i in 0..64 {
        let q = i32::from(matrix[i]) * i32::from(qscale);
        let v = (i32::from(level[i]) * q) / 16;
        out[i] = v.clamp(-32768, 32767) as i16;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_stays_zero() {
        let z = [0i16; 64];
        assert_eq!(quantize(&z, &INTRA_MATRIX, 8), [0i16; 64]);
        assert_eq!(dequantize(&z, &INTRA_MATRIX, 8), [0i16; 64]);
    }

    #[test]
    fn small_coefficients_die_at_high_qscale() {
        let mut c = [0i16; 64];
        c[50] = 9; // high-frequency, small
        let q = quantize(&c, &INTRA_MATRIX, 16);
        assert_eq!(
            q[50], 0,
            "small high-frequency coefficient quantizes to zero"
        );
        let q = quantize(&c, &INTRA_MATRIX, 1);
        assert_ne!(q[50], 0, "fine quantization keeps it");
    }

    #[test]
    fn round_trip_error_bounded_by_step() {
        let mut c = [0i16; 64];
        for (i, v) in c.iter_mut().enumerate() {
            *v = (i as i16 - 32) * 13;
        }
        let q = quantize(&c, &INTRA_MATRIX, 4);
        let d = dequantize(&q, &INTRA_MATRIX, 4);
        for i in 0..64 {
            let step = i32::from(INTRA_MATRIX[i]) * 4 / 16;
            let err = (i32::from(d[i]) - i32::from(c[i])).abs();
            assert!(err <= step, "pos {i}: err {err} > step {step}");
        }
    }

    #[test]
    fn quantization_is_odd_symmetric() {
        let mut c = [0i16; 64];
        c[3] = 100;
        let mut n = [0i16; 64];
        n[3] = -100;
        let qp = quantize(&c, &INTRA_MATRIX, 8);
        let qn = quantize(&n, &INTRA_MATRIX, 8);
        assert_eq!(qp[3], -qn[3]);
    }

    #[test]
    fn coarser_scale_means_fewer_nonzeros() {
        let mut c = [0i16; 64];
        for (i, v) in c.iter_mut().enumerate() {
            *v = 200 - 3 * i as i16;
        }
        let fine = quantize(&c, &INTRA_MATRIX, 2);
        let coarse = quantize(&c, &INTRA_MATRIX, 31);
        let nz = |b: &[i16; 64]| b.iter().filter(|&&x| x != 0).count();
        assert!(nz(&coarse) < nz(&fine));
    }

    #[test]
    fn inter_matrix_is_flat() {
        assert!(INTER_MATRIX.iter().all(|&q| q == 16));
    }
}
