//! 8×8 integer discrete cosine transform (forward and inverse).
//!
//! Fixed-point separable implementation in the style of the reference
//! MPEG-2/JPEG codecs: a 1-D 8-point DCT applied to rows then columns,
//! with 13-bit cosine constants. Used by `mpeg2enc`/`jpegenc` (forward)
//! and `mpeg2dec`/`jpegdec` (inverse).

/// Scale shift of the fixed-point cosine table.
const FIX_SHIFT: i32 = 13;

/// round(cos(k·π/16) · 2^13) for k = 0..8 (C\[8\] = cos(π/2) = 0).
const C: [i64; 9] = [8192, 8035, 7568, 6811, 5793, 4551, 3135, 1598, 0];

fn dct1d(s: &[i64; 8]) -> [i64; 8] {
    let mut out = [0i64; 8];
    // Direct matrix formulation: X[k] = c(k)/2 · Σ x[n]·cos((2n+1)kπ/16),
    // with the cosines folded into the fixed-point table by symmetry.
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = 0i64;
        for (n, &x) in s.iter().enumerate() {
            // cos((2n+1)kπ/16) expressed through the table with index
            // folding: angle index m = (2n+1)k mod 32 maps to ±C[..].
            let m = ((2 * n + 1) * k) % 32;
            let (idx, sign) = fold_angle(m);
            acc += sign * x * C[idx];
        }
        // c(0) = 1/√2 ≈ C[4]/2^13
        let scaled = if k == 0 {
            (acc * C[4]) >> FIX_SHIFT
        } else {
            acc
        };
        *o = scaled >> (FIX_SHIFT - 1); // ×1/2 overall normalization... see below
    }
    // Normalization: forward 1-D DCT here is ×2 the orthonormal one; the
    // 2-D pair keeps total gain 2·2/8 handled in `forward`.
    out
}

/// Map an angle index `m` (multiples of π/16, mod 32) to a cosine-table
/// index and sign: cos(mπ/16) = sign · C\[idx\]/2^13.
fn fold_angle(m: usize) -> (usize, i64) {
    let m = m % 32;
    match m {
        0..=8 => (m, 1),
        9..=16 => (16 - m, -1),
        17..=24 => (m - 16, -1),
        _ => (32 - m, 1),
    }
}

/// Forward 8×8 DCT of spatial samples (typically pixel residuals in
/// −255..=255). Output coefficients are in DCT domain, orthonormal-ish
/// scaling (DC = 8×mean).
#[must_use]
pub fn forward(block: &[i16; 64]) -> [i16; 64] {
    let mut tmp = [[0i64; 8]; 8];
    // Rows.
    for r in 0..8 {
        let mut row = [0i64; 8];
        for c in 0..8 {
            row[c] = i64::from(block[r * 8 + c]);
        }
        tmp[r] = dct1d(&row);
    }
    // Columns.
    let mut out = [0i16; 64];
    for c in 0..8 {
        let mut col = [0i64; 8];
        for r in 0..8 {
            col[r] = tmp[r][c];
        }
        let t = dct1d(&col);
        for r in 0..8 {
            // Overall 2-D gain of this formulation is 16; divide by 16 to
            // get the conventional scaling (DC = 8 × mean).
            out[r * 8 + c] = (t[r] >> 4).clamp(-32768, 32767) as i16;
        }
    }
    out
}

fn idct1d(s: &[i64; 8]) -> [i64; 8] {
    let mut out = [0i64; 8];
    for (n, o) in out.iter_mut().enumerate() {
        let mut acc = 0i64;
        for (k, &x) in s.iter().enumerate() {
            let m = ((2 * n + 1) * k) % 32;
            let (idx, sign) = fold_angle(m);
            let ck = if k == 0 {
                (C[4] * C[idx]) >> FIX_SHIFT
            } else {
                C[idx]
            };
            acc += sign * x * ck;
        }
        *o = acc >> (FIX_SHIFT - 1);
    }
    out
}

/// Inverse 8×8 DCT; `forward` then `inverse` reconstructs the input to
/// within a small rounding error.
#[must_use]
pub fn inverse(coef: &[i16; 64]) -> [i16; 64] {
    let mut tmp = [[0i64; 8]; 8];
    for r in 0..8 {
        let mut row = [0i64; 8];
        for c in 0..8 {
            row[c] = i64::from(coef[r * 8 + c]);
        }
        tmp[r] = idct1d(&row);
    }
    let mut out = [0i16; 64];
    for c in 0..8 {
        let mut col = [0i64; 8];
        for r in 0..8 {
            col[r] = tmp[r][c];
        }
        let t = idct1d(&col);
        for r in 0..8 {
            out[r * 8 + c] = (t[r] >> 4).clamp(-32768, 32767) as i16;
        }
    }
    out
}

/// Count of nonzero coefficients (drives entropy-coding trip counts).
#[must_use]
pub fn nonzero_count(coef: &[i16; 64]) -> usize {
    coef.iter().filter(|&&c| c != 0).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_block() -> [i16; 64] {
        let mut b = [0i16; 64];
        for r in 0..8 {
            for c in 0..8 {
                b[r * 8 + c] = (r as i16) * 8 + c as i16 - 28;
            }
        }
        b
    }

    #[test]
    fn dc_of_constant_block() {
        let block = [100i16; 64];
        let coef = forward(&block);
        // Conventional scaling: DC = 8 × mean = 800 (allow small error).
        assert!((i32::from(coef[0]) - 800).abs() <= 8, "DC = {}", coef[0]);
        // All AC coefficients ~0.
        for (i, &c) in coef.iter().enumerate().skip(1) {
            assert!(c.abs() <= 2, "AC[{i}] = {c}");
        }
    }

    #[test]
    fn forward_inverse_round_trip() {
        let block = gradient_block();
        let coef = forward(&block);
        let back = inverse(&coef);
        for i in 0..64 {
            let err = (i32::from(back[i]) - i32::from(block[i])).abs();
            assert!(
                err <= 2,
                "sample {i}: {} vs {} (err {err})",
                back[i],
                block[i]
            );
        }
    }

    #[test]
    fn round_trip_extreme_values() {
        let mut block = [0i16; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = if i % 2 == 0 { 255 } else { -255 };
        }
        let back = inverse(&forward(&block));
        for i in 0..64 {
            let err = (i32::from(back[i]) - i32::from(block[i])).abs();
            assert!(err <= 4, "sample {i}: err {err}");
        }
    }

    #[test]
    fn linearity() {
        let a = gradient_block();
        let mut a2 = [0i16; 64];
        for i in 0..64 {
            a2[i] = a[i] * 2;
        }
        let ca = forward(&a);
        let ca2 = forward(&a2);
        for i in 0..64 {
            let err = (i32::from(ca2[i]) - 2 * i32::from(ca[i])).abs();
            assert!(err <= 4, "coef {i}: {} vs 2×{}", ca2[i], ca[i]);
        }
    }

    #[test]
    fn energy_compaction_on_smooth_data() {
        // A smooth gradient concentrates energy in low frequencies.
        let coef = forward(&gradient_block());
        let low: i64 = coef[..16]
            .iter()
            .map(|&c| i64::from(c) * i64::from(c))
            .sum();
        let high: i64 = coef[48..]
            .iter()
            .map(|&c| i64::from(c) * i64::from(c))
            .sum();
        assert!(low > 10 * high.max(1), "low {low} vs high {high}");
    }

    #[test]
    fn nonzero_count_counts() {
        let mut c = [0i16; 64];
        assert_eq!(nonzero_count(&c), 0);
        c[0] = 5;
        c[63] = -1;
        assert_eq!(nonzero_count(&c), 2);
    }

    #[test]
    fn fold_angle_symmetries() {
        // cos(0)=1, cos(8π/16)=cos(π/2)=0ish→C[8] small? C[8]=1598? no...
        assert_eq!(fold_angle(0), (0, 1));
        assert_eq!(fold_angle(16), (0, -1)); // cos(π) = −1
        assert_eq!(fold_angle(32 - 1), (1, 1)); // cos(−π/16)
        assert_eq!(fold_angle(17), (1, -1)); // cos(17π/16) = −cos(π/16)
    }
}
