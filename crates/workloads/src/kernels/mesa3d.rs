//! A miniature 3D rendering pipeline (the `mesa` benchmark stand-in).
//!
//! Mediabench's `mesa` runs OpenGL software rendering. The hot phases
//! are: vertex transform (4×4 matrix × vec4), lighting (normal·light dot
//! products), and triangle rasterization with a depth buffer. All of it
//! is floating-point and scalar-integer work — the paper notes `mesa`
//! was *not* vectorized because the emulation libraries lack FP μ-SIMD,
//! which is why it anchors the scalar end of the workload.

/// A 4-component vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vec4 {
    /// x component.
    pub x: f32,
    /// y component.
    pub y: f32,
    /// z component.
    pub z: f32,
    /// w component.
    pub w: f32,
}

impl Vec4 {
    /// Build a vector.
    #[must_use]
    pub fn new(x: f32, y: f32, z: f32, w: f32) -> Self {
        Vec4 { x, y, z, w }
    }

    /// Dot product of the xyz parts.
    #[must_use]
    pub fn dot3(self, o: Vec4) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Euclidean norm of the xyz part.
    #[must_use]
    pub fn norm3(self) -> f32 {
        self.dot3(self).sqrt()
    }
}

/// A row-major 4×4 matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4(pub [f32; 16]);

impl Mat4 {
    /// Identity matrix.
    #[must_use]
    pub fn identity() -> Self {
        let mut m = [0.0; 16];
        m[0] = 1.0;
        m[5] = 1.0;
        m[10] = 1.0;
        m[15] = 1.0;
        Mat4(m)
    }

    /// Translation matrix.
    #[must_use]
    pub fn translate(tx: f32, ty: f32, tz: f32) -> Self {
        let mut m = Mat4::identity();
        m.0[3] = tx;
        m.0[7] = ty;
        m.0[11] = tz;
        m
    }

    /// Uniform scale matrix.
    #[must_use]
    pub fn scale(s: f32) -> Self {
        let mut m = Mat4::identity();
        m.0[0] = s;
        m.0[5] = s;
        m.0[10] = s;
        m
    }

    /// Rotation about Z by `theta` radians.
    #[must_use]
    pub fn rotate_z(theta: f32) -> Self {
        let (s, c) = theta.sin_cos();
        let mut m = Mat4::identity();
        m.0[0] = c;
        m.0[1] = -s;
        m.0[4] = s;
        m.0[5] = c;
        m
    }

    /// Matrix × matrix.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // free function-style name, kept API-stable
    pub fn mul(self, o: Mat4) -> Mat4 {
        let mut r = [0.0f32; 16];
        for i in 0..4 {
            for j in 0..4 {
                let mut acc = 0.0;
                for k in 0..4 {
                    acc += self.0[i * 4 + k] * o.0[k * 4 + j];
                }
                r[i * 4 + j] = acc;
            }
        }
        Mat4(r)
    }

    /// Matrix × vector (the per-vertex transform: 16 multiplies, 12 adds).
    #[must_use]
    pub fn transform(self, v: Vec4) -> Vec4 {
        let m = &self.0;
        Vec4 {
            x: m[0] * v.x + m[1] * v.y + m[2] * v.z + m[3] * v.w,
            y: m[4] * v.x + m[5] * v.y + m[6] * v.z + m[7] * v.w,
            z: m[8] * v.x + m[9] * v.y + m[10] * v.z + m[11] * v.w,
            w: m[12] * v.x + m[13] * v.y + m[14] * v.z + m[15] * v.w,
        }
    }
}

/// Diffuse lighting: clamped Lambert term against a unit light vector.
#[must_use]
pub fn diffuse(normal: Vec4, light: Vec4) -> f32 {
    let n = normal.norm3();
    if n == 0.0 {
        return 0.0;
    }
    (normal.dot3(light) / n).max(0.0)
}

/// A framebuffer with a depth buffer.
#[derive(Debug, Clone)]
pub struct Framebuffer {
    /// Packed 8-bit intensity per pixel.
    pub color: Vec<u8>,
    /// Depth per pixel (larger = farther; initialized to `f32::MAX`).
    pub depth: Vec<f32>,
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
}

impl Framebuffer {
    /// A cleared framebuffer.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        Framebuffer {
            color: vec![0; width * height],
            depth: vec![f32::MAX; width * height],
            width,
            height,
        }
    }

    /// Count of pixels written (depth < MAX).
    #[must_use]
    pub fn covered_pixels(&self) -> usize {
        self.depth.iter().filter(|&&d| d < f32::MAX).count()
    }
}

/// A screen-space triangle vertex: position + intensity.
#[derive(Debug, Clone, Copy)]
pub struct ScreenVertex {
    /// Screen x.
    pub x: f32,
    /// Screen y.
    pub y: f32,
    /// Depth.
    pub z: f32,
    /// Shaded intensity 0..=1.
    pub intensity: f32,
}

fn edge(a: &ScreenVertex, b: &ScreenVertex, px: f32, py: f32) -> f32 {
    (px - a.x) * (b.y - a.y) - (py - a.y) * (b.x - a.x)
}

/// Rasterize a triangle with barycentric interpolation and depth test.
/// Returns the number of pixels that passed the depth test.
pub fn rasterize(
    fb: &mut Framebuffer,
    v0: ScreenVertex,
    v1: ScreenVertex,
    v2: ScreenVertex,
) -> usize {
    let min_x = v0.x.min(v1.x).min(v2.x).floor().max(0.0) as usize;
    let max_x = (v0.x.max(v1.x).max(v2.x).ceil() as usize).min(fb.width.saturating_sub(1));
    let min_y = v0.y.min(v1.y).min(v2.y).floor().max(0.0) as usize;
    let max_y = (v0.y.max(v1.y).max(v2.y).ceil() as usize).min(fb.height.saturating_sub(1));
    let area = edge(&v0, &v1, v2.x, v2.y);
    if area.abs() < 1e-6 {
        return 0;
    }
    let mut written = 0;
    for py in min_y..=max_y {
        for px in min_x..=max_x {
            let (fx, fy) = (px as f32 + 0.5, py as f32 + 0.5);
            let w0 = edge(&v1, &v2, fx, fy) / area;
            let w1 = edge(&v2, &v0, fx, fy) / area;
            let w2 = 1.0 - w0 - w1;
            if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                continue;
            }
            let z = w0 * v0.z + w1 * v1.z + w2 * v2.z;
            let idx = py * fb.width + px;
            if z < fb.depth[idx] {
                fb.depth[idx] = z;
                let i = w0 * v0.intensity + w1 * v1.intensity + w2 * v2.intensity;
                fb.color[idx] = (i.clamp(0.0, 1.0) * 255.0) as u8;
                written += 1;
            }
        }
    }
    written
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_transform_preserves() {
        let v = Vec4::new(1.0, 2.0, 3.0, 1.0);
        let t = Mat4::identity().transform(v);
        assert_eq!(t, v);
    }

    #[test]
    fn translate_moves_points() {
        let v = Vec4::new(1.0, 1.0, 1.0, 1.0);
        let t = Mat4::translate(2.0, -1.0, 0.5).transform(v);
        assert_eq!((t.x, t.y, t.z), (3.0, 0.0, 1.5));
    }

    #[test]
    fn rotation_preserves_norm() {
        let v = Vec4::new(3.0, 4.0, 0.0, 1.0);
        let r = Mat4::rotate_z(1.1).transform(v);
        assert!((r.norm3() - 5.0).abs() < 1e-4);
    }

    #[test]
    fn matrix_multiply_composes() {
        let a = Mat4::translate(1.0, 0.0, 0.0);
        let b = Mat4::scale(2.0);
        let v = Vec4::new(1.0, 1.0, 1.0, 1.0);
        // (a·b) v = a(b(v))
        let lhs = a.mul(b).transform(v);
        let rhs = a.transform(b.transform(v));
        assert!((lhs.x - rhs.x).abs() < 1e-5);
        assert!((lhs.y - rhs.y).abs() < 1e-5);
        assert!((lhs.z - rhs.z).abs() < 1e-5);
    }

    #[test]
    fn diffuse_lighting_geometry() {
        let light = Vec4::new(0.0, 0.0, 1.0, 0.0);
        assert!((diffuse(Vec4::new(0.0, 0.0, 1.0, 0.0), light) - 1.0).abs() < 1e-6);
        assert_eq!(diffuse(Vec4::new(0.0, 0.0, -1.0, 0.0), light), 0.0);
        let grazing = diffuse(Vec4::new(1.0, 0.0, 1.0, 0.0), light);
        assert!((grazing - std::f32::consts::FRAC_1_SQRT_2).abs() < 1e-4);
    }

    #[test]
    fn rasterize_covers_expected_area() {
        let mut fb = Framebuffer::new(64, 64);
        // Right triangle covering ~half of a 40×40 box.
        let v0 = ScreenVertex {
            x: 10.0,
            y: 10.0,
            z: 0.5,
            intensity: 1.0,
        };
        let v1 = ScreenVertex {
            x: 50.0,
            y: 10.0,
            z: 0.5,
            intensity: 1.0,
        };
        let v2 = ScreenVertex {
            x: 10.0,
            y: 50.0,
            z: 0.5,
            intensity: 1.0,
        };
        let w = rasterize(&mut fb, v0, v1, v2);
        assert!(w > 600 && w < 1000, "~800 pixels expected, got {w}");
        assert_eq!(fb.covered_pixels(), w);
    }

    #[test]
    fn depth_test_rejects_farther_triangle() {
        let mut fb = Framebuffer::new(32, 32);
        let tri = |z: f32, i: f32| {
            (
                ScreenVertex {
                    x: 2.0,
                    y: 2.0,
                    z,
                    intensity: i,
                },
                ScreenVertex {
                    x: 30.0,
                    y: 2.0,
                    z,
                    intensity: i,
                },
                ScreenVertex {
                    x: 2.0,
                    y: 30.0,
                    z,
                    intensity: i,
                },
            )
        };
        let (a0, a1, a2) = tri(0.3, 1.0);
        let near = rasterize(&mut fb, a0, a1, a2);
        assert!(near > 0);
        let (b0, b1, b2) = tri(0.9, 0.5);
        let far = rasterize(&mut fb, b0, b1, b2);
        assert_eq!(far, 0, "farther triangle fully occluded");
    }

    #[test]
    fn degenerate_triangle_rasterizes_nothing() {
        let mut fb = Framebuffer::new(16, 16);
        let v = ScreenVertex {
            x: 5.0,
            y: 5.0,
            z: 0.1,
            intensity: 1.0,
        };
        assert_eq!(rasterize(&mut fb, v, v, v), 0);
    }
}
