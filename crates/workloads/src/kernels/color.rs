//! Color-space conversion and chroma subsampling (JPEG-style).
//!
//! RGB ↔ YCbCr with ITU-R BT.601 fixed-point coefficients, and 4:2:0
//! chroma subsampling/upsampling. `jpegenc` converts and subsamples on
//! the way in; `jpegdec` upsamples and converts back on the way out.
//! Both directions are classic packed-arithmetic kernels (`pmaddwd` rows
//! of coefficients, or MOM vector-scalar multiplies).

/// Fixed-point shift of the conversion coefficients.
const SHIFT: i32 = 16;
const HALF: i32 = 1 << (SHIFT - 1);

fn fix(x: f64) -> i32 {
    (x * f64::from(1 << SHIFT) + 0.5) as i32
}

/// Convert one RGB pixel to YCbCr (BT.601, full range).
#[must_use]
pub fn rgb_to_ycbcr(r: u8, g: u8, b: u8) -> (u8, u8, u8) {
    let (r, g, b) = (i32::from(r), i32::from(g), i32::from(b));
    let y = (fix(0.299) * r + fix(0.587) * g + fix(0.114) * b + HALF) >> SHIFT;
    let cb = ((fix(-0.168_735_9) * r - fix(0.331_264_1) * g + fix(0.5) * b + HALF) >> SHIFT) + 128;
    let cr = ((fix(0.5) * r - fix(0.418_687_6) * g - fix(0.081_312_4) * b + HALF) >> SHIFT) + 128;
    (
        y.clamp(0, 255) as u8,
        cb.clamp(0, 255) as u8,
        cr.clamp(0, 255) as u8,
    )
}

/// Convert one YCbCr pixel back to RGB.
#[must_use]
pub fn ycbcr_to_rgb(y: u8, cb: u8, cr: u8) -> (u8, u8, u8) {
    let y = i32::from(y);
    let cb = i32::from(cb) - 128;
    let cr = i32::from(cr) - 128;
    let r = ((y << SHIFT) + fix(1.402) * cr + HALF) >> SHIFT;
    let g = ((y << SHIFT) - fix(0.344_136_3) * cb - fix(0.714_136_3) * cr + HALF) >> SHIFT;
    let b = ((y << SHIFT) + fix(1.772) * cb + HALF) >> SHIFT;
    (
        r.clamp(0, 255) as u8,
        g.clamp(0, 255) as u8,
        b.clamp(0, 255) as u8,
    )
}

/// An interleaved RGB image.
#[derive(Debug, Clone)]
pub struct RgbImage {
    /// `width × height × 3` bytes, row-major, RGB order.
    pub data: Vec<u8>,
    /// Width in pixels (must be even for 4:2:0).
    pub width: usize,
    /// Height in pixels (must be even for 4:2:0).
    pub height: usize,
}

/// Planar YCbCr 4:2:0 image.
#[derive(Debug, Clone)]
pub struct Ycbcr420 {
    /// Full-resolution luma plane.
    pub y: Vec<u8>,
    /// Quarter-resolution blue-difference plane.
    pub cb: Vec<u8>,
    /// Quarter-resolution red-difference plane.
    pub cr: Vec<u8>,
    /// Luma width.
    pub width: usize,
    /// Luma height.
    pub height: usize,
}

/// Convert an RGB image to planar YCbCr 4:2:0 (chroma averaged over each
/// 2×2 quad).
///
/// # Panics
///
/// Panics if the dimensions are not even.
#[must_use]
pub fn convert_420(img: &RgbImage) -> Ycbcr420 {
    assert!(
        img.width.is_multiple_of(2) && img.height.is_multiple_of(2),
        "4:2:0 needs even dimensions"
    );
    let (w, h) = (img.width, img.height);
    let mut y = vec![0u8; w * h];
    let mut full_cb = vec![0u8; w * h];
    let mut full_cr = vec![0u8; w * h];
    for py in 0..h {
        for px in 0..w {
            let o = (py * w + px) * 3;
            let (yy, cb, cr) = rgb_to_ycbcr(img.data[o], img.data[o + 1], img.data[o + 2]);
            y[py * w + px] = yy;
            full_cb[py * w + px] = cb;
            full_cr[py * w + px] = cr;
        }
    }
    let (cw, ch) = (w / 2, h / 2);
    let mut cb = vec![0u8; cw * ch];
    let mut cr = vec![0u8; cw * ch];
    for cy in 0..ch {
        for cx in 0..cw {
            let avg = |p: &[u8]| -> u8 {
                let s = u32::from(p[(2 * cy) * w + 2 * cx])
                    + u32::from(p[(2 * cy) * w + 2 * cx + 1])
                    + u32::from(p[(2 * cy + 1) * w + 2 * cx])
                    + u32::from(p[(2 * cy + 1) * w + 2 * cx + 1]);
                ((s + 2) / 4) as u8
            };
            cb[cy * cw + cx] = avg(&full_cb);
            cr[cy * cw + cx] = avg(&full_cr);
        }
    }
    Ycbcr420 {
        y,
        cb,
        cr,
        width: w,
        height: h,
    }
}

/// Convert planar YCbCr 4:2:0 back to interleaved RGB (nearest-neighbor
/// chroma upsampling).
#[must_use]
pub fn convert_rgb(img: &Ycbcr420) -> RgbImage {
    let (w, h) = (img.width, img.height);
    let cw = w / 2;
    let mut data = vec![0u8; w * h * 3];
    for py in 0..h {
        for px in 0..w {
            let c = (py / 2) * cw + px / 2;
            let (r, g, b) = ycbcr_to_rgb(img.y[py * w + px], img.cb[c], img.cr[c]);
            let o = (py * w + px) * 3;
            data[o] = r;
            data[o + 1] = g;
            data[o + 2] = b;
        }
    }
    RgbImage {
        data,
        width: w,
        height: h,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primaries_map_to_expected_luma() {
        let (y, _, _) = rgb_to_ycbcr(255, 255, 255);
        assert_eq!(y, 255);
        let (y, cb, cr) = rgb_to_ycbcr(0, 0, 0);
        assert_eq!((y, cb, cr), (0, 128, 128));
        let (y, _, cr) = rgb_to_ycbcr(255, 0, 0);
        assert!((i32::from(y) - 76).abs() <= 1, "red luma {y}");
        assert!(cr > 200, "red has high Cr: {cr}");
    }

    #[test]
    fn gray_has_neutral_chroma() {
        for g in [0u8, 64, 128, 200, 255] {
            let (y, cb, cr) = rgb_to_ycbcr(g, g, g);
            assert_eq!(y, g);
            assert!((i32::from(cb) - 128).abs() <= 1);
            assert!((i32::from(cr) - 128).abs() <= 1);
        }
    }

    #[test]
    fn pixel_round_trip_error_small() {
        for r in (0..=255u16).step_by(37) {
            for g in (0..=255u16).step_by(41) {
                for b in (0..=255u16).step_by(43) {
                    let (y, cb, cr) = rgb_to_ycbcr(r as u8, g as u8, b as u8);
                    let (r2, g2, b2) = ycbcr_to_rgb(y, cb, cr);
                    assert!(i32::from(r2).abs_diff(i32::from(r)) <= 2, "r {r}->{r2}");
                    assert!(i32::from(g2).abs_diff(i32::from(g)) <= 2, "g {g}->{g2}");
                    assert!(i32::from(b2).abs_diff(i32::from(b)) <= 2, "b {b}->{b2}");
                }
            }
        }
    }

    #[test]
    fn planar_geometry_420() {
        let img = RgbImage {
            data: vec![100; 16 * 8 * 3],
            width: 16,
            height: 8,
        };
        let out = convert_420(&img);
        assert_eq!(out.y.len(), 16 * 8);
        assert_eq!(out.cb.len(), 8 * 4);
        assert_eq!(out.cr.len(), 8 * 4);
    }

    #[test]
    fn image_round_trip_on_gradient() {
        let (w, h) = (16, 16);
        let mut data = vec![0u8; w * h * 3];
        for y in 0..h {
            for x in 0..w {
                let o = (y * w + x) * 3;
                data[o] = (x * 16) as u8;
                data[o + 1] = (y * 16) as u8;
                data[o + 2] = 128;
            }
        }
        let img = RgbImage {
            data,
            width: w,
            height: h,
        };
        let back = convert_rgb(&convert_420(&img));
        // Chroma subsampling loses detail; luma should survive well.
        let mut max_y_err = 0i32;
        for y in 0..h {
            for x in 0..w {
                let o = (y * w + x) * 3;
                let (ya, _, _) = rgb_to_ycbcr(img.data[o], img.data[o + 1], img.data[o + 2]);
                let (yb, _, _) = rgb_to_ycbcr(back.data[o], back.data[o + 1], back.data[o + 2]);
                max_y_err = max_y_err.max((i32::from(ya) - i32::from(yb)).abs());
            }
        }
        assert!(max_y_err <= 4, "luma error {max_y_err}");
    }

    #[test]
    #[should_panic(expected = "even dimensions")]
    fn odd_dimensions_rejected() {
        let img = RgbImage {
            data: vec![0; 15 * 8 * 3],
            width: 15,
            height: 8,
        };
        let _ = convert_420(&img);
    }
}
