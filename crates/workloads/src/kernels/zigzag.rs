//! Zigzag scan and run-length encoding of quantized coefficient blocks.
//!
//! The (run, level) pairs produced here are what the VLC entropy coder
//! consumes; the number of pairs is the trip count of the codecs' most
//! branch-heavy scalar loop.

/// The standard 8×8 zigzag scan order.
pub const ZIGZAG: [u8; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, //
    17, 24, 32, 25, 18, 11, 4, 5, //
    12, 19, 26, 33, 40, 48, 41, 34, //
    27, 20, 13, 6, 7, 14, 21, 28, //
    35, 42, 49, 56, 57, 50, 43, 36, //
    29, 22, 15, 23, 30, 37, 44, 51, //
    58, 59, 52, 45, 38, 31, 39, 46, //
    53, 60, 61, 54, 47, 55, 62, 63,
];

/// One run-length event: `run` zeros followed by `level`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLevel {
    /// Number of zero coefficients preceding this one in scan order.
    pub run: u8,
    /// The nonzero coefficient value.
    pub level: i16,
}

/// Scan `block` in zigzag order and produce its (run, level) events.
#[must_use]
pub fn run_length_encode(block: &[i16; 64]) -> Vec<RunLevel> {
    let mut events = Vec::new();
    let mut run = 0u8;
    for &pos in &ZIGZAG {
        let v = block[pos as usize];
        if v == 0 {
            run += 1;
        } else {
            events.push(RunLevel { run, level: v });
            run = 0;
        }
    }
    events
}

/// Rebuild a coefficient block from (run, level) events.
#[must_use]
pub fn run_length_decode(events: &[RunLevel]) -> [i16; 64] {
    let mut block = [0i16; 64];
    let mut scan = 0usize;
    for e in events {
        scan += e.run as usize;
        if scan >= 64 {
            break;
        }
        block[ZIGZAG[scan] as usize] = e.level;
        scan += 1;
    }
    block
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &z in &ZIGZAG {
            assert!(!seen[z as usize], "duplicate {z}");
            seen[z as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zigzag_starts_dc_then_low_frequencies() {
        assert_eq!(ZIGZAG[0], 0);
        assert_eq!(ZIGZAG[1], 1);
        assert_eq!(ZIGZAG[2], 8);
        assert_eq!(ZIGZAG[63], 63);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut block = [0i16; 64];
        block[0] = 50;
        block[8] = -3;
        block[35] = 7;
        block[63] = -1;
        let events = run_length_encode(&block);
        assert_eq!(run_length_decode(&events), block);
    }

    #[test]
    fn empty_block_has_no_events() {
        assert!(run_length_encode(&[0i16; 64]).is_empty());
    }

    #[test]
    fn dense_block_has_64_events() {
        let block = [1i16; 64];
        let events = run_length_encode(&block);
        assert_eq!(events.len(), 64);
        assert!(events.iter().all(|e| e.run == 0));
    }

    #[test]
    fn runs_count_zeros() {
        let mut block = [0i16; 64];
        block[ZIGZAG[5] as usize] = 9;
        let events = run_length_encode(&block);
        assert_eq!(events, vec![RunLevel { run: 5, level: 9 }]);
    }
}
