//! Functional reference implementations of the media kernels.
//!
//! These are *real* algorithm implementations — the same transforms the
//! Mediabench programs spend their kernel time in. The trace generators
//! in [`crate::trace`] walk these algorithms' loop structures to emit
//! instruction streams, and run them functionally to obtain the
//! data-dependent values (quantized coefficient counts, motion vectors,
//! Huffman code lengths) that drive branch outcomes and trip counts. The
//! example binaries also use them end-to-end (encode a synthetic frame
//! and report PSNR).

pub mod color;
pub mod dct;
pub mod gsm;
pub mod huffman;
pub mod mesa3d;
pub mod motion;
pub mod quant;
pub mod zigzag;
