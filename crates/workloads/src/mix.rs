//! Instruction-mix accounting (Table 3 of the paper).
//!
//! The paper's counting rule (§4.2): *"to allow for a meaningful
//! comparison, a MOM μ-SIMD instruction that operates with, say, a
//! stream length of 11, counts as eleven instructions"*. [`InstMix`]
//! therefore accumulates **equivalent instructions**: scalar and MMX
//! instructions count 1, MOM instructions count their stream length.

use medsim_isa::{Inst, OpKind};
use serde::{Deserialize, Serialize};

/// Equivalent-instruction counts by Table-3 bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstMix {
    /// Integer arithmetic + control (the paper's "integer" bucket).
    pub integer: u64,
    /// Scalar floating point.
    pub fp: u64,
    /// SIMD arithmetic (MMX or MOM non-memory).
    pub simd: u64,
    /// Memory (scalar and vector loads/stores).
    pub memory: u64,
    /// Raw (non-equivalent) instruction count — what the fetch/decode
    /// pipeline actually sees.
    pub raw: u64,
}

impl InstMix {
    /// Record one instruction.
    pub fn record(&mut self, inst: &Inst) {
        let eq = inst.equivalent_count();
        self.raw += 1;
        match inst.kind() {
            OpKind::Integer => self.integer += eq,
            OpKind::Fp => self.fp += eq,
            OpKind::SimdArith => self.simd += eq,
            OpKind::Memory => self.memory += eq,
        }
    }

    /// Total equivalent instructions.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.integer + self.fp + self.simd + self.memory
    }

    /// Accumulate another mix into this one.
    pub fn merge(&mut self, other: &InstMix) {
        self.integer += other.integer;
        self.fp += other.fp;
        self.simd += other.simd;
        self.memory += other.memory;
        self.raw += other.raw;
    }

    /// The percentage breakdown (Table-3 row values).
    #[must_use]
    pub fn breakdown(&self) -> MixBreakdown {
        let t = self.total().max(1) as f64;
        MixBreakdown {
            integer_pct: 100.0 * self.integer as f64 / t,
            fp_pct: 100.0 * self.fp as f64 / t,
            simd_pct: 100.0 * self.simd as f64 / t,
            memory_pct: 100.0 * self.memory as f64 / t,
            total_insts: self.total(),
        }
    }
}

/// Percentage view of an [`InstMix`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixBreakdown {
    /// Integer share (%), Table 3 row 1.
    pub integer_pct: f64,
    /// FP share (%).
    pub fp_pct: f64,
    /// SIMD-arithmetic share (%).
    pub simd_pct: f64,
    /// Memory share (%).
    pub memory_pct: f64,
    /// Total equivalent instructions (Table 3's `#ins` row).
    pub total_insts: u64,
}

impl core::fmt::Display for MixBreakdown {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "INT {:5.1}%  FP {:4.1}%  SIMD {:5.1}%  MEM {:5.1}%  (#ins {})",
            self.integer_pct, self.fp_pct, self.simd_pct, self.memory_pct, self.total_insts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsim_isa::prelude::*;

    #[test]
    fn buckets_follow_table3() {
        let mut mix = InstMix::default();
        mix.record(&Inst::int_rrr(IntOp::Add, int(1), int(2), int(3)));
        mix.record(&Inst::branch(CtlOp::Bne, int(1), true, 0));
        mix.record(&Inst::fp_rrr(FpOp::FMul, fp(0), fp(1), fp(2)));
        mix.record(&Inst::mmx(MmxOp::PaddW, simd(0), simd(1), simd(2)));
        mix.record(&Inst::load(MemOp::LoadW, int(4), int(5), 0x100));
        mix.record(&Inst::mmx_load(simd(3), int(5), 0x200));
        assert_eq!(mix.integer, 2, "branches count as integer");
        assert_eq!(mix.fp, 1);
        assert_eq!(mix.simd, 1);
        assert_eq!(mix.memory, 2, "MMX loads are memory");
        assert_eq!(mix.raw, 6);
    }

    #[test]
    fn mom_counts_equivalent_instructions() {
        let mut mix = InstMix::default();
        mix.record(&Inst::mom(
            MomOp::VaddW,
            stream(0),
            stream(1),
            stream(2),
            11,
        ));
        mix.record(&Inst::mom_load(stream(3), int(1), 0x1000, 8, 16));
        assert_eq!(mix.simd, 11, "the paper's stream-length-11 example");
        assert_eq!(mix.memory, 16);
        assert_eq!(mix.raw, 2, "the pipeline only fetched two instructions");
        assert_eq!(mix.total(), 27);
    }

    #[test]
    fn breakdown_percentages_sum_to_100() {
        let mut mix = InstMix::default();
        for _ in 0..62 {
            mix.record(&Inst::int_rrr(IntOp::Add, int(1), int(2), int(3)));
        }
        for _ in 0..16 {
            mix.record(&Inst::mmx(MmxOp::PaddW, simd(0), simd(1), simd(2)));
        }
        for _ in 0..20 {
            mix.record(&Inst::load(MemOp::LoadW, int(4), int(5), 0));
        }
        for _ in 0..2 {
            mix.record(&Inst::fp_rrr(FpOp::FAdd, fp(0), fp(1), fp(2)));
        }
        let b = mix.breakdown();
        assert!((b.integer_pct + b.fp_pct + b.simd_pct + b.memory_pct - 100.0).abs() < 1e-9);
        assert!((b.integer_pct - 62.0).abs() < 1e-9);
        assert!((b.simd_pct - 16.0).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = InstMix {
            integer: 10,
            fp: 1,
            simd: 2,
            memory: 3,
            raw: 16,
        };
        let b = InstMix {
            integer: 5,
            fp: 0,
            simd: 8,
            memory: 2,
            raw: 10,
        };
        a.merge(&b);
        assert_eq!(a.integer, 15);
        assert_eq!(a.simd, 10);
        assert_eq!(a.raw, 26);
        assert_eq!(a.total(), 31, "total counts the four buckets, not raw");
    }
}
