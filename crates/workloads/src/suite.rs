//! The multiprogrammed workload of the paper (§4.1, §5.1, Table 2).
//!
//! Eight program instances approximate a full MPEG-4 application. The
//! run order is the paper's: *"MPEG-2 encoder, GSM decoder, MPEG-2
//! decoder, GSM encoder, JPEG decoder, JPEG encoder, mesa and MPEG-2
//! decoder (2nd time)"* — with MPEG-2 decode included twice to round the
//! list to eight.
//!
//! Work is expressed in *units* (macroblocks, MCUs, speech frames,
//! vertex batches). [`WorkloadSpec::scale`] scales every program's unit
//! count relative to the paper's full-size runs (Table 3's instruction
//! counts, in millions), so the instruction-count *ratios* between
//! benchmarks match the paper at any scale.

use crate::trace::gsm_gen::{GsmDecGen, GsmEncGen};
use crate::trace::jpeg_gen::{JpegDecGen, JpegEncGen};
use crate::trace::mesa_gen::MesaGen;
use crate::trace::mpeg2_gen::{Mpeg2DecGen, Mpeg2EncGen};
use crate::trace::{BlockStream, ChunkSource, InstSource, InstStream, SimdIsa};
use serde::{Deserialize, Serialize};

/// One of the seven Mediabench programs in the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Benchmark {
    /// MPEG-2 video encoder (MPEG-4 video profile).
    Mpeg2Enc,
    /// MPEG-2 video decoder (MPEG-4 video profile).
    Mpeg2Dec,
    /// JPEG encoder (MPEG-4 still-image profile, 2D).
    JpegEnc,
    /// JPEG decoder (MPEG-4 still-image profile, 2D).
    JpegDec,
    /// GSM 06.10 speech encoder (MPEG-4 audio profile).
    GsmEnc,
    /// GSM 06.10 speech decoder (MPEG-4 audio profile).
    GsmDec,
    /// OpenGL software rendering (MPEG-4 still-image profile, 3D).
    Mesa,
}

impl Benchmark {
    /// All seven programs.
    pub const ALL: [Benchmark; 7] = [
        Benchmark::Mpeg2Enc,
        Benchmark::Mpeg2Dec,
        Benchmark::JpegEnc,
        Benchmark::JpegDec,
        Benchmark::GsmEnc,
        Benchmark::GsmDec,
        Benchmark::Mesa,
    ];

    /// The paper's §5.1 run order (8 slots; MPEG-2 decode twice).
    pub const PAPER_ORDER: [Benchmark; 8] = [
        Benchmark::Mpeg2Enc,
        Benchmark::GsmDec,
        Benchmark::Mpeg2Dec,
        Benchmark::GsmEnc,
        Benchmark::JpegDec,
        Benchmark::JpegEnc,
        Benchmark::Mesa,
        Benchmark::Mpeg2Dec,
    ];

    /// Short name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Benchmark::Mpeg2Enc => "mpeg2enc",
            Benchmark::Mpeg2Dec => "mpeg2dec",
            Benchmark::JpegEnc => "jpegenc",
            Benchmark::JpegDec => "jpegdec",
            Benchmark::GsmEnc => "gsmenc",
            Benchmark::GsmDec => "gsmdec",
            Benchmark::Mesa => "mesa",
        }
    }

    /// Table-2 description.
    #[must_use]
    pub const fn description(self) -> &'static str {
        match self {
            Benchmark::Mpeg2Enc => "MPEG-2 video encoder (motion estimation, DCT, VLC)",
            Benchmark::Mpeg2Dec => "MPEG-2 video decoder (VLC decode, IDCT, motion comp)",
            Benchmark::JpegEnc => "JPEG still-image encoder (color convert, DCT, Huffman)",
            Benchmark::JpegDec => "JPEG still-image decoder (Huffman, IDCT, color out)",
            Benchmark::GsmEnc => "GSM 06.10 full-rate speech encoder (LPC, LTP, RPE)",
            Benchmark::GsmDec => "GSM 06.10 full-rate speech decoder (synthesis filter)",
            Benchmark::Mesa => "OpenGL software renderer (transform, light, rasterize)",
        }
    }

    /// Table-2 data set description.
    #[must_use]
    pub const fn data_set(self) -> &'static str {
        match self {
            Benchmark::Mpeg2Enc | Benchmark::Mpeg2Dec => "synthetic SIF video, 352x240, 4:2:0",
            Benchmark::JpegEnc | Benchmark::JpegDec => "synthetic RGB image, 256x192",
            Benchmark::GsmEnc | Benchmark::GsmDec => "synthetic voiced speech, 8 kHz",
            Benchmark::Mesa => "rotating vertex batches into a 256x256 framebuffer",
        }
    }

    /// Table-2 characteristics note.
    #[must_use]
    pub const fn characteristics(self) -> &'static str {
        match self {
            Benchmark::Mpeg2Enc => "DLP-heavy: SAD search + DCT; VLC scalar tail",
            Benchmark::Mpeg2Dec => "mixed: scalar VLC decode, vector IDCT/MC",
            Benchmark::JpegEnc => "elementwise kernels + dominant Huffman scalar",
            Benchmark::JpegDec => "Huffman-decode bound, vector IDCT",
            Benchmark::GsmEnc => "scalar saturating arithmetic; vector autocorrelation",
            Benchmark::GsmDec => "recursive synthesis filter: not vectorizable",
            Benchmark::Mesa => "scalar FP pipeline: not vectorized (no FP u-SIMD)",
        }
    }

    /// Table 3 `#ins` row: dynamic instructions in millions at full
    /// scale, under each ISA (equivalent-instruction counting).
    #[must_use]
    pub const fn paper_minsts(self, isa: SimdIsa) -> f64 {
        match (self, isa) {
            (Benchmark::Mpeg2Enc, SimdIsa::Mmx) => 642.7,
            (Benchmark::Mpeg2Enc, SimdIsa::Mom) => 364.9,
            (Benchmark::Mpeg2Dec, SimdIsa::Mmx) => 69.8,
            (Benchmark::Mpeg2Dec, SimdIsa::Mom) => 59.8,
            (Benchmark::JpegEnc, SimdIsa::Mmx) => 160.3,
            (Benchmark::JpegEnc, SimdIsa::Mom) => 135.8,
            (Benchmark::JpegDec, SimdIsa::Mmx) => 109.4,
            (Benchmark::JpegDec, SimdIsa::Mom) => 106.4,
            (Benchmark::GsmEnc, SimdIsa::Mmx) => 177.9,
            (Benchmark::GsmEnc, SimdIsa::Mom) => 161.3,
            (Benchmark::GsmDec, SimdIsa::Mmx) => 105.2,
            (Benchmark::GsmDec, SimdIsa::Mom) => 105.0,
            (Benchmark::Mesa, _) => 93.8,
        }
    }

    /// Work units (macroblocks / MCUs / frames / batches) at full scale,
    /// calibrated so the generated MMX instruction counts reproduce the
    /// Table-3 `#ins` ratios (see EXPERIMENTS.md for the measured
    /// per-unit costs behind these values).
    #[must_use]
    pub const fn units_full(self) -> u64 {
        match self {
            Benchmark::Mpeg2Enc => 70_000,
            Benchmark::Mpeg2Dec => 8_700,
            Benchmark::JpegEnc => 13_800,
            Benchmark::JpegDec => 10_200,
            Benchmark::GsmEnc => 16_100,
            Benchmark::GsmDec => 17_250,
            Benchmark::Mesa => 14_600,
        }
    }

    /// Work units at the given scale (at least 1).
    #[must_use]
    pub fn units(self, scale: f64) -> u64 {
        ((self.units_full() as f64 * scale).round() as u64).max(1)
    }

    /// Build the block-oriented instruction source for this benchmark
    /// as program instance `instance` under `isa` — the interface the
    /// CPU model consumes (and the one frontend producer threads
    /// drive).
    #[must_use]
    pub fn source(self, instance: usize, isa: SimdIsa, spec: &WorkloadSpec) -> Box<dyn InstSource> {
        let units = self.units(spec.scale);
        let seed = spec.seed ^ ((instance as u64) << 8) ^ self as u64;
        match self {
            Benchmark::Mpeg2Enc => Box::new(ChunkSource::new(Mpeg2EncGen::new(
                instance, isa, units, seed,
            ))),
            Benchmark::Mpeg2Dec => Box::new(ChunkSource::new(Mpeg2DecGen::new(
                instance, isa, units, seed,
            ))),
            Benchmark::JpegEnc => Box::new(ChunkSource::new(JpegEncGen::new(
                instance, isa, units, seed,
            ))),
            Benchmark::JpegDec => Box::new(ChunkSource::new(JpegDecGen::new(
                instance, isa, units, seed,
            ))),
            Benchmark::GsmEnc => {
                Box::new(ChunkSource::new(GsmEncGen::new(instance, isa, units, seed)))
            }
            Benchmark::GsmDec => {
                Box::new(ChunkSource::new(GsmDecGen::new(instance, isa, units, seed)))
            }
            Benchmark::Mesa => Box::new(ChunkSource::new(MesaGen::new(instance, isa, units, seed))),
        }
    }

    /// Build the instruction stream for this benchmark as program
    /// instance `instance` under `isa` (a per-instruction view over
    /// [`Benchmark::source`]).
    #[must_use]
    pub fn stream(self, instance: usize, isa: SimdIsa, spec: &WorkloadSpec) -> Box<dyn InstStream> {
        Box::new(BlockStream::new(self.source(instance, isa, spec)))
    }
}

impl core::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Scaling and seeding of a workload run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Fraction of the paper's full-size instruction counts (1.0 ≈ 1.4G
    /// instructions across the suite; the default regenerates every
    /// figure in minutes).
    pub scale: f64,
    /// Base random seed (content + data-dependent branches).
    pub seed: u64,
}

impl WorkloadSpec {
    /// Spec with the given scale and the default seed.
    #[must_use]
    pub fn new(scale: f64) -> Self {
        WorkloadSpec {
            scale,
            seed: 0x5eed_2001,
        }
    }
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec::new(0.002)
    }
}

/// The §5.1 multiprogrammed workload: an unbounded sequence of program
/// slots cycling through [`Benchmark::PAPER_ORDER`].
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    spec: WorkloadSpec,
}

impl Workload {
    /// Build the workload.
    #[must_use]
    pub fn new(spec: WorkloadSpec) -> Self {
        Workload { spec }
    }

    /// The spec in use.
    #[must_use]
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The benchmark run in slot `slot` (cycling past 8, per §5.1: "in
    /// case that no further programs are available, we initiate again
    /// selecting programs from the same list from the beginning").
    #[must_use]
    pub fn slot_benchmark(slot: usize) -> Benchmark {
        Benchmark::PAPER_ORDER[slot % Benchmark::PAPER_ORDER.len()]
    }

    /// Block-oriented instruction source for slot `slot` under `isa`.
    #[must_use]
    pub fn source_for_slot(&self, slot: usize, isa: SimdIsa) -> Box<dyn InstSource> {
        Workload::slot_benchmark(slot).source(slot % 8, isa, &self.spec)
    }

    /// Instruction stream for slot `slot` under `isa`.
    #[must_use]
    pub fn stream_for_slot(&self, slot: usize, isa: SimdIsa) -> Box<dyn InstStream> {
        Workload::slot_benchmark(slot).stream(slot % 8, isa, &self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_order_matches_section_5_1() {
        use Benchmark::*;
        assert_eq!(
            Benchmark::PAPER_ORDER,
            [Mpeg2Enc, GsmDec, Mpeg2Dec, GsmEnc, JpegDec, JpegEnc, Mesa, Mpeg2Dec]
        );
    }

    #[test]
    fn paper_instruction_totals_match_table3() {
        let mmx: f64 = Benchmark::PAPER_ORDER
            .iter()
            .map(|b| b.paper_minsts(SimdIsa::Mmx))
            .sum();
        let mom: f64 = Benchmark::PAPER_ORDER
            .iter()
            .map(|b| b.paper_minsts(SimdIsa::Mom))
            .sum();
        assert!((mmx - 1429.0).abs() < 1.0, "Table 3 total: {mmx}");
        assert!((mom - 1087.0).abs() < 1.5, "Table 3 total: {mom}");
    }

    #[test]
    fn unvectorized_programs_have_equal_counts() {
        assert_eq!(
            Benchmark::Mesa.paper_minsts(SimdIsa::Mmx),
            Benchmark::Mesa.paper_minsts(SimdIsa::Mom)
        );
    }

    #[test]
    fn units_scale_and_floor_at_one() {
        assert_eq!(
            Benchmark::Mpeg2Enc.units(1.0),
            Benchmark::Mpeg2Enc.units_full()
        );
        assert!(Benchmark::GsmDec.units(1e-9) == 1);
        assert!(Benchmark::Mpeg2Enc.units(0.002) > 50);
    }

    #[test]
    fn slots_cycle() {
        assert_eq!(Workload::slot_benchmark(0), Benchmark::Mpeg2Enc);
        assert_eq!(Workload::slot_benchmark(7), Benchmark::Mpeg2Dec);
        assert_eq!(Workload::slot_benchmark(8), Benchmark::Mpeg2Enc);
        assert_eq!(Workload::slot_benchmark(15), Benchmark::Mpeg2Dec);
    }

    #[test]
    fn streams_are_constructible_for_all_benchmarks() {
        use crate::trace::InstStream as _;
        let spec = WorkloadSpec {
            scale: 1e-5,
            seed: 1,
        };
        for b in Benchmark::ALL {
            for isa in SimdIsa::ALL {
                let mut s = b.stream(0, isa, &spec);
                assert!(s.next_inst().is_some(), "{b}/{isa} emits something");
            }
        }
    }

    #[test]
    fn every_table2_field_is_nonempty() {
        for b in Benchmark::ALL {
            assert!(!b.name().is_empty());
            assert!(!b.description().is_empty());
            assert!(!b.data_set().is_empty());
            assert!(!b.characteristics().is_empty());
        }
    }
}
