//! # medsim-workloads — media workload models
//!
//! The HPCA 2001 paper evaluates a multiprogrammed workload approximating
//! an MPEG-4 application: the four MPEG-4 profiles represented by
//! Mediabench programs (§4.1, Table 2):
//!
//! | profile | programs |
//! |---------|----------|
//! | MPEG-4 video | `mpeg2enc`, `mpeg2dec` |
//! | MPEG-4 still image (2D/3D) | `jpegenc`, `jpegdec`, `mesa` |
//! | MPEG-4 audio/speech | `gsmenc`, `gsmdec` |
//!
//! The original study ran Alpha binaries, hand-vectorized with emulation
//! libraries. This crate rebuilds each program as a **program skeleton**:
//! the real kernel algorithms (8×8 DCT, full-search motion estimation,
//! color conversion, GSM LPC/LTP, Huffman coding, a small 3D pipeline)
//! implemented functionally in [`kernels`], and per-benchmark
//! **instruction-trace generators** in [`trace`] that walk the same loop
//! nests over modeled buffers, emitting the genuine address streams and
//! data-dependent branch outcomes, vectorized two ways — MMX-style and
//! MOM-style ([`SimdIsa`]).
//!
//! [`suite`] assembles the paper's 8-program multiprogrammed workload and
//! [`mix`] computes the Table-3 instruction breakdown with the paper's
//! counting rule (a MOM instruction of stream length `L` counts as `L`
//! equivalent instructions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
pub mod layout;
pub mod mix;
pub mod suite;
pub mod trace;

pub use mix::{InstMix, MixBreakdown};
pub use suite::{Benchmark, Workload, WorkloadSpec};
pub use trace::{
    BlockStream, ChunkSource, ChunkedStream, ClampSource, ClampStream, InstSource, InstStream,
    SimdIsa, StreamIter, StreamSource, VecSource, BLOCK_INSTS,
};
