//! Virtual address-space layout of the modeled programs.
//!
//! Each program instance owns a disjoint 4 MiB region of the modeled
//! 128 MiB physical space, so the eight concurrent contexts interfere in
//! the shared caches exactly the way distinct processes do (same cache
//! indices, different tags) rather than aliasing onto the same lines.
//!
//! Inside a region:
//!
//! ```text
//! +0x000000  code        (256 KiB: PCs of the emitted instructions)
//! +0x040000  globals     (tables: quant matrices, VLC tables, …)
//! +0x080000  stack       (grows down from +0x0C0000)
//! +0x0C0000  heap        (frame buffers, planes, audio history, …)
//! ```

/// Size of one program instance's region.
pub const REGION_BYTES: u64 = 4 * 1024 * 1024;
/// Offset of the code segment inside a region.
pub const CODE_OFFSET: u64 = 0;
/// Offset of the global-tables segment.
pub const GLOBALS_OFFSET: u64 = 0x04_0000;
/// Offset of the stack segment.
pub const STACK_OFFSET: u64 = 0x08_0000;
/// Offset of the heap segment.
pub const HEAP_OFFSET: u64 = 0x0C_0000;

/// The address-space layout of one program instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    base: u64,
}

impl Layout {
    /// Layout of program instance `instance` (0-based).
    ///
    /// Region bases are staggered by one L1 capacity (32 KiB) per
    /// instance: placing regions exactly 4 MiB apart (a multiple of the
    /// L2 way size) would make all eight programs collide in the same L2
    /// sets, which no real physical page allocation does. The 32 KiB
    /// stagger spreads the L2 footprints while leaving the genuine
    /// inter-thread interference in the direct-mapped L1 (Table 4's
    /// hit-rate degradation) intact.
    #[must_use]
    pub fn for_instance(instance: usize) -> Self {
        let stagger = instance as u64 * 0x8000;
        Layout {
            base: (instance as u64 + 1) * REGION_BYTES + stagger,
        }
    }

    /// Base address of the region.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Address of code offset `off` (instruction PCs).
    #[must_use]
    pub fn code(&self, off: u64) -> u64 {
        debug_assert!(off < GLOBALS_OFFSET);
        self.base + CODE_OFFSET + off
    }

    /// Address of global-table offset `off`.
    #[must_use]
    pub fn global(&self, off: u64) -> u64 {
        debug_assert!(off < STACK_OFFSET - GLOBALS_OFFSET);
        self.base + GLOBALS_OFFSET + off
    }

    /// Address of stack offset `off` (from the base of the stack area).
    #[must_use]
    pub fn stack(&self, off: u64) -> u64 {
        debug_assert!(off < HEAP_OFFSET - STACK_OFFSET);
        self.base + STACK_OFFSET + off
    }

    /// Address of heap offset `off`.
    #[must_use]
    pub fn heap(&self, off: u64) -> u64 {
        debug_assert!(off < REGION_BYTES - HEAP_OFFSET);
        self.base + HEAP_OFFSET + off
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint() {
        let a = Layout::for_instance(0);
        let b = Layout::for_instance(1);
        assert!(a.base() + REGION_BYTES <= b.base());
    }

    #[test]
    fn eight_instances_fit_in_128mb() {
        let last = Layout::for_instance(7);
        assert!(last.base() + REGION_BYTES <= 128 * 1024 * 1024);
    }

    #[test]
    fn regions_are_not_congruent_modulo_l2_way() {
        // 512 KiB = the 1 MiB 2-way L2's way size.
        let way = 512 * 1024;
        let a = Layout::for_instance(0).base() % way;
        let b = Layout::for_instance(1).base() % way;
        let c = Layout::for_instance(2).base() % way;
        assert_ne!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    fn segments_ordered_within_region() {
        let l = Layout::for_instance(2);
        assert!(l.code(0) < l.global(0));
        assert!(l.global(0) < l.stack(0));
        assert!(l.stack(0) < l.heap(0));
        assert!(l.heap(0) < l.base() + REGION_BYTES);
    }

    #[test]
    fn same_offsets_alias_cache_sets_across_instances() {
        // Different instances produce different addresses that map to the
        // same L1 set (same low bits) — the realistic inter-thread
        // interference pattern.
        let a = Layout::for_instance(0).heap(0x100);
        let b = Layout::for_instance(3).heap(0x100);
        assert_ne!(a, b);
        assert_eq!(a % 32 * 1024, b % 32 * 1024);
    }
}
