//! MPEG-2 encoder and decoder trace generators (the MPEG-4 video
//! profile of the paper's workload).
//!
//! One work unit = one 16×16 macroblock. The generators run the *real*
//! algorithms (full-search motion estimation, DCT, quantization) on
//! synthetic video content at trace-generation time, so motion vectors,
//! coefficient counts and entropy-coding trip counts are genuinely
//! data-dependent.

use super::emitter::Emitter;
use super::scalar_phases as scalar;
use super::simd_kernels as simd;
use super::{ChunkGen, SimdIsa};
use crate::kernels::dct;
use crate::kernels::motion::{self, Plane};
use crate::kernels::quant;
use crate::kernels::zigzag;
use crate::layout::Layout;
use medsim_isa::Inst;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Frame width (SIF, as the paper's MPEG-2 input).
pub const FRAME_W: usize = 352;
/// Frame height.
pub const FRAME_H: usize = 240;
/// Macroblocks per row.
pub const MB_W: usize = FRAME_W / 16;
/// Macroblock rows.
pub const MB_H: usize = FRAME_H / 16;
/// Motion search range (full search ±RANGE).
pub const SEARCH_RANGE: i8 = 2;
/// Macroblock visit stride (coprime with the 99-MB frame).
const MB_STRIDE: usize = 37;

/// Generate a textured video frame; consecutive frames are shifted
/// versions with noise, so motion estimation finds real vectors.
fn synth_frame(seed: u64, phase: usize) -> Plane {
    let mut rng = SmallRng::seed_from_u64(seed ^ (phase as u64).wrapping_mul(0x9e37_79b9));
    let mut p = Plane::new(FRAME_W, FRAME_H, 0);
    for y in 0..FRAME_H {
        for x in 0..FRAME_W {
            let base = ((x + phase * 2) * 7 + y * 13) % 200;
            let noise: usize = rng.gen_range(0..24);
            p.data[y * FRAME_W + x] = (base + noise) as u8;
        }
    }
    p
}

/// Heap offsets of the modeled frame stores.
// Buffer bases are staggered off 32 KiB multiples: real allocators do
// not hand out frame stores congruent modulo the L1 size, and a
// direct-mapped L1 would otherwise ping-pong current/reference rows.
const CUR_OFF: u64 = 0;
const REF_OFF: u64 = 0x1_0820;
const RESID_OFF: u64 = 0x2_1040;
const COEF_OFF: u64 = 0x2_9860;

/// MPEG-2 encoder generator.
pub struct Mpeg2EncGen {
    e: Emitter,
    isa: SimdIsa,
    units_left: u64,
    cur: Plane,
    reference: Plane,
    mb_x: usize,
    mb_y: usize,
    visit: usize,
    frame: usize,
    seed: u64,
    qscale: u16,
}

impl Mpeg2EncGen {
    /// Build a generator for `instance`, emitting `units` macroblocks.
    #[must_use]
    pub fn new(instance: usize, isa: SimdIsa, units: u64, seed: u64) -> Self {
        let layout = Layout::for_instance(instance);
        Mpeg2EncGen {
            e: Emitter::new(layout, seed),
            isa,
            units_left: units,
            cur: synth_frame(seed, 1),
            reference: synth_frame(seed, 0),
            mb_x: 0,
            mb_y: 0,
            visit: 0,
            frame: 1,
            seed,
            qscale: 8,
        }
    }

    fn advance_mb(&mut self) {
        // Visit macroblocks in a strided permutation of the frame: short
        // (scaled-down) runs then cover the same working-set footprint a
        // full-length run would, keeping cache behaviour scale-stable.
        self.visit += 1;
        let n_mb = MB_W * MB_H;
        if self.visit.is_multiple_of(n_mb) {
            self.frame += 1;
            std::mem::swap(&mut self.cur, &mut self.reference);
            self.cur = synth_frame(self.seed, self.frame);
        }
        let lin = (self.visit * MB_STRIDE) % n_mb;
        self.mb_x = lin % MB_W;
        self.mb_y = lin / MB_W;
    }

    fn mb_addr(&self, base_off: u64) -> u64 {
        self.e.layout().heap(base_off) + (self.mb_y * 16 * FRAME_W + self.mb_x * 16) as u64
    }
}

impl ChunkGen for Mpeg2EncGen {
    fn next_chunk(&mut self, out: &mut Vec<Inst>) -> bool {
        if self.units_left == 0 {
            return false;
        }
        self.units_left -= 1;
        let isa = self.isa;
        let (mx, my) = (self.mb_x * 16, self.mb_y * 16);
        let cur_addr = self.mb_addr(CUR_OFF);
        let ref_base = self.mb_addr(REF_OFF);
        let stride = FRAME_W as i64;

        // --- functional: real motion search on the actual frames -------
        let mv = motion::full_search(&self.cur, &self.reference, mx, my, SEARCH_RANGE);
        let resid = motion::residual(&self.cur, &self.reference, mx, my, mv);

        // --- emit: macroblock header + mode decision --------------------
        scalar::header_work(&mut self.e, 4);
        scalar::mode_decision(&mut self.e, 6);

        // --- emit: motion search with partial-distortion screening ------
        // The reference encoder's `dist1` bails out as soon as a
        // candidate exceeds the best SAD so far; we drive the screening
        // with the *real* SAD values of the actual frames, so the mix of
        // full and rejected candidates is data-dependent.
        let cur = &self.cur;
        let reference = &self.reference;
        self.e.call("motion_search", |e| {
            scalar::call_overhead(e, 4);
            let mut best = u32::MAX;
            for dy in -SEARCH_RANGE..=SEARCH_RANGE {
                for dx in -SEARCH_RANGE..=SEARCH_RANGE {
                    let s = motion::sad(
                        cur,
                        mx,
                        my,
                        reference,
                        mx as isize + dx as isize,
                        my as isize + dy as isize,
                        16,
                        16,
                    );
                    let cand = (ref_base as i64 + i64::from(dy) * stride + i64::from(dx)) as u64;
                    // Candidate screening against the running best.
                    e.int_work(4);
                    let rejected = s > best.saturating_mul(5) / 4;
                    e.cond_skip(rejected, 3);
                    if !rejected {
                        simd::sad_16x16(e, isa, cur_addr, cand, stride);
                        // best-SAD bookkeeping: compare + conditional update
                        e.int_work(3);
                        let better = s < best;
                        e.cond_skip(!better, 2);
                        if better {
                            e.int_work(2);
                        }
                    }
                    best = best.min(s);
                }
            }
        });

        // --- emit: half-pel refinement around the winner (scalar: the
        // reference encoder interpolates and compares sample by sample) --
        self.e.call("halfpel", |e| {
            e.loop_n(8, |e, _| {
                e.loop_n(8, |e, k| {
                    let _a = e.load(1, cur_addr + u64::from(k));
                    let _b = e.load(1, (ref_base as i64 + i64::from(k as u8)) as u64);
                    e.int_work(4);
                });
                e.int_work(3);
            });
        });

        // --- emit: input macroblock fetch + boundary handling ------------
        self.e.call("mb_setup", |e| {
            e.int_work(20);
            scalar::bit_unpack(e, 8);
            let edge = e.flip(0.15);
            e.cond_skip(!edge, 4);
            if edge {
                e.int_work(12); // edge padding arithmetic
            }
        });

        // --- emit: residual formation (prediction - current) ------------
        let resid_addr = self.e.layout().heap(RESID_OFF);
        self.e.call("residual", |e| {
            simd::add_residual_16x16(e, isa, ref_base, cur_addr, resid_addr, stride);
        });

        // --- per 8×8 block: DCT, quantize, VLC ----------------------------
        let coef_addr = self.e.layout().heap(COEF_OFF);
        for blk in 0..6usize {
            // Functional: real DCT + quantization of the actual residual
            // (chroma blocks reuse the luma residual quadrants — the
            // chroma planes carry less energy, modeled by a coarser scale).
            let mut block = [0i16; 64];
            let (bx, by) = (blk % 2, (blk / 2) % 2);
            for r in 0..8 {
                for c in 0..8 {
                    block[r * 8 + c] = resid[(by * 8 + r) * 16 + bx * 8 + c];
                }
            }
            let qscale = if blk < 4 {
                self.qscale
            } else {
                self.qscale * 2
            };
            let coef = dct::forward(&block);
            let q = quant::quantize(&coef, &quant::INTRA_MATRIX, qscale);
            let events = zigzag::run_length_encode(&q);
            let bits = crate::kernels::huffman::block_bits(&events);

            let blk_src = resid_addr + (blk as u64) * 128;
            let blk_dst = coef_addr + (blk as u64) * 128;
            self.e.call("fdct", |e| {
                scalar::call_overhead(e, 3);
                simd::dct_8x8(e, isa, blk_src, blk_dst, 16);
            });
            self.e.call("quantize", |e| {
                simd::quant_block(e, isa, blk_dst, blk_dst, e.layout().global(0x100));
            });
            // Entropy coding: scalar work proportional to real nonzeros
            // and real code lengths, plus DC prediction bookkeeping.
            self.e.call("vlc", |e| {
                scalar::vlc_encode_block(e, &events);
                scalar::bit_emit(e, bits);
                scalar::table_walk(e, events.len() / 2 + 1);
                e.int_work(8); // DC prediction + coded-block-pattern update
            });
        }

        // --- rate control once per macroblock row ------------------------
        if self.mb_x == MB_W - 1 {
            scalar::rate_control(&mut self.e);
            self.qscale = (self.qscale + 1).clamp(2, 31);
        }
        scalar::bit_unpack(&mut self.e, 6);

        self.advance_mb();
        self.e.drain_into(out);
        true
    }
}

/// MPEG-2 decoder generator (one unit = one macroblock).
pub struct Mpeg2DecGen {
    e: Emitter,
    isa: SimdIsa,
    units_left: u64,
    cur: Plane,
    reference: Plane,
    mb_x: usize,
    mb_y: usize,
    visit: usize,
    frame: usize,
    seed: u64,
}

impl Mpeg2DecGen {
    /// Build a generator for `instance`, decoding `units` macroblocks.
    #[must_use]
    pub fn new(instance: usize, isa: SimdIsa, units: u64, seed: u64) -> Self {
        let layout = Layout::for_instance(instance);
        Mpeg2DecGen {
            e: Emitter::new(layout, seed ^ 0xdec0de),
            isa,
            units_left: units,
            cur: synth_frame(seed, 1),
            reference: synth_frame(seed, 0),
            mb_x: 0,
            mb_y: 0,
            visit: 0,
            frame: 1,
            seed,
        }
    }

    fn advance_mb(&mut self) {
        // Strided frame coverage; see the encoder's advance_mb.
        self.visit += 1;
        let n_mb = MB_W * MB_H;
        if self.visit.is_multiple_of(n_mb) {
            self.frame += 1;
            std::mem::swap(&mut self.cur, &mut self.reference);
            self.cur = synth_frame(self.seed, self.frame);
        }
        let lin = (self.visit * MB_STRIDE) % n_mb;
        self.mb_x = lin % MB_W;
        self.mb_y = lin / MB_W;
    }
}

impl ChunkGen for Mpeg2DecGen {
    fn next_chunk(&mut self, out: &mut Vec<Inst>) -> bool {
        if self.units_left == 0 {
            return false;
        }
        self.units_left -= 1;
        let isa = self.isa;
        let (mx, my) = (self.mb_x * 16, self.mb_y * 16);
        let stride = FRAME_W as i64;
        let layout = self.e.layout();
        let dst_addr = layout.heap(CUR_OFF) + (my * FRAME_W + mx) as u64;
        let ref_addr = layout.heap(REF_OFF) + (my * FRAME_W + mx) as u64;
        let coef_addr = layout.heap(COEF_OFF);

        // Functional: reconstruct what the encoder would have sent for
        // this macroblock, so VLC trip counts are real.
        let mv = motion::full_search(&self.cur, &self.reference, mx, my, 1);
        let resid = motion::residual(&self.cur, &self.reference, mx, my, mv);

        // Slice/macroblock header decode + motion-vector reconstruction.
        scalar::header_work(&mut self.e, 6);
        scalar::bit_unpack(&mut self.e, 4);
        self.e.call("mv_decode", |e| {
            scalar::bit_consume(e, 24);
            e.int_work(14); // MV prediction, range clamping
        });

        for blk in 0..6usize {
            let mut block = [0i16; 64];
            let (bx, by) = (blk % 2, (blk / 2) % 2);
            for r in 0..8 {
                for c in 0..8 {
                    block[r * 8 + c] = resid[(by * 8 + r) * 16 + bx * 8 + c];
                }
            }
            let coef = dct::forward(&block);
            let q = quant::quantize(&coef, &quant::INTRA_MATRIX, 8);
            let nnz = dct::nonzero_count(&q);
            let bits = crate::kernels::huffman::block_bits(&zigzag::run_length_encode(&q));

            let blk_addr = coef_addr + (blk as u64) * 128;
            // VLC decode: scalar, trip count = real nonzero count, bit
            // consumption = real code lengths.
            self.e.call("vlc_decode", |e| {
                scalar::vlc_decode_block(e, nnz.max(1));
                scalar::bit_consume(e, bits * 2);
                scalar::table_walk(e, nnz / 2 + 1);
                e.int_work(14); // inverse zigzag + mismatch control
            });
            self.e.call("dequant", |e| {
                simd::quant_block(e, isa, blk_addr, blk_addr, e.layout().global(0x100));
            });
            self.e.call("idct", |e| {
                scalar::call_overhead(e, 3);
                simd::dct_8x8(e, isa, blk_addr, blk_addr, 16);
            });
        }

        // Motion compensation + reconstruction.
        let avg = self.frame.is_multiple_of(3); // B-frame-style interpolation sometimes
        self.e.call("mc", |e| {
            simd::mc_block(e, isa, ref_addr, dst_addr, stride, avg);
        });
        self.e.call("recon", |e| {
            simd::add_residual_16x16(e, isa, ref_addr, layout.heap(RESID_OFF), dst_addr, stride);
        });

        self.advance_mb();
        self.e.drain_into(out);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::InstMix;
    use crate::trace::{ChunkedStream, InstStream};

    fn mix_of(mut g: impl ChunkGen, max_units: usize) -> InstMix {
        let mut mix = InstMix::default();
        let mut buf = Vec::new();
        for _ in 0..max_units {
            buf.clear();
            if !g.next_chunk(&mut buf) {
                break;
            }
            for i in &buf {
                mix.record(i);
            }
        }
        mix
    }

    #[test]
    fn encoder_emits_macroblocks_until_done() {
        let mut g = Mpeg2EncGen::new(0, SimdIsa::Mmx, 3, 7);
        let mut buf = Vec::new();
        assert!(g.next_chunk(&mut buf));
        assert!(!buf.is_empty());
        assert!(g.next_chunk(&mut buf));
        assert!(g.next_chunk(&mut buf));
        assert!(!g.next_chunk(&mut buf), "3 units only");
    }

    #[test]
    fn encoder_mom_needs_fewer_raw_instructions() {
        let mmx = mix_of(Mpeg2EncGen::new(0, SimdIsa::Mmx, 5, 7), 5);
        let mom = mix_of(Mpeg2EncGen::new(0, SimdIsa::Mom, 5, 7), 5);
        assert!(
            mom.raw < mmx.raw / 2,
            "MOM raw {} vs MMX raw {}",
            mom.raw,
            mmx.raw
        );
        // Equivalent count also shrinks (Table 3: 642.7 → 364.9).
        assert!(
            mom.total() < mmx.total(),
            "MOM {} vs MMX {}",
            mom.total(),
            mmx.total()
        );
    }

    #[test]
    fn encoder_is_integer_and_simd_heavy() {
        let m = mix_of(Mpeg2EncGen::new(0, SimdIsa::Mmx, 4, 3), 4);
        let b = m.breakdown();
        assert!(b.simd_pct > 10.0, "encoder is vectorized: {b}");
        assert!(b.integer_pct > 25.0, "but protocol overhead remains: {b}");
        assert!(b.fp_pct < 5.0);
    }

    #[test]
    fn decoder_cheaper_than_encoder_per_unit() {
        // Per-unit cost only needs the right ordering; the Table-3 total
        // ratios are set by the per-benchmark unit counts in suite.rs.
        let enc = mix_of(Mpeg2EncGen::new(0, SimdIsa::Mmx, 4, 4), 4);
        let dec = mix_of(Mpeg2DecGen::new(0, SimdIsa::Mmx, 4, 4), 4);
        assert!(
            dec.total() < enc.total(),
            "dec {} vs enc {}",
            dec.total(),
            enc.total()
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = mix_of(Mpeg2EncGen::new(0, SimdIsa::Mmx, 3, 99), 3);
        let b = mix_of(Mpeg2EncGen::new(0, SimdIsa::Mmx, 3, 99), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn stream_adapter_delivers_everything() {
        let g = Mpeg2DecGen::new(1, SimdIsa::Mom, 2, 5);
        let mut s = ChunkedStream::new(g);
        let mut n = 0u64;
        while s.next_inst().is_some() {
            n += 1;
        }
        assert!(n > 500, "two decoded macroblocks are nontrivial: {n}");
    }

    #[test]
    fn addresses_stay_inside_the_instance_region() {
        let mut g = Mpeg2EncGen::new(2, SimdIsa::Mmx, 2, 1);
        let mut buf = Vec::new();
        g.next_chunk(&mut buf);
        let lo = Layout::for_instance(2).base();
        let hi = lo + crate::layout::REGION_BYTES;
        for i in &buf {
            if let Some(m) = i.mem {
                for a in m.elem_addrs() {
                    assert!(
                        a >= lo && a < hi,
                        "address {a:#x} outside [{lo:#x},{hi:#x})"
                    );
                }
            }
        }
    }
}
