//! μ-SIMD kernel emitters, in both vectorizations.
//!
//! Each function emits the instruction sequence a hand-vectorized kernel
//! executes — the MMX flavor with its per-8-bytes loop control, explicit
//! unpack/pack and log-tree reductions; the MOM flavor as stream
//! instructions with packed-accumulator reductions and strided stream
//! memory accesses. Address streams follow the real data layout passed
//! by the caller.

use super::emitter::Emitter;
use super::SimdIsa;
use medsim_isa::prelude::*;

/// Split `groups` 64-bit element groups into stream lengths of at most 16.
pub fn stream_spans(groups: u32) -> impl Iterator<Item = u8> {
    let full = groups / 16;
    let rest = (groups % 16) as u8;
    (0..full).map(|_| 16u8).chain((rest > 0).then_some(rest))
}

/// 16×16 SAD between a current macroblock and a reference candidate.
/// `stride` is the frame row pitch in bytes.
pub fn sad_16x16(e: &mut Emitter, isa: SimdIsa, cur: u64, refp: u64, stride: i64) {
    match isa {
        SimdIsa::Mmx => {
            let acc0 = simd(24);
            let acc1 = simd(25);
            e.mmx_op_into(MmxOp::Pxor, acc0, acc0, acc0);
            e.mmx_op_into(MmxOp::Pxor, acc1, acc1, acc1);
            e.loop_n(16, |e, row| {
                let roff = stride * i64::from(row);
                let c0 = e.mmx_load((cur as i64 + roff) as u64);
                let c1 = e.mmx_load((cur as i64 + roff + 8) as u64);
                let r0 = e.mmx_load((refp as i64 + roff) as u64);
                let r1 = e.mmx_load((refp as i64 + roff + 8) as u64);
                let s0 = e.m.next();
                let s1 = e.m.next();
                e.mmx_op_into(MmxOp::PsadBw, s0, c0, r0);
                e.mmx_op_into(MmxOp::PsadBw, s1, c1, r1);
                e.mmx_op_into(MmxOp::PaddW, acc0, acc0, s0);
                e.mmx_op_into(MmxOp::PaddW, acc1, acc1, s1);
                // address updates for the two row pointers
                e.alui(IntOp::Addi, int(22), int(22), stride as i32);
                e.alui(IntOp::Addi, int(23), int(23), stride as i32);
                // early-exit check against the best SAD so far (the
                // reference encoder's `dist1` bailout — scalar work the
                // stream version fundamentally cannot do)
                e.int_work(2);
                e.cond_skip(false, 2);
            });
            // Final reduction to a scalar.
            e.mmx_op_into(MmxOp::PaddW, acc0, acc0, acc1);
            let red = e.m.next();
            e.mmx_op_into(MmxOp::PredaddW, red, acc0, acc0);
            let dst = e.t.next();
            e.emit(
                Inst::new(Op::Mmx(MmxOp::MovdFromMmx))
                    .with_dst(dst)
                    .with_srcs(&[red]),
            );
        }
        SimdIsa::Mom => {
            // Two 16-group streams (the two 8-byte column halves of the
            // macroblock), accumulated with acc.sad.b.
            e.set_vl(16);
            let a0 = e.mom_load(cur, stride, 16);
            let b0 = e.mom_load(refp, stride, 16);
            e.mom_acc(MomOp::AccSadB, acc(0), a0, b0, 16);
            let a1 = e.mom_load(cur + 8, stride, 16);
            let b1 = e.mom_load(refp + 8, stride, 16);
            e.mom_acc(MomOp::AccSadB, acc(0), a1, b1, 16);
            let red = e.mom_acc_read(MomOp::AccRedAddW, acc(0));
            let dst = e.t.next();
            e.emit(
                Inst::new(Op::Mmx(MmxOp::MovdFromMmx))
                    .with_dst(dst)
                    .with_srcs(&[red]),
            );
        }
    }
}

/// 8×8 forward or inverse DCT on 16-bit samples. `src`/`dst` are 128-byte
/// blocks; `stride` the row pitch in bytes (16 for packed blocks).
pub fn dct_8x8(e: &mut Emitter, isa: SimdIsa, src: u64, dst: u64, stride: i64) {
    match isa {
        SimdIsa::Mmx => {
            let stage = e.layout().stack(0x800);
            // Row pass then column pass; the column pass works on the
            // transposed staging buffer (transpose folded into the passes
            // with unpack/shuffle ops, as real MMX DCTs do).
            for (from, to) in [(src, stage), (stage, dst)] {
                e.loop_n(8, |e, row| {
                    let roff = stride * i64::from(row);
                    let lo = e.mmx_load((from as i64 + roff) as u64);
                    let hi = e.mmx_load((from as i64 + roff + 8) as u64);
                    // Butterfly/multiply network on 4-wide words.
                    let t0 = e.m.next();
                    let t1 = e.m.next();
                    e.mmx_op_into(MmxOp::PaddsW, t0, lo, hi);
                    e.mmx_op_into(MmxOp::PsubsW, t1, lo, hi);
                    let m0 = e.m.next();
                    let m1 = e.m.next();
                    e.mmx_op_into(MmxOp::PmulhW, m0, t0, simd(26));
                    e.mmx_op_into(MmxOp::PmulhW, m1, t1, simd(27));
                    let u0 = e.m.next();
                    e.mmx_op_into(MmxOp::PmaddWd, u0, t0, simd(28));
                    let u1 = e.m.next();
                    e.mmx_op_into(MmxOp::PmaddWd, u1, t1, simd(28));
                    let s0 = e.m.next();
                    let s1 = e.m.next();
                    e.mmx_op_into(MmxOp::PaddsW, s0, m0, m1);
                    e.mmx_op_into(MmxOp::PsraW, s1, s0, s0);
                    let s2 = e.m.next();
                    e.mmx_op_into(MmxOp::PackssDw, s2, u0, u1);
                    // Transpose contribution: unpack/shuffle network (the
                    // part MOM's vtrans subsumes).
                    let x0 = e.m.next();
                    let x1 = e.m.next();
                    let x2 = e.m.next();
                    let x3 = e.m.next();
                    e.mmx_op_into(MmxOp::PunpcklWd, x0, s1, m0);
                    e.mmx_op_into(MmxOp::PunpckhWd, x1, s1, m1);
                    e.mmx_op_into(MmxOp::PunpcklDq, x2, x0, x1);
                    e.mmx_op_into(MmxOp::PunpckhDq, x3, x0, x1);
                    let p = e.m.next();
                    e.mmx_op_into(MmxOp::PshufW, p, x2, x3);
                    e.mmx_store((to as i64 + roff) as u64);
                    e.mmx_store((to as i64 + roff + 8) as u64);
                    e.alui(IntOp::Addi, int(22), int(22), stride as i32);
                });
            }
        }
        SimdIsa::Mom => {
            // The whole 8×8 block of words is 16 element groups: one
            // stream per pass, transposed between passes with vtrans;
            // vector-scalar multiplies fold the coefficient broadcasts.
            e.set_vl(16);
            let rows = e.mom_load(src, stride / 2, 16);
            let c0 = e.mom_op(MomOp::VaddsW, 16);
            let m0 = e.mom_op(MomOp::VmaddWdVs, 16);
            let t = e.v.next();
            e.emit(Inst::mom(MomOp::Vtrans, t, rows, c0, 16));
            let d0 = e.mom_op(MomOp::VmulhWVs, 16);
            let s1 = e.mom_op(MomOp::VsraRndW, 16);
            let _ = (m0, d0, s1);
            e.mom_store(dst, stride / 2, 16);
        }
    }
}

/// Quantize (or dequantize) a 64-coefficient block against a matrix.
pub fn quant_block(e: &mut Emitter, isa: SimdIsa, src: u64, dst: u64, matrix: u64) {
    match isa {
        SimdIsa::Mmx => {
            e.loop_n(16, |e, i| {
                let off = i64::from(i) * 8;
                let c = e.mmx_load((src as i64 + off) as u64);
                let m = e.mmx_load((matrix as i64 + off) as u64);
                // Sign handling: |c|, multiply, shift, clamp, re-sign —
                // the scalar-free rounding dance of MPEG quantizers.
                let sgn = e.m.next();
                e.mmx_op_into(MmxOp::PcmpgtW, sgn, c, simd(31));
                let mag = e.m.next();
                e.mmx_op_into(MmxOp::Pxor, mag, c, sgn);
                let p = e.m.next();
                e.mmx_op_into(MmxOp::PmulhW, p, mag, m);
                let r = e.m.next();
                e.mmx_op_into(MmxOp::PsraW, r, p, p);
                let s = e.m.next();
                e.mmx_op_into(MmxOp::PmaxSw, s, r, simd(29));
                let fin = e.m.next();
                e.mmx_op_into(MmxOp::Pxor, fin, s, sgn);
                e.mmx_store((dst as i64 + off) as u64);
                e.alui(IntOp::Addi, int(22), int(22), 8);
            });
        }
        SimdIsa::Mom => {
            e.set_vl(16);
            let c = e.mom_load(src, 8, 16);
            let m = e.mom_load(matrix, 8, 16);
            let p = e.v.next();
            e.emit(Inst::mom(MomOp::VmulhW, p, c, m, 16));
            let r = e.mom_op(MomOp::VsraRndW, 16);
            let _ = r;
            e.mom_store(dst, 8, 16);
        }
    }
}

/// Motion-compensation average (or plain copy when `avg` is false) of a
/// 16×16 block.
pub fn mc_block(e: &mut Emitter, isa: SimdIsa, src: u64, dst: u64, stride: i64, avg: bool) {
    match isa {
        SimdIsa::Mmx => {
            e.loop_n(16, |e, row| {
                let roff = stride * i64::from(row);
                let s0 = e.mmx_load((src as i64 + roff) as u64);
                let s1 = e.mmx_load((src as i64 + roff + 8) as u64);
                if avg {
                    let d0 = e.mmx_load((dst as i64 + roff) as u64);
                    let d1 = e.mmx_load((dst as i64 + roff + 8) as u64);
                    let a0 = e.m.next();
                    let a1 = e.m.next();
                    e.mmx_op_into(MmxOp::PavgB, a0, s0, d0);
                    e.mmx_op_into(MmxOp::PavgB, a1, s1, d1);
                }
                e.mmx_store((dst as i64 + roff) as u64);
                e.mmx_store((dst as i64 + roff + 8) as u64);
                e.alui(IntOp::Addi, int(22), int(22), stride as i32);
            });
        }
        SimdIsa::Mom => {
            e.set_vl(16);
            for half in [0i64, 8] {
                let s = e.mom_load((src as i64 + half) as u64, stride, 16);
                if avg {
                    let d = e.mom_load((dst as i64 + half) as u64, stride, 16);
                    let a = e.v.next();
                    e.emit(Inst::mom(MomOp::VavgB, a, s, d, 16));
                }
                e.mom_store((dst as i64 + half) as u64, stride, 16);
            }
        }
    }
}

/// Add a residual block to a prediction with saturation (decoder
/// reconstruction): 16 rows of 16 pixels; residuals are 16-bit.
pub fn add_residual_16x16(
    e: &mut Emitter,
    isa: SimdIsa,
    pred: u64,
    resid: u64,
    dst: u64,
    stride: i64,
) {
    match isa {
        SimdIsa::Mmx => {
            e.loop_n(16, |e, row| {
                let roff = stride * i64::from(row);
                let p0 = e.mmx_load((pred as i64 + roff) as u64);
                let p1 = e.mmx_load((pred as i64 + roff + 8) as u64);
                // Unpack pixels to words, add residual, pack back: the
                // classic MMX byte-precision dance.
                let z = simd(31);
                let w0 = e.m.next();
                let w1 = e.m.next();
                let w2 = e.m.next();
                let w3 = e.m.next();
                e.mmx_op_into(MmxOp::PunpcklBw, w0, p0, z);
                e.mmx_op_into(MmxOp::PunpckhBw, w1, p0, z);
                e.mmx_op_into(MmxOp::PunpcklBw, w2, p1, z);
                e.mmx_op_into(MmxOp::PunpckhBw, w3, p1, z);
                let r0 = e.mmx_load((resid as i64 + 2 * roff) as u64);
                let r1 = e.mmx_load((resid as i64 + 2 * roff + 8) as u64);
                let r2 = e.mmx_load((resid as i64 + 2 * roff + 16) as u64);
                let r3 = e.mmx_load((resid as i64 + 2 * roff + 24) as u64);
                e.mmx_op_into(MmxOp::PaddsW, w0, w0, r0);
                e.mmx_op_into(MmxOp::PaddsW, w1, w1, r1);
                e.mmx_op_into(MmxOp::PaddsW, w2, w2, r2);
                e.mmx_op_into(MmxOp::PaddsW, w3, w3, r3);
                let o0 = e.m.next();
                let o1 = e.m.next();
                e.mmx_op_into(MmxOp::PackusWb, o0, w0, w1);
                e.mmx_op_into(MmxOp::PackusWb, o1, w2, w3);
                e.mmx_store((dst as i64 + roff) as u64);
                e.mmx_store((dst as i64 + roff + 8) as u64);
                e.alui(IntOp::Addi, int(22), int(22), stride as i32);
            });
        }
        SimdIsa::Mom => {
            // Residuals as word streams (32 groups = 2 streams), added and
            // clipped to bytes without explicit unpacking thanks to the
            // clip/select stream ops.
            for (i, span) in stream_spans(32).enumerate() {
                e.set_vl(span);
                let off = (i as i64) * 16 * 16; // 16 groups × 16-byte rows of residual
                let p = e.mom_load((pred as i64 + off / 2) as u64, stride, span);
                let r = e.mom_load((resid as i64 + off) as u64, stride * 2, span);
                let s = e.v.next();
                e.emit(Inst::mom(MomOp::VaddsW, s, p, r, span));
                let c = e.mom_op(MomOp::VclipUb, span);
                let _ = c;
                e.mom_store((dst as i64 + off / 2) as u64, stride, span);
            }
        }
    }
}

/// Planar color conversion of `pixels` samples (one coefficient pass:
/// out = clip((a·c1 + b·c2) >> s)). Emitted per plane-pair.
pub fn color_convert(e: &mut Emitter, isa: SimdIsa, src_a: u64, src_b: u64, dst: u64, pixels: u32) {
    match isa {
        SimdIsa::Mmx => {
            let chunks = pixels / 8;
            e.loop_n(chunks, |e, i| {
                let off = i64::from(i) * 8;
                let pa = e.mmx_load((src_a as i64 + off) as u64);
                let pb = e.mmx_load((src_b as i64 + off) as u64);
                let z = simd(31);
                let la = e.m.next();
                let ha = e.m.next();
                let lb = e.m.next();
                let hb = e.m.next();
                e.mmx_op_into(MmxOp::PunpcklBw, la, pa, z);
                e.mmx_op_into(MmxOp::PunpckhBw, ha, pa, z);
                e.mmx_op_into(MmxOp::PunpcklBw, lb, pb, z);
                e.mmx_op_into(MmxOp::PunpckhBw, hb, pb, z);
                e.mmx_op_into(MmxOp::PmullW, la, la, simd(26));
                e.mmx_op_into(MmxOp::PmullW, ha, ha, simd(26));
                e.mmx_op_into(MmxOp::PmullW, lb, lb, simd(27));
                e.mmx_op_into(MmxOp::PmullW, hb, hb, simd(27));
                e.mmx_op_into(MmxOp::PaddsW, la, la, lb);
                e.mmx_op_into(MmxOp::PaddsW, ha, ha, hb);
                e.mmx_op_into(MmxOp::PsraW, la, la, la);
                e.mmx_op_into(MmxOp::PsraW, ha, ha, ha);
                let o = e.m.next();
                e.mmx_op_into(MmxOp::PackusWb, o, la, ha);
                e.mmx_store((dst as i64 + off) as u64);
                e.alui(IntOp::Addi, int(22), int(22), 8);
            });
        }
        SimdIsa::Mom => {
            let groups = pixels / 8;
            for (i, span) in stream_spans(groups).enumerate() {
                e.set_vl(span);
                let off = (i as i64) * 16 * 8;
                let a = e.mom_load((src_a as i64 + off) as u64, 8, span);
                let b = e.mom_load((src_b as i64 + off) as u64, 8, span);
                let sa = e.v.next();
                e.emit(Inst::mom(MomOp::VscaleW, sa, a, b, span));
                let sum = e.mom_op(MomOp::VaddsW, span);
                let clip = e.mom_op(MomOp::VclipUb, span);
                let _ = (sum, clip);
                e.mom_store((dst as i64 + off) as u64, 8, span);
            }
        }
    }
}

/// Multiply-accumulate dot product of `len` 16-bit samples at `a` and
/// `b` (autocorrelation lag, LTP cross-correlation). Result reduced to a
/// scalar.
pub fn mac_reduce(e: &mut Emitter, isa: SimdIsa, a: u64, b: u64, len: u32) {
    let groups = len.div_ceil(4); // 4 words per 64-bit group
    match isa {
        SimdIsa::Mmx => {
            let accr = simd(24);
            e.mmx_op_into(MmxOp::Pxor, accr, accr, accr);
            e.loop_n(groups, |e, i| {
                let off = i64::from(i) * 8;
                let xa = e.mmx_load((a as i64 + off) as u64);
                let xb = e.mmx_load((b as i64 + off) as u64);
                let p = e.m.next();
                e.mmx_op_into(MmxOp::PmaddWd, p, xa, xb);
                e.mmx_op_into(MmxOp::PaddD, accr, accr, p);
                e.alui(IntOp::Addi, int(22), int(22), 8);
            });
            let red = e.m.next();
            e.mmx_op_into(MmxOp::PredaddD, red, accr, accr);
            let dst = e.t.next();
            e.emit(
                Inst::new(Op::Mmx(MmxOp::MovdFromMmx))
                    .with_dst(dst)
                    .with_srcs(&[red]),
            );
        }
        SimdIsa::Mom => {
            for (i, span) in stream_spans(groups).enumerate() {
                e.set_vl(span);
                let off = (i as i64) * 16 * 8;
                let xa = e.mom_load((a as i64 + off) as u64, 8, span);
                let xb = e.mom_load((b as i64 + off) as u64, 8, span);
                e.mom_acc(MomOp::AccMaddWd, acc(0), xa, xb, span);
            }
            let red = e.mom_acc_read(MomOp::AccRedAddD, acc(0));
            let dst = e.t.next();
            e.emit(
                Inst::new(Op::Mmx(MmxOp::MovdFromMmx))
                    .with_dst(dst)
                    .with_srcs(&[red]),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;
    use crate::mix::InstMix;

    fn run(_isa: SimdIsa, f: impl FnOnce(&mut Emitter)) -> InstMix {
        let mut e = Emitter::new(Layout::for_instance(0), 1);
        f(&mut e);
        let mut mix = InstMix::default();
        for i in e.take() {
            mix.record(&i);
        }
        mix
    }

    #[test]
    fn stream_spans_partition() {
        let spans: Vec<u8> = stream_spans(40).collect();
        assert_eq!(spans, vec![16, 16, 8]);
        assert_eq!(stream_spans(16).collect::<Vec<_>>(), vec![16]);
        assert_eq!(stream_spans(0).count(), 0);
        assert_eq!(stream_spans(3).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn sad_mom_uses_far_fewer_raw_instructions() {
        let mmx = run(SimdIsa::Mmx, |e| {
            sad_16x16(e, SimdIsa::Mmx, 0x40_0000, 0x44_0000, 176)
        });
        let mom = run(SimdIsa::Mom, |e| {
            sad_16x16(e, SimdIsa::Mom, 0x40_0000, 0x44_0000, 176)
        });
        assert!(
            mom.raw * 10 < mmx.raw,
            "MOM {} vs MMX {} raw",
            mom.raw,
            mmx.raw
        );
        // Equivalent memory: MMX does 64 loads; MOM 64 element accesses.
        assert_eq!(mmx.memory, 64);
        assert_eq!(mom.memory, 64);
        // SIMD-arithmetic equivalent shrinks via the accumulator.
        assert!(
            mom.simd < mmx.simd / 2 + 4,
            "MOM simd {} vs MMX {}",
            mom.simd,
            mmx.simd
        );
        // Loop overhead disappears.
        assert!(mom.integer < mmx.integer / 8);
    }

    #[test]
    fn sad_addresses_follow_rows() {
        let mut e = Emitter::new(Layout::for_instance(0), 1);
        sad_16x16(&mut e, SimdIsa::Mmx, 0x40_0000, 0x44_0000, 176);
        let insts = e.take();
        let loads: Vec<u64> = insts.iter().filter_map(|i| i.mem.map(|m| m.addr)).collect();
        assert_eq!(loads[0], 0x40_0000);
        assert_eq!(loads[1], 0x40_0008);
        assert_eq!(loads[2], 0x44_0000);
        // next row
        assert_eq!(loads[4], 0x40_0000 + 176);
    }

    #[test]
    fn mom_sad_strides_are_frame_pitch() {
        let mut e = Emitter::new(Layout::for_instance(0), 1);
        sad_16x16(&mut e, SimdIsa::Mom, 0x40_0000, 0x44_0000, 176);
        let insts = e.take();
        let streams: Vec<_> = insts.iter().filter_map(|i| i.mem).collect();
        assert_eq!(streams.len(), 4);
        assert!(streams.iter().all(|m| m.stride == 176 && m.count == 16));
    }

    #[test]
    fn dct_block_shapes() {
        let mmx = run(SimdIsa::Mmx, |e| {
            dct_8x8(e, SimdIsa::Mmx, 0x40_0000, 0x41_0000, 16)
        });
        let mom = run(SimdIsa::Mom, |e| {
            dct_8x8(e, SimdIsa::Mom, 0x40_0000, 0x41_0000, 16)
        });
        assert_eq!(mmx.memory, 64, "2 passes × 8 rows × (2 ld + 2 st)");
        assert_eq!(mom.memory, 32, "one stream load + one store of 16 groups");
        assert!(mom.raw < mmx.raw / 10);
    }

    #[test]
    fn quant_block_shapes() {
        let mmx = run(SimdIsa::Mmx, |e| {
            quant_block(e, SimdIsa::Mmx, 0x0, 0x100, 0x200)
        });
        let mom = run(SimdIsa::Mom, |e| {
            quant_block(e, SimdIsa::Mom, 0x0, 0x100, 0x200)
        });
        assert_eq!(mmx.memory, 48);
        assert_eq!(mom.memory, 48);
        assert!(mom.integer < mmx.integer / 4, "loop overhead gone");
    }

    #[test]
    fn mac_reduce_handles_non_multiple_lengths() {
        // 160 samples = 40 groups = spans 16,16,8
        let mom = run(SimdIsa::Mom, |e| {
            mac_reduce(e, SimdIsa::Mom, 0x0, 0x1000, 160)
        });
        assert_eq!(mom.memory, 80, "two streams of 40 groups");
        let mmx = run(SimdIsa::Mmx, |e| {
            mac_reduce(e, SimdIsa::Mmx, 0x0, 0x1000, 160)
        });
        assert_eq!(mmx.memory, 80);
    }

    #[test]
    fn mc_copy_vs_avg() {
        let copy = run(SimdIsa::Mmx, |e| {
            mc_block(e, SimdIsa::Mmx, 0x0, 0x4000, 176, false)
        });
        let avg = run(SimdIsa::Mmx, |e| {
            mc_block(e, SimdIsa::Mmx, 0x0, 0x4000, 176, true)
        });
        assert!(
            avg.memory > copy.memory,
            "averaging reads the destination too"
        );
        assert!(avg.simd > copy.simd);
    }

    #[test]
    fn add_residual_mmx_has_unpack_pack_overhead() {
        let mmx = run(SimdIsa::Mmx, |e| {
            add_residual_16x16(e, SimdIsa::Mmx, 0x0, 0x4000, 0x8000, 176)
        });
        let mom = run(SimdIsa::Mom, |e| {
            add_residual_16x16(e, SimdIsa::Mom, 0x0, 0x4000, 0x8000, 176)
        });
        // The MMX unpack/pack dance costs ~10 SIMD ops per row.
        assert!(mmx.simd > mom.simd, "MMX {} vs MOM {}", mmx.simd, mom.simd);
    }

    #[test]
    fn color_convert_scales_with_pixels() {
        let small = run(SimdIsa::Mmx, |e| {
            color_convert(e, SimdIsa::Mmx, 0x0, 0x1000, 0x2000, 64)
        });
        let large = run(SimdIsa::Mmx, |e| {
            color_convert(e, SimdIsa::Mmx, 0x0, 0x1000, 0x2000, 128)
        });
        assert!(large.total() > small.total() * 3 / 2);
    }
}
