//! JPEG encoder and decoder trace generators (the MPEG-4 2D still-image
//! profile).
//!
//! One work unit = one 16×16 MCU (4 luma + 2 chroma blocks in 4:2:0).
//! The encoder color-converts, subsamples, transforms and entropy-codes
//! real synthetic image content; the decoder inverts the path. JPEG's
//! Huffman coding is the benchmark's dominant scalar phase — real
//! `cjpeg`/`djpeg` spend most of their non-kernel time there.

use super::emitter::Emitter;
use super::scalar_phases as scalar;
use super::simd_kernels as simd;
use super::{ChunkGen, SimdIsa};
use crate::kernels::color::{self, RgbImage};
use crate::kernels::dct;
use crate::kernels::quant;
use crate::kernels::zigzag;
use crate::layout::Layout;
use medsim_isa::Inst;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Image width (pixels).
pub const IMG_W: usize = 256;
/// Image height.
pub const IMG_H: usize = 192;
/// MCUs per row.
pub const MCU_W: usize = IMG_W / 16;
/// MCU rows.
pub const MCU_H: usize = IMG_H / 16;

// Staggered off 32 KiB multiples (see mpeg2_gen.rs).
const RGB_OFF: u64 = 0;
const Y_OFF: u64 = 0x4_0820;
const C_OFF: u64 = 0x5_1040;
const COEF_OFF: u64 = 0x6_1860;

fn synth_image(seed: u64) -> RgbImage {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut data = vec![0u8; IMG_W * IMG_H * 3];
    for y in 0..IMG_H {
        for x in 0..IMG_W {
            let o = (y * IMG_W + x) * 3;
            data[o] = (((x * 5 + y) % 256) as u8).wrapping_add(rng.gen_range(0..16));
            data[o + 1] = (((x + y * 3) % 256) as u8).wrapping_add(rng.gen_range(0..16));
            data[o + 2] = ((x * y / 64 % 256) as u8).wrapping_add(rng.gen_range(0..16));
        }
    }
    RgbImage {
        data,
        width: IMG_W,
        height: IMG_H,
    }
}

/// Pull the 8×8 luma block at (bx, by) out of the converted image.
fn luma_block(y_plane: &[u8], bx: usize, by: usize) -> [i16; 64] {
    let mut b = [0i16; 64];
    for r in 0..8 {
        for c in 0..8 {
            let (px, py) = ((bx * 8 + c).min(IMG_W - 1), (by * 8 + r).min(IMG_H - 1));
            b[r * 8 + c] = i16::from(y_plane[py * IMG_W + px]) - 128;
        }
    }
    b
}

/// Shared per-MCU functional analysis: the six quantized blocks.
fn mcu_blocks(ycc: &color::Ycbcr420, mcu_x: usize, mcu_y: usize) -> Vec<[i16; 64]> {
    let mut blocks = Vec::with_capacity(6);
    for blk in 0..4 {
        let bx = mcu_x * 2 + blk % 2;
        let by = mcu_y * 2 + blk / 2;
        blocks.push(luma_block(&ycc.y, bx, by));
    }
    // Chroma blocks: 8×8 at half resolution.
    for plane in [&ycc.cb, &ycc.cr] {
        let mut b = [0i16; 64];
        let cw = IMG_W / 2;
        for r in 0..8 {
            for c in 0..8 {
                let (px, py) = (
                    (mcu_x * 8 + c).min(cw - 1),
                    (mcu_y * 8 + r).min(IMG_H / 2 - 1),
                );
                b[r * 8 + c] = i16::from(plane[py * cw + px]) - 128;
            }
        }
        blocks.push(b);
    }
    blocks
}

/// JPEG encoder generator.
pub struct JpegEncGen {
    e: Emitter,
    isa: SimdIsa,
    units_left: u64,
    ycc: color::Ycbcr420,
    mcu_x: usize,
    mcu_y: usize,
    visit: usize,
}

impl JpegEncGen {
    /// Build a generator for `instance`, encoding `units` MCUs.
    #[must_use]
    pub fn new(instance: usize, isa: SimdIsa, units: u64, seed: u64) -> Self {
        let img = synth_image(seed);
        JpegEncGen {
            e: Emitter::new(Layout::for_instance(instance), seed ^ 0x1be6),
            isa,
            units_left: units,
            ycc: color::convert_420(&img),
            mcu_x: 0,
            mcu_y: 0,
            visit: 0,
        }
    }

    fn advance(&mut self) {
        // Strided image coverage keeps the working set scale-stable
        // (see mpeg2_gen::Mpeg2EncGen::advance_mb).
        self.visit += 1;
        let n = MCU_W * MCU_H;
        let lin = (self.visit * 29) % n;
        self.mcu_x = lin % MCU_W;
        self.mcu_y = lin / MCU_W;
    }
}

impl ChunkGen for JpegEncGen {
    fn next_chunk(&mut self, out: &mut Vec<Inst>) -> bool {
        if self.units_left == 0 {
            return false;
        }
        self.units_left -= 1;
        let isa = self.isa;
        let layout = self.e.layout();
        let rgb = layout.heap(RGB_OFF) + ((self.mcu_y * 16 * IMG_W + self.mcu_x * 16) * 3) as u64;
        let yb = layout.heap(Y_OFF) + (self.mcu_y * 16 * IMG_W + self.mcu_x * 16) as u64;
        let cb = layout.heap(C_OFF) + (self.mcu_y * 8 * IMG_W / 2 + self.mcu_x * 8) as u64;

        // --- color conversion + subsampling (vectorized) ----------------
        self.e.call("color_convert", |e| {
            scalar::call_overhead(e, 3);
            // Three coefficient passes (Y, Cb, Cr) over the 256-pixel MCU.
            simd::color_convert(e, isa, rgb, rgb + 0x100, yb, 256);
            simd::color_convert(e, isa, rgb, rgb + 0x200, cb, 128);
            simd::color_convert(e, isa, rgb + 0x100, rgb + 0x200, cb + 0x40, 128);
            // Subsampling averaging is folded into the chroma passes;
            // the row bookkeeping is scalar.
            e.int_work(8);
        });

        // --- per-block transform + entropy coding ------------------------
        let blocks = mcu_blocks(&self.ycc, self.mcu_x, self.mcu_y);
        let coef_addr = layout.heap(COEF_OFF);
        for (blk, block) in blocks.iter().enumerate() {
            let coef = dct::forward(block);
            let q = quant::quantize(&coef, &quant::INTRA_MATRIX, 4);
            let events = zigzag::run_length_encode(&q);
            let bits = crate::kernels::huffman::block_bits(&events);

            let blk_addr = coef_addr + (blk as u64) * 128;
            self.e.call("fdct", |e| {
                scalar::call_overhead(e, 3);
                simd::dct_8x8(e, isa, blk_addr, blk_addr, 16);
            });
            // libjpeg quantizes scalar coefficient-by-coefficient (the
            // emulation libraries never vectorized it).
            self.e.call("quantize", |e| {
                scalar::scalar_quant_block(e, blk_addr, blk_addr + 0x80);
            });
            // Huffman coding dominates cjpeg: per-event table work, the
            // bit-serial sink driven by the real code lengths, DC
            // prediction and category coding.
            self.e.call("huffman", |e| {
                scalar::vlc_encode_block(e, &events);
                scalar::bit_emit(e, bits * 2);
                scalar::table_walk(e, events.len() + 2);
                scalar::bit_unpack(e, events.len() / 2 + 2);
                e.int_work(12); // DC prediction + category/magnitude coding
            });
        }
        // Marker/buffer management + destination-manager bookkeeping.
        scalar::header_work(&mut self.e, 5);
        scalar::table_walk(&mut self.e, 6);
        scalar::bit_unpack(&mut self.e, 10);

        self.advance();
        self.e.drain_into(out);
        true
    }
}

/// JPEG decoder generator.
pub struct JpegDecGen {
    e: Emitter,
    isa: SimdIsa,
    units_left: u64,
    ycc: color::Ycbcr420,
    mcu_x: usize,
    mcu_y: usize,
    visit: usize,
}

impl JpegDecGen {
    /// Build a generator for `instance`, decoding `units` MCUs.
    #[must_use]
    pub fn new(instance: usize, isa: SimdIsa, units: u64, seed: u64) -> Self {
        let img = synth_image(seed);
        JpegDecGen {
            e: Emitter::new(Layout::for_instance(instance), seed ^ 0xdec1),
            isa,
            units_left: units,
            ycc: color::convert_420(&img),
            mcu_x: 0,
            mcu_y: 0,
            visit: 0,
        }
    }

    fn advance(&mut self) {
        // Strided image coverage keeps the working set scale-stable
        // (see mpeg2_gen::Mpeg2EncGen::advance_mb).
        self.visit += 1;
        let n = MCU_W * MCU_H;
        let lin = (self.visit * 29) % n;
        self.mcu_x = lin % MCU_W;
        self.mcu_y = lin / MCU_W;
    }
}

impl ChunkGen for JpegDecGen {
    fn next_chunk(&mut self, out: &mut Vec<Inst>) -> bool {
        if self.units_left == 0 {
            return false;
        }
        self.units_left -= 1;
        let isa = self.isa;
        let layout = self.e.layout();
        let rgb = layout.heap(RGB_OFF) + ((self.mcu_y * 16 * IMG_W + self.mcu_x * 16) * 3) as u64;
        let yb = layout.heap(Y_OFF) + (self.mcu_y * 16 * IMG_W + self.mcu_x * 16) as u64;
        let coef_addr = layout.heap(COEF_OFF);

        let blocks = mcu_blocks(&self.ycc, self.mcu_x, self.mcu_y);
        for (blk, block) in blocks.iter().enumerate() {
            let coef = dct::forward(block);
            let q = quant::quantize(&coef, &quant::INTRA_MATRIX, 4);
            let nnz = dct::nonzero_count(&q);
            let bits = crate::kernels::huffman::block_bits(&zigzag::run_length_encode(&q));

            let blk_addr = coef_addr + (blk as u64) * 128;
            self.e.call("huffman_decode", |e| {
                scalar::vlc_decode_block(e, nnz.max(1));
                scalar::bit_consume(e, bits * 2);
                scalar::table_walk(e, nnz / 2 + 1);
                e.int_work(10); // DC prediction + inverse zigzag
            });
            self.e.call("dequant", |e| {
                scalar::scalar_quant_block(e, blk_addr, blk_addr + 0x80);
            });
            self.e.call("idct", |e| {
                scalar::call_overhead(e, 3);
                simd::dct_8x8(e, isa, blk_addr, blk_addr, 16);
            });
        }

        // Upsample + color conversion back to RGB.
        self.e.call("color_out", |e| {
            simd::color_convert(e, isa, yb, yb + 0x80, rgb, 256);
            simd::color_convert(e, isa, yb, yb + 0x100, rgb + 0x100, 128);
            e.int_work(8);
        });
        scalar::header_work(&mut self.e, 3);

        self.advance();
        self.e.drain_into(out);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::InstMix;

    fn mix_of(mut g: impl ChunkGen, units: usize) -> InstMix {
        let mut mix = InstMix::default();
        let mut buf = Vec::new();
        for _ in 0..units {
            buf.clear();
            if !g.next_chunk(&mut buf) {
                break;
            }
            for i in &buf {
                mix.record(i);
            }
        }
        mix
    }

    #[test]
    fn encoder_and_decoder_terminate() {
        let mut g = JpegEncGen::new(0, SimdIsa::Mmx, 2, 3);
        let mut buf = Vec::new();
        assert!(g.next_chunk(&mut buf));
        assert!(g.next_chunk(&mut buf));
        assert!(!g.next_chunk(&mut buf));
    }

    #[test]
    fn encoder_mix_is_plausible() {
        let m = mix_of(JpegEncGen::new(0, SimdIsa::Mmx, 4, 3), 4);
        let b = m.breakdown();
        assert!(b.simd_pct > 8.0, "{b}");
        assert!(b.integer_pct > 30.0, "{b}");
        assert!(b.memory_pct > 10.0, "{b}");
    }

    #[test]
    fn mom_reduction_moderate_for_jpeg() {
        // Table 3: 160.3 → 135.8 (≈0.85): elementwise kernels shrink less
        // than reduction kernels.
        let mmx = mix_of(JpegEncGen::new(0, SimdIsa::Mmx, 6, 3), 6);
        let mom = mix_of(JpegEncGen::new(0, SimdIsa::Mom, 6, 3), 6);
        let ratio = mom.total() as f64 / mmx.total() as f64;
        assert!(ratio > 0.6 && ratio < 1.0, "ratio {ratio}");
    }

    #[test]
    fn decoder_is_scalar_heavier_than_encoder() {
        let enc = mix_of(JpegEncGen::new(0, SimdIsa::Mmx, 4, 3), 4);
        let dec = mix_of(JpegDecGen::new(0, SimdIsa::Mmx, 4, 3), 4);
        let enc_b = enc.breakdown();
        let dec_b = dec.breakdown();
        assert!(dec_b.total_insts < enc_b.total_insts);
    }

    #[test]
    fn deterministic() {
        let a = mix_of(JpegDecGen::new(0, SimdIsa::Mom, 3, 11), 3);
        let b = mix_of(JpegDecGen::new(0, SimdIsa::Mom, 3, 11), 3);
        assert_eq!(a, b);
    }
}
