//! GSM 06.10 encoder and decoder trace generators (the MPEG-4 speech
//! profile).
//!
//! One work unit = one 20 ms speech frame (160 samples). Following the
//! paper's emulation-library coverage, only the LPC **autocorrelation**
//! is vectorized in the encoder (the LTP search's data-dependent maximum
//! tracking keeps it scalar), giving GSM the modest MOM benefit Table 3
//! shows (177.9 → 161.3); the decoder's recursive synthesis filter is
//! fundamentally scalar, so `gsmdec` is identical under both ISAs
//! (105.2 ≈ 105.0).

use super::emitter::Emitter;
use super::scalar_phases as scalar;
use super::simd_kernels as simd;
use super::{ChunkGen, SimdIsa};
use crate::kernels::gsm;
use crate::layout::Layout;
use medsim_isa::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SAMPLES_OFF: u64 = 0;
const HISTORY_OFF: u64 = 0x1000;
const COEF_OFF: u64 = 0x2000;

/// Synthesize one voiced-ish speech frame.
fn synth_speech(seed: u64, frame: usize) -> Vec<i16> {
    let mut rng = SmallRng::seed_from_u64(seed ^ (frame as u64).wrapping_mul(0x5851_f42d));
    let period = 40 + (frame % 5) * 10;
    (0..gsm::FRAME_SAMPLES)
        .map(|i| {
            let phase = (i % period) as f64 / period as f64;
            let tone = (4000.0 * (2.0 * std::f64::consts::PI * phase).sin()) as i16;
            tone.saturating_add(rng.gen_range(-500..500))
        })
        .collect()
}

/// Scalar saturating-arithmetic filter pass over `n` samples with
/// `taps` taps: the `gsm_mult`/`gsm_add` helper-call pattern that
/// dominates the reference coder.
fn scalar_filter(e: &mut Emitter, base: u64, n: usize, taps: usize) {
    e.loop_n(n as u32, |e, i| {
        let _x = e.load(2, base + u64::from(i) * 2);
        for _ in 0..taps {
            e.int_work(3); // mult + saturation check + add
        }
        e.store(2, base + 0x800 + u64::from(i) * 2);
    });
}

/// GSM encoder generator.
pub struct GsmEncGen {
    e: Emitter,
    isa: SimdIsa,
    units_left: u64,
    frame: usize,
    seed: u64,
}

impl GsmEncGen {
    /// Build a generator for `instance`, encoding `units` frames.
    #[must_use]
    pub fn new(instance: usize, isa: SimdIsa, units: u64, seed: u64) -> Self {
        GsmEncGen {
            e: Emitter::new(Layout::for_instance(instance), seed ^ 0x65e0),
            isa,
            units_left: units,
            frame: 0,
            seed,
        }
    }
}

impl ChunkGen for GsmEncGen {
    fn next_chunk(&mut self, out: &mut Vec<Inst>) -> bool {
        if self.units_left == 0 {
            return false;
        }
        self.units_left -= 1;
        let isa = self.isa;
        let layout = self.e.layout();
        let samples = synth_speech(self.seed, self.frame);
        let samp_addr = layout.heap(SAMPLES_OFF);
        let hist_addr = layout.heap(HISTORY_OFF);

        // --- preprocessing: offset compensation + preemphasis (scalar) --
        self.e.call("preprocess", |e| {
            scalar_filter(e, samp_addr, gsm::FRAME_SAMPLES, 2);
        });

        // --- LPC autocorrelation (the vectorized kernel) ------------------
        self.e.call("autocorr", |e| {
            scalar::call_overhead(e, 4);
            for lag in 0..=gsm::LPC_ORDER as u64 {
                simd::mac_reduce(
                    e,
                    isa,
                    samp_addr,
                    samp_addr + lag * 2,
                    gsm::FRAME_SAMPLES as u32,
                );
                e.int_work(2);
            }
        });

        // --- Schur recursion (scalar, division-heavy) ----------------------
        let acf = gsm::autocorrelation(&samples, gsm::LPC_ORDER);
        // The functional coefficients keep the model honest (bounded,
        // deterministic) even though the trace only needs their count.
        let refl = gsm::reflection_coefficients(&acf);
        debug_assert_eq!(refl.len(), gsm::LPC_ORDER);
        self.e.call("schur", |e| {
            for _ in 0..gsm::LPC_ORDER {
                e.alu(IntOp::Div, int(5), int(6), int(7));
                e.int_work(8);
            }
            for i in 0..gsm::LPC_ORDER as u64 {
                e.store(2, layout.heap(COEF_OFF) + i * 2);
            }
        });

        // --- short-term analysis filtering (scalar lattice) ----------------
        self.e.call("st_analysis", |e| {
            scalar_filter(e, samp_addr, gsm::FRAME_SAMPLES, gsm::LPC_ORDER / 2);
        });

        // --- per subframe: LTP search (scalar: data-dependent max) + RPE ---
        for sub in 0..4usize {
            let sub_off = samp_addr + (sub * gsm::SUBFRAME_SAMPLES * 2) as u64;
            let sub_samples =
                &samples[sub * gsm::SUBFRAME_SAMPLES..(sub + 1) * gsm::SUBFRAME_SAMPLES];
            let (lag, _corr) = gsm::ltp_search(sub_samples, &samples, 80);
            self.e.call("ltp_search", |e| {
                // Reduced lag grid (step 5) with scalar correlation + max
                // tracking — the reference coder's data-dependent loop.
                e.loop_n(9, |e, li| {
                    let lag_addr = hist_addr + u64::from(li) * 5 * 2;
                    e.loop_n(10, |e, k| {
                        let _a = e.load(2, sub_off + u64::from(k) * 8);
                        let _b = e.load(2, lag_addr + u64::from(k) * 8);
                        e.int_work(3);
                    });
                    // max update
                    e.int_work(2);
                    let better = e.flip(0.3);
                    e.cond_skip(!better, 2);
                    if better {
                        e.int_work(2);
                    }
                });
            });
            let _ = lag;
            // RPE grid selection + quantization (scalar).
            let residual: Vec<i16> = sub_samples.to_vec();
            let (_grid, levels) = gsm::rpe_encode(&residual);
            self.e.call("rpe", |e| {
                e.loop_n(4, |e, g| {
                    let g_addr = sub_off + u64::from(g) * 2;
                    e.loop_n(13, |e, k| {
                        let _s = e.load(2, g_addr + u64::from(k) * 6);
                        e.int_work(2);
                    });
                });
                for _ in 0..levels.len() {
                    e.int_work(3);
                }
            });
        }

        // --- bit packing --------------------------------------------------
        scalar::bit_unpack(&mut self.e, 76); // 76 coded parameters per frame

        self.frame += 1;
        self.e.drain_into(out);
        true
    }
}

/// GSM decoder generator.
pub struct GsmDecGen {
    e: Emitter,
    isa: SimdIsa,
    units_left: u64,
    frame: usize,
    seed: u64,
}

impl GsmDecGen {
    /// Build a generator for `instance`, decoding `units` frames.
    #[must_use]
    pub fn new(instance: usize, isa: SimdIsa, units: u64, seed: u64) -> Self {
        GsmDecGen {
            e: Emitter::new(Layout::for_instance(instance), seed ^ 0xdecd),
            isa,
            units_left: units,
            frame: 0,
            seed,
        }
    }
}

impl ChunkGen for GsmDecGen {
    fn next_chunk(&mut self, out: &mut Vec<Inst>) -> bool {
        if self.units_left == 0 {
            return false;
        }
        self.units_left -= 1;
        let layout = self.e.layout();
        let out_addr = layout.heap(SAMPLES_OFF);
        // The decoder is scalar end to end: the synthesis filter's
        // recurrence defeats vectorization (isa makes no difference).
        let _ = self.isa;

        // --- unpack the 76 coded parameters -------------------------------
        scalar::bit_unpack(&mut self.e, 76);

        // --- per subframe: RPE decode + LTP reconstruction ------------------
        for sub in 0..4usize {
            let sub_addr = out_addr + (sub * gsm::SUBFRAME_SAMPLES * 2) as u64;
            self.e.call("rpe_decode", |e| {
                e.loop_n(13, |e, k| {
                    let _l = e.load(1, layout.heap(0x3000) + u64::from(k));
                    e.int_work(3);
                    e.store(2, sub_addr + u64::from(k) * 6);
                });
            });
            self.e.call("ltp_synth", |e| {
                e.loop_n(gsm::SUBFRAME_SAMPLES as u32, |e, k| {
                    let _h = e.load(2, layout.heap(HISTORY_OFF) + u64::from(k) * 2);
                    e.int_work(3);
                    e.store(2, sub_addr + u64::from(k) * 2);
                });
            });
        }

        // --- short-term synthesis filter: recursive lattice (scalar) -------
        // Functional run keeps the filter honest (stability, clipping).
        let excitation = synth_speech(self.seed, self.frame);
        let refl = vec![6000i16; gsm::LPC_ORDER];
        let synth = gsm::synthesis_filter(&excitation, &refl);
        let clipped = synth
            .iter()
            .filter(|&&s| s == i16::MAX || s == i16::MIN)
            .count();
        self.e.call("st_synthesis", |e| {
            e.loop_n(gsm::FRAME_SAMPLES as u32, |e, k| {
                let _x = e.load(2, out_addr + u64::from(k) * 2);
                // 8 lattice stages × (mult, sat, add, state update)
                for _ in 0..gsm::LPC_ORDER {
                    e.int_work(2);
                }
                e.store(2, out_addr + 0x800 + u64::from(k) * 2);
            });
            // rare clipping fixups, driven by the real filter output
            for _ in 0..clipped {
                e.int_work(2);
            }
        });

        // --- postprocessing: deemphasis + output ---------------------------
        self.e.call("postprocess", |e| {
            scalar_filter(e, out_addr + 0x800, gsm::FRAME_SAMPLES, 1);
        });

        self.frame += 1;
        self.e.drain_into(out);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::InstMix;

    fn mix_of(mut g: impl ChunkGen, units: usize) -> InstMix {
        let mut mix = InstMix::default();
        let mut buf = Vec::new();
        for _ in 0..units {
            buf.clear();
            if !g.next_chunk(&mut buf) {
                break;
            }
            for i in &buf {
                mix.record(i);
            }
        }
        mix
    }

    #[test]
    fn encoder_mom_benefit_is_modest() {
        // Table 3: 177.9 → 161.3 (ratio ≈ 0.91).
        let mmx = mix_of(GsmEncGen::new(0, SimdIsa::Mmx, 4, 5), 4);
        let mom = mix_of(GsmEncGen::new(0, SimdIsa::Mom, 4, 5), 4);
        let ratio = mom.total() as f64 / mmx.total() as f64;
        assert!(ratio > 0.75 && ratio <= 1.0, "ratio {ratio}");
    }

    #[test]
    fn decoder_identical_across_isas() {
        // Table 3: 105.2 ≈ 105.0 — no vectorized kernels at all.
        let mmx = mix_of(GsmDecGen::new(0, SimdIsa::Mmx, 3, 5), 3);
        let mom = mix_of(GsmDecGen::new(0, SimdIsa::Mom, 3, 5), 3);
        assert_eq!(mmx.total(), mom.total());
        assert_eq!(mmx.simd, 0);
        assert_eq!(mom.simd, 0);
    }

    #[test]
    fn decoder_is_integer_dominated() {
        let m = mix_of(GsmDecGen::new(0, SimdIsa::Mmx, 3, 5), 3);
        let b = m.breakdown();
        assert!(b.integer_pct > 55.0, "{b}");
        assert_eq!(b.fp_pct, 0.0);
    }

    #[test]
    fn encoder_has_vector_work_under_both_isas() {
        let m = mix_of(GsmEncGen::new(0, SimdIsa::Mmx, 2, 5), 2);
        assert!(m.simd > 0);
        let v = mix_of(GsmEncGen::new(0, SimdIsa::Mom, 2, 5), 2);
        assert!(v.simd > 0);
    }

    #[test]
    fn terminates_after_units() {
        let mut g = GsmDecGen::new(0, SimdIsa::Mmx, 1, 5);
        let mut buf = Vec::new();
        assert!(g.next_chunk(&mut buf));
        assert!(!g.next_chunk(&mut buf));
    }

    #[test]
    fn deterministic() {
        let a = mix_of(GsmEncGen::new(0, SimdIsa::Mmx, 2, 9), 2);
        let b = mix_of(GsmEncGen::new(0, SimdIsa::Mmx, 2, 9), 2);
        assert_eq!(a, b);
    }
}
