//! `mesa` (OpenGL software rendering) trace generator — the MPEG-4 3D
//! still-image profile.
//!
//! One work unit = one batch of 16 vertices / 8 triangles through the
//! software pipeline: vertex transform (4×4 FP matrix), lighting
//! (dot-product shading), then span rasterization with depth test. Not
//! vectorized under either ISA (the paper's emulation libraries have no
//! FP μ-SIMD), so `mesa` anchors the scalar/FP end of the workload —
//! its MMX and MOM traces are identical (Table 3: 93.8 = 93.8).

use super::emitter::Emitter;
use super::scalar_phases as scalar;
use super::{ChunkGen, SimdIsa};
use crate::kernels::mesa3d::{diffuse, rasterize, Framebuffer, Mat4, ScreenVertex, Vec4};
use crate::layout::Layout;
use medsim_isa::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const VERTS_PER_BATCH: usize = 16;
const TRIS_PER_BATCH: usize = 8;
const FB_W: usize = 256;
const FB_H: usize = 256;

// Staggered off 32 KiB multiples (see mpeg2_gen.rs).
const VERTEX_OFF: u64 = 0;
const FB_OFF: u64 = 0x1_0820;
const DEPTH_OFF: u64 = 0x2_1040;

/// mesa generator.
pub struct MesaGen {
    e: Emitter,
    units_left: u64,
    fb: Framebuffer,
    rng: SmallRng,
    angle: f32,
}

impl MesaGen {
    /// Build a generator for `instance`, rendering `units` batches.
    /// The `isa` parameter is accepted for interface symmetry; mesa is
    /// not vectorized.
    #[must_use]
    pub fn new(instance: usize, _isa: SimdIsa, units: u64, seed: u64) -> Self {
        MesaGen {
            e: Emitter::new(Layout::for_instance(instance), seed ^ 0x3e5a),
            units_left: units,
            fb: Framebuffer::new(FB_W, FB_H),
            rng: SmallRng::seed_from_u64(seed),
            angle: 0.0,
        }
    }
}

impl ChunkGen for MesaGen {
    fn next_chunk(&mut self, out: &mut Vec<Inst>) -> bool {
        if self.units_left == 0 {
            return false;
        }
        self.units_left -= 1;
        let layout = self.e.layout();
        let vx_addr = layout.heap(VERTEX_OFF);
        let fb_addr = layout.heap(FB_OFF);
        let z_addr = layout.heap(DEPTH_OFF);

        // --- functional: transform + light + rasterize a real batch ------
        self.angle += 0.1;
        let model = Mat4::rotate_z(self.angle)
            .mul(Mat4::scale(30.0))
            .mul(Mat4::translate(0.0, 0.0, 2.0));
        let light = Vec4::new(0.3, 0.5, 0.8, 0.0);
        let mut screen = Vec::with_capacity(VERTS_PER_BATCH);
        for _ in 0..VERTS_PER_BATCH {
            let v = Vec4::new(
                self.rng.gen_range(-1.0..1.0),
                self.rng.gen_range(-1.0..1.0),
                self.rng.gen_range(-1.0..1.0),
                1.0,
            );
            let t = model.transform(v);
            let n = Vec4::new(v.x, v.y, v.z, 0.0);
            let i = diffuse(n, light);
            screen.push(ScreenVertex {
                x: (t.x + 40.0).clamp(0.0, (FB_W - 1) as f32),
                y: (t.y + 40.0).clamp(0.0, (FB_H - 1) as f32),
                z: t.z,
                intensity: i,
            });
        }
        let mut pixel_counts = Vec::with_capacity(TRIS_PER_BATCH);
        for t in 0..TRIS_PER_BATCH {
            let a = screen[(t * 2) % VERTS_PER_BATCH];
            let b = screen[(t * 2 + 1) % VERTS_PER_BATCH];
            let c = screen[(t * 2 + 5) % VERTS_PER_BATCH];
            pixel_counts.push(rasterize(&mut self.fb, a, b, c));
        }
        // Reset the framebuffer occasionally ("frame swap") so it does
        // not saturate and stop producing pixels.
        if self.fb.covered_pixels() > FB_W * FB_H / 2 {
            self.fb = Framebuffer::new(FB_W, FB_H);
        }

        // --- emit: vertex transform + lighting (FP-heavy) -----------------
        self.e.call("transform", |e| {
            e.loop_n(VERTS_PER_BATCH as u32, |e, i| {
                let voff = vx_addr + u64::from(i) * 32;
                for k in 0..4u64 {
                    let _c = e.load(8, voff + k * 8);
                }
                // 4×4 matrix × vec4: 16 mul + 12 add, plus the projection
                // divide and viewport mapping.
                e.fp_work(32);
                // lighting: normalize + dot + clamp
                e.fp_work(14);
                e.int_work(3);
                for k in 0..4u64 {
                    e.store(8, voff + 0x400 + k * 8);
                }
            });
        });

        // --- emit: triangle setup + span rasterization ----------------------
        for &pixels in &pixel_counts {
            self.e.call("raster", |e| {
                // setup: edge functions, bounding box
                e.fp_work(12);
                e.int_work(10);
                // span walk: per pixel depth test + interpolate + store,
                // trip count from the real rasterizer
                let rows = (pixels / 8).clamp(1, 32) as u32;
                e.loop_n(rows, |e, r| {
                    let row_addr = fb_addr + u64::from(r) * FB_W as u64;
                    let zrow_addr = z_addr + u64::from(r) * (FB_W as u64) * 4;
                    // per-span parameter stepping (plane equations)
                    e.fp_work(4);
                    e.loop_n(8, |e, p| {
                        let _z = e.load(4, zrow_addr + u64::from(p) * 4);
                        e.int_work(2);
                        let pass = e.flip(0.7);
                        e.cond_skip(!pass, 4);
                        if pass {
                            e.int_work(2);
                            e.store(4, zrow_addr + u64::from(p) * 4);
                            e.store(1, row_addr + u64::from(p));
                        }
                    });
                });
            });
        }

        // --- state/driver overhead -----------------------------------------
        scalar::header_work(&mut self.e, 6);
        scalar::table_walk(&mut self.e, 4);

        self.e.drain_into(out);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::InstMix;

    fn mix_of(mut g: impl ChunkGen, units: usize) -> InstMix {
        let mut mix = InstMix::default();
        let mut buf = Vec::new();
        for _ in 0..units {
            buf.clear();
            if !g.next_chunk(&mut buf) {
                break;
            }
            for i in &buf {
                mix.record(i);
            }
        }
        mix
    }

    #[test]
    fn mesa_has_no_simd_under_either_isa() {
        let mmx = mix_of(MesaGen::new(0, SimdIsa::Mmx, 3, 5), 3);
        let mom = mix_of(MesaGen::new(0, SimdIsa::Mom, 3, 5), 3);
        assert_eq!(mmx.simd, 0);
        assert_eq!(mom.simd, 0);
        // Table 3: identical instruction counts.
        assert_eq!(mmx.total(), mom.total());
    }

    #[test]
    fn mesa_is_the_fp_benchmark() {
        let m = mix_of(MesaGen::new(0, SimdIsa::Mmx, 3, 5), 3);
        let b = m.breakdown();
        assert!(b.fp_pct > 8.0, "mesa carries the workload's FP: {b}");
        assert!(b.integer_pct > 30.0, "{b}");
    }

    #[test]
    fn terminates() {
        let mut g = MesaGen::new(0, SimdIsa::Mmx, 2, 5);
        let mut buf = Vec::new();
        assert!(g.next_chunk(&mut buf));
        assert!(g.next_chunk(&mut buf));
        assert!(!g.next_chunk(&mut buf));
    }

    #[test]
    fn deterministic() {
        let a = mix_of(MesaGen::new(0, SimdIsa::Mmx, 2, 9), 2);
        let b = mix_of(MesaGen::new(0, SimdIsa::Mmx, 2, 9), 2);
        assert_eq!(a, b);
    }
}
