//! Scalar "protocol overhead" phase emitters.
//!
//! The paper's central observation is that full media programs are
//! dominated by exactly this code: table lookups, header processing,
//! entropy coding, rate control — "very similar to what we can find in a
//! typical SPECint benchmark" (§2). These emitters produce those phases:
//! integer-heavy, branchy, with high-locality table accesses; driven by
//! the *real* data (run/level events) the functional kernels computed.

use super::emitter::Emitter;
use crate::kernels::huffman::code_len;
use crate::kernels::zigzag::RunLevel;
use rand::Rng;

/// Variable-length-code **encode** of one block's (run, level) events.
/// Table lookups and bit-buffer updates per event; escape codes branch
/// to a longer path.
pub fn vlc_encode_block(e: &mut Emitter, events: &[RunLevel]) {
    let table = e.layout().global(0x1000);
    let bitbuf = e.layout().stack(0x100);
    for (n, &ev) in events.iter().enumerate() {
        // Index computation + two-table lookup (code, length).
        e.int_work(2);
        let idx = u64::from(ev.run) * 64 + u64::from(ev.level.unsigned_abs() & 0x3f);
        let _code = e.load(4, table + idx * 8);
        let _len = e.load(4, table + idx * 8 + 4);
        let escape = code_len(ev) >= 24;
        // Escape path: recompute a long code arithmetically.
        e.cond_skip(!escape, 5);
        if escape {
            e.int_work(5);
        }
        // Shift/or into the bit buffer.
        e.int_work(3);
        // Flush a word roughly every 4 events.
        if n % 4 == 3 {
            e.store(4, bitbuf + (n as u64 / 4 % 16) * 4);
        }
    }
    // End-of-block code.
    e.int_work(2);
    e.store(4, bitbuf);
}

/// Variable-length-code **decode** producing `n_events` events; per
/// event: bit-buffer reads, a first-level table probe, and a
/// data-dependent second probe for long codes.
pub fn vlc_decode_block(e: &mut Emitter, n_events: usize) {
    let table = e.layout().global(0x3000);
    let bitbuf = e.layout().heap(0x2_0360);
    for n in 0..n_events {
        // Peek bits from the buffer (high locality).
        let _bits = e.load(4, bitbuf + (n as u64 / 8 % 64) * 4);
        e.int_work(2);
        // First-level probe.
        let long = e.flip(0.25);
        let idx = e.rng().gen_range(0..256u64);
        let _entry = e.load(4, table + idx * 4);
        e.cond_skip(!long, 3);
        if long {
            // Second-level probe for long codes.
            let idx2 = e.rng().gen_range(0..512u64);
            let _entry2 = e.load(4, table + 0x400 + idx2 * 4);
            e.int_work(1);
        }
        // Sign/level reconstruction and zigzag position update.
        e.int_work(4);
    }
    e.int_work(2);
}

/// Header / syntax processing: `fields` bit-field extractions with
/// occasional branch on syntax element values.
pub fn header_work(e: &mut Emitter, fields: usize) {
    let hdr = e.layout().heap(0x2_4360);
    for n in 0..fields {
        let _w = e.load(4, hdr + (n as u64 % 32) * 4);
        e.int_work(3);
        let rare = e.flip(0.1);
        e.cond_skip(!rare, 4);
        if rare {
            e.int_work(4);
        }
    }
}

/// Bit-exact unpacking of `fields` packed fields (GSM decoder input,
/// MPEG system layer): load + shift/mask chains.
pub fn bit_unpack(e: &mut Emitter, fields: usize) {
    let src = e.layout().heap(0x2_8360);
    for n in 0..fields {
        if n % 2 == 0 {
            let _w = e.load(4, src + (n as u64 / 2 % 128) * 4);
        }
        e.int_work(3);
        if n % 8 == 7 {
            e.store(2, e.layout().stack(0x200) + (n as u64 % 64) * 2);
        }
    }
}

/// Rate control / quality adaptation: a small floating-point update of
/// the quantizer scale (the codecs' only scalar FP besides mesa).
pub fn rate_control(e: &mut Emitter) {
    let state = e.layout().global(0x5000);
    let _ = e.load(8, state);
    let _ = e.load(8, state + 8);
    e.fp_work(6);
    e.int_work(3);
    e.store(8, state);
}

/// A dependent table-walk: `steps` loads where each address depends on
/// the previous value (entropy-coder state machines, tree descents).
pub fn table_walk(e: &mut Emitter, steps: usize) {
    let table = e.layout().global(0x6000);
    for _ in 0..steps {
        let idx = e.rng().gen_range(0..512u64);
        let _v = e.load(4, table + idx * 4);
        e.int_work(2);
    }
}

/// Bit-serial emission into an output bitstream: `bits` bits, processed
/// in byte-ish chunks of shift/or/carry logic with an occasional store
/// (libjpeg's `emit_bits` / MPEG's putbits — the deep scalar tail of
/// every encoder).
pub fn bit_emit(e: &mut Emitter, bits: usize) {
    let buf = e.layout().stack(0x300);
    let chunks = bits.div_ceil(8);
    for n in 0..chunks {
        // shift in, test for byte boundary, handle stuffing
        e.int_work(4);
        let stuff = e.flip(0.06); // 0xFF byte stuffing is rare
        e.cond_skip(!stuff, 3);
        if stuff {
            e.int_work(3);
        }
        if n % 4 == 3 {
            e.store(4, buf + (n as u64 / 4 % 32) * 4);
        }
    }
}

/// Bit-serial consumption from an input bitstream: `bits` bits of
/// shift/mask/refill logic with a load every couple of chunks (the
/// decoder-side mirror of [`bit_emit`]).
pub fn bit_consume(e: &mut Emitter, bits: usize) {
    let buf = e.layout().heap(0x2_c360);
    let chunks = bits.div_ceil(8);
    for n in 0..chunks {
        if n % 2 == 0 {
            let _w = e.load(4, buf + (n as u64 / 2 % 64) * 4);
        }
        e.int_work(4);
        let marker = e.flip(0.04);
        e.cond_skip(!marker, 2);
        if marker {
            e.int_work(2);
        }
    }
}

/// Scalar coefficient quantization of one 64-coefficient block (libjpeg
/// style: per-coefficient divide with rounding — never vectorized in
/// the 1999-era emulation libraries).
pub fn scalar_quant_block(e: &mut Emitter, src: u64, dst: u64) {
    e.loop_n(64, |e, i| {
        let off = u64::from(i) * 2;
        let _c = e.load(2, src + off);
        e.int_work(4); // divide-by-reciprocal multiply + rounding + clamp
        e.store(2, dst + off);
    });
}

/// Encoder mode decision: score `options` candidate coding modes and
/// pick the cheapest (branchy compare-and-select integer logic).
pub fn mode_decision(e: &mut Emitter, options: usize) {
    for _ in 0..options {
        e.int_work(5);
        let better = e.flip(0.4);
        e.cond_skip(!better, 2);
        if better {
            e.int_work(2);
        }
    }
    e.int_work(4);
}

/// Function-call and bookkeeping overhead around a kernel invocation:
/// stack spills/restores and argument setup.
pub fn call_overhead(e: &mut Emitter, spills: usize) {
    let sp = e.layout().stack(0x1000);
    for i in 0..spills {
        e.store(8, sp + (i as u64) * 8);
    }
    e.int_work(spills.max(2));
    for i in 0..spills {
        let _ = e.load(8, sp + (i as u64) * 8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;
    use crate::mix::InstMix;
    use medsim_isa::OpKind;

    fn mix_of(f: impl FnOnce(&mut Emitter)) -> InstMix {
        let mut e = Emitter::new(Layout::for_instance(0), 3);
        f(&mut e);
        let mut mix = InstMix::default();
        for i in e.take() {
            mix.record(&i);
        }
        mix
    }

    #[test]
    fn vlc_encode_is_integer_dominated() {
        let events: Vec<RunLevel> = (0..16)
            .map(|i| RunLevel {
                run: i % 4,
                level: 1 + (i as i16 % 5),
            })
            .collect();
        let m = mix_of(|e| vlc_encode_block(e, &events));
        assert!(m.simd == 0);
        assert!(
            m.integer > m.memory,
            "int {} vs mem {}",
            m.integer,
            m.memory
        );
        assert!(m.fp == 0);
    }

    #[test]
    fn vlc_encode_cost_scales_with_events() {
        let few: Vec<RunLevel> = (0..4).map(|_| RunLevel { run: 0, level: 1 }).collect();
        let many: Vec<RunLevel> = (0..32).map(|_| RunLevel { run: 0, level: 1 }).collect();
        let mf = mix_of(|e| vlc_encode_block(e, &few));
        let mm = mix_of(|e| vlc_encode_block(e, &many));
        assert!(mm.total() > mf.total() * 4);
    }

    #[test]
    fn escape_events_cost_more() {
        let cheap = vec![RunLevel { run: 0, level: 1 }; 8];
        let escapes = vec![
            RunLevel {
                run: 30,
                level: 900
            };
            8
        ];
        let mc = mix_of(|e| vlc_encode_block(e, &cheap));
        let me = mix_of(|e| vlc_encode_block(e, &escapes));
        assert!(me.integer > mc.integer);
    }

    #[test]
    fn vlc_decode_emits_loads_and_branches() {
        let m = mix_of(|e| vlc_decode_block(e, 20));
        assert!(m.memory >= 20, "at least one load per event");
        assert!(m.integer > 2 * m.memory);
    }

    #[test]
    fn rate_control_has_fp() {
        let m = mix_of(rate_control);
        assert!(m.fp > 0);
    }

    #[test]
    fn phases_are_deterministic_per_seed() {
        let a = mix_of(|e| vlc_decode_block(e, 40));
        let b = mix_of(|e| vlc_decode_block(e, 40));
        assert_eq!(a, b);
    }

    #[test]
    fn no_simd_anywhere_in_scalar_phases() {
        let m = mix_of(|e| {
            header_work(e, 10);
            bit_unpack(e, 20);
            table_walk(e, 8);
            call_overhead(e, 4);
        });
        let _ = OpKind::SimdArith;
        assert_eq!(m.simd, 0);
    }
}
