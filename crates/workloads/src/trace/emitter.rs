//! The instruction emitter: stable program counters, loop and call
//! structure, and register-rotation helpers.
//!
//! Traces must be *I-cache realistic*: every iteration of a loop and
//! every call of a kernel function reuses the same PCs, so the modeled
//! I-cache behaves like it would on real code. The emitter therefore
//! assigns each named function a fixed code address on first use and
//! rewinds the PC to the loop head on every iteration.

use crate::layout::Layout;
use medsim_isa::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Bytes of code space reserved per named function. Hot media functions
/// are a few hundred instructions; packing them at 4 KiB keeps the
/// modeled I-footprint of one program at compiled-code densities.
const FUNC_SLOT: u64 = 4 * 1024;

/// Cycling register allocator over a contiguous index range of one class.
#[derive(Debug, Clone)]
pub struct RegRing {
    class: RegClass,
    lo: u8,
    hi: u8,
    next: u8,
}

impl RegRing {
    /// Ring over `class` registers `lo..=hi`.
    #[must_use]
    pub fn new(class: RegClass, lo: u8, hi: u8) -> Self {
        assert!(lo <= hi && hi < class.logical_count());
        RegRing {
            class,
            lo,
            hi,
            next: lo,
        }
    }

    /// Next register in rotation.
    #[allow(clippy::should_implement_trait)] // infinite ring, not an Iterator
    pub fn next(&mut self) -> LogicalReg {
        let r = LogicalReg::new(self.class, self.next);
        self.next = if self.next == self.hi {
            self.lo
        } else {
            self.next + 1
        };
        r
    }
}

/// The trace emitter for one program instance.
pub struct Emitter {
    out: Vec<Inst>,
    pc: u64,
    code_next: u64,
    funcs: HashMap<&'static str, u64>,
    layout: Layout,
    rng: SmallRng,
    /// Scalar temporaries r1..=r9.
    pub t: RegRing,
    /// Address registers r10..=r20.
    pub a: RegRing,
    /// MMX registers m0..=m23 (m24..=m31 reserved for constants).
    pub m: RegRing,
    /// MOM stream registers v0..=v13 (v14, v15 reserved).
    pub v: RegRing,
}

impl Emitter {
    /// Create an emitter for a program instance with the given layout.
    #[must_use]
    pub fn new(layout: Layout, seed: u64) -> Self {
        Emitter {
            out: Vec::with_capacity(4096),
            pc: layout.code(0),
            code_next: layout.code(0) + FUNC_SLOT, // slot 0 = top-level code
            funcs: HashMap::new(),
            layout,
            rng: SmallRng::seed_from_u64(seed),
            t: RegRing::new(RegClass::Int, 1, 9),
            a: RegRing::new(RegClass::Int, 10, 20),
            m: RegRing::new(RegClass::Simd, 0, 23),
            v: RegRing::new(RegClass::Stream, 0, 13),
        }
    }

    /// The program's address-space layout.
    #[must_use]
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Seeded random source for data-dependent decisions.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Take the instructions emitted so far.
    pub fn take(&mut self) -> Vec<Inst> {
        std::mem::take(&mut self.out)
    }

    /// Move the emitted instructions into `out`.
    pub fn drain_into(&mut self, out: &mut Vec<Inst>) {
        out.append(&mut self.out);
    }

    /// Number of instructions currently buffered.
    #[must_use]
    pub fn emitted(&self) -> usize {
        self.out.len()
    }

    /// Emit one instruction at the current PC.
    pub fn emit(&mut self, inst: Inst) {
        self.out.push(inst.at(self.pc));
        self.pc += 4;
    }

    // ---- scalar helpers ---------------------------------------------------

    /// `dst = a <op> b`.
    pub fn alu(&mut self, op: IntOp, dst: LogicalReg, a: LogicalReg, b: LogicalReg) {
        self.emit(Inst::int_rrr(op, dst, a, b));
    }

    /// `dst = a <op> imm`.
    pub fn alui(&mut self, op: IntOp, dst: LogicalReg, a: LogicalReg, imm: i32) {
        self.emit(Inst::int_rri(op, dst, a, imm));
    }

    /// A short dependent chain of `n` integer ALU instructions (address
    /// arithmetic, flag twiddling, table-index computation).
    pub fn int_work(&mut self, n: usize) {
        let mut prev = self.t.next();
        for i in 0..n {
            let dst = self.t.next();
            let op = match i % 4 {
                0 => IntOp::Add,
                1 => IntOp::Sll,
                2 => IntOp::And,
                _ => IntOp::Addi,
            };
            if op == IntOp::Addi {
                self.alui(op, dst, prev, 3);
            } else {
                let b = self.t.next();
                self.alu(op, dst, prev, b);
            }
            prev = dst;
        }
    }

    /// Scalar load of `size` bytes at `addr` into a fresh temporary.
    pub fn load(&mut self, size: u8, addr: u64) -> LogicalReg {
        let op = match size {
            1 => MemOp::LoadBu,
            2 => MemOp::LoadHu,
            4 => MemOp::LoadW,
            _ => MemOp::LoadD,
        };
        let dst = self.t.next();
        let base = self.a.next();
        self.emit(Inst::load(op, dst, base, addr));
        dst
    }

    /// Scalar store of `size` bytes at `addr`.
    pub fn store(&mut self, size: u8, addr: u64) {
        let op = match size {
            1 => MemOp::StoreB,
            2 => MemOp::StoreH,
            4 => MemOp::StoreW,
            _ => MemOp::StoreD,
        };
        let data = self.t.next();
        let base = self.a.next();
        self.emit(Inst::store(op, data, base, addr));
    }

    /// Scalar FP op chain of length `n` (mesa's transform/lighting math;
    /// codecs' rate control).
    pub fn fp_work(&mut self, n: usize) {
        let mut prev = fp(1);
        for i in 0..n {
            let dst = fp(2 + (i % 20) as u8);
            let op = match i % 3 {
                0 => FpOp::FMul,
                1 => FpOp::FAdd,
                _ => FpOp::FMadd,
            };
            self.emit(Inst::fp_rrr(op, dst, prev, fp(22 + (i % 8) as u8)));
            prev = dst;
        }
    }

    // ---- control structure -------------------------------------------------

    /// Emit a counted loop: `body(e, i)` runs `n` times at stable PCs,
    /// followed by the index update and backward branch (the loop
    /// overhead MOM's stream semantics eliminate).
    ///
    /// The body should emit the same instruction *shape* each iteration
    /// (dynamic fields may differ); minor length variation is tolerated
    /// (PCs restart from the loop head every iteration).
    pub fn loop_n(&mut self, n: u32, mut body: impl FnMut(&mut Emitter, u32)) {
        if n == 0 {
            return;
        }
        let head = self.pc;
        let idx = int(21); // dedicated loop counter register
        for i in 0..n {
            self.pc = head;
            body(self, i);
            self.alui(IntOp::Addi, idx, idx, 1);
            let taken = i + 1 < n;
            self.emit(Inst::branch(CtlOp::Bne, idx, taken, head));
        }
    }

    /// Emit a call to the named function: the body runs at the function's
    /// stable code address; control returns to the call site.
    pub fn call(&mut self, name: &'static str, body: impl FnOnce(&mut Emitter)) {
        let base = match self.funcs.get(name) {
            Some(&b) => b,
            None => {
                let b = self.code_next;
                self.code_next += FUNC_SLOT;
                self.funcs.insert(name, b);
                b
            }
        };
        self.emit(Inst::new(Op::Ctl(CtlOp::Call)).with_branch(BranchInfo {
            taken: true,
            target: base,
        }));
        let ret_to = self.pc;
        self.pc = base;
        body(self);
        self.emit(Inst::new(Op::Ctl(CtlOp::Ret)).with_branch(BranchInfo {
            taken: true,
            target: ret_to,
        }));
        self.pc = ret_to;
    }

    /// Emit a data-dependent conditional forward branch. When `taken`,
    /// the PC skips ahead by `skip` instruction slots (the skipped
    /// instructions do not appear in the trace — they were not executed).
    pub fn cond_skip(&mut self, taken: bool, skip: u32) {
        let target = self.pc + 4 + u64::from(skip) * 4;
        let cond = self.t.next();
        self.emit(Inst::branch(CtlOp::Beq, cond, taken, target));
        if taken {
            self.pc = target;
        }
    }

    /// Random boolean with probability `p` (for data-dependent branches
    /// whose real data source is not modeled).
    pub fn flip(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }

    // ---- SIMD helpers --------------------------------------------------------

    /// MMX packed load into a fresh register.
    pub fn mmx_load(&mut self, addr: u64) -> LogicalReg {
        let dst = self.m.next();
        let base = self.a.next();
        self.emit(Inst::mmx_load(dst, base, addr));
        dst
    }

    /// MMX packed store.
    pub fn mmx_store(&mut self, addr: u64) {
        let data = self.m.next();
        let base = self.a.next();
        self.emit(Inst::mmx_store(data, base, addr));
    }

    /// MMX register-register op on fresh registers (dependency-light).
    pub fn mmx_op(&mut self, op: MmxOp) -> LogicalReg {
        let dst = self.m.next();
        let a = self.m.next();
        let b = self.m.next();
        self.emit(Inst::mmx(op, dst, a, b));
        dst
    }

    /// MMX op writing `dst` from `a`, `b` (explicit dependencies).
    pub fn mmx_op_into(&mut self, op: MmxOp, dst: LogicalReg, a: LogicalReg, b: LogicalReg) {
        self.emit(Inst::mmx(op, dst, a, b));
    }

    /// MOM stream load (stride in bytes, `slen` element groups).
    pub fn mom_load(&mut self, addr: u64, stride: i64, slen: u8) -> LogicalReg {
        let dst = self.v.next();
        let base = self.a.next();
        self.emit(Inst::mom_load(dst, base, addr, stride, slen));
        dst
    }

    /// MOM stream store.
    pub fn mom_store(&mut self, addr: u64, stride: i64, slen: u8) {
        let data = self.v.next();
        let base = self.a.next();
        self.emit(Inst::mom_store(data, base, addr, stride, slen));
    }

    /// MOM stream register-register op on fresh registers.
    pub fn mom_op(&mut self, op: MomOp, slen: u8) -> LogicalReg {
        let dst = self.v.next();
        let a = self.v.next();
        let b = self.v.next();
        self.emit(Inst::mom(op, dst, a, b, slen));
        dst
    }

    /// Set the stream-length register (renamed through the integer pool).
    pub fn set_vl(&mut self, slen: u8) {
        self.emit(
            Inst::new(Op::Mom(MomOp::SetVl))
                .with_dst(int(medsim_isa::regs::STREAM_LEN_REG))
                .with_imm(i32::from(slen)),
        );
    }

    /// MOM accumulator op over streams `a`, `b`.
    pub fn mom_acc(
        &mut self,
        op: MomOp,
        acc_reg: LogicalReg,
        a: LogicalReg,
        b: LogicalReg,
        slen: u8,
    ) {
        debug_assert!(op.writes_acc());
        self.emit(
            Inst::new(Op::Mom(op))
                .with_dst(acc_reg)
                .with_srcs(&[a, b, acc_reg])
                .with_slen(slen),
        );
    }

    /// MOM accumulator read-back into an MMX register.
    pub fn mom_acc_read(&mut self, op: MomOp, acc_reg: LogicalReg) -> LogicalReg {
        debug_assert!(op.reads_acc());
        let dst = self.m.next();
        self.emit(Inst::new(Op::Mom(op)).with_dst(dst).with_srcs(&[acc_reg]));
        dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;

    fn emitter() -> Emitter {
        Emitter::new(Layout::for_instance(0), 42)
    }

    #[test]
    fn pcs_advance_by_four() {
        let mut e = emitter();
        e.int_work(3);
        let insts = e.take();
        assert_eq!(insts.len(), 3);
        assert_eq!(insts[1].pc, insts[0].pc + 4);
        assert_eq!(insts[2].pc, insts[1].pc + 4);
    }

    #[test]
    fn loop_reuses_pcs_across_iterations() {
        let mut e = emitter();
        e.loop_n(3, |e, _| {
            e.int_work(2);
        });
        let insts = e.take();
        // 3 iterations × (2 body + addi + branch) = 12
        assert_eq!(insts.len(), 12);
        assert_eq!(insts[0].pc, insts[4].pc, "iteration bodies share PCs");
        assert_eq!(insts[0].pc, insts[8].pc);
        // Branches: first two taken (backward), last not taken.
        let branches: Vec<_> = insts.iter().filter(|i| i.is_cond_branch()).collect();
        assert_eq!(branches.len(), 3);
        assert!(branches[0].branch.unwrap().taken);
        assert!(branches[1].branch.unwrap().taken);
        assert!(!branches[2].branch.unwrap().taken);
        assert_eq!(
            branches[0].branch.unwrap().target,
            insts[0].pc,
            "backward to loop head"
        );
    }

    #[test]
    fn calls_reuse_function_addresses() {
        let mut e = emitter();
        e.call("dct", |e| e.int_work(4));
        let first = e.take();
        e.call("dct", |e| e.int_work(4));
        let second = e.take();
        // Call instruction targets and body PCs identical across calls.
        assert_eq!(
            first[0].branch.unwrap().target,
            second[0].branch.unwrap().target
        );
        assert_eq!(first[1].pc, second[1].pc, "function body at stable PCs");
        // Return targets differ (different call sites).
        let ret1 = first.last().unwrap();
        let ret2 = second.last().unwrap();
        assert_ne!(ret1.branch.unwrap().target, ret2.branch.unwrap().target);
    }

    #[test]
    fn different_functions_get_different_slots() {
        let mut e = emitter();
        e.call("f", |e| e.int_work(1));
        e.call("g", |e| e.int_work(1));
        let insts = e.take();
        let t1 = insts[0].branch.unwrap().target;
        let t2 = insts[3].branch.unwrap().target;
        assert_ne!(t1, t2);
        assert_eq!(t2 - t1, FUNC_SLOT);
    }

    #[test]
    fn cond_skip_taken_skips_pc_range() {
        let mut e = emitter();
        e.cond_skip(true, 5);
        e.int_work(1);
        let insts = e.take();
        assert_eq!(insts[1].pc, insts[0].pc + 4 + 5 * 4);
    }

    #[test]
    fn cond_skip_not_taken_continues() {
        let mut e = emitter();
        e.cond_skip(false, 5);
        e.int_work(1);
        let insts = e.take();
        assert_eq!(insts[1].pc, insts[0].pc + 4);
    }

    #[test]
    fn reg_ring_cycles() {
        let mut r = RegRing::new(RegClass::Simd, 0, 2);
        let seq: Vec<u8> = (0..7).map(|_| r.next().index).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn mom_helpers_carry_stream_length() {
        let mut e = emitter();
        e.set_vl(12);
        let a = e.mom_load(0x50_0000, 8, 12);
        let b = e.mom_load(0x51_0000, 768, 12);
        e.mom_acc(MomOp::AccSadB, acc(0), a, b, 12);
        let _ = e.mom_acc_read(MomOp::AccRedAddW, acc(0));
        let insts = e.take();
        assert_eq!(insts.len(), 5);
        assert_eq!(insts[1].slen, 12);
        assert_eq!(insts[2].mem.unwrap().stride, 768);
        assert!(matches!(insts[3].op, Op::Mom(MomOp::AccSadB)));
        assert_eq!(insts[3].slen, 12);
    }

    #[test]
    fn deterministic_rng() {
        let mut a = Emitter::new(Layout::for_instance(0), 7);
        let mut b = Emitter::new(Layout::for_instance(0), 7);
        let fa: Vec<bool> = (0..32).map(|_| a.flip(0.5)).collect();
        let fb: Vec<bool> = (0..32).map(|_| b.flip(0.5)).collect();
        assert_eq!(fa, fb);
    }
}
