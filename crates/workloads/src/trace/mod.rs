//! Instruction-trace generation.
//!
//! Each benchmark is a [`ChunkGen`]: a generator that emits the
//! instruction stream of one *work unit* at a time (a macroblock row, a
//! speech frame, a group of triangles), walking the real kernel loop
//! nests over the modeled address space. [`ChunkedStream`] adapts a
//! generator to the [`InstStream`] interface the CPU model consumes,
//! keeping memory bounded regardless of trace length.
//!
//! Every generator comes in two vectorizations selected by [`SimdIsa`]:
//! MMX-style (packed ops with explicit unpack/pack and reduction trees,
//! plus the loop control to step through kernels 8 bytes at a time) and
//! MOM-style (stream instructions covering up to 16 element groups, with
//! packed-accumulator reductions and strided stream memory accesses).

pub mod emitter;
pub mod gsm_gen;
pub mod jpeg_gen;
pub mod mesa_gen;
pub mod mpeg2_gen;
pub mod scalar_phases;
pub mod simd_kernels;

use medsim_isa::Inst;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which μ-SIMD extension a trace is vectorized with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimdIsa {
    /// MMX-like packed μ-SIMD (67 opcodes, 32 registers).
    Mmx,
    /// MOM streaming μ-SIMD (121 opcodes, 16 stream registers).
    Mom,
}

impl SimdIsa {
    /// Both ISAs in the paper's presentation order.
    pub const ALL: [SimdIsa; 2] = [SimdIsa::Mmx, SimdIsa::Mom];

    /// Label used in experiment output.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            SimdIsa::Mmx => "MMX",
            SimdIsa::Mom => "MOM",
        }
    }
}

impl core::fmt::Display for SimdIsa {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// A source of decoded instructions (one software thread's trace).
pub trait InstStream {
    /// Produce the next instruction, or `None` when the program ends.
    fn next_inst(&mut self) -> Option<Inst>;
}

/// A generator that emits instructions one work unit at a time.
pub trait ChunkGen {
    /// Emit the next work unit into `out`. Returns `false` when the
    /// program is finished (nothing was appended).
    fn next_chunk(&mut self, out: &mut Vec<Inst>) -> bool;
}

/// Adapts a [`ChunkGen`] into an [`InstStream`] with bounded buffering.
pub struct ChunkedStream<G> {
    generator: G,
    buf: VecDeque<Inst>,
    scratch: Vec<Inst>,
    finished: bool,
}

impl<G: ChunkGen> ChunkedStream<G> {
    /// Wrap a generator.
    pub fn new(generator: G) -> Self {
        ChunkedStream {
            generator,
            buf: VecDeque::new(),
            scratch: Vec::new(),
            finished: false,
        }
    }
}

impl<G: ChunkGen> InstStream for ChunkedStream<G> {
    fn next_inst(&mut self) -> Option<Inst> {
        while self.buf.is_empty() && !self.finished {
            self.scratch.clear();
            if self.generator.next_chunk(&mut self.scratch) {
                self.buf.extend(self.scratch.drain(..));
            } else {
                self.finished = true;
            }
        }
        self.buf.pop_front()
    }
}

impl<S: InstStream + ?Sized> InstStream for Box<S> {
    fn next_inst(&mut self) -> Option<Inst> {
        (**self).next_inst()
    }
}

impl<S: InstStream + ?Sized> InstStream for &mut S {
    fn next_inst(&mut self) -> Option<Inst> {
        (**self).next_inst()
    }
}

/// An [`InstStream`] adapter that caps MOM stream lengths at `max_vl`,
/// strip-mining longer stream instructions into several shorter ones
/// plus the loop overhead a compiler would emit (ablation studies on
/// the benefit of long streams).
pub struct ClampStream<S> {
    inner: S,
    max_vl: u8,
    pending: VecDeque<Inst>,
}

impl<S: InstStream> ClampStream<S> {
    /// Wrap `inner`, capping stream lengths at `max_vl`.
    ///
    /// # Panics
    ///
    /// Panics if `max_vl` is zero.
    pub fn new(inner: S, max_vl: u8) -> Self {
        assert!(max_vl >= 1, "stream length cap must be at least 1");
        ClampStream {
            inner,
            max_vl,
            pending: VecDeque::new(),
        }
    }
}

impl<S: InstStream> InstStream for ClampStream<S> {
    fn next_inst(&mut self) -> Option<Inst> {
        use medsim_isa::prelude::*;
        if let Some(i) = self.pending.pop_front() {
            return Some(i);
        }
        let inst = self.inner.next_inst()?;
        if !inst.op.is_stream() || inst.slen <= self.max_vl {
            return Some(inst);
        }
        // Strip-mine: chunks of max_vl element groups, with index-update
        // and loop-branch overhead between chunks.
        let mut remaining = inst.slen;
        let mut chunk_idx = 0u8;
        while remaining > 0 {
            let take = remaining.min(self.max_vl);
            let mut piece = inst.with_slen(take);
            if let Some(m) = inst.mem {
                let skip = u64::from(chunk_idx) * u64::from(self.max_vl);
                piece.mem = Some(medsim_isa::MemRef::stream(
                    (m.addr as i64 + m.stride * skip as i64) as u64,
                    m.size,
                    m.stride,
                    take,
                    m.is_store,
                ));
            }
            self.pending.push_back(piece);
            remaining -= take;
            chunk_idx += 1;
            if remaining > 0 {
                // Strip-mine loop overhead.
                self.pending
                    .push_back(Inst::int_rri(IntOp::Addi, int(21), int(21), 1).at(inst.pc + 4));
                self.pending
                    .push_back(Inst::branch(CtlOp::Bne, int(21), true, inst.pc).at(inst.pc + 8));
            }
        }
        self.pending.pop_front()
    }
}

/// An [`InstStream`] over a fixed instruction vector (tests, synthetic
/// microbenchmarks).
#[derive(Debug, Clone)]
pub struct VecStream {
    insts: std::vec::IntoIter<Inst>,
}

impl VecStream {
    /// Stream over `insts`.
    #[must_use]
    pub fn new(insts: Vec<Inst>) -> Self {
        VecStream {
            insts: insts.into_iter(),
        }
    }
}

impl InstStream for VecStream {
    fn next_inst(&mut self) -> Option<Inst> {
        self.insts.next()
    }
}

/// Adapts any [`InstStream`] into a standard [`Iterator`], so stream
/// consumers (trace packers, mix counters) can use iterator combinators
/// without materializing the trace. Works over owned streams, boxed
/// trait objects and `&mut` borrows alike.
pub struct StreamIter<S>(pub S);

impl<S: InstStream> Iterator for StreamIter<S> {
    type Item = Inst;
    fn next(&mut self) -> Option<Inst> {
        self.0.next_inst()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsim_isa::prelude::*;

    struct CountGen {
        chunks_left: usize,
        per_chunk: usize,
    }

    impl ChunkGen for CountGen {
        fn next_chunk(&mut self, out: &mut Vec<Inst>) -> bool {
            if self.chunks_left == 0 {
                return false;
            }
            self.chunks_left -= 1;
            for _ in 0..self.per_chunk {
                out.push(Inst::int_rrr(IntOp::Add, int(1), int(2), int(3)));
            }
            true
        }
    }

    #[test]
    fn chunked_stream_delivers_all_instructions() {
        let mut s = ChunkedStream::new(CountGen {
            chunks_left: 5,
            per_chunk: 7,
        });
        let mut n = 0;
        while s.next_inst().is_some() {
            n += 1;
        }
        assert_eq!(n, 35);
        assert!(s.next_inst().is_none(), "stream stays finished");
    }

    #[test]
    fn empty_generator_yields_nothing() {
        let mut s = ChunkedStream::new(CountGen {
            chunks_left: 0,
            per_chunk: 9,
        });
        assert!(s.next_inst().is_none());
    }

    #[test]
    fn vec_stream_round_trip() {
        let insts = vec![
            Inst::int_rri(IntOp::Addi, int(1), int(0), 4),
            Inst::jump(0x40),
        ];
        let mut s = VecStream::new(insts.clone());
        assert_eq!(s.next_inst(), Some(insts[0]));
        assert_eq!(s.next_inst(), Some(insts[1]));
        assert_eq!(s.next_inst(), None);
    }

    #[test]
    fn stream_iter_adapts_streams_to_iterators() {
        let insts = vec![
            Inst::int_rri(IntOp::Addi, int(1), int(0), 4),
            Inst::int_rri(IntOp::Addi, int(2), int(1), 8),
            Inst::jump(0x40),
        ];
        let collected: Vec<Inst> = StreamIter(VecStream::new(insts.clone())).collect();
        assert_eq!(collected, insts);

        // Borrowed and boxed forms drive the same adapter.
        let mut s = VecStream::new(insts.clone());
        assert_eq!(StreamIter(&mut s).count(), 3);
        let boxed: Box<dyn InstStream> = Box::new(VecStream::new(insts));
        assert_eq!(StreamIter(boxed).count(), 3);
    }

    #[test]
    fn isa_labels() {
        assert_eq!(SimdIsa::Mmx.to_string(), "MMX");
        assert_eq!(SimdIsa::Mom.to_string(), "MOM");
    }

    #[test]
    fn clamp_stream_passes_short_instructions_through() {
        let insts = vec![
            Inst::int_rrr(IntOp::Add, int(1), int(2), int(3)),
            Inst::mom(MomOp::VaddW, stream(0), stream(1), stream(2), 4),
        ];
        let mut s = ClampStream::new(VecStream::new(insts.clone()), 8);
        assert_eq!(s.next_inst(), Some(insts[0]));
        assert_eq!(s.next_inst(), Some(insts[1]));
        assert_eq!(s.next_inst(), None);
    }

    #[test]
    fn clamp_stream_strip_mines_long_streams() {
        let inst = Inst::mom(MomOp::VaddW, stream(0), stream(1), stream(2), 16).at(0x100);
        let mut s = ClampStream::new(VecStream::new(vec![inst]), 4);
        let mut pieces = Vec::new();
        while let Some(i) = s.next_inst() {
            pieces.push(i);
        }
        // 4 chunks of 4 + 3 × (addi + branch) overhead = 10 instructions.
        assert_eq!(pieces.len(), 10);
        let total_vl: u64 = pieces
            .iter()
            .filter(|i| i.op.is_stream())
            .map(|i| u64::from(i.slen))
            .sum();
        assert_eq!(total_vl, 16, "work is preserved");
        assert!(pieces.iter().filter(|i| i.is_cond_branch()).count() == 3);
    }

    #[test]
    fn clamp_stream_splits_memory_addresses() {
        let inst = Inst::mom_load(stream(0), int(1), 0x1000, 64, 8).at(0x200);
        let mut s = ClampStream::new(VecStream::new(vec![inst]), 4);
        let mut loads = Vec::new();
        while let Some(i) = s.next_inst() {
            if let Some(m) = i.mem {
                loads.push(m);
            }
        }
        assert_eq!(loads.len(), 2);
        assert_eq!(loads[0].addr, 0x1000);
        assert_eq!(loads[0].count, 4);
        assert_eq!(
            loads[1].addr,
            0x1000 + 4 * 64,
            "second chunk starts after the first"
        );
        assert_eq!(loads[1].count, 4);
    }
}
