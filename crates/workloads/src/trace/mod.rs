//! Instruction-trace generation.
//!
//! Each benchmark is a [`ChunkGen`]: a generator that emits the
//! instruction stream of one *work unit* at a time (a macroblock row, a
//! speech frame, a group of triangles), walking the real kernel loop
//! nests over the modeled address space.
//!
//! Consumers pull instructions through one of two interfaces:
//!
//! * [`InstSource`] — the **block** interface the CPU model consumes:
//!   whole buffers of decoded instructions at a time (about
//!   [`BLOCK_INSTS`] each), so the per-instruction hot path is an
//!   indexed read with no virtual dispatch, and so a producer thread
//!   can ship blocks over a bounded ring to a consumer on another core
//!   (the sharded frontend in `medsim-core`). [`ChunkSource`] adapts a
//!   generator; [`VecSource`] replays a materialized trace by memcpy.
//! * [`InstStream`] — the original pull-per-instruction interface, kept
//!   for analysis consumers (mix counting, trace packing, tests).
//!   [`BlockStream`] views any source as a stream; [`StreamSource`]
//!   adapts the other way.
//!
//! Both interfaces deliver the exact same instruction sequence for the
//! same generator — block boundaries are invisible to consumers.
//!
//! Every generator comes in two vectorizations selected by [`SimdIsa`]:
//! MMX-style (packed ops with explicit unpack/pack and reduction trees,
//! plus the loop control to step through kernels 8 bytes at a time) and
//! MOM-style (stream instructions covering up to 16 element groups, with
//! packed-accumulator reductions and strided stream memory accesses).

pub mod emitter;
pub mod gsm_gen;
pub mod jpeg_gen;
pub mod mesa_gen;
pub mod mpeg2_gen;
pub mod scalar_phases;
pub mod simd_kernels;

use medsim_isa::Inst;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which μ-SIMD extension a trace is vectorized with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimdIsa {
    /// MMX-like packed μ-SIMD (67 opcodes, 32 registers).
    Mmx,
    /// MOM streaming μ-SIMD (121 opcodes, 16 stream registers).
    Mom,
}

impl SimdIsa {
    /// Both ISAs in the paper's presentation order.
    pub const ALL: [SimdIsa; 2] = [SimdIsa::Mmx, SimdIsa::Mom];

    /// Label used in experiment output.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            SimdIsa::Mmx => "MMX",
            SimdIsa::Mom => "MOM",
        }
    }
}

impl core::fmt::Display for SimdIsa {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// A source of decoded instructions (one software thread's trace).
///
/// `Send` is a supertrait so any boxed stream can be moved to a
/// producer thread by the sharded frontend.
pub trait InstStream: Send {
    /// Produce the next instruction, or `None` when the program ends.
    fn next_inst(&mut self) -> Option<Inst>;
}

/// Target instruction count of one block delivered by an
/// [`InstSource`]: large enough to amortize a virtual call and a ring
/// hand-off over ~1k instructions, small enough (64 KiB of `Inst`) to
/// stay cache-resident while the consumer drains it.
pub const BLOCK_INSTS: usize = 1024;

/// A **block-oriented** source of decoded instructions — the interface
/// the CPU model's fetch stage consumes.
///
/// `Send` is a supertrait so a source can be driven by a frontend
/// producer thread and its blocks shipped over a ring buffer.
pub trait InstSource: Send {
    /// Clear `out` and refill it with the next block of the program
    /// (about [`BLOCK_INSTS`] instructions; adapters that expand
    /// instructions may exceed it). Returns `true` iff at least one
    /// instruction was delivered; `false` means the program has ended
    /// and `out` is left empty.
    fn next_block(&mut self, out: &mut Vec<Inst>) -> bool;
}

/// A generator that emits instructions one work unit at a time.
pub trait ChunkGen {
    /// Emit the next work unit into `out`. Returns `false` when the
    /// program is finished (nothing was appended).
    fn next_chunk(&mut self, out: &mut Vec<Inst>) -> bool;
}

/// Adapts a [`ChunkGen`] into an [`InstSource`]: work units are packed
/// into ~[`BLOCK_INSTS`]-sized blocks with no intermediate buffering —
/// the generator appends straight into the consumer's block.
pub struct ChunkSource<G> {
    generator: G,
    finished: bool,
}

impl<G: ChunkGen + Send> ChunkSource<G> {
    /// Wrap a generator.
    pub fn new(generator: G) -> Self {
        ChunkSource {
            generator,
            finished: false,
        }
    }
}

impl<G: ChunkGen + Send> InstSource for ChunkSource<G> {
    fn next_block(&mut self, out: &mut Vec<Inst>) -> bool {
        out.clear();
        while !self.finished && out.len() < BLOCK_INSTS {
            if !self.generator.next_chunk(out) {
                self.finished = true;
            }
        }
        !out.is_empty()
    }
}

/// Views an [`InstSource`] as a pull-per-instruction [`InstStream`]
/// (analysis consumers: mix counting, trace packing, tests).
pub struct BlockStream<S> {
    source: S,
    block: Vec<Inst>,
    pos: usize,
    finished: bool,
}

impl<S: InstSource> BlockStream<S> {
    /// Wrap a source.
    pub fn new(source: S) -> Self {
        BlockStream {
            source,
            block: Vec::new(),
            pos: 0,
            finished: false,
        }
    }
}

impl<S: InstSource> InstStream for BlockStream<S> {
    fn next_inst(&mut self) -> Option<Inst> {
        loop {
            if let Some(&inst) = self.block.get(self.pos) {
                self.pos += 1;
                return Some(inst);
            }
            if self.finished {
                return None;
            }
            self.pos = 0;
            if !self.source.next_block(&mut self.block) {
                self.finished = true;
                self.block.clear();
            }
        }
    }
}

/// Adapts any [`InstStream`] into an [`InstSource`] by pulling up to
/// [`BLOCK_INSTS`] instructions per block (compatibility path for
/// per-instruction streams fed to the block-oriented pipeline).
pub struct StreamSource<S> {
    stream: S,
    finished: bool,
}

impl<S: InstStream> StreamSource<S> {
    /// Wrap a stream.
    pub fn new(stream: S) -> Self {
        StreamSource {
            stream,
            finished: false,
        }
    }
}

impl<S: InstStream> InstSource for StreamSource<S> {
    fn next_block(&mut self, out: &mut Vec<Inst>) -> bool {
        out.clear();
        while !self.finished && out.len() < BLOCK_INSTS {
            match self.stream.next_inst() {
                Some(inst) => out.push(inst),
                None => self.finished = true,
            }
        }
        !out.is_empty()
    }
}

/// An [`InstSource`] over a materialized instruction vector: blocks are
/// straight `memcpy` slices of the backing storage (the replay path for
/// freshly synthesized traces).
#[derive(Debug, Clone)]
pub struct VecSource {
    insts: Vec<Inst>,
    pos: usize,
}

impl VecSource {
    /// Source over `insts`.
    #[must_use]
    pub fn new(insts: Vec<Inst>) -> Self {
        VecSource { insts, pos: 0 }
    }
}

impl InstSource for VecSource {
    fn next_block(&mut self, out: &mut Vec<Inst>) -> bool {
        out.clear();
        let end = (self.pos + BLOCK_INSTS).min(self.insts.len());
        out.extend_from_slice(&self.insts[self.pos..end]);
        self.pos = end;
        !out.is_empty()
    }
}

/// Adapts a [`ChunkGen`] into an [`InstStream`] with bounded buffering
/// (a per-instruction view over [`ChunkSource`] blocks).
pub struct ChunkedStream<G> {
    inner: BlockStream<ChunkSource<G>>,
}

impl<G: ChunkGen + Send> ChunkedStream<G> {
    /// Wrap a generator.
    pub fn new(generator: G) -> Self {
        ChunkedStream {
            inner: BlockStream::new(ChunkSource::new(generator)),
        }
    }
}

impl<G: ChunkGen + Send> InstStream for ChunkedStream<G> {
    fn next_inst(&mut self) -> Option<Inst> {
        self.inner.next_inst()
    }
}

impl<S: InstStream + ?Sized> InstStream for Box<S> {
    fn next_inst(&mut self) -> Option<Inst> {
        (**self).next_inst()
    }
}

impl<S: InstStream + ?Sized + Send> InstStream for &mut S {
    fn next_inst(&mut self) -> Option<Inst> {
        (**self).next_inst()
    }
}

impl<S: InstSource + ?Sized> InstSource for Box<S> {
    fn next_block(&mut self, out: &mut Vec<Inst>) -> bool {
        (**self).next_block(out)
    }
}

/// An [`InstStream`] adapter that caps MOM stream lengths at `max_vl`,
/// strip-mining longer stream instructions into several shorter ones
/// plus the loop overhead a compiler would emit (ablation studies on
/// the benefit of long streams).
pub struct ClampStream<S> {
    inner: S,
    max_vl: u8,
    pending: VecDeque<Inst>,
}

impl<S: InstStream> ClampStream<S> {
    /// Wrap `inner`, capping stream lengths at `max_vl`.
    ///
    /// # Panics
    ///
    /// Panics if `max_vl` is zero.
    pub fn new(inner: S, max_vl: u8) -> Self {
        assert!(max_vl >= 1, "stream length cap must be at least 1");
        ClampStream {
            inner,
            max_vl,
            pending: VecDeque::new(),
        }
    }
}

/// Strip-mine one stream instruction into chunks of at most `max_vl`
/// element groups, with the index-update and loop-branch overhead a
/// compiler would emit between chunks. Instructions that need no
/// clamping are pushed through unchanged. Shared by [`ClampStream`] and
/// [`ClampSource`] so the two paths cannot diverge.
fn strip_mine_into(inst: Inst, max_vl: u8, push: &mut impl FnMut(Inst)) {
    use medsim_isa::prelude::*;
    if !inst.op.is_stream() || inst.slen <= max_vl {
        push(inst);
        return;
    }
    let mut remaining = inst.slen;
    let mut chunk_idx = 0u8;
    while remaining > 0 {
        let take = remaining.min(max_vl);
        let mut piece = inst.with_slen(take);
        if let Some(m) = inst.mem {
            let skip = u64::from(chunk_idx) * u64::from(max_vl);
            piece.mem = Some(medsim_isa::MemRef::stream(
                (m.addr as i64 + m.stride * skip as i64) as u64,
                m.size,
                m.stride,
                take,
                m.is_store,
            ));
        }
        push(piece);
        remaining -= take;
        chunk_idx += 1;
        if remaining > 0 {
            // Strip-mine loop overhead.
            push(Inst::int_rri(IntOp::Addi, int(21), int(21), 1).at(inst.pc + 4));
            push(Inst::branch(CtlOp::Bne, int(21), true, inst.pc).at(inst.pc + 8));
        }
    }
}

impl<S: InstStream> InstStream for ClampStream<S> {
    fn next_inst(&mut self) -> Option<Inst> {
        if let Some(i) = self.pending.pop_front() {
            return Some(i);
        }
        let inst = self.inner.next_inst()?;
        if !inst.op.is_stream() || inst.slen <= self.max_vl {
            return Some(inst);
        }
        let pending = &mut self.pending;
        strip_mine_into(inst, self.max_vl, &mut |i| pending.push_back(i));
        self.pending.pop_front()
    }
}

/// An [`InstSource`] adapter that caps MOM stream lengths at `max_vl`
/// block by block — the block-oriented twin of [`ClampStream`]
/// (ablation studies on the benefit of long streams).
pub struct ClampSource<S> {
    inner: S,
    max_vl: u8,
    inbuf: Vec<Inst>,
}

impl<S: InstSource> ClampSource<S> {
    /// Wrap `inner`, capping stream lengths at `max_vl`.
    ///
    /// # Panics
    ///
    /// Panics if `max_vl` is zero.
    pub fn new(inner: S, max_vl: u8) -> Self {
        assert!(max_vl >= 1, "stream length cap must be at least 1");
        ClampSource {
            inner,
            max_vl,
            inbuf: Vec::new(),
        }
    }
}

impl<S: InstSource> InstSource for ClampSource<S> {
    fn next_block(&mut self, out: &mut Vec<Inst>) -> bool {
        if !self.inner.next_block(&mut self.inbuf) {
            out.clear();
            return false;
        }
        out.clear();
        for &inst in &self.inbuf {
            strip_mine_into(inst, self.max_vl, &mut |i| out.push(i));
        }
        // Strip-mining only ever expands, so a non-empty input block
        // yields a non-empty output block.
        true
    }
}

/// An [`InstStream`] over a fixed instruction vector (tests, synthetic
/// microbenchmarks).
#[derive(Debug, Clone)]
pub struct VecStream {
    insts: std::vec::IntoIter<Inst>,
}

impl VecStream {
    /// Stream over `insts`.
    #[must_use]
    pub fn new(insts: Vec<Inst>) -> Self {
        VecStream {
            insts: insts.into_iter(),
        }
    }
}

impl InstStream for VecStream {
    fn next_inst(&mut self) -> Option<Inst> {
        self.insts.next()
    }
}

/// Adapts any [`InstStream`] into a standard [`Iterator`], so stream
/// consumers (trace packers, mix counters) can use iterator combinators
/// without materializing the trace. Works over owned streams, boxed
/// trait objects and `&mut` borrows alike.
pub struct StreamIter<S>(pub S);

impl<S: InstStream> Iterator for StreamIter<S> {
    type Item = Inst;
    fn next(&mut self) -> Option<Inst> {
        self.0.next_inst()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsim_isa::prelude::*;

    struct CountGen {
        chunks_left: usize,
        per_chunk: usize,
    }

    impl ChunkGen for CountGen {
        fn next_chunk(&mut self, out: &mut Vec<Inst>) -> bool {
            if self.chunks_left == 0 {
                return false;
            }
            self.chunks_left -= 1;
            for _ in 0..self.per_chunk {
                out.push(Inst::int_rrr(IntOp::Add, int(1), int(2), int(3)));
            }
            true
        }
    }

    #[test]
    fn chunked_stream_delivers_all_instructions() {
        let mut s = ChunkedStream::new(CountGen {
            chunks_left: 5,
            per_chunk: 7,
        });
        let mut n = 0;
        while s.next_inst().is_some() {
            n += 1;
        }
        assert_eq!(n, 35);
        assert!(s.next_inst().is_none(), "stream stays finished");
    }

    #[test]
    fn empty_generator_yields_nothing() {
        let mut s = ChunkedStream::new(CountGen {
            chunks_left: 0,
            per_chunk: 9,
        });
        assert!(s.next_inst().is_none());
    }

    #[test]
    fn vec_stream_round_trip() {
        let insts = vec![
            Inst::int_rri(IntOp::Addi, int(1), int(0), 4),
            Inst::jump(0x40),
        ];
        let mut s = VecStream::new(insts.clone());
        assert_eq!(s.next_inst(), Some(insts[0]));
        assert_eq!(s.next_inst(), Some(insts[1]));
        assert_eq!(s.next_inst(), None);
    }

    #[test]
    fn stream_iter_adapts_streams_to_iterators() {
        let insts = vec![
            Inst::int_rri(IntOp::Addi, int(1), int(0), 4),
            Inst::int_rri(IntOp::Addi, int(2), int(1), 8),
            Inst::jump(0x40),
        ];
        let collected: Vec<Inst> = StreamIter(VecStream::new(insts.clone())).collect();
        assert_eq!(collected, insts);

        // Borrowed and boxed forms drive the same adapter.
        let mut s = VecStream::new(insts.clone());
        assert_eq!(StreamIter(&mut s).count(), 3);
        let boxed: Box<dyn InstStream> = Box::new(VecStream::new(insts));
        assert_eq!(StreamIter(boxed).count(), 3);
    }

    #[test]
    fn chunk_source_packs_units_into_blocks() {
        // 5 chunks x 7 insts: well under one block => a single block.
        let mut s = ChunkSource::new(CountGen {
            chunks_left: 5,
            per_chunk: 7,
        });
        let mut block = Vec::new();
        assert!(s.next_block(&mut block));
        assert_eq!(block.len(), 35);
        assert!(!s.next_block(&mut block), "source stays finished");
        assert!(block.is_empty());

        // Enough chunks to exceed BLOCK_INSTS: blocks stop at the first
        // chunk boundary at or past the target.
        let mut s = ChunkSource::new(CountGen {
            chunks_left: 100,
            per_chunk: 300,
        });
        let mut total = 0usize;
        let mut blocks = 0usize;
        while s.next_block(&mut block) {
            assert!(block.len() >= 300, "blocks aggregate whole chunks");
            total += block.len();
            blocks += 1;
        }
        assert_eq!(total, 100 * 300);
        assert!(blocks > 1, "long programs span several blocks");
    }

    #[test]
    fn block_and_stream_adapters_preserve_the_sequence() {
        // Property-style: random instruction sequences round-trip
        // through every adapter composition bit-exactly.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0xb10c);
        for case in 0..32 {
            let n = rng.gen_range(0..3000usize);
            let insts: Vec<Inst> = (0..n)
                .map(|i| {
                    let imm: i32 = rng.gen_range(-9000..9000);
                    Inst::int_rri(IntOp::Addi, int((i % 30) as u8 + 1), int(0), imm)
                        .at(4 * i as u64)
                })
                .collect();
            // VecSource -> BlockStream == the original sequence.
            let via_source: Vec<Inst> =
                StreamIter(BlockStream::new(VecSource::new(insts.clone()))).collect();
            assert_eq!(via_source, insts, "case {case}: VecSource/BlockStream");
            // VecStream -> StreamSource -> BlockStream == identity too.
            let round: Vec<Inst> = StreamIter(BlockStream::new(StreamSource::new(VecStream::new(
                insts.clone(),
            ))))
            .collect();
            assert_eq!(round, insts, "case {case}: StreamSource round trip");
        }
    }

    #[test]
    fn clamp_source_matches_clamp_stream() {
        // The block-oriented clamp must emit exactly the per-inst
        // clamp's sequence for a stream-heavy mixed program.
        let mut insts = Vec::new();
        for i in 0..200u64 {
            insts.push(Inst::mom_load(stream(0), int(1), 0x1000 + i * 64, 8, 16).at(0x100 + 4 * i));
            insts.push(
                Inst::mom(
                    MomOp::VaddW,
                    stream(1),
                    stream(0),
                    stream(0),
                    (i % 16 + 1) as u8,
                )
                .at(0x104 + 4 * i),
            );
            insts.push(Inst::int_rrr(IntOp::Add, int(1), int(2), int(3)).at(0x108 + 4 * i));
        }
        for max_vl in [1u8, 3, 4, 8, 15] {
            let a: Vec<Inst> =
                StreamIter(ClampStream::new(VecStream::new(insts.clone()), max_vl)).collect();
            let b: Vec<Inst> = StreamIter(BlockStream::new(ClampSource::new(
                VecSource::new(insts.clone()),
                max_vl,
            )))
            .collect();
            assert_eq!(a, b, "max_vl={max_vl}");
        }
    }

    #[test]
    fn isa_labels() {
        assert_eq!(SimdIsa::Mmx.to_string(), "MMX");
        assert_eq!(SimdIsa::Mom.to_string(), "MOM");
    }

    #[test]
    fn clamp_stream_passes_short_instructions_through() {
        let insts = vec![
            Inst::int_rrr(IntOp::Add, int(1), int(2), int(3)),
            Inst::mom(MomOp::VaddW, stream(0), stream(1), stream(2), 4),
        ];
        let mut s = ClampStream::new(VecStream::new(insts.clone()), 8);
        assert_eq!(s.next_inst(), Some(insts[0]));
        assert_eq!(s.next_inst(), Some(insts[1]));
        assert_eq!(s.next_inst(), None);
    }

    #[test]
    fn clamp_stream_strip_mines_long_streams() {
        let inst = Inst::mom(MomOp::VaddW, stream(0), stream(1), stream(2), 16).at(0x100);
        let mut s = ClampStream::new(VecStream::new(vec![inst]), 4);
        let mut pieces = Vec::new();
        while let Some(i) = s.next_inst() {
            pieces.push(i);
        }
        // 4 chunks of 4 + 3 × (addi + branch) overhead = 10 instructions.
        assert_eq!(pieces.len(), 10);
        let total_vl: u64 = pieces
            .iter()
            .filter(|i| i.op.is_stream())
            .map(|i| u64::from(i.slen))
            .sum();
        assert_eq!(total_vl, 16, "work is preserved");
        assert!(pieces.iter().filter(|i| i.is_cond_branch()).count() == 3);
    }

    #[test]
    fn clamp_stream_splits_memory_addresses() {
        let inst = Inst::mom_load(stream(0), int(1), 0x1000, 64, 8).at(0x200);
        let mut s = ClampStream::new(VecStream::new(vec![inst]), 4);
        let mut loads = Vec::new();
        while let Some(i) = s.next_inst() {
            if let Some(m) = i.mem {
                loads.push(m);
            }
        }
        assert_eq!(loads.len(), 2);
        assert_eq!(loads[0].addr, 0x1000);
        assert_eq!(loads[0].count, 4);
        assert_eq!(
            loads[1].addr,
            0x1000 + 4 * 64,
            "second chunk starts after the first"
        );
        assert_eq!(loads[1].count, 4);
    }
}
