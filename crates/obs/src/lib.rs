//! # medsim-obs — zero-cost-when-off observability
//!
//! The simulator's structured event layer. Three pieces:
//!
//! * **Knobs** — process-wide switches resolved once from the
//!   environment (`MEDSIM_TRACE_EVENTS`, `MEDSIM_SAMPLE_CYCLES`,
//!   `MEDSIM_REPORT_JSON`), with programmatic [`set_trace`] /
//!   [`set_sample_cycles`] / [`set_report_path`] overrides so
//!   integration tests can flip them without touching the
//!   environment.
//! * **Event sink** — a bounded process-global buffer of
//!   [`Event`]s. Every emission site in the simulator sits behind an
//!   `if obs::tracing()` branch, so with the knob off the entire
//!   subsystem is one relaxed atomic load per site — proven
//!   bitwise-invisible by the equivalence suites and priced by the
//!   gated `obs_off_overhead` bench row.
//! * **Chrome export** — [`chrome_trace_json`] renders drained events
//!   as Chrome `trace_event` JSON (the object form, with a schema
//!   tag), loadable in Perfetto / `chrome://tracing`.
//!
//! The sink is process-global: one simulation run is the intended
//! scope. When several runs trace into the same process (e.g. a grid
//! sweep), their events interleave in the buffer and the last run to
//! write a trace file wins the path.
//!
//! This crate is dependency-free and sits below `medsim-cpu` /
//! `medsim-mem` / `medsim-core`, which call into it from their hot
//! paths. It also carries a tiny JSON validator ([`validate_json`])
//! used by the schema-shape tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once};

// ---------------------------------------------------------------------------
// Knobs
// ---------------------------------------------------------------------------

/// Default trace output path when `MEDSIM_TRACE_EVENTS=1`.
pub const DEFAULT_TRACE_PATH: &str = "medsim_trace.json";
/// Default report output path when `MEDSIM_REPORT_JSON=1`.
pub const DEFAULT_REPORT_PATH: &str = "medsim_run_report.json";

static INIT: Once = Once::new();
static TRACE_ON: AtomicBool = AtomicBool::new(false);
static SAMPLE_CYCLES: AtomicU64 = AtomicU64::new(0);
static PATHS: Mutex<Paths> = Mutex::new(Paths {
    trace: None,
    report: None,
});

#[derive(Debug, Clone)]
struct Paths {
    trace: Option<String>,
    report: Option<String>,
}

/// `MEDSIM_TRACE_EVENTS` semantics: unset/`0`/`off`/`false` → off;
/// `1`/`on`/`true` → on, default path; anything else → on, the value
/// is the output path.
fn parse_trace_knob(v: Option<&str>) -> (bool, Option<String>) {
    match v.map(str::trim) {
        None | Some("" | "0" | "off" | "false") => (false, None),
        Some("1" | "on" | "true") => (true, Some(DEFAULT_TRACE_PATH.to_string())),
        Some(path) => (true, Some(path.to_string())),
    }
}

/// `MEDSIM_SAMPLE_CYCLES` semantics: a positive integer enables the
/// interval sampler at that period; unset/`0`/unparsable → off.
fn parse_sample_knob(v: Option<&str>) -> u64 {
    v.and_then(|s| s.trim().parse::<u64>().ok()).unwrap_or(0)
}

/// `MEDSIM_REPORT_JSON` semantics: unset/`0`/`off`/`false` → off;
/// `1`/`on`/`true` → default path; anything else → the value is the
/// output path.
fn parse_report_knob(v: Option<&str>) -> Option<String> {
    match v.map(str::trim) {
        None | Some("" | "0" | "off" | "false") => None,
        Some("1" | "on" | "true") => Some(DEFAULT_REPORT_PATH.to_string()),
        Some(path) => Some(path.to_string()),
    }
}

fn init() {
    INIT.call_once(|| {
        let (on, trace_path) =
            parse_trace_knob(std::env::var("MEDSIM_TRACE_EVENTS").ok().as_deref());
        TRACE_ON.store(on, Ordering::Relaxed);
        SAMPLE_CYCLES.store(
            parse_sample_knob(std::env::var("MEDSIM_SAMPLE_CYCLES").ok().as_deref()),
            Ordering::Relaxed,
        );
        let report = parse_report_knob(std::env::var("MEDSIM_REPORT_JSON").ok().as_deref());
        let mut p = PATHS.lock().unwrap_or_else(|e| e.into_inner());
        p.trace = trace_path;
        p.report = report;
    });
}

/// Whether event tracing is on. The only check emission sites make —
/// one `Once` fast-path load plus one relaxed atomic load; everything
/// heavier hides behind it.
#[inline]
pub fn tracing() -> bool {
    init();
    TRACE_ON.load(Ordering::Relaxed)
}

/// Interval-sampler period in cycles; `0` means sampling is off.
#[inline]
pub fn sample_cycles() -> u64 {
    init();
    SAMPLE_CYCLES.load(Ordering::Relaxed)
}

/// Where the machine layer should write the Chrome trace at run end,
/// if anywhere. `None` with [`tracing`] on means "buffer only" — the
/// mode the schema-shape tests use to drain events themselves.
pub fn trace_path() -> Option<String> {
    init();
    PATHS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .trace
        .clone()
}

/// Where the machine layer should write the per-run JSON report, if
/// anywhere.
pub fn report_path() -> Option<String> {
    init();
    PATHS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .report
        .clone()
}

/// Whether any observability output is active — event tracing, the
/// interval sampler, or the per-run JSON report. The result cache
/// consults this to bypass warm hits: a run that never executes has no
/// timeline, samples or roofline to emit, so observed runs must always
/// simulate.
#[must_use]
pub fn observing() -> bool {
    tracing() || sample_cycles() > 0 || report_path().is_some()
}

/// Programmatic override of the trace knob (tests; last caller wins).
/// `path: None` keeps events in the buffer instead of writing a file.
pub fn set_trace(on: bool, path: Option<&str>) {
    init();
    TRACE_ON.store(on, Ordering::Relaxed);
    PATHS.lock().unwrap_or_else(|e| e.into_inner()).trace = path.map(str::to_string);
}

/// Programmatic override of the sampler period (tests; `0` disables).
pub fn set_sample_cycles(n: u64) {
    init();
    SAMPLE_CYCLES.store(n, Ordering::Relaxed);
}

/// Programmatic override of the report path (tests).
pub fn set_report_path(path: Option<&str>) {
    init();
    PATHS.lock().unwrap_or_else(|e| e.into_inner()).report = path.map(str::to_string);
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Synthetic lane id for machine-level events (run + quantum spans).
pub const LANE_MACHINE: u32 = u32::MAX;
/// Synthetic lane id for frontend worker events (ring stalls, budget
/// waits) — they happen on host worker threads, not on a core.
pub const LANE_FRONTEND: u32 = u32::MAX - 1;
/// Synthetic lane id for the shared L2/DRAM backend.
pub const LANE_SHARED_MEM: u32 = u32::MAX - 2;

/// What happened. One variant per emission site class; the meaning of
/// [`Event::arg`] depends on the kind (documented per variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Instructions fetched this cycle on a core (`arg` = count).
    Fetch,
    /// Instructions issued this cycle on a core (`arg` = count).
    Issue,
    /// Instructions committed this cycle on a core (`arg` = count).
    Commit,
    /// L1 data-cache miss (`arg` = address).
    L1Miss,
    /// Shared/backend L2 miss (`arg` = line address).
    L2Miss,
    /// DRAM channel access (`arg` = 0 read, 1 write).
    DramAccess,
    /// A multi-cycle quantum round begins (`arg` = quantum length).
    QuantumBegin,
    /// The quantum round's merge finished (`arg` = replayed ops).
    QuantumEnd,
    /// A core parked at the quantum edge (`arg` = 0 backend-reply
    /// cause, 1 store-evict cause).
    Park,
    /// A core blocked on an empty frontend ring (`arg` = 0).
    RingStall,
    /// A frontend fell back to inline synthesis because the job
    /// budget was dry (`arg` = 0).
    BudgetWait,
    /// A machine run begins (`arg` = core count).
    RunBegin,
    /// A machine run ends (`arg` = total cycles).
    RunEnd,
    /// The decoupled vector-fetch unit issued stream elements ahead of
    /// execute this cycle (`arg` = element count).
    VfetchIssue,
    /// A redirect flushed a thread's run-ahead state (`arg` = discarded
    /// early-issued elements).
    VfetchFlush,
}

/// One traced occurrence. 24 bytes; the sink caps at
/// [`EVENT_CAP`] events and counts drops past that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulated cycle (host-approximate for frontend lanes).
    pub ts: u64,
    /// Core index, or one of the `LANE_*` synthetic lanes.
    pub lane: u32,
    /// What happened.
    pub kind: EventKind,
    /// Kind-dependent payload (see [`EventKind`]).
    pub arg: u64,
}

/// Sink capacity; beyond it events are counted as dropped, not stored.
pub const EVENT_CAP: usize = 1 << 20;

struct Sink {
    events: Vec<Event>,
    dropped: u64,
}

static SINK: Mutex<Sink> = Mutex::new(Sink {
    events: Vec::new(),
    dropped: 0,
});

/// Latest cycle any core reported while tracing — gives frontend-lane
/// events (which fire on host worker threads) an approximate
/// timestamp. A relaxed hint, not a clock.
static NOW_HINT: AtomicU64 = AtomicU64::new(0);

/// Record the current cycle of a core so off-core lanes can
/// timestamp approximately. Call only under [`tracing`].
#[inline]
pub fn note_cycle(now: u64) {
    NOW_HINT.store(now, Ordering::Relaxed);
}

/// The last cycle noted via [`note_cycle`] (0 before any).
#[inline]
pub fn approx_now() -> u64 {
    NOW_HINT.load(Ordering::Relaxed)
}

/// Append one event to the sink. Emission sites call this only under
/// an `if obs::tracing()` branch; calling it with tracing off is
/// harmless but buffers the event anyway.
pub fn emit(ts: u64, lane: u32, kind: EventKind, arg: u64) {
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if sink.events.len() >= EVENT_CAP {
        sink.dropped += 1;
        return;
    }
    sink.events.push(Event {
        ts,
        lane,
        kind,
        arg,
    });
}

/// Take all buffered events (and the drop count), leaving the sink
/// empty for the next run.
pub fn drain_events() -> (Vec<Event>, u64) {
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    let dropped = sink.dropped;
    sink.dropped = 0;
    (std::mem::take(&mut sink.events), dropped)
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

fn lane_tid(lane: u32) -> u64 {
    match lane {
        LANE_MACHINE => 1000,
        LANE_FRONTEND => 1001,
        LANE_SHARED_MEM => 1002,
        core => u64::from(core),
    }
}

fn event_name(kind: EventKind) -> &'static str {
    match kind {
        EventKind::Fetch => "fetch",
        EventKind::Issue => "issue",
        EventKind::Commit => "commit",
        EventKind::L1Miss => "l1_miss",
        EventKind::L2Miss => "l2_miss",
        EventKind::DramAccess => "dram",
        EventKind::QuantumBegin | EventKind::QuantumEnd => "quantum",
        EventKind::Park => "park",
        EventKind::RingStall => "ring_stall",
        EventKind::BudgetWait => "budget_wait",
        EventKind::RunBegin | EventKind::RunEnd => "run",
        EventKind::VfetchIssue => "vfetch_issue",
        EventKind::VfetchFlush => "vfetch_flush",
    }
}

fn event_phase(kind: EventKind) -> &'static str {
    match kind {
        EventKind::QuantumBegin | EventKind::RunBegin => "B",
        EventKind::QuantumEnd | EventKind::RunEnd => "E",
        _ => "i",
    }
}

/// Render events as Chrome `trace_event` JSON (object form). Events
/// are stably sorted by timestamp, so `ts` is monotonically
/// non-decreasing in the output and same-cycle events keep emission
/// order — which is what keeps B/E span pairs properly nested.
/// Cycles map 1:1 onto the format's microsecond timestamps.
pub fn chrome_trace_json(events: &[Event], dropped: u64) -> String {
    let mut sorted: Vec<&Event> = events.iter().collect();
    sorted.sort_by_key(|e| e.ts);
    let mut out = String::with_capacity(64 + sorted.len() * 96);
    out.push_str("{\n  \"schema\": \"medsim-chrome-trace/v1\",\n");
    out.push_str(&format!("  \"droppedEvents\": {dropped},\n"));
    out.push_str("  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [");
    for (i, e) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        let name = event_name(e.kind);
        let ph = event_phase(e.kind);
        let tid = lane_tid(e.lane);
        let ts = e.ts;
        let arg = e.arg;
        if ph == "i" {
            out.push_str(&format!(
                "{{\"name\": \"{name}\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {ts}, \
                 \"pid\": 1, \"tid\": {tid}, \"args\": {{\"v\": {arg}}}}}"
            ));
        } else {
            out.push_str(&format!(
                "{{\"name\": \"{name}\", \"ph\": \"{ph}\", \"ts\": {ts}, \
                 \"pid\": 1, \"tid\": {tid}, \"args\": {{\"v\": {arg}}}}}"
            ));
        }
    }
    out.push_str("\n  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// JSON helpers (shared by the report writers and the shape tests)
// ---------------------------------------------------------------------------

/// Escape a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as JSON: finite values print plainly, non-finite
/// ones (JSON has no NaN/Inf) as `null`.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Validate that `s` is one well-formed JSON value (full parse, no
/// trailing garbage). A minimal recursive-descent checker for the
/// schema-shape tests — structure only, no value extraction.
///
/// # Errors
///
/// Returns a byte offset and message for the first syntax error.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    parse_value(b, &mut pos, 0)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

const MAX_DEPTH: usize = 64;

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}")),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(format!("bad number at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let mut exp = 0;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(format!("bad number at byte {start}"));
        }
    }
    Ok(())
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b.get(*pos), Some(&b'"'));
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {pos}"));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte in string at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos, depth + 1)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos, depth + 1)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_knob_parses_all_forms() {
        assert_eq!(parse_trace_knob(None), (false, None));
        assert_eq!(parse_trace_knob(Some("0")), (false, None));
        assert_eq!(parse_trace_knob(Some("off")), (false, None));
        assert_eq!(parse_trace_knob(Some("false")), (false, None));
        assert_eq!(parse_trace_knob(Some("")), (false, None));
        assert_eq!(
            parse_trace_knob(Some("1")),
            (true, Some(DEFAULT_TRACE_PATH.to_string()))
        );
        assert_eq!(
            parse_trace_knob(Some("on")),
            (true, Some(DEFAULT_TRACE_PATH.to_string()))
        );
        assert_eq!(
            parse_trace_knob(Some("/tmp/t.json")),
            (true, Some("/tmp/t.json".to_string()))
        );
    }

    #[test]
    fn sample_and_report_knobs_parse() {
        assert_eq!(parse_sample_knob(None), 0);
        assert_eq!(parse_sample_knob(Some("0")), 0);
        assert_eq!(parse_sample_knob(Some("nope")), 0);
        assert_eq!(parse_sample_knob(Some("5000")), 5000);
        assert_eq!(parse_report_knob(None), None);
        assert_eq!(parse_report_knob(Some("off")), None);
        assert_eq!(
            parse_report_knob(Some("1")),
            Some(DEFAULT_REPORT_PATH.to_string())
        );
        assert_eq!(
            parse_report_knob(Some("r.json")),
            Some("r.json".to_string())
        );
    }

    #[test]
    fn sink_drains_and_counts_drops() {
        // The sink is process-global; this test owns it because the
        // other tests in this crate never emit.
        let _ = drain_events();
        emit(3, 0, EventKind::Commit, 4);
        emit(1, LANE_MACHINE, EventKind::RunBegin, 1);
        let (events, dropped) = drain_events();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Commit);
        let (empty, _) = drain_events();
        assert!(empty.is_empty());
    }

    #[test]
    fn chrome_export_sorts_and_validates() {
        let events = vec![
            Event {
                ts: 0,
                lane: LANE_MACHINE,
                kind: EventKind::RunBegin,
                arg: 2,
            },
            Event {
                ts: 9,
                lane: 1,
                kind: EventKind::Commit,
                arg: 3,
            },
            Event {
                ts: 4,
                lane: 0,
                kind: EventKind::L1Miss,
                arg: 0xdead,
            },
            Event {
                ts: 9,
                lane: LANE_MACHINE,
                kind: EventKind::RunEnd,
                arg: 9,
            },
        ];
        let json = chrome_trace_json(&events, 1);
        validate_json(&json).expect("chrome export must be valid JSON");
        assert!(json.contains("\"schema\": \"medsim-chrome-trace/v1\""));
        assert!(json.contains("\"droppedEvents\": 1"));
        // Sorted: the ts=4 instant must appear before the ts=9 ones.
        let a = json.find("\"ts\": 4").unwrap();
        let b = json.find("\"ts\": 9").unwrap();
        assert!(a < b);
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate_json("{}").unwrap();
        validate_json("[1, 2.5, -3e4, \"a\\n\", true, null, {\"k\": []}]").unwrap();
        assert!(validate_json("").is_err());
        assert!(validate_json("{").is_err());
        assert!(validate_json("[1,]").is_err());
        assert!(validate_json("{\"a\" 1}").is_err());
        assert!(validate_json("01abc").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("{} trailing").is_err());
    }

    #[test]
    fn escape_and_f64_helpers() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
