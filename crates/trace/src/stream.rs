//! Streaming decoder: packed traces as [`InstStream`]s.
//!
//! [`PackedStream`] owns an `Arc<PackedTrace>` and decodes it in fixed
//! chunks into a small ring buffer, so the CPU model replays a packed
//! trace with no per-run materialization — the resident cost of a
//! cached program is its packed bytes, not 64 B per instruction.

use crate::packed::{Cursor, PackedTrace};
use medsim_isa::Inst;
use medsim_workloads::trace::InstStream;
use std::sync::Arc;

/// Instructions decoded per refill: large enough to amortize the
/// decode-loop setup, small enough to live in L1.
const CHUNK: usize = 256;

/// An [`InstStream`] that decodes a shared [`PackedTrace`] chunk by
/// chunk.
pub struct PackedStream {
    trace: Arc<PackedTrace>,
    cursor: Cursor,
    buf: Vec<Inst>,
    /// Read position inside `buf`.
    pos: usize,
}

impl PackedStream {
    /// Stream over `trace` from the beginning.
    #[must_use]
    pub fn new(trace: Arc<PackedTrace>) -> Self {
        PackedStream {
            trace,
            cursor: Cursor::new(),
            buf: Vec::with_capacity(CHUNK),
            pos: 0,
        }
    }

    /// The shared trace this stream decodes.
    #[must_use]
    pub fn trace(&self) -> &Arc<PackedTrace> {
        &self.trace
    }

    fn refill(&mut self) {
        self.buf.clear();
        self.pos = 0;
        for _ in 0..CHUNK {
            // Packs are validated at construction; decode cannot fail.
            match self.cursor.next(&self.trace) {
                Ok(Some(inst)) => self.buf.push(inst),
                Ok(None) => break,
                Err(e) => {
                    debug_assert!(false, "corrupt packed trace: {e}");
                    break;
                }
            }
        }
    }
}

impl InstStream for PackedStream {
    fn next_inst(&mut self) -> Option<Inst> {
        if self.pos == self.buf.len() {
            self.refill();
        }
        let inst = self.buf.get(self.pos).copied();
        self.pos += inst.is_some() as usize;
        inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsim_isa::prelude::*;

    fn trace_of(n: u64) -> (Vec<Inst>, Arc<PackedTrace>) {
        let mut insts = Vec::new();
        for i in 0..n {
            insts.push(Inst::int_rri(IntOp::Addi, int(1), int(1), 1).at(i * 4));
            if i % 7 == 0 {
                insts.push(Inst::load(MemOp::LoadW, int(2), int(1), 0x1000 + i * 8).at(i * 4 + 4));
            }
        }
        let packed = Arc::new(PackedTrace::pack(insts.iter().copied()));
        (insts, packed)
    }

    #[test]
    fn streams_the_whole_trace_in_order() {
        // Lengths straddling the chunk size, including 0 and exact
        // multiples.
        for n in [0u64, 1, 100, 255, 256, 257, 1000] {
            let (insts, packed) = trace_of(n);
            let mut s = PackedStream::new(packed);
            let mut got = Vec::new();
            while let Some(i) = s.next_inst() {
                got.push(i);
            }
            assert_eq!(got, insts, "n={n}");
            assert!(s.next_inst().is_none(), "stream stays finished");
        }
    }

    #[test]
    fn many_streams_share_one_trace() {
        let (insts, packed) = trace_of(300);
        let mut a = PackedStream::new(Arc::clone(&packed));
        let mut b = PackedStream::new(Arc::clone(&packed));
        // Interleave two readers: independent cursors, shared bytes.
        for inst in &insts {
            assert_eq!(a.next_inst().as_ref(), Some(inst));
        }
        for inst in &insts {
            assert_eq!(b.next_inst().as_ref(), Some(inst));
        }
        assert_eq!(Arc::strong_count(&packed), 3);
    }
}
