//! Streaming decoder: packed traces as block [`InstSource`]s.
//!
//! [`PackedStream`] owns an `Arc<PackedTrace>` and decodes it block by
//! block, so the CPU model replays a packed trace with no per-run
//! materialization — the resident cost of a cached program is its
//! packed bytes, not 64 B per instruction.
//!
//! The primary interface is [`PackedStream::next_block_into`]: a whole
//! block of instructions decoded straight into a caller-owned, reused
//! buffer. The decode loop memoizes the per-word architectural decode
//! in a [`DecodeCache`] — media traces are loop nests, so nearly every
//! dynamic instruction hits the memo and replay approaches a `memcpy`
//! plus the sidecar's dynamic-field patches. The per-instruction
//! [`InstStream`] view remains for analysis consumers.

use crate::packed::{Cursor, DecodeCache, PackedTrace};
use medsim_isa::Inst;
use medsim_workloads::trace::{InstSource, InstStream, BLOCK_INSTS};
use std::sync::Arc;

/// An [`InstSource`] (and [`InstStream`]) that decodes a shared
/// [`PackedTrace`] block by block.
pub struct PackedStream {
    trace: Arc<PackedTrace>,
    cursor: Cursor,
    cache: DecodeCache,
    /// Buffer backing the per-instruction [`InstStream`] view.
    buf: Vec<Inst>,
    /// Read position inside `buf`.
    pos: usize,
}

impl PackedStream {
    /// Stream over `trace` from the beginning.
    #[must_use]
    pub fn new(trace: Arc<PackedTrace>) -> Self {
        PackedStream {
            trace,
            cursor: Cursor::new(),
            cache: DecodeCache::new(),
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// The shared trace this stream decodes.
    #[must_use]
    pub fn trace(&self) -> &Arc<PackedTrace> {
        &self.trace
    }

    /// Decode the next block of instructions into `out` (cleared
    /// first), reusing its capacity. Returns `false` at the end of the
    /// trace. Mixing with [`InstStream::next_inst`] is allowed: any
    /// instructions already buffered for the per-inst view are
    /// delivered first, so the overall sequence is preserved.
    pub fn next_block_into(&mut self, out: &mut Vec<Inst>) -> bool {
        out.clear();
        if self.pos < self.buf.len() {
            out.extend_from_slice(&self.buf[self.pos..]);
            self.buf.clear();
            self.pos = 0;
            return true;
        }
        // Packs are validated at construction; decode cannot fail.
        match self
            .cursor
            .decode_block(&self.trace, &mut self.cache, out, BLOCK_INSTS)
        {
            Ok(n) => n > 0,
            Err(e) => {
                debug_assert!(false, "corrupt packed trace: {e}");
                false
            }
        }
    }

    fn refill(&mut self) {
        self.buf.clear();
        self.pos = 0;
        match self
            .cursor
            .decode_block(&self.trace, &mut self.cache, &mut self.buf, BLOCK_INSTS)
        {
            Ok(_) => {}
            Err(e) => debug_assert!(false, "corrupt packed trace: {e}"),
        }
    }
}

impl InstSource for PackedStream {
    fn next_block(&mut self, out: &mut Vec<Inst>) -> bool {
        self.next_block_into(out)
    }
}

impl InstStream for PackedStream {
    fn next_inst(&mut self) -> Option<Inst> {
        if self.pos == self.buf.len() {
            self.refill();
        }
        let inst = self.buf.get(self.pos).copied();
        self.pos += inst.is_some() as usize;
        inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsim_isa::prelude::*;

    fn trace_of(n: u64) -> (Vec<Inst>, Arc<PackedTrace>) {
        let mut insts = Vec::new();
        for i in 0..n {
            insts.push(Inst::int_rri(IntOp::Addi, int(1), int(1), 1).at(i * 4));
            if i % 7 == 0 {
                insts.push(Inst::load(MemOp::LoadW, int(2), int(1), 0x1000 + i * 8).at(i * 4 + 4));
            }
            if i % 11 == 0 {
                insts.push(Inst::branch(CtlOp::Bne, int(2), i % 22 == 0, i * 4).at(i * 4 + 8));
            }
            if i % 13 == 0 {
                // Oversized immediate: exercises the RAW_IMM sidecar.
                insts.push(Inst::int_rri(IntOp::Addi, int(3), int(0), 1 << 20).at(i * 4 + 12));
            }
        }
        let packed = Arc::new(PackedTrace::pack(insts.iter().copied()));
        (insts, packed)
    }

    #[test]
    fn streams_the_whole_trace_in_order() {
        // Lengths straddling the block size, including 0 and exact
        // multiples.
        for n in [0u64, 1, 100, 1023, 1024, 1025, 5000] {
            let (insts, packed) = trace_of(n);
            let mut s = PackedStream::new(packed);
            let mut got = Vec::new();
            while let Some(i) = s.next_inst() {
                got.push(i);
            }
            assert_eq!(got, insts, "n={n}");
            assert!(s.next_inst().is_none(), "stream stays finished");
        }
    }

    #[test]
    fn block_decode_matches_per_inst_decode() {
        for n in [0u64, 1, 500, 1024, 4000] {
            let (insts, packed) = trace_of(n);
            let mut s = PackedStream::new(packed);
            let mut got = Vec::new();
            let mut block = Vec::new();
            while s.next_block_into(&mut block) {
                assert!(!block.is_empty(), "true delivery is non-empty");
                got.extend_from_slice(&block);
            }
            assert_eq!(got, insts, "n={n}");
            assert!(!s.next_block_into(&mut block), "source stays finished");
            assert!(block.is_empty());
        }
    }

    #[test]
    fn mixing_per_inst_and_block_reads_preserves_the_sequence() {
        let (insts, packed) = trace_of(3000);
        let mut s = PackedStream::new(packed);
        let mut got = Vec::new();
        let mut block = Vec::new();
        // A few per-inst pulls buffer a block internally...
        for _ in 0..10 {
            got.push(s.next_inst().expect("trace long enough"));
        }
        // ...then block reads must first drain that buffer.
        while s.next_block_into(&mut block) {
            got.extend_from_slice(&block);
        }
        assert_eq!(got, insts);
    }

    #[test]
    fn many_streams_share_one_trace() {
        let (insts, packed) = trace_of(300);
        let mut a = PackedStream::new(Arc::clone(&packed));
        let mut b = PackedStream::new(Arc::clone(&packed));
        // Interleave two readers: independent cursors, shared bytes.
        for inst in &insts {
            assert_eq!(a.next_inst().as_ref(), Some(inst));
        }
        for inst in &insts {
            assert_eq!(b.next_inst().as_ref(), Some(inst));
        }
        assert_eq!(Arc::strong_count(&packed), 3);
    }
}
