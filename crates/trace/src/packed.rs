//! The packed trace encoding.
//!
//! Each instruction is stored as two pieces:
//!
//! * its **64-bit architectural word** from [`medsim_isa::encode`]
//!   (opcode, registers, 14-bit immediate, stream length) in a dense
//!   `Vec<u64>`;
//! * a variable-length **sidecar record** carrying the dynamic trace
//!   fields a timing simulator needs: the PC (delta-encoded, free for
//!   sequential code), the effective address (delta against a
//!   stride-advanced predictor, so unit-stride streams cost one byte),
//!   the branch outcome (one flag bit plus a target delta) and the
//!   memory-access shape (size/stride/count, with the common cases
//!   elided entirely).
//!
//! The flags byte that leads every sidecar record:
//!
//! ```text
//! bit 0  HAS_MEM        a MemRef record follows
//! bit 1  HAS_BRANCH     a BranchInfo record follows
//! bit 2  BRANCH_TAKEN   dynamic outcome of the branch
//! bit 3  MEM_IS_STORE   the access writes memory
//! bit 4  RAW_IMM        immediate outside 14 bits; i32 follows
//! bit 5  PC_SEQ         pc == prev_pc + 4 (no PC bytes)
//! bit 6  MEM_SIZE8      mem.size == 8 (no size byte)
//! bit 7  MEM_CNT_SLEN   mem.count == slen (no count byte)
//! ```
//!
//! The encoding is **lossless**: `unpack(pack(t)) == t` for any `Inst`
//! sequence, including immediates beyond the architectural field (they
//! ride in the sidecar) — property-tested in this module and fuzzed in
//! `tests/roundtrip.rs`.

use medsim_isa::encode::{decode, decode_at, encode_lossy_imm, DecodeInstError};
use medsim_isa::{BranchInfo, Inst, MemRef};

const HAS_MEM: u8 = 1 << 0;
const HAS_BRANCH: u8 = 1 << 1;
const BRANCH_TAKEN: u8 = 1 << 2;
const MEM_IS_STORE: u8 = 1 << 3;
const RAW_IMM: u8 = 1 << 4;
const PC_SEQ: u8 = 1 << 5;
const MEM_SIZE8: u8 = 1 << 6;
const MEM_CNT_SLEN: u8 = 1 << 7;

/// The decoder's initial PC predictor: chosen so an instruction at
/// PC 0 still counts as sequential.
const PC_INIT: u64 = 0u64.wrapping_sub(4);

/// Errors surfaced when reconstructing a [`PackedTrace`] from raw parts
/// (an on-disk payload) that do not describe a valid trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackError {
    /// An architectural word failed to decode.
    Word(DecodeInstError),
    /// The sidecar ended before every instruction was decoded.
    Truncated,
    /// The sidecar holds bytes beyond the last instruction.
    TrailingBytes,
}

impl core::fmt::Display for PackError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PackError::Word(e) => write!(f, "bad architectural word: {e}"),
            PackError::Truncated => write!(f, "sidecar truncated"),
            PackError::TrailingBytes => write!(f, "sidecar has trailing bytes"),
        }
    }
}

impl std::error::Error for PackError {}

/// A losslessly packed instruction trace (see the module docs for the
/// wire layout). Cheap to clone behind an `Arc`; decoded by
/// [`PackedTrace::iter`] or streamed by [`crate::PackedStream`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedTrace {
    words: Vec<u64>,
    sidecar: Vec<u8>,
    /// Total equivalent instructions (Σ [`Inst::equivalent_count`]) —
    /// a pure function of the word plane (op + stream length), carried
    /// here so Table-3 / EIPC consumers never pay a sidecar decode
    /// pass just to count.
    equiv_total: u64,
}

impl PackedTrace {
    /// Pack an instruction sequence. Never fails: immediates that do
    /// not fit the architectural field are carried in the sidecar.
    pub fn pack(insts: impl IntoIterator<Item = Inst>) -> Self {
        let mut words = Vec::new();
        let mut sidecar = Vec::new();
        let mut prev_pc = PC_INIT;
        let mut prev_addr = 0u64;
        let mut equiv_total = 0u64;
        for inst in insts {
            let (word, raw_imm) = encode_lossy_imm(&inst);
            words.push(word);
            equiv_total += inst.equivalent_count();

            let mut flags = 0u8;
            let pc_seq = inst.pc == prev_pc.wrapping_add(4);
            if pc_seq {
                flags |= PC_SEQ;
            }
            if raw_imm {
                flags |= RAW_IMM;
            }
            if let Some(b) = inst.branch {
                flags |= HAS_BRANCH;
                if b.taken {
                    flags |= BRANCH_TAKEN;
                }
            }
            if let Some(m) = inst.mem {
                flags |= HAS_MEM;
                if m.is_store {
                    flags |= MEM_IS_STORE;
                }
                if m.size == 8 {
                    flags |= MEM_SIZE8;
                }
                if m.count == inst.slen {
                    flags |= MEM_CNT_SLEN;
                }
            }
            sidecar.push(flags);

            if !pc_seq {
                put_zigzag(
                    &mut sidecar,
                    inst.pc.wrapping_sub(prev_pc.wrapping_add(4)) as i64,
                );
            }
            if raw_imm {
                sidecar.extend_from_slice(&inst.imm.to_le_bytes());
            }
            if let Some(b) = inst.branch {
                put_zigzag(&mut sidecar, b.target.wrapping_sub(inst.pc) as i64);
            }
            if let Some(m) = inst.mem {
                put_zigzag(&mut sidecar, m.addr.wrapping_sub(prev_addr) as i64);
                if m.size != 8 {
                    sidecar.push(m.size);
                }
                put_zigzag(&mut sidecar, m.stride);
                if m.count != inst.slen {
                    sidecar.push(m.count);
                }
                prev_addr = predict_next(&m);
            }
            prev_pc = inst.pc;
        }
        PackedTrace {
            words,
            sidecar,
            equiv_total,
        }
    }

    /// Reassemble a trace from its serialized parts, fully validating
    /// that the payload decodes.
    ///
    /// # Errors
    ///
    /// Returns a [`PackError`] if a word holds an unassigned opcode or a
    /// malformed register, or if the sidecar length does not match.
    pub fn from_parts(words: Vec<u64>, sidecar: Vec<u8>) -> Result<Self, PackError> {
        let trace = PackedTrace::from_parts_trusted(words, sidecar);
        let mut cursor = Cursor::new();
        for _ in 0..trace.len() {
            cursor.next(&trace)?.ok_or(PackError::Truncated)?;
        }
        if cursor.side != trace.sidecar.len() {
            return Err(PackError::TrailingBytes);
        }
        Ok(trace)
    }

    /// Assemble parts **without** the validating decode pass — for
    /// callers that have already integrity-checked the payload (the
    /// store's header checksum). A structurally bad payload then
    /// surfaces lazily as an early stream end rather than an error,
    /// so this stays crate-internal.
    pub(crate) fn from_parts_trusted(words: Vec<u64>, sidecar: Vec<u8>) -> Self {
        // The word plane alone determines the equivalent total; an
        // undecodable word (impossible for checksummed store payloads)
        // counts as one, matching the stream's one-slot consumption.
        let equiv_total = words
            .iter()
            .map(|&w| decode(w).map_or(1, |i| i.equivalent_count()))
            .sum();
        PackedTrace {
            words,
            sidecar,
            equiv_total,
        }
    }

    /// Total equivalent instructions in the trace (scalar/MMX count 1,
    /// MOM instructions their stream length — the paper's §4.2 counting
    /// rule). Precomputed; O(1).
    #[must_use]
    pub fn equiv_total(&self) -> u64 {
        self.equiv_total
    }

    /// Number of instructions in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the trace holds no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Total packed payload size in bytes (words plus sidecar).
    #[must_use]
    pub fn packed_bytes(&self) -> usize {
        self.words.len() * 8 + self.sidecar.len()
    }

    /// Amortized bytes per instruction (`0.0` for an empty trace).
    #[must_use]
    pub fn bytes_per_inst(&self) -> f64 {
        if self.words.is_empty() {
            0.0
        } else {
            self.packed_bytes() as f64 / self.words.len() as f64
        }
    }

    /// The architectural-word plane (serialization).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The dynamic sidecar plane (serialization).
    #[must_use]
    pub fn sidecar(&self) -> &[u8] {
        &self.sidecar
    }

    /// Stable FNV-1a checksum of the packed content (words, then
    /// sidecar) — the same digest the on-disk store records in its file
    /// header, computable without serializing. Content-addressed
    /// consumers (the result cache) fold it into their keys, so any
    /// behavioral change to trace generation invalidates downstream
    /// entries automatically.
    #[must_use]
    pub fn content_checksum(&self) -> u64 {
        crate::store::payload_fnv(&self.words, &self.sidecar)
    }

    /// Borrowed decoding iterator over the instructions.
    #[must_use]
    pub fn iter(&self) -> PackedIter<'_> {
        PackedIter {
            trace: self,
            cursor: Cursor::new(),
        }
    }

    /// Fully materialize the trace (tests, small traces). Prefer
    /// [`crate::PackedStream`] for simulation.
    #[must_use]
    pub fn unpack(&self) -> Vec<Inst> {
        self.iter().collect()
    }
}

impl<'a> IntoIterator for &'a PackedTrace {
    type Item = Inst;
    type IntoIter = PackedIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Borrowed decoding iterator (see [`PackedTrace::iter`]).
pub struct PackedIter<'a> {
    trace: &'a PackedTrace,
    cursor: Cursor,
}

impl Iterator for PackedIter<'_> {
    type Item = Inst;
    fn next(&mut self) -> Option<Inst> {
        // Packs built by `pack` or validated by `from_parts` cannot
        // fail to decode; treat failure as end (debug-asserted).
        match self.cursor.next(self.trace) {
            Ok(next) => next,
            Err(e) => {
                debug_assert!(false, "corrupt packed trace: {e}");
                None
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.trace.len() - self.cursor.idx;
        (left, Some(left))
    }
}

/// A direct-mapped memo of `word -> decoded Inst` for the block
/// decoder. Media traces are loop nests: a handful of static
/// instructions account for almost every dynamic instruction, so
/// decoding becomes a hash, a 64-bit compare and a struct copy instead
/// of a full field-by-field word decode. Keyed on the complete
/// architectural word, so a hit is exact by construction.
#[derive(Debug, Clone)]
pub struct DecodeCache {
    /// Tag plane: the architectural word held in each slot. The
    /// sentinel `u64::MAX` carries an unassigned opcode, which the
    /// encoder never emits, so it can never be hit.
    words: Vec<u64>,
    /// Value plane, indexed like `words` (split planes keep the tag
    /// probe a dense 8-byte load).
    insts: Vec<Inst>,
}

/// Slots in a [`DecodeCache`] (power of two). The full suite has a few
/// thousand distinct static instructions per program; 2048 slots keep
/// direct-mapped conflicts rare at ~144 KiB — L2-resident, and far
/// cheaper to miss into than a full word decode.
const DECODE_CACHE_SLOTS: usize = 2048;

impl DecodeCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        let filler = decode(0).expect("the all-zero word decodes");
        DecodeCache {
            words: vec![u64::MAX; DECODE_CACHE_SLOTS],
            insts: vec![filler; DECODE_CACHE_SLOTS],
        }
    }

    /// The slot index for `word`.
    #[inline]
    fn slot(word: u64) -> usize {
        (word.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 52) as usize & (DECODE_CACHE_SLOTS - 1)
    }

    /// Push the decoded instruction for `word` (dynamic fields zeroed)
    /// onto `out`, memoized: a hit is a 64-byte copy straight from the
    /// value plane. A lookup *of* the sentinel word itself must not
    /// false-hit the empty-slot tag — it takes the miss path, where
    /// `decode` rejects it like the per-inst cursor would (reachable
    /// only through `from_parts_trusted` payloads that passed an
    /// external integrity check yet hold garbage).
    #[inline]
    fn decode_push(&mut self, word: u64, out: &mut Vec<Inst>) -> Result<(), DecodeInstError> {
        let slot = Self::slot(word);
        if self.words[slot] == word && word != u64::MAX {
            out.push(self.insts[slot]);
            return Ok(());
        }
        let inst = decode(word)?;
        self.words[slot] = word;
        self.insts[slot] = inst;
        out.push(inst);
        Ok(())
    }
}

impl Default for DecodeCache {
    fn default() -> Self {
        DecodeCache::new()
    }
}

/// Decode state: the position in both planes plus the two predictors.
/// Shared by the borrowed iterator and the owning [`crate::PackedStream`].
#[derive(Debug, Clone)]
pub(crate) struct Cursor {
    pub(crate) idx: usize,
    side: usize,
    prev_pc: u64,
    prev_addr: u64,
}

impl Cursor {
    pub(crate) fn new() -> Self {
        Cursor {
            idx: 0,
            side: 0,
            prev_pc: PC_INIT,
            prev_addr: 0,
        }
    }

    /// Decode the next instruction of `trace`, or `Ok(None)` at the
    /// end. Built on the same [`read_pc`]/[`apply_sidecar`] record
    /// decoders as [`Cursor::decode_block`], so the two paths cannot
    /// drift.
    pub(crate) fn next(&mut self, trace: &PackedTrace) -> Result<Option<Inst>, PackError> {
        let Some(&word) = trace.words.get(self.idx) else {
            return Ok(None);
        };
        let side = trace.sidecar.as_slice();
        let mut si = self.side;
        let mut prev_addr = self.prev_addr;
        let flags = *side.get(si).ok_or(PackError::Truncated)?;
        si += 1;
        let pc = read_pc(flags, self.prev_pc, side, &mut si)?;
        let mut inst = decode_at(word, pc).map_err(PackError::Word)?;
        apply_sidecar(&mut inst, flags, pc, side, &mut si, &mut prev_addr)?;
        self.side = si;
        self.prev_addr = prev_addr;
        self.prev_pc = pc;
        self.idx += 1;
        Ok(Some(inst))
    }

    /// Decode up to `max` instructions into `out` (appended), using
    /// `cache` to memoize the per-word architectural decode. Returns
    /// the number of instructions appended (0 at end of trace).
    /// Produces exactly the sequence repeated [`Cursor::next`] calls
    /// would — the block shape and the decode cache are invisible.
    ///
    /// This is the hot replay loop: cursor state lives in locals
    /// (committed back only on success), instructions are written once
    /// directly into `out` and patched in place, and the dominant path
    /// (sequential PC, no sidecar records beyond the flags byte) is a
    /// flag compare plus a memoized word decode — `memcpy` with
    /// patches.
    pub(crate) fn decode_block(
        &mut self,
        trace: &PackedTrace,
        cache: &mut DecodeCache,
        out: &mut Vec<Inst>,
        max: usize,
    ) -> Result<usize, PackError> {
        let words = trace.words.as_slice();
        let side = trace.sidecar.as_slice();
        let n = max.min(words.len() - self.idx);
        out.reserve(n);
        let end = self.idx + n;
        let mut idx = self.idx;
        let mut si = self.side;
        let mut prev_pc = self.prev_pc;
        let mut prev_addr = self.prev_addr;
        while idx < end {
            let word = words[idx];
            let flags = *side.get(si).ok_or(PackError::Truncated)?;
            si += 1;
            let pc = read_pc(flags, prev_pc, side, &mut si)?;
            cache.decode_push(word, out).map_err(PackError::Word)?;
            let inst = out.last_mut().expect("just pushed");
            inst.pc = pc;
            // Anything beyond a plain sequential instruction peels off
            // to the shared record decoder (the combined check keeps
            // the dominant no-record path a single compare).
            if flags & (RAW_IMM | HAS_BRANCH | HAS_MEM) != 0 {
                apply_sidecar(inst, flags, pc, side, &mut si, &mut prev_addr)?;
            }
            prev_pc = pc;
            idx += 1;
        }
        // Commit the cursor only on success; an error leaves the trace
        // poisoned for this stream, which callers treat as end-of-trace
        // (packs built by `pack`/`from_parts` cannot get here).
        self.idx = idx;
        self.side = si;
        self.prev_pc = prev_pc;
        self.prev_addr = prev_addr;
        Ok(n)
    }
}

/// The PC of the instruction whose flags byte was just consumed:
/// sequential for free, otherwise a zigzag delta record.
#[inline]
fn read_pc(flags: u8, prev_pc: u64, side: &[u8], si: &mut usize) -> Result<u64, PackError> {
    if flags & PC_SEQ != 0 {
        Ok(prev_pc.wrapping_add(4))
    } else {
        let delta = take_zigzag_at(side, si)?;
        Ok(prev_pc.wrapping_add(4).wrapping_add(delta as u64))
    }
}

/// Decode the RAW_IMM / HAS_BRANCH / HAS_MEM sidecar records onto a
/// freshly word-decoded instruction — the single implementation both
/// [`Cursor::next`] and [`Cursor::decode_block`] drive, so the per-inst
/// and block paths decode bit-identically by construction.
#[inline]
fn apply_sidecar(
    inst: &mut Inst,
    flags: u8,
    pc: u64,
    side: &[u8],
    si: &mut usize,
    prev_addr: &mut u64,
) -> Result<(), PackError> {
    if flags & RAW_IMM != 0 {
        let stop = si.checked_add(4).ok_or(PackError::Truncated)?;
        let bytes = side.get(*si..stop).ok_or(PackError::Truncated)?;
        inst.imm = i32::from_le_bytes(bytes.try_into().expect("4-byte slice"));
        *si = stop;
    }
    if flags & HAS_BRANCH != 0 {
        let delta = take_zigzag_at(side, si)?;
        inst.branch = Some(BranchInfo {
            taken: flags & BRANCH_TAKEN != 0,
            target: pc.wrapping_add(delta as u64),
        });
    }
    if flags & HAS_MEM != 0 {
        let delta = take_zigzag_at(side, si)?;
        let addr = prev_addr.wrapping_add(delta as u64);
        let size = if flags & MEM_SIZE8 != 0 {
            8
        } else {
            take_byte_at(side, si)?
        };
        let stride = take_zigzag_at(side, si)?;
        let count = if flags & MEM_CNT_SLEN != 0 {
            inst.slen
        } else {
            take_byte_at(side, si)?
        };
        let m = MemRef {
            addr,
            size,
            stride,
            count,
            is_store: flags & MEM_IS_STORE != 0,
        };
        *prev_addr = predict_next(&m);
        inst.mem = Some(m);
    }
    Ok(())
}

/// One sidecar byte against a caller-local position (the block decoder
/// keeps its state in registers).
#[inline]
fn take_byte_at(side: &[u8], si: &mut usize) -> Result<u8, PackError> {
    let b = *side.get(*si).ok_or(PackError::Truncated)?;
    *si += 1;
    Ok(b)
}

/// One zigzag LEB128 varint against a caller-local position, with a
/// fast path for single-byte varints — PC deltas, predicted addresses
/// and small strides, i.e. nearly every record of a media trace.
#[inline]
fn take_zigzag_at(side: &[u8], si: &mut usize) -> Result<i64, PackError> {
    let b = *side.get(*si).ok_or(PackError::Truncated)?;
    *si += 1;
    let mut v = u64::from(b & 0x7f);
    if b & 0x80 != 0 {
        let mut shift = 7u32;
        loop {
            let b = *side.get(*si).ok_or(PackError::Truncated)?;
            *si += 1;
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                break;
            }
            shift += 7;
            if shift >= 64 {
                return Err(PackError::Truncated);
            }
        }
    }
    Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
}

/// The address predictor after an access: one stride past its last
/// element, where back-to-back unit-stride streams land for free.
fn predict_next(m: &MemRef) -> u64 {
    (m.addr as i64).wrapping_add(m.stride.wrapping_mul(i64::from(m.count))) as u64
}

/// Append `v` to `out` as a zigzag LEB128 varint.
fn put_zigzag(out: &mut Vec<u8>, v: i64) {
    let mut z = ((v << 1) ^ (v >> 63)) as u64;
    loop {
        if z < 0x80 {
            out.push(z as u8);
            return;
        }
        out.push((z & 0x7f) as u8 | 0x80);
        z >>= 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsim_isa::prelude::*;

    fn sample() -> Vec<Inst> {
        vec![
            Inst::int_rri(IntOp::Addi, int(1), int(0), 64).at(0x1000),
            Inst::load(MemOp::LoadW, int(2), int(1), 0x8000).at(0x1004),
            Inst::mmx_load(simd(0), int(1), 0x8040).at(0x1008),
            Inst::mom_load(stream(0), int(1), 0x9000, 8, 16).at(0x100c),
            Inst::mom(MomOp::VaddW, stream(1), stream(0), stream(0), 16).at(0x1010),
            Inst::mom_store(stream(1), int(2), 0x9080, 8, 16).at(0x1014),
            Inst::branch(CtlOp::Bne, int(1), true, 0x1000).at(0x1018),
            Inst::store(MemOp::StoreB, int(2), int(3), 0xa001).at(0x101c),
            Inst::jump(0x2000).at(0x1020),
        ]
    }

    #[test]
    fn round_trips_sample_trace() {
        let insts = sample();
        let packed = PackedTrace::pack(insts.iter().copied());
        assert_eq!(packed.len(), insts.len());
        assert_eq!(packed.unpack(), insts);
    }

    #[test]
    fn sequential_stream_code_is_compact() {
        // A unit-stride MOM loop body: the dominant pattern of the
        // suite must stay far below the 16 B/inst budget.
        let mut insts = Vec::new();
        let mut pc = 0x4000u64;
        let mut addr = 0x1_0000u64;
        for _ in 0..1000 {
            insts.push(Inst::mom_load(stream(0), int(1), addr, 8, 16).at(pc));
            insts.push(Inst::mom(MomOp::VaddW, stream(1), stream(0), stream(0), 16).at(pc + 4));
            insts.push(Inst::mom_store(stream(1), int(2), addr, 8, 16).at(pc + 8));
            pc += 12;
            addr += 128;
        }
        let packed = PackedTrace::pack(insts.iter().copied());
        assert_eq!(packed.unpack(), insts);
        assert!(
            packed.bytes_per_inst() < 11.0,
            "loop code at {:.2} B/inst",
            packed.bytes_per_inst()
        );
    }

    #[test]
    fn oversized_immediates_survive() {
        let insts = vec![
            Inst::int_rri(IntOp::Addi, int(1), int(0), i32::MAX).at(0),
            Inst::int_rri(IntOp::Addi, int(2), int(0), i32::MIN).at(4),
            Inst::int_rri(IntOp::Addi, int(3), int(0), -8192).at(8),
        ];
        let packed = PackedTrace::pack(insts.iter().copied());
        assert_eq!(packed.unpack(), insts);
    }

    #[test]
    fn mem_count_distinct_from_slen_survives() {
        // ClampStream-style splits can leave count != slen shapes.
        let mut i = Inst::mom_load(stream(0), int(1), 0x100, 64, 9).at(0);
        i.mem = Some(MemRef::stream(0x100, 4, 64, 3, false));
        let packed = PackedTrace::pack([i]);
        assert_eq!(packed.unpack(), vec![i]);
    }

    #[test]
    fn empty_trace() {
        let packed = PackedTrace::pack([]);
        assert!(packed.is_empty());
        assert_eq!(packed.bytes_per_inst(), 0.0);
        assert_eq!(packed.unpack(), Vec::<Inst>::new());
        assert_eq!(packed.equiv_total(), 0);
    }

    /// The precomputed equivalent total must match the decoded walk on
    /// every constructor path (pack and the store's trusted reassembly).
    #[test]
    fn equiv_total_matches_decoded_walk() {
        let insts = sample();
        let walked: u64 = insts.iter().map(Inst::equivalent_count).sum();
        let packed = PackedTrace::pack(insts.iter().copied());
        assert_eq!(packed.equiv_total(), walked);
        let reassembled =
            PackedTrace::from_parts(packed.words().to_vec(), packed.sidecar().to_vec())
                .expect("valid parts");
        assert_eq!(reassembled.equiv_total(), walked);
        assert_eq!(reassembled, packed);
    }

    #[test]
    fn from_parts_validates() {
        let packed = PackedTrace::pack(sample());
        let ok = PackedTrace::from_parts(packed.words().to_vec(), packed.sidecar().to_vec())
            .expect("valid parts");
        assert_eq!(ok, packed);

        // Truncated sidecar.
        let mut short = packed.sidecar().to_vec();
        short.truncate(short.len() - 1);
        assert!(matches!(
            PackedTrace::from_parts(packed.words().to_vec(), short),
            Err(PackError::Truncated)
        ));

        // Trailing garbage.
        let mut long = packed.sidecar().to_vec();
        long.push(0);
        assert!(matches!(
            PackedTrace::from_parts(packed.words().to_vec(), long),
            Err(PackError::TrailingBytes)
        ));

        // Unassigned opcode in the word plane.
        let mut words = packed.words().to_vec();
        words[0] = 0x3ff;
        assert!(matches!(
            PackedTrace::from_parts(words, packed.sidecar().to_vec()),
            Err(PackError::Word(_))
        ));
    }

    #[test]
    fn decode_block_matches_per_inst_cursor() {
        // Includes branches, raw immediates, stores, streams — every
        // sidecar record kind — plus a loopy tail that hammers the
        // decode cache with repeated words.
        let mut insts = sample();
        for i in 0..2000u64 {
            insts.push(Inst::int_rri(IntOp::Addi, int(1), int(1), 1).at(0x5000 + i * 4));
            if i % 3 == 0 {
                insts.push(Inst::mom_load(stream(0), int(1), 0x2_0000 + i * 128, 8, 16).at(0x6000));
            }
        }
        let packed = PackedTrace::pack(insts.iter().copied());
        for block_size in [1usize, 7, 256, 4096] {
            let mut cursor = Cursor::new();
            let mut cache = DecodeCache::new();
            let mut got = Vec::new();
            loop {
                let n = cursor
                    .decode_block(&packed, &mut cache, &mut got, block_size)
                    .expect("valid trace");
                if n == 0 {
                    break;
                }
            }
            assert_eq!(got, insts, "block_size={block_size}");
        }
    }

    #[test]
    fn sentinel_word_cannot_false_hit_the_decode_cache() {
        // An all-ones word carries an unassigned opcode; it can only
        // reach the decoder via `from_parts_trusted` (checksum-valid
        // but garbage payload). The block path must reject it exactly
        // like the per-inst cursor — not match the empty-slot sentinel
        // tag and fabricate the filler instruction.
        let garbage = PackedTrace::from_parts_trusted(vec![u64::MAX], vec![PC_SEQ]);
        let mut per_inst = Cursor::new();
        let want = per_inst.next(&garbage);
        assert!(matches!(want, Err(PackError::Word(_))));
        let mut block_cursor = Cursor::new();
        let mut cache = DecodeCache::new();
        let mut out = Vec::new();
        let got = block_cursor.decode_block(&garbage, &mut cache, &mut out, 16);
        assert!(
            matches!(got, Err(PackError::Word(_))),
            "block path must match the per-inst rejection, got {got:?}"
        );
        assert!(out.is_empty(), "no fabricated instruction");
    }

    #[test]
    fn zigzag_varint_round_trips() {
        let mut buf = Vec::new();
        let values = [
            0i64,
            1,
            -1,
            63,
            -64,
            64,
            0x3fff,
            -0x4000,
            i64::MAX,
            i64::MIN,
        ];
        for &v in &values {
            buf.clear();
            put_zigzag(&mut buf, v);
            let mut si = 0usize;
            assert_eq!(take_zigzag_at(&buf, &mut si).unwrap(), v, "{v}");
            assert_eq!(si, buf.len(), "{v}: every byte consumed");
        }
    }
}
