//! # medsim-trace — packed traces and the persistent trace store
//!
//! The simulator is trace-driven: every run consumes the dynamic
//! instruction streams of the paper's eight-program workload. This crate
//! is the canonical trace representation across the workspace, in three
//! layers:
//!
//! * [`packed`] — [`PackedTrace`], a compact lossless encoding of an
//!   instruction sequence: the 64-bit architectural word from
//!   [`medsim_isa::encode`] per instruction plus a varint *sidecar*
//!   carrying the dynamic fields (PC deltas, effective addresses as
//!   delta-compressed varints, branch outcomes, stream shapes). The
//!   suite averages well under 16 bytes per instruction — roughly 4×
//!   denser than the 64-byte in-memory [`medsim_isa::Inst`];
//! * [`store`] — [`TraceStore`], a write-once on-disk directory of
//!   versioned, checksummed trace files keyed by `(slot, isa, spec)`
//!   content hash. Corrupt, truncated or version-mismatched files are
//!   detected and reported as misses (callers fall back to synthesis);
//! * [`stream`] — [`PackedStream`], a block streaming decoder
//!   implementing [`medsim_workloads::InstSource`] (and the
//!   per-instruction [`medsim_workloads::InstStream`] view), so the CPU
//!   model consumes packed traces directly without materializing
//!   `Vec<Inst>`. Block decode memoizes the per-word architectural
//!   decode ([`packed::DecodeCache`]) — loopy media traces replay at
//!   near-`memcpy` rates.
//!
//! `medsim_core::runner::TraceCache` layers the three: an in-memory
//! `Arc<PackedTrace>` cache with an approximate byte budget, read-through
//! to the on-disk store (enabled by setting `MEDSIM_TRACE_DIR`), falling
//! back to workload synthesis — which then writes the store back.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod packed;
pub mod store;
pub mod stream;

pub use packed::{DecodeCache, PackError, PackedTrace};
pub use store::{unique_tmp_name, StoreStats, TraceKey, TraceStore, FORMAT_VERSION};
pub use stream::PackedStream;
