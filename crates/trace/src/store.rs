//! The persistent on-disk trace store.
//!
//! A [`TraceStore`] is a flat directory (pointed at by the
//! `MEDSIM_TRACE_DIR` environment variable) of write-once trace files,
//! one per `(slot, isa, scale, seed)` content key. File layout, all
//! little-endian:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"MTRC"
//!      4     4  format version (FORMAT_VERSION)
//!      8     8  instruction count
//!     16     8  sidecar length in bytes
//!     24     8  FNV-1a checksum of the payload
//!     32     —  payload: count × u64 words, then the sidecar bytes
//! ```
//!
//! The store is a *cache*, never a source of truth: every load verifies
//! magic, version, lengths and checksum, and any mismatch — a truncated
//! file, flipped bits, a format bump — is reported as a miss (with a
//! [`StoreStats`] counter) so the caller falls back to synthesizing the
//! trace. Writes go through a temp file + atomic rename, so concurrent
//! writers and readers never observe a partial file.

use crate::packed::PackedTrace;
use medsim_workloads::trace::SimdIsa;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// On-disk format version; bump on any change to the header or the
/// packed encoding. Mismatching files are ignored (synthesis fallback).
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: [u8; 4] = *b"MTRC";
const HEADER_LEN: usize = 32;

/// Content key of one stored trace. The workload scale participates via
/// its exact bit pattern, so a file is only ever reused for an
/// identical spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// Program-list slot (0..8, after §5.1 cycling).
    pub slot: usize,
    /// μ-SIMD ISA of the trace.
    pub isa: SimdIsa,
    /// `WorkloadSpec::scale` as raw bits.
    pub scale_bits: u64,
    /// Workload seed.
    pub seed: u64,
}

impl TraceKey {
    /// Stable 64-bit content hash of the key. Deliberately excludes
    /// the format version: a key must map to the *same* file across
    /// format bumps, so the header check can detect the stale version
    /// and self-heal it (hashing the version in would orphan old
    /// files forever instead).
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.update(&(self.slot as u64).to_le_bytes());
        h.update(&[match self.isa {
            SimdIsa::Mmx => 0u8,
            SimdIsa::Mom => 1u8,
        }]);
        h.update(&self.scale_bits.to_le_bytes());
        h.update(&self.seed.to_le_bytes());
        h.finish()
    }

    /// File name of this key inside a store directory, e.g.
    /// `slot3-mom-9f1c2a338e55d01b.mtrc` — human-scannable prefix,
    /// content-hash suffix.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!(
            "slot{}-{}-{:016x}.mtrc",
            self.slot,
            self.isa.label().to_ascii_lowercase(),
            self.content_hash()
        )
    }
}

/// Counters describing how the store behaved (surfaced in bench output
/// and asserted by the corruption tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Successful loads.
    pub hits: u64,
    /// Keys with no file present.
    pub misses: u64,
    /// Files rejected by magic/length/checksum/payload validation.
    pub corrupt: u64,
    /// Files rejected by a format-version mismatch.
    pub version_mismatch: u64,
    /// Traces written back.
    pub writes: u64,
    /// I/O errors on load or store (treated as misses).
    pub io_errors: u64,
}

impl StoreStats {
    /// Total loads that fell back to synthesis for any reason.
    #[must_use]
    pub fn fallbacks(&self) -> u64 {
        self.misses + self.corrupt + self.version_mismatch + self.io_errors
    }
}

#[derive(Debug, Default)]
struct StatCells {
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    version_mismatch: AtomicU64,
    writes: AtomicU64,
    io_errors: AtomicU64,
}

/// A write-once directory of packed trace files. See the module docs.
#[derive(Debug)]
pub struct TraceStore {
    dir: PathBuf,
    stats: StatCells,
}

impl TraceStore {
    /// A store rooted at `dir` (created on first write).
    #[must_use]
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        TraceStore {
            dir: dir.into(),
            stats: StatCells::default(),
        }
    }

    /// The store configured by `MEDSIM_TRACE_DIR`, or `None` when the
    /// variable is unset or empty (persistence disabled).
    #[must_use]
    pub fn from_env() -> Option<Self> {
        match std::env::var("MEDSIM_TRACE_DIR") {
            Ok(dir) if !dir.is_empty() => Some(TraceStore::at(dir)),
            _ => None,
        }
    }

    /// The directory this store reads and writes.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file path a key maps to.
    #[must_use]
    pub fn path_for(&self, key: &TraceKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Snapshot of the store counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            corrupt: self.stats.corrupt.load(Ordering::Relaxed),
            version_mismatch: self.stats.version_mismatch.load(Ordering::Relaxed),
            writes: self.stats.writes.load(Ordering::Relaxed),
            io_errors: self.stats.io_errors.load(Ordering::Relaxed),
        }
    }

    /// Load the trace stored under `key`, or `None` — counting the
    /// reason — when the file is absent, unreadable, corrupt or from a
    /// different format version. Never panics, never errors: the caller
    /// is expected to fall back to synthesis.
    #[must_use]
    pub fn load(&self, key: &TraceKey) -> Option<PackedTrace> {
        let path = self.path_for(key);
        let mut file = match std::fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(_) => {
                self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let mut bytes = Vec::new();
        if file.read_to_end(&mut bytes).is_err() {
            self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        match parse_file(&bytes) {
            Ok(trace) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(trace)
            }
            Err(ParseError::VersionMismatch) => {
                self.stats.version_mismatch.fetch_add(1, Ordering::Relaxed);
                // Self-heal: drop the stale file so the caller's
                // write-back can replace it with the current format.
                std::fs::remove_file(&path).ok();
                None
            }
            Err(ParseError::Corrupt) => {
                self.stats.corrupt.fetch_add(1, Ordering::Relaxed);
                std::fs::remove_file(&path).ok();
                None
            }
        }
    }

    /// Persist `trace` under `key` (write-once: an existing file is kept
    /// as-is). The write lands via a temp file + rename, so readers only
    /// ever see complete files.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors (also counted in
    /// [`StoreStats::io_errors`]).
    pub fn store(&self, key: &TraceKey, trace: &PackedTrace) -> std::io::Result<()> {
        let path = self.path_for(key);
        if path.exists() {
            return Ok(());
        }
        let result = (|| {
            std::fs::create_dir_all(&self.dir)?;
            let tmp = self.dir.join(unique_tmp_name(&key.file_name()));
            {
                let mut f = std::fs::File::create(&tmp)?;
                f.write_all(&serialize_file(trace))?;
                f.sync_all()?;
            }
            std::fs::rename(&tmp, &path)
        })();
        match result {
            Ok(()) => {
                self.stats.writes.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }
}

enum ParseError {
    VersionMismatch,
    Corrupt,
}

/// FNV-1a digest of a packed payload (`words` then `sidecar`) — the
/// checksum [`serialize_file`] records in the header, shared with
/// [`PackedTrace::content_checksum`] so content-addressed consumers
/// agree with the on-disk format byte for byte.
pub(crate) fn payload_fnv(words: &[u64], sidecar: &[u8]) -> u64 {
    let mut h = Fnv::new();
    for w in words {
        h.update(&w.to_le_bytes());
    }
    h.update(sidecar);
    h.finish()
}

/// A collision-free temp-file name for the atomic write-once protocol:
/// unique per `(process, sequence)`, so concurrent writers — racing
/// threads inside one process as much as racing processes — never
/// write through the same temp path. Each writer renames its own
/// complete file over the final path; with deterministic producers the
/// losers' bytes are identical to the winner's, so any interleaving of
/// renames publishes a valid file.
#[must_use]
pub fn unique_tmp_name(file_name: &str) -> String {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    format!(
        ".tmp-{}-{}-{file_name}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    )
}

/// Serialize a trace with the versioned, checksummed header.
fn serialize_file(trace: &PackedTrace) -> Vec<u8> {
    let words = trace.words();
    let sidecar = trace.sidecar();
    let mut out = Vec::with_capacity(HEADER_LEN + words.len() * 8 + sidecar.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(words.len() as u64).to_le_bytes());
    out.extend_from_slice(&(sidecar.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload_fnv(words, sidecar).to_le_bytes());
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out.extend_from_slice(sidecar);
    out
}

fn parse_file(bytes: &[u8]) -> Result<PackedTrace, ParseError> {
    let header = bytes.get(..HEADER_LEN).ok_or(ParseError::Corrupt)?;
    if header[..4] != MAGIC {
        return Err(ParseError::Corrupt);
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(ParseError::VersionMismatch);
    }
    let count = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let side_len = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
    let checksum = u64::from_le_bytes(header[24..32].try_into().expect("8 bytes"));
    let words_bytes = count.checked_mul(8).ok_or(ParseError::Corrupt)?;
    let expected = (HEADER_LEN as u64)
        .checked_add(words_bytes)
        .and_then(|v| v.checked_add(side_len))
        .ok_or(ParseError::Corrupt)?;
    if bytes.len() as u64 != expected {
        return Err(ParseError::Corrupt);
    }
    let payload = &bytes[HEADER_LEN..];
    let mut h = Fnv::new();
    h.update(payload);
    if h.finish() != checksum {
        return Err(ParseError::Corrupt);
    }
    let (word_part, side_part) = payload.split_at(words_bytes as usize);
    let words = word_part
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    // The checksum above vouches for the payload; skip the validating
    // decode pass so a warm load costs one decode, not two.
    Ok(PackedTrace::from_parts_trusted(words, side_part.to_vec()))
}

/// FNV-1a 64-bit — tiny, dependency-free, good enough for content
/// addressing and corruption detection of locally produced files.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsim_isa::prelude::*;

    fn unique_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "medsim-trace-test-{tag}-{}-{n}",
            std::process::id()
        ))
    }

    fn sample_trace() -> PackedTrace {
        let mut insts = Vec::new();
        for i in 0..200u64 {
            insts.push(Inst::load(MemOp::LoadW, int(1), int(2), 0x1000 + i * 4).at(i * 4));
            insts.push(Inst::int_rrr(IntOp::Add, int(3), int(1), int(3)).at(i * 4 + 4));
        }
        PackedTrace::pack(insts)
    }

    fn key() -> TraceKey {
        TraceKey {
            slot: 3,
            isa: SimdIsa::Mom,
            scale_bits: 0.001f64.to_bits(),
            seed: 7,
        }
    }

    #[test]
    fn store_round_trip_and_stats() {
        let dir = unique_dir("roundtrip");
        let store = TraceStore::at(&dir);
        let trace = sample_trace();

        assert!(store.load(&key()).is_none(), "empty store misses");
        store.store(&key(), &trace).expect("write");
        let back = store.load(&key()).expect("warm load");
        assert_eq!(back, trace);

        let stats = store.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.fallbacks(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writes_are_write_once() {
        let dir = unique_dir("once");
        let store = TraceStore::at(&dir);
        let trace = sample_trace();
        store.store(&key(), &trace).expect("first write");
        store
            .store(&key(), &trace)
            .expect("second write is a no-op");
        assert_eq!(store.stats().writes, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_file_falls_back() {
        let dir = unique_dir("trunc");
        let store = TraceStore::at(&dir);
        let trace = sample_trace();
        store.store(&key(), &trace).expect("write");
        let path = store.path_for(&key());
        let bytes = std::fs::read(&path).expect("read back");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        assert!(store.load(&key()).is_none());
        assert_eq!(store.stats().corrupt, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbled_payload_falls_back() {
        let dir = unique_dir("garble");
        let store = TraceStore::at(&dir);
        let trace = sample_trace();
        store.store(&key(), &trace).expect("write");
        let path = store.path_for(&key());
        let mut bytes = std::fs::read(&path).expect("read back");
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bytes[mid] ^= 0xa5;
        std::fs::write(&path, &bytes).expect("garble");
        assert!(store.load(&key()).is_none(), "checksum catches bit flips");
        assert_eq!(store.stats().corrupt, 1);
        assert!(!path.exists(), "corrupt file removed for self-healing");
        store.store(&key(), &trace).expect("repair write");
        assert_eq!(store.load(&key()).expect("repaired"), trace);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_bump_falls_back() {
        let dir = unique_dir("version");
        let store = TraceStore::at(&dir);
        let trace = sample_trace();
        store.store(&key(), &trace).expect("write");
        let path = store.path_for(&key());
        let mut bytes = std::fs::read(&path).expect("read back");
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &bytes).expect("bump version");
        assert!(store.load(&key()).is_none());
        let stats = store.stats();
        assert_eq!(stats.version_mismatch, 1);
        assert_eq!(stats.corrupt, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_falls_back() {
        let dir = unique_dir("magic");
        let store = TraceStore::at(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(store.path_for(&key()), b"not a trace file at all").expect("write junk");
        assert!(store.load(&key()).is_none());
        assert_eq!(store.stats().corrupt, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn distinct_keys_get_distinct_files() {
        let a = key();
        let mut b = key();
        b.seed ^= 1;
        let mut c = key();
        c.isa = SimdIsa::Mmx;
        let mut d = key();
        d.scale_bits = 0.002f64.to_bits();
        let names: std::collections::HashSet<String> =
            [a, b, c, d].iter().map(TraceKey::file_name).collect();
        assert_eq!(names.len(), 4);
        assert!(names.iter().all(|n| n.ends_with(".mtrc")));
    }

    #[test]
    fn tmp_names_are_unique_per_call() {
        let a = unique_tmp_name("x.mtrc");
        let b = unique_tmp_name("x.mtrc");
        assert_ne!(a, b, "same key from the same process must not collide");
        assert!(a.starts_with(".tmp-") && a.ends_with("x.mtrc"));
    }

    #[test]
    fn concurrent_writers_race_to_one_valid_file() {
        // Many threads hammer the same key in one store. The write-once
        // protocol (unique temp names + atomic rename) must leave
        // exactly one valid file and no temp debris, whatever the
        // interleaving of renames.
        let dir = unique_dir("race");
        let store = TraceStore::at(&dir);
        let trace = sample_trace();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..16 {
                        store.store(&key(), &trace).expect("racing write");
                    }
                });
            }
        });
        assert_eq!(store.load(&key()).expect("winner is valid"), trace);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("dir")
            .map(|e| e.expect("entry").file_name().into_string().expect("utf8"))
            .filter(|n| n.starts_with(".tmp-"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_trace_round_trips_through_disk() {
        let dir = unique_dir("empty");
        let store = TraceStore::at(&dir);
        let trace = PackedTrace::pack([]);
        store.store(&key(), &trace).expect("write");
        assert_eq!(store.load(&key()).expect("load"), trace);
        std::fs::remove_dir_all(&dir).ok();
    }
}
