//! Property/fuzz tests of the packed encoding: random instruction
//! sequences round-trip bit-identically, and the real workload suite
//! packs within the ≤ 16 B/inst budget the subsystem promises.

use medsim_isa::prelude::*;
use medsim_trace::{PackedStream, PackedTrace};
use medsim_workloads::trace::InstStream;
use medsim_workloads::{Benchmark, SimdIsa, StreamIter, Workload, WorkloadSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn arb_reg(rng: &mut SmallRng) -> Option<LogicalReg> {
    if rng.gen_bool(0.25) {
        return None;
    }
    let class = RegClass::ALL[rng.gen_range(0..5usize)];
    let index: u8 = rng.gen_range(0..32);
    Some(LogicalReg {
        class,
        index: index % class.logical_count(),
    })
}

/// Edge immediates first, then uniform draws — exercises both the
/// 14-bit architectural field and the RAW_IMM sidecar path.
fn arb_imm(rng: &mut SmallRng, case: usize) -> i32 {
    const EDGES: [i32; 8] = [
        0,
        1,
        -1,
        8191,  // IMM_MAX
        -8192, // IMM_MIN
        8192,  // first value that no longer fits
        i32::MAX,
        i32::MIN,
    ];
    if case < EDGES.len() {
        EDGES[case]
    } else if rng.gen_bool(0.5) {
        rng.gen_range(-8192..8192)
    } else {
        rng.gen_range(i32::MIN..i32::MAX)
    }
}

fn arb_inst(rng: &mut SmallRng, ops: &[Op], case: usize, pc: &mut u64) -> Inst {
    let op = ops[rng.gen_range(0..ops.len())];
    let slen: u8 = rng.gen_range(1..MAX_STREAM_LEN + 1);
    let mut inst = Inst::new(op)
        .at(*pc)
        .with_imm(arb_imm(rng, case))
        .with_slen(slen);
    inst.dst = arb_reg(rng);
    inst.src1 = arb_reg(rng);
    inst.src2 = arb_reg(rng);
    inst.src3 = arb_reg(rng);
    if rng.gen_bool(0.35) {
        inst.mem = Some(MemRef {
            addr: rng.gen_range(0..u64::MAX),
            size: [1u8, 2, 4, 8][rng.gen_range(0..4usize)],
            stride: rng.gen_range(-(1 << 20)..(1 << 20)),
            count: rng.gen_range(0..256usize) as u8,
            is_store: rng.gen_bool(0.5),
        });
    }
    if rng.gen_bool(0.2) {
        inst.branch = Some(BranchInfo {
            taken: rng.gen_bool(0.5),
            target: rng.gen_range(0..u64::MAX),
        });
    }
    // Mostly sequential PCs with occasional far jumps, like real traces.
    *pc = if rng.gen_bool(0.9) {
        pc.wrapping_add(4)
    } else {
        rng.gen_range(0..u64::MAX)
    };
    inst
}

#[test]
fn random_sequences_round_trip_bit_identical() {
    let ops: Vec<Op> = Op::all().collect();
    let mut rng = SmallRng::seed_from_u64(0x7ace_5eed);
    for round in 0..64 {
        let len = rng.gen_range(1..400usize);
        let mut pc = rng.gen_range(0..u64::MAX);
        let insts: Vec<Inst> = (0..len)
            .map(|case| arb_inst(&mut rng, &ops, case, &mut pc))
            .collect();
        let packed = PackedTrace::pack(insts.iter().copied());
        assert_eq!(packed.len(), insts.len());
        assert_eq!(packed.unpack(), insts, "round {round}");

        // The streaming decoder agrees with the batch decoder.
        let mut stream = PackedStream::new(Arc::new(packed));
        for (i, want) in insts.iter().enumerate() {
            assert_eq!(
                stream.next_inst().as_ref(),
                Some(want),
                "round {round} inst {i}"
            );
        }
        assert!(stream.next_inst().is_none());
    }
}

#[test]
fn max_stream_len_and_all_register_classes_round_trip() {
    let mut insts = Vec::new();
    for slen in 1..=MAX_STREAM_LEN {
        insts.push(
            Inst::new(Op::Mom(MomOp::AccMacW))
                .at(u64::from(slen) * 4)
                .with_dst(acc(1))
                .with_srcs(&[stream(15), stream(3), simd(31)])
                .with_slen(slen),
        );
    }
    for class_probe in [
        Inst::int_rrr(IntOp::Add, int(31), int(0), int(15)),
        Inst::fp_rrr(FpOp::FMadd, fp(31), fp(0), fp(15)),
        Inst::mmx(MmxOp::PaddsW, simd(31), simd(0), simd(15)),
        Inst::mom(MomOp::VaddW, stream(15), stream(0), stream(7), 16),
    ] {
        insts.push(class_probe.at(0x8000));
    }
    let packed = PackedTrace::pack(insts.iter().copied());
    assert_eq!(packed.unpack(), insts);
}

/// Acceptance gate: ≤ 16 B/inst amortized over the paper's eight-program
/// suite, under both ISAs, with a lossless round-trip of every stream.
#[test]
fn suite_packs_under_16_bytes_per_inst() {
    let spec = WorkloadSpec {
        scale: 2e-4,
        seed: 0x5eed_2001,
    };
    let workload = Workload::new(spec);
    let mut total_bytes = 0usize;
    let mut total_insts = 0usize;
    for isa in SimdIsa::ALL {
        for slot in 0..Benchmark::PAPER_ORDER.len() {
            let insts: Vec<Inst> = StreamIter(workload.stream_for_slot(slot, isa)).collect();
            let packed = PackedTrace::pack(insts.iter().copied());
            assert_eq!(packed.unpack(), insts, "{isa} slot {slot} lossless");
            total_bytes += packed.packed_bytes();
            total_insts += packed.len();
            eprintln!(
                "{isa} slot {slot} ({}): {} insts, {:.2} B/inst",
                Workload::slot_benchmark(slot).name(),
                packed.len(),
                packed.bytes_per_inst()
            );
        }
    }
    assert!(total_insts > 100_000, "suite large enough to be meaningful");
    let amortized = total_bytes as f64 / total_insts as f64;
    eprintln!("suite amortized: {amortized:.2} B/inst over {total_insts} insts");
    assert!(
        amortized <= 16.0,
        "packed suite at {amortized:.2} B/inst exceeds the 16 B budget"
    );
}
