//! Per-thread branch prediction: gshare direction predictor + BTB for
//! indirect targets.
//!
//! Trace-driven modeling: the trace carries the real outcome; the
//! predictor decides whether fetch would have followed it. A
//! misprediction stalls the thread's fetch until the branch resolves
//! (wrong-path instructions are not simulated — the standard
//! trace-driven approximation, noted in DESIGN.md).

/// gshare + BTB predictor state for one thread.
#[derive(Debug, Clone)]
pub struct Predictor {
    history: u64,
    counters: Vec<u8>,
    btb: Vec<(u64, u64)>,
    history_bits: u32,
}

impl Predictor {
    /// Predictor with `2^history_bits` two-bit counters and a same-sized
    /// direct-mapped BTB.
    #[must_use]
    pub fn new(history_bits: u32) -> Self {
        let n = 1usize << history_bits;
        Predictor {
            history: 0,
            counters: vec![2; n],
            btb: vec![(0, 0); n],
            history_bits,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & ((1 << self.history_bits) - 1)) as usize
    }

    /// Predict and train on a conditional branch; returns whether the
    /// prediction matched the actual outcome.
    pub fn predict_conditional(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let predicted = self.counters[idx] >= 2;
        // Train the counter.
        if taken {
            self.counters[idx] = (self.counters[idx] + 1).min(3);
        } else {
            self.counters[idx] = self.counters[idx].saturating_sub(1);
        }
        self.history = ((self.history << 1) | u64::from(taken)) & ((1 << self.history_bits) - 1);
        predicted == taken
    }

    /// Predict and train an indirect transfer (returns, jump-register):
    /// correct when the BTB holds the right target for this PC.
    pub fn predict_indirect(&mut self, pc: u64, target: u64) -> bool {
        let idx = (pc >> 2) as usize & (self.btb.len() - 1);
        let (tag, pred_target) = self.btb[idx];
        let hit = tag == pc && pred_target == target;
        self.btb[idx] = (pc, target);
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_steady_branch() {
        let mut p = Predictor::new(10);
        let mut correct = 0;
        for _ in 0..100 {
            if p.predict_conditional(0x1000, true) {
                correct += 1;
            }
        }
        assert!(correct >= 98, "steady taken branch: {correct}/100");
    }

    #[test]
    fn learns_loop_exit_pattern_imperfectly() {
        let mut p = Predictor::new(10);
        let mut wrong = 0;
        // 9 taken + 1 not-taken, repeated: classic loop branch.
        for _ in 0..30 {
            for i in 0..10 {
                let taken = i != 9;
                if !p.predict_conditional(0x2000, taken) {
                    wrong += 1;
                }
            }
        }
        assert!(wrong > 0, "loop exits must cost something");
        assert!(wrong < 100, "but most iterations predict fine: {wrong}/300");
    }

    #[test]
    fn btb_learns_stable_indirect_targets() {
        let mut p = Predictor::new(8);
        assert!(!p.predict_indirect(0x4000, 0x100), "cold BTB misses");
        assert!(p.predict_indirect(0x4000, 0x100), "then hits");
        assert!(!p.predict_indirect(0x4000, 0x200), "target change misses");
        assert!(p.predict_indirect(0x4000, 0x200));
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut p = Predictor::new(12);
        for _ in 0..50 {
            p.predict_conditional(0x1000, true);
            p.predict_conditional(0x1004, false);
        }
        // After training, both predict correctly in the same cycle.
        assert!(p.predict_conditional(0x1000, true));
        assert!(p.predict_conditional(0x1004, false));
    }
}
