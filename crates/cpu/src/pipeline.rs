//! The assembled SMT out-of-order pipeline.
//!
//! Cycle phases, in order: **complete** (finished executions wake their
//! dependents and resolve branches), **commit** (per-thread in-order
//! graduation), **issue** (oldest-first from the four queues, within
//! per-queue widths and functional-unit occupancy), **dispatch**
//! (rename + queue insertion, up to the decode width), **fetch** (up to
//! two thread groups of four, chosen by the fetch policy, through the
//! I-cache).
//!
//! MOM stream instructions occupy the single media unit for
//! `⌈stream_length / lanes⌉` cycles (two parallel vector pipes); stream
//! memory instructions issue their element-group accesses over multiple
//! cycles through the memory ports — the latency-tolerance mechanism the
//! paper's §5.4 exploits with the decoupled cache hierarchy.

use crate::config::CpuConfig;
use crate::events::CompletionQueue;
use crate::fetch::{select_threads_into, ThreadFetchInfo};
use crate::predictor::Predictor;
use crate::rename::{PhysReg, RenameFile};
use crate::stats::CpuStats;
use crate::Cycle;
use medsim_isa::{Inst, MomOp, Op, QueueKind};
use medsim_mem::{AccessKind, MemReply, MemRequest, MemSystem, Stall, StreamReply, StreamRequest};
use medsim_workloads::trace::{InstSource, InstStream, SimdIsa, StreamSource};
use std::collections::VecDeque;

const DECODE_BUF_CAP: usize = 16;
const ICACHE_LINE: u64 = 32;

/// The pipeline's window onto the memory hierarchy.
///
/// The CPU model is written against this trait rather than a concrete
/// [`MemSystem`], so a core can be timed over an exclusively owned
/// hierarchy (the single-core case), over per-core private levels
/// backed by a CMP's shared L2 ([`MemSystem::with_shared_backend`]),
/// or over a mock in tests. All three calls carry the current cycle
/// and must be made with non-decreasing `now` values.
pub trait MemPort {
    /// Instruction fetch of one cache line for thread `tid`; returns
    /// the cycle the line is available.
    fn ifetch(&mut self, now: Cycle, tid: u8, addr: u64) -> Cycle;

    /// Issue a data access, or report back-pressure.
    ///
    /// # Errors
    ///
    /// Returns a [`Stall`] when no port is free, the MSHRs are
    /// exhausted (load miss) or the write buffer is full (store).
    fn request(&mut self, now: Cycle, req: MemRequest) -> Result<MemReply, Stall>;

    /// Issue one stream instruction's element group for this cycle in
    /// a single call (see [`MemSystem::request_stream`]).
    fn request_stream(&mut self, now: Cycle, req: StreamRequest) -> StreamReply;

    /// Whether issuing this data access might need a synchronous reply
    /// from a shared backend (see [`MemSystem::request_would_defer`]).
    /// A core stepping inside a multi-cycle quantum parks at the
    /// quantum edge before issuing such an access. The default covers
    /// ports with no shared backend.
    fn request_would_defer(&self, _addr: u64, _kind: AccessKind) -> bool {
        false
    }

    /// Instruction-fetch analogue of
    /// [`MemPort::request_would_defer`].
    fn ifetch_would_defer(&self, _addr: u64) -> bool {
        false
    }

    /// The L1D set a store to `addr` would write-allocate into if it
    /// misses — `Some(set)` means issuing the store evicts that set's
    /// LRU way, which can turn a probed-resident load in the same
    /// cycle into a backend miss (see
    /// [`MemSystem::store_would_evict_set`]). The default covers ports
    /// where stores cannot evict.
    fn store_would_evict_set(&self, _addr: u64) -> Option<u64> {
        None
    }

    /// The L1D set serving `addr` (pure geometry) — pairs with
    /// [`MemPort::store_would_evict_set`] in the quantum park
    /// predicate's set-collision check.
    fn l1d_set_of(&self, _addr: u64) -> u64 {
        0
    }

    /// Run-ahead variant of [`MemPort::request_stream`], used by the
    /// decoupled vector-fetch unit: loads only, and the port may hold
    /// the whole request back (issuing nothing) to keep MSHR headroom
    /// for demand traffic. The default has no headroom policy and just
    /// issues the stream.
    fn request_stream_runahead(&mut self, now: Cycle, req: StreamRequest) -> StreamReply {
        self.request_stream(now, req)
    }

    /// Tell the port which observability lane (core index) its trace
    /// events belong to. Cosmetic; the default ignores it.
    fn set_obs_lane(&mut self, _lane: u32) {}
}

impl MemPort for MemSystem {
    #[inline]
    fn ifetch(&mut self, now: Cycle, tid: u8, addr: u64) -> Cycle {
        MemSystem::ifetch(self, now, tid, addr)
    }

    #[inline]
    fn request(&mut self, now: Cycle, req: MemRequest) -> Result<MemReply, Stall> {
        MemSystem::request(self, now, req)
    }

    #[inline]
    fn request_stream(&mut self, now: Cycle, req: StreamRequest) -> StreamReply {
        MemSystem::request_stream(self, now, req)
    }

    #[inline]
    fn request_stream_runahead(&mut self, now: Cycle, req: StreamRequest) -> StreamReply {
        MemSystem::request_stream_runahead(self, now, req)
    }

    #[inline]
    fn request_would_defer(&self, addr: u64, kind: AccessKind) -> bool {
        MemSystem::request_would_defer(self, addr, kind)
    }

    #[inline]
    fn ifetch_would_defer(&self, addr: u64) -> bool {
        MemSystem::ifetch_would_defer(self, addr)
    }

    #[inline]
    fn store_would_evict_set(&self, addr: u64) -> Option<u64> {
        MemSystem::store_would_evict_set(self, addr)
    }

    #[inline]
    fn l1d_set_of(&self, addr: u64) -> u64 {
        MemSystem::l1d_set_of(self, addr)
    }

    #[inline]
    fn set_obs_lane(&mut self, lane: u32) {
        MemSystem::set_obs_lane(self, lane);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InstState {
    InQueue,
    Executing,
    Done,
}

/// One vector load tracked by the decoupled vector-fetch unit, in
/// dispatch order. The entry stays queued until execute drains the
/// instruction, so fully issued streams hold their window slot — that
/// is the vector-data-queue backpressure: at most
/// [`CpuConfig::decouple_depth`] streams can be ahead of execute.
#[derive(Debug, Clone, Copy)]
struct VFetchEntry {
    id: u32,
    tid: usize,
    /// The run-ahead unit issued elements for this entry (as opposed
    /// to the demand path). Flushed entries re-issue on demand.
    early: bool,
}

#[derive(Debug)]
struct DynInst {
    inst: Inst,
    tid: usize,
    dst: Option<PhysReg>,
    prev_dst: Option<PhysReg>,
    srcs: [Option<PhysReg>; 4],
    state: InstState,
    mem_elems_issued: u8,
    mem_done: Cycle,
    mispredicted: bool,
}

struct ThreadCtx {
    /// Block-oriented instruction supply (a generator adapter, a packed
    /// trace decoder, or a sharded frontend's ring consumer).
    source: Option<Box<dyn InstSource>>,
    /// Current decoded block; the per-instruction hot path is an
    /// indexed read from here — no virtual dispatch per instruction.
    block: Vec<Inst>,
    /// Read position inside `block`.
    block_pos: usize,
    /// Blocks pulled ahead of `block` by the quantum-horizon probe
    /// ([`Cpu::quantum_horizon`]), consumed before asking the source
    /// again — the instruction sequence is exactly the one a serial
    /// schedule pulls, just buffered earlier.
    pending: VecDeque<Vec<Inst>>,
    lookahead: Option<Inst>,
    decode_buf: VecDeque<Inst>,
    fetch_blocked_until: Cycle,
    blocked_on_branch: Option<u32>,
    last_fetch_line: u64,
    exhausted: bool,
    in_flight: usize,
    icount: usize,
    ocount: u64,
    fetched_vector_last: bool,
}

impl ThreadCtx {
    fn empty() -> Self {
        ThreadCtx {
            source: None,
            block: Vec::new(),
            block_pos: 0,
            pending: VecDeque::new(),
            lookahead: None,
            decode_buf: VecDeque::new(),
            fetch_blocked_until: 0,
            blocked_on_branch: None,
            last_fetch_line: u64::MAX,
            exhausted: true,
            in_flight: 0,
            icount: 0,
            ocount: 0,
            fetched_vector_last: false,
        }
    }

    /// Next instruction from the current block, refilling from the
    /// pulled-ahead blocks first and the source at block boundaries.
    /// `None` means the program ended.
    #[inline]
    fn next_from_block(&mut self) -> Option<Inst> {
        loop {
            if let Some(&inst) = self.block.get(self.block_pos) {
                self.block_pos += 1;
                return Some(inst);
            }
            if let Some(b) = self.pending.pop_front() {
                self.block = b;
                self.block_pos = 0;
                continue;
            }
            let src = self.source.as_mut()?;
            self.block_pos = 0;
            if !src.next_block(&mut self.block) {
                self.block.clear();
                return None;
            }
        }
    }

    /// Ensure at least `need` upcoming instructions are buffered
    /// core-locally (lookahead + rest of the current block +
    /// pulled-ahead blocks), pulling whole blocks from the source as
    /// required. Returns the buffered count, which stays below `need`
    /// only when the program is near its end. Never flips `exhausted`
    /// — that transition belongs to fetch.
    fn buffered_ahead(&mut self, need: usize) -> usize {
        let mut have = usize::from(self.lookahead.is_some())
            + (self.block.len() - self.block_pos)
            + self.pending.iter().map(Vec::len).sum::<usize>();
        while have < need {
            let Some(src) = self.source.as_mut() else {
                break;
            };
            let mut b = Vec::new();
            if !src.next_block(&mut b) {
                break;
            }
            have += b.len();
            self.pending.push_back(b);
        }
        have
    }

    /// The next `n` buffered instructions, without consuming them —
    /// exactly the prefix [`ThreadCtx::next_from_block`] would return.
    fn peek_buffered(&self, n: usize) -> impl Iterator<Item = Inst> + '_ {
        self.lookahead
            .iter()
            .copied()
            .chain(self.block[self.block_pos..].iter().copied())
            .chain(self.pending.iter().flat_map(|b| b.iter().copied()))
            .take(n)
    }
}

/// Per-cycle activity carried between the pipeline's phase methods
/// (see [`Cpu::cycle_compute`]): a CMP machine runs the phases of its
/// cores under a barrier schedule, so the counts cannot live on the
/// stack of one `cycle()` call.
#[derive(Debug, Clone, Copy, Default)]
struct PhaseScratch {
    completed: usize,
    committed: usize,
    issued: [usize; 4],
    dispatched: usize,
    fetched: u64,
    fetch_active: bool,
    /// Stream elements the decoupled vector-fetch unit issued early
    /// this cycle (activity: the cycle moved architectural state).
    vfetch_issued: u64,
}

/// Why a core stepping inside a multi-cycle quantum parked at the
/// quantum edge instead of running phase B (see
/// [`Cpu::step_quantum`]). Counted per cause in
/// [`CpuStats::parks_backend_reply`] / [`CpuStats::parks_store_evict`]
/// and surfaced in the machine layer's scheduler counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParkCause {
    /// A ready access (load/prefetch miss, store admission, or an
    /// I-fetch line miss) would need a synchronous backend reply.
    BackendReply = 0,
    /// A ready store's write-allocate eviction could collide with a
    /// probed-resident ready load's L1 set within the same cycle.
    StoreEvict = 1,
}

/// The SMT processor, timed over any [`MemPort`].
pub struct Cpu<M: MemPort = MemSystem> {
    config: CpuConfig,
    now: Cycle,
    mem: M,
    rename: RenameFile,
    slab: Vec<Option<DynInst>>,
    free_slots: Vec<u32>,
    queues: [Vec<u32>; 4],
    robs: Vec<VecDeque<u32>>,
    threads: Vec<ThreadCtx>,
    predictors: Vec<Predictor>,
    completions: CompletionQueue,
    stats: CpuStats,
    rr_cursor: usize,
    media_unit_free: Cycle,
    int_div_free: Cycle,
    fp_div_free: Cycle,
    /// Per-queue ready cursor: entries before it are known to be
    /// waiting on source registers, so the issue scan resumes here.
    /// Valid until any register becomes ready (then reset to 0).
    scan_from: [usize; 4],
    /// A register was marked ready since the last issue scan.
    ready_event: bool,
    /// Issue saw an entry with ready sources that still could not
    /// (fully) issue this cycle — port or media-unit pressure, so the
    /// idle fast-forward must not skip ahead.
    issue_blocked_ready: bool,
    /// Event-driven idle skip enabled (identical results either way;
    /// see [`Cpu::set_fast_forward`]).
    fast_forward: bool,
    /// The core stopped mid-cycle at a quantum edge: phase A of the
    /// current cycle is done, phase B needs the shared backend (see
    /// [`Cpu::step_quantum`]).
    parked: bool,
    /// Observability lane (core index) trace events report under;
    /// cosmetic, never read by the timing model.
    obs_lane: u32,
    /// Decoupled vector-fetch access queue (dispatch-ordered vector
    /// loads still ahead of execute). Empty unless
    /// [`CpuConfig::decouple`] is set.
    vfetch: VecDeque<VFetchEntry>,
    /// Scratch for fetch-policy inputs (reused every cycle).
    fetch_infos: Vec<ThreadFetchInfo>,
    /// Scratch for the fetch thread selection (reused every cycle).
    fetch_sel: Vec<usize>,
    /// Activity counters of the phase currently in flight.
    phase: PhaseScratch,
}

impl<M: MemPort> Cpu<M> {
    /// Build a processor over a memory port.
    #[must_use]
    pub fn new(config: CpuConfig, mem: M) -> Self {
        let threads = config.threads;
        let rename = RenameFile::new(threads, &config.sizing);
        Cpu {
            stats: CpuStats::new(threads),
            rename,
            mem,
            now: 0,
            slab: Vec::new(),
            free_slots: Vec::new(),
            queues: Default::default(),
            robs: (0..threads).map(|_| VecDeque::new()).collect(),
            threads: (0..threads).map(|_| ThreadCtx::empty()).collect(),
            predictors: (0..threads).map(|_| Predictor::new(12)).collect(),
            completions: CompletionQueue::new(config.scheduler, config.wheel_slots),
            rr_cursor: 0,
            media_unit_free: 0,
            int_div_free: 0,
            fp_div_free: 0,
            scan_from: [0; 4],
            ready_event: false,
            issue_blocked_ready: false,
            fast_forward: true,
            parked: false,
            obs_lane: 0,
            vfetch: VecDeque::new(),
            fetch_infos: Vec::with_capacity(threads),
            fetch_sel: Vec::with_capacity(threads),
            phase: PhaseScratch::default(),
            config,
        }
    }

    /// Enable or disable the event-driven idle fast-forward (on by
    /// default). When every fetch unit is stalled and no instruction
    /// can issue, the model jumps straight to the next completion or
    /// I-fetch wakeup instead of ticking empty cycles. Results are
    /// cycle-for-cycle identical either way (enforced by the
    /// `fast_forward_is_invisible` test); the switch exists for that
    /// test and for profiling.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.fast_forward = enabled;
    }

    /// Current cycle.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> &CpuStats {
        &self.stats
    }

    /// The memory port (for its statistics).
    #[must_use]
    pub fn mem(&self) -> &M {
        &self.mem
    }

    /// Mutable access to the memory port — the machine layer's quantum
    /// scheduler uses it to enter and leave deferred mode around
    /// [`Cpu::step_quantum`].
    pub fn mem_mut(&mut self) -> &mut M {
        &mut self.mem
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// Set the observability lane (core index) this core and its
    /// memory port report trace events under. Cosmetic; the timing
    /// model never reads it.
    pub fn set_obs_lane(&mut self, lane: u32) {
        self.obs_lane = lane;
        self.mem.set_obs_lane(lane);
    }

    /// Attach a block-oriented instruction source to hardware context
    /// `tid` — the primary attach path.
    ///
    /// # Panics
    ///
    /// Panics if the context still has instructions in flight.
    pub fn attach_source(&mut self, tid: usize, source: Box<dyn InstSource>) {
        assert!(self.thread_idle(tid), "context {tid} still busy");
        let t = &mut self.threads[tid];
        t.source = Some(source);
        t.block.clear();
        t.block_pos = 0;
        t.pending.clear();
        t.exhausted = false;
        t.lookahead = None;
        t.last_fetch_line = u64::MAX;
        t.fetch_blocked_until = self.now;
        t.blocked_on_branch = None;
    }

    /// Attach a per-instruction stream to hardware context `tid`
    /// (wrapped into blocks; see [`Cpu::attach_source`]).
    ///
    /// # Panics
    ///
    /// Panics if the context still has instructions in flight.
    pub fn attach_thread(&mut self, tid: usize, stream: Box<dyn InstStream>) {
        self.attach_source(tid, Box::new(StreamSource::new(stream)));
    }

    /// Drop every context's instruction source (ring consumers of a
    /// sharded frontend included), unblocking any producer thread still
    /// waiting to ship blocks into a full ring. The machine layer calls
    /// this once a run completes, before its thread scope joins the
    /// producers; all statistics stay intact. The core must not be
    /// cycled afterwards.
    pub fn detach_sources(&mut self) {
        for t in &mut self.threads {
            t.source = None;
        }
    }

    /// Whether context `tid` has fully drained (stream ended, no
    /// buffered or in-flight instructions).
    #[must_use]
    pub fn thread_idle(&self, tid: usize) -> bool {
        let t = &self.threads[tid];
        t.exhausted && t.lookahead.is_none() && t.decode_buf.is_empty() && t.in_flight == 0
    }

    /// Whether every context is idle.
    #[must_use]
    pub fn all_idle(&self) -> bool {
        (0..self.threads.len()).all(|t| self.thread_idle(t))
    }

    /// Record that the program in context `tid` completed (§5.1
    /// program-list scheduling bookkeeping).
    pub fn note_program_completed(&mut self, tid: usize) {
        self.stats.threads[tid].programs_completed += 1;
    }

    /// Advance one cycle (plus any provably idle cycles after it —
    /// see [`Cpu::set_fast_forward`]).
    pub fn cycle(&mut self) {
        let any_activity = self.cycle_no_ff();
        if self.fast_forward && !any_activity {
            self.fast_forward_idle();
        }
    }

    /// Advance exactly one cycle — no idle fast-forward — returning
    /// whether anything moved. A CMP machine steps every core with this
    /// and applies a machine-level fast-forward only when *no* core had
    /// activity (all cores share one clock, so no core may jump alone).
    pub fn cycle_no_ff(&mut self) -> bool {
        self.cycle_compute();
        self.cycle_mem_frontend();
        self.cycle_finish()
    }

    /// Phase A of one cycle: **complete**, **commit** and issue from
    /// the integer/FP/SIMD queues — every stage that touches only
    /// core-private state, never the [`MemPort`]. A CMP machine runs
    /// this phase for all cores concurrently (the phases commute across
    /// cores); the single-core [`Cpu::cycle`] runs it inline. Must be
    /// followed by [`Cpu::cycle_mem_frontend`] then
    /// [`Cpu::cycle_finish`].
    pub fn cycle_compute(&mut self) {
        self.phase = PhaseScratch {
            completed: self.complete(),
            ..PhaseScratch::default()
        };
        self.phase.committed = self.commit();
        // A completion marked registers ready: every queue prefix that
        // was known-blocked must be rescanned.
        if self.ready_event {
            self.scan_from = [0; 4];
            self.ready_event = false;
        }
        self.issue_blocked_ready = false;
        self.phase.issued[0] = self.issue_queue(QueueKind::Int, self.config.int_issue);
        self.phase.issued[2] = self.issue_queue(QueueKind::Fp, self.config.fp_issue);
        self.phase.issued[3] = self.issue_queue(QueueKind::Simd, self.config.simd_issue);
        self.stats.issued[0] += self.phase.issued[0] as u64;
        self.stats.issued[2] += self.phase.issued[2] as u64;
        self.stats.issued[3] += self.phase.issued[3] as u64;
    }

    /// Phase B of one cycle: memory issue, dispatch and fetch — the
    /// stages that talk to the [`MemPort`]. In a CMP the machine layer
    /// is the bus arbiter: it runs this phase core by core in **fixed
    /// core order** behind the phase-A barrier, so the shared L2/DRAM
    /// backend sees a deterministic request sequence no matter how the
    /// host schedules the phase-A workers.
    pub fn cycle_mem_frontend(&mut self) {
        self.phase.issued[1] = self.issue_mem();
        self.stats.issued[1] += self.phase.issued[1] as u64;
        // The decoupled vector-fetch unit runs after demand issue (it
        // uses whatever ports demand traffic left free) and before
        // dispatch (entries dispatched this cycle wait a cycle before
        // running ahead, so the quantum park predicate — evaluated
        // before phase B — has seen every entry the unit can touch).
        self.vfetch_run();
        self.phase.dispatched = self.dispatch();
        let fetched_before = self.stats.fetched;
        self.phase.fetch_active = self.fetch();
        self.phase.fetched = self.stats.fetched - fetched_before;
    }

    /// Close the cycle opened by [`Cpu::cycle_compute`]: per-cycle
    /// diagnostics, the clock tick, and the activity verdict (`false`
    /// means nothing moved and nothing can move until a completion or
    /// an I-fetch wakeup — the fast-forward precondition).
    pub fn cycle_finish(&mut self) -> bool {
        let [int_i, mem_i, fp_i, simd_i] = self.phase.issued;
        // §5.3 diagnostic: cycles where only the vector pipe issued.
        if simd_i > 0 && int_i == 0 && fp_i == 0 && mem_i == 0 {
            self.stats.vector_only_cycles += 1;
        }
        if simd_i + int_i + fp_i + mem_i == 0 {
            self.stats.idle_cycles += 1;
        }
        if medsim_obs::tracing() {
            use medsim_obs::EventKind;
            medsim_obs::note_cycle(self.now);
            if self.phase.fetched > 0 {
                medsim_obs::emit(
                    self.now,
                    self.obs_lane,
                    EventKind::Fetch,
                    self.phase.fetched,
                );
            }
            let issued = (int_i + mem_i + fp_i + simd_i) as u64;
            if issued > 0 {
                medsim_obs::emit(self.now, self.obs_lane, EventKind::Issue, issued);
            }
            if self.phase.committed > 0 {
                medsim_obs::emit(
                    self.now,
                    self.obs_lane,
                    EventKind::Commit,
                    self.phase.committed as u64,
                );
            }
        }
        self.now += 1;
        self.stats.cycles = self.now;
        self.phase.completed + self.phase.committed + self.phase.dispatched != 0
            || int_i + mem_i + fp_i + simd_i != 0
            || self.phase.fetch_active
            || self.phase.vfetch_issued > 0
            || self.issue_blocked_ready
    }

    /// How many cycles this core can provably step without its
    /// instruction sources or a machine-level refill: per live thread,
    /// enough instructions are pulled ahead ([`ThreadCtx::pending`])
    /// that at least `fetch_width` stay buffered at every cycle of the
    /// returned horizon — so in-quantum fetches never query a (possibly
    /// blocking) source and thread exhaustion cannot flip inside a
    /// quantum. `0` (take lockstep cycles instead) when a thread is
    /// already exhausted — it could drain and need the machine's
    /// program-list refill at any cycle — or near its end. Capped at
    /// `want`.
    pub fn quantum_horizon(&mut self, want: u64) -> u64 {
        let fw = self.config.fetch_width.max(1);
        let need = (want as usize + 1) * fw;
        let mut h = want;
        for t in &mut self.threads {
            if t.exhausted {
                return 0;
            }
            let buffered = t.buffered_ahead(need);
            // `buffered / fw` full fetch groups cover that many cycles;
            // keep one group in reserve so the horizon's last cycle
            // still fetches without touching the source.
            h = h.min(((buffered / fw) as u64).saturating_sub(1));
            if h == 0 {
                return 0;
            }
        }
        h
    }

    /// Whether running phase B ([`Cpu::cycle_mem_frontend`]) this cycle
    /// might need a synchronous reply from the shared backend.
    /// Conservative: it checks every ready memory-queue entry (not just
    /// the ones the issue scan would pick) and every runnable thread's
    /// upcoming fetch lines (not just the threads the fetch policy
    /// would choose) — it may park a core whose cycle would have stayed
    /// private, never the reverse (the deferred-mode assertion in
    /// `MemSystem::with_backend` enforces that). Returns the park
    /// cause, or `None` when phase B is provably private this cycle.
    fn phase_b_would_park(&self) -> Option<ParkCause> {
        // Memory issue: any ready element whose access could consult
        // the backend. Directly — a load/prefetch that would miss L1 —
        // or indirectly: a store's write-allocate evicts its set's LRU
        // way, so a store miss issued earlier in this same cycle can
        // turn a probed-resident load into a real miss before the load
        // issues. Collect the sets ready store misses would allocate
        // into; a collision with any ready load's set parks the core
        // (order-agnostic, so conservative — the load may well issue
        // first or the victim may be a different way).
        let qi = Self::queue_idx(QueueKind::Mem);
        let mut evict_sets: Vec<u64> = Vec::new();
        for &id in &self.queues[qi] {
            let d = self.slab[id as usize]
                .as_ref()
                .expect("queued instruction exists");
            if d.state != InstState::InQueue || !self.sources_ready(d) {
                continue;
            }
            let Some(mem) = d.inst.mem else {
                continue;
            };
            let kind = access_kind(&d.inst);
            for e in d.mem_elems_issued..mem.count {
                let addr = mem.elem_addr(e);
                if self.mem.request_would_defer(addr, kind) {
                    return Some(ParkCause::BackendReply);
                }
                if kind.is_store() {
                    if let Some(set) = self.mem.store_would_evict_set(addr) {
                        evict_sets.push(set);
                    }
                }
            }
        }
        if !evict_sets.is_empty() {
            // Second pass only when a store miss is in play (rare):
            // check every ready load element's set for a collision.
            for &id in &self.queues[qi] {
                let d = self.slab[id as usize]
                    .as_ref()
                    .expect("queued instruction exists");
                if d.state != InstState::InQueue || !self.sources_ready(d) {
                    continue;
                }
                let Some(mem) = d.inst.mem else {
                    continue;
                };
                let kind = access_kind(&d.inst);
                if kind.is_store() {
                    continue;
                }
                for e in d.mem_elems_issued..mem.count {
                    if evict_sets.contains(&self.mem.l1d_set_of(mem.elem_addr(e))) {
                        return Some(ParkCause::StoreEvict);
                    }
                }
            }
        }
        // Decoupled run-ahead: the vector-fetch unit issues loads in
        // phase B too, and it does NOT wait for source registers.
        // Conservative: scan the whole access queue, not just the
        // run-ahead window — drains earlier in the same phase can
        // slide entries into the window.
        if self.config.decouple {
            for e in &self.vfetch {
                let d = self.slab[e.id as usize]
                    .as_ref()
                    .expect("vfetch entry exists");
                if d.state != InstState::InQueue {
                    continue;
                }
                let Some(mem) = d.inst.mem else {
                    continue;
                };
                for el in d.mem_elems_issued..mem.count {
                    if self
                        .mem
                        .request_would_defer(mem.elem_addr(el), AccessKind::VectorLoad)
                    {
                        return Some(ParkCause::BackendReply);
                    }
                }
            }
        }
        // Fetch: any runnable thread whose fetch group would cross into
        // an I-line that misses. Dispatch (which runs before fetch) can
        // free decode-buffer space, so buffer occupancy must NOT gate
        // runnability here — only the conditions phase B cannot change.
        for t in &self.threads {
            if t.exhausted || t.blocked_on_branch.is_some() || t.fetch_blocked_until > self.now {
                continue;
            }
            let mut line = t.last_fetch_line;
            for inst in t.peek_buffered(self.config.fetch_width) {
                let l = inst.pc & !(ICACHE_LINE - 1);
                if l != line {
                    if self.mem.ifetch_would_defer(l) {
                        return Some(ParkCause::BackendReply);
                    }
                    line = l;
                }
                if inst.branch.map(|b| b.taken).unwrap_or(false) {
                    break;
                }
            }
        }
        None
    }

    /// Whether the core stopped mid-cycle at a quantum edge (phase A of
    /// the cycle at [`Cpu::now`] done, phase B pending the backend —
    /// see [`Cpu::step_quantum`]).
    #[must_use]
    pub fn parked(&self) -> bool {
        self.parked
    }

    /// Step independently up to `bound` with zero shared-backend
    /// synchronization — the inside of one scheduling quantum. The
    /// `MemPort` must already be in deferred mode: fire-and-forget
    /// store-drain traffic is logged (cycle-stamped) for the boundary
    /// replay instead of hitting the backend. Before each cycle's
    /// phase B the core checks [`Cpu::phase_b_would_park`]; a cycle
    /// that might need a backend reply leaves the core **parked** with
    /// phase A done and its clock frozen — the machine layer's
    /// boundary sweep finishes it ([`Cpu::finish_parked_cycle`]) once
    /// all logs up to that cycle are drained. `fast_forward` mirrors
    /// the machine-level idle skip (clipped at `bound`); pass the
    /// machine's setting.
    pub fn step_quantum(&mut self, bound: Cycle, fast_forward: bool) {
        debug_assert!(!self.parked, "finish the parked cycle first");
        while self.now < bound {
            self.cycle_compute();
            if let Some(cause) = self.phase_b_would_park() {
                match cause {
                    ParkCause::BackendReply => self.stats.parks_backend_reply += 1,
                    ParkCause::StoreEvict => self.stats.parks_store_evict += 1,
                }
                if medsim_obs::tracing() {
                    medsim_obs::emit(
                        self.now,
                        self.obs_lane,
                        medsim_obs::EventKind::Park,
                        cause as u64,
                    );
                }
                self.parked = true;
                return;
            }
            self.cycle_mem_frontend();
            let active = self.cycle_finish();
            if fast_forward && !active {
                if let Some(w) = self.fast_forward_wake() {
                    self.apply_fast_forward(w.min(bound));
                }
            }
        }
    }

    /// Finish the cycle a quantum park left half-done: phase B and the
    /// cycle close, with the backend live again (the machine layer has
    /// replayed every core's deferred traffic up to this cycle).
    pub fn finish_parked_cycle(&mut self) {
        debug_assert!(self.parked, "no parked cycle to finish");
        self.parked = false;
        self.cycle_mem_frontend();
        let _ = self.cycle_finish();
    }

    /// Jump from the current (already advanced) cycle to the next cycle
    /// at which the machine state can change: the earliest pending
    /// completion or the earliest I-fetch unblock. Replicates exactly
    /// the per-cycle statistics the skipped idle cycles would have
    /// accumulated, so results are identical to ticking through them.
    fn fast_forward_idle(&mut self) {
        if let Some(wake) = self.fast_forward_wake() {
            self.apply_fast_forward(wake);
        }
    }

    /// The next cycle at which this core's state can change, given the
    /// cycle just finished had no activity: the earliest pending
    /// completion or I-fetch unblock. `None` when nothing is pending
    /// (the core is drained, or blocked solely on branch resolution
    /// that will never come — impossible after a no-activity cycle).
    #[must_use]
    pub fn fast_forward_wake(&self) -> Option<Cycle> {
        let mut wake: Option<Cycle> = self.completions.next_due();
        let prev = self.now - 1; // the idle cycle just simulated
        for t in &self.threads {
            if t.exhausted || t.blocked_on_branch.is_some() {
                continue;
            }
            if t.fetch_blocked_until > prev {
                wake = Some(wake.map_or(t.fetch_blocked_until, |w| w.min(t.fetch_blocked_until)));
            }
        }
        wake
    }

    /// Skip idle cycles up to `wake` (at most this core's own
    /// [`Cpu::fast_forward_wake`] — a CMP machine passes the minimum
    /// over its cores so the chip stays in lockstep), replicating the
    /// per-cycle statistics the skipped cycles would have accumulated.
    pub fn apply_fast_forward(&mut self, wake: Cycle) {
        let mut branch_blocked = 0u64;
        let mut time_blocked = 0u64;
        let prev = self.now - 1; // the idle cycle just simulated
        for t in &self.threads {
            if t.exhausted {
                continue;
            }
            if t.blocked_on_branch.is_some() {
                branch_blocked += 1;
            } else if t.fetch_blocked_until > prev {
                time_blocked += 1;
            }
        }
        let Some(skipped) = wake.checked_sub(self.now) else {
            return;
        };
        if skipped == 0 {
            return;
        }
        // Stall accounting the skipped fetch stages would have done.
        self.stats.fetch_branch_stalls += skipped * branch_blocked;
        self.stats.fetch_icache_stalls += skipped * time_blocked;
        // Dispatch would have re-hit the same head-of-buffer stall.
        let (rob, queue, reg) = self.dispatch_stall_profile();
        self.stats.dispatch_rob_stalls += skipped * rob;
        self.stats.dispatch_queue_stalls += skipped * queue;
        self.stats.dispatch_reg_stalls += skipped * reg;
        self.stats.idle_cycles += skipped;
        // The vector-fetch occupancy gauge the skipped cycles would
        // have sampled (their queue composition cannot change during
        // an idle stretch: draining an entry is issue activity).
        if self.config.decouple && !self.vfetch.is_empty() {
            self.stats.vfetch_cycles += skipped;
            self.stats.vfetch_occupancy_sum += skipped * self.vfetch.len() as u64;
        }
        self.rr_cursor = (self.rr_cursor + skipped as usize) % self.threads.len();
        self.now = wake;
        self.stats.cycles = self.now;
    }

    /// The per-cycle dispatch stall counters an idle cycle produces:
    /// one per thread whose decode buffer head cannot enter the window,
    /// by stall reason. Read-only twin of the bookkeeping in
    /// [`Cpu::dispatch`] for the fast-forward path.
    fn dispatch_stall_profile(&self) -> (u64, u64, u64) {
        let (mut rob, mut queue, mut reg) = (0u64, 0u64, 0u64);
        for (tid, t) in self.threads.iter().enumerate() {
            let Some(inst) = t.decode_buf.front() else {
                continue;
            };
            if self.robs[tid].len() >= self.config.sizing.rob_per_thread {
                rob += 1;
            } else if self.queues[Self::queue_idx(inst.queue())].len()
                >= self.config.sizing.queue_entries
            {
                queue += 1;
            } else {
                // The head must be blocked on a free physical register:
                // were it dispatchable, the cycle would have dispatched
                // it and fast-forward would not have been entered.
                reg += 1;
            }
        }
        (rob, queue, reg)
    }

    /// Run until all attached threads drain or `max_cycles` elapse.
    /// Returns `true` if everything drained.
    pub fn run_to_idle(&mut self, max_cycles: u64) -> bool {
        let limit = self.now + max_cycles;
        while !self.all_idle() {
            if self.now >= limit {
                return false;
            }
            self.cycle();
        }
        true
    }

    // ---- pipeline phases -------------------------------------------------

    fn complete(&mut self) -> usize {
        let mut processed = 0;
        while let Some(id) = self.completions.pop_due(self.now) {
            processed += 1;
            let d = self.slab[id as usize]
                .as_mut()
                .expect("completing instruction exists");
            debug_assert_eq!(d.state, InstState::Executing);
            d.state = InstState::Done;
            let tid = d.tid;
            let dst = d.dst;
            let mispredicted = d.mispredicted;
            if let Some(p) = dst {
                self.rename.mark_ready(p);
                // Waiters anywhere in the queues may now be issuable:
                // invalidate the ready cursors.
                self.ready_event = true;
            }
            // Branch resolution unblocks fetch (plus redirect penalty).
            if mispredicted && self.threads[tid].blocked_on_branch == Some(id) {
                self.threads[tid].blocked_on_branch = None;
                self.threads[tid].fetch_blocked_until = self.now + self.config.mispredict_penalty;
                // A redirect discards the thread's run-ahead state: the
                // buffered vector data is stale, so its loads re-issue
                // on the demand path.
                if self.config.decouple {
                    self.vfetch_flush(tid);
                }
            }
        }
        processed
    }

    fn commit(&mut self) -> usize {
        let n = self.threads.len();
        let mut committed = 0;
        let mut budget = self.config.commit_width;
        // Rotate the starting thread for fairness.
        for off in 0..n {
            let tid = (self.rr_cursor + off) % n;
            while budget > 0 {
                let Some(&head) = self.robs[tid].front() else {
                    break;
                };
                let done = matches!(
                    self.slab[head as usize]
                        .as_ref()
                        .expect("rob entry exists")
                        .state,
                    InstState::Done
                );
                if !done {
                    break;
                }
                self.robs[tid].pop_front();
                let d = self.slab[head as usize].take().expect("rob entry exists");
                self.free_slots.push(head);
                if let Some(prev) = d.prev_dst {
                    self.rename.release(prev);
                }
                let t = &mut self.threads[tid];
                t.in_flight -= 1;
                let equiv = d.inst.equivalent_count();
                self.stats.threads[tid].committed += 1;
                self.stats.threads[tid].committed_equiv += equiv;
                self.stats.record_commit_kind(d.inst.kind(), equiv);
                if d.inst.branch.is_some() {
                    self.stats.threads[tid].branches += 1;
                    if d.mispredicted {
                        self.stats.threads[tid].mispredicts += 1;
                    }
                }
                committed += 1;
                budget -= 1;
            }
        }
        committed
    }

    fn sources_ready(&self, d: &DynInst) -> bool {
        d.srcs.iter().flatten().all(|&p| self.rename.is_ready(p))
    }

    fn queue_idx(q: QueueKind) -> usize {
        match q {
            QueueKind::Int => 0,
            QueueKind::Mem => 1,
            QueueKind::Fp => 2,
            QueueKind::Simd => 3,
        }
    }

    /// Execution latency of a non-memory instruction, plus any
    /// unpipelined-unit occupancy bookkeeping.
    fn exec_latency(&mut self, inst: &Inst) -> Cycle {
        use medsim_isa::{FpOp, IntOp};
        match inst.op {
            Op::Int(o) => match o {
                IntOp::Mul | IntOp::Mulh => self.config.lat_int_mul,
                IntOp::Div | IntOp::Rem => {
                    let start = self.int_div_free.max(self.now);
                    self.int_div_free = start + self.config.lat_int_div;
                    (start - self.now) + self.config.lat_int_div
                }
                _ => 1,
            },
            Op::Ctl(_) => 1,
            Op::Fp(o) => match o {
                FpOp::FDiv | FpOp::FSqrt => {
                    let start = self.fp_div_free.max(self.now);
                    self.fp_div_free = start + self.config.lat_fp_div;
                    (start - self.now) + self.config.lat_fp_div
                }
                FpOp::FMul | FpOp::FMadd => self.config.lat_fp_mul,
                _ => self.config.lat_fp_add,
            },
            Op::Mmx(o) => {
                if o.is_mul() {
                    self.config.lat_simd_mul
                } else {
                    1
                }
            }
            Op::Mom(o) => {
                let base = if o.is_mul() {
                    self.config.lat_simd_mul
                } else {
                    1
                };
                let occupancy = Cycle::from(inst.slen)
                    .div_ceil(self.config.vector_lanes as u64)
                    .max(1);
                occupancy + base - 1
            }
            Op::Mem(_) => unreachable!("memory ops issue via issue_mem"),
        }
    }

    /// Issue from one of the non-memory queues, oldest first.
    ///
    /// Steady-state allocation-free: issued entries are compacted out
    /// of the queue in place (no scratch `Vec`, no O(n²) `retain`), and
    /// the scan resumes at [`Cpu::scan_from`] — the prefix before it is
    /// known to be waiting on source registers, which can only change
    /// through a completion (tracked by `ready_event`).
    fn issue_queue(&mut self, q: QueueKind, width: usize) -> usize {
        let qi = Self::queue_idx(q);
        let len = self.queues[qi].len();
        let start = self.scan_from[qi].min(len);
        if start >= len || width == 0 {
            return 0;
        }
        let mom_isa = self.config.isa == SimdIsa::Mom;
        let mut issued = 0usize;
        let mut write = start;
        let mut pos = start;
        // First kept entry that is ready but resource-blocked (the scan
        // must come back to it even without a new ready event).
        let mut cursor_stop: Option<usize> = None;
        while pos < len {
            if issued >= width {
                break;
            }
            let id = self.queues[qi][pos];
            let d = self.slab[id as usize]
                .as_ref()
                .expect("queued instruction exists");
            if d.state != InstState::InQueue || !self.sources_ready(d) {
                self.queues[qi][write] = id;
                write += 1;
                pos += 1;
                continue;
            }
            // The MOM media unit is a single occupied resource.
            let is_stream = matches!(d.inst.op, Op::Mom(_));
            if q == QueueKind::Simd && mom_isa && is_stream && self.media_unit_free > self.now {
                cursor_stop.get_or_insert(write);
                self.issue_blocked_ready = true;
                self.queues[qi][write] = id;
                write += 1;
                pos += 1;
                continue;
            }
            let inst = d.inst;
            let tid = d.tid;
            let lat = self.exec_latency(&inst);
            if q == QueueKind::Simd && mom_isa && is_stream {
                let occupancy = Cycle::from(inst.slen)
                    .div_ceil(self.config.vector_lanes as u64)
                    .max(1);
                self.media_unit_free = self.now + occupancy;
            }
            let d = self.slab[id as usize]
                .as_mut()
                .expect("queued instruction exists");
            d.state = InstState::Executing;
            self.completions.push(self.now + lat, id);
            self.threads[tid].icount -= 1;
            self.threads[tid].ocount -= inst.equivalent_count();
            issued += 1;
            pos += 1; // issued: hole closed by the compaction below
        }
        // Resume point: the first ready-but-blocked survivor, else the
        // first unexamined entry (which lands at `write` after the tail
        // is compacted down).
        let resume = cursor_stop.unwrap_or(write);
        while pos < len {
            self.queues[qi][write] = self.queues[qi][pos];
            write += 1;
            pos += 1;
        }
        self.queues[qi].truncate(write);
        self.scan_from[qi] = resume;
        issued
    }

    /// Issue element-group accesses from the memory queue. Same
    /// in-place compaction and ready-cursor scheme as
    /// [`Cpu::issue_queue`]; partially issued stream accesses stay at
    /// the front and pin the cursor (ports free up over time, not
    /// through ready events).
    fn issue_mem(&mut self) -> usize {
        let qi = Self::queue_idx(QueueKind::Mem);
        let len = self.queues[qi].len();
        let start = self.scan_from[qi].min(len);
        if start >= len {
            return 0;
        }
        let mut slots = self.config.mem_issue;
        let mut issued_count = 0;
        let mut write = start;
        let mut pos = start;
        let mut cursor_stop: Option<usize> = None;
        while pos < len {
            if slots == 0 {
                break;
            }
            let id = self.queues[qi][pos];
            let d = self.slab[id as usize]
                .as_ref()
                .expect("queued instruction exists");
            if d.state != InstState::InQueue || !self.sources_ready(d) {
                self.queues[qi][write] = id;
                write += 1;
                pos += 1;
                continue;
            }
            let Some(mem) = d.inst.mem else {
                // Dispatch routes an instruction to the memory queue
                // only for memory opcodes, and every constructor of
                // those carries a MemRef.
                unreachable!("memory-queue instruction without an access: {:?}", d.inst)
            };
            let tid = d.tid;
            let kind = access_kind(&d.inst);
            let elems_before = d.mem_elems_issued;
            // Decoupled drain: the run-ahead unit already issued the
            // whole stream, so execute consumes the buffered replies
            // in order — one issue slot, no memory port.
            if self.config.decouple && elems_before == mem.count {
                let equiv = d.inst.equivalent_count();
                let mem_done = d.mem_done;
                let d = self.slab[id as usize].as_mut().expect("exists");
                d.state = InstState::Executing;
                self.completions.push(mem_done.max(self.now + 1), id);
                self.threads[tid].icount -= 1;
                self.threads[tid].ocount -= equiv;
                self.vfetch_forget(id);
                self.stats.vfetch_drains += 1;
                issued_count += 1;
                slots -= 1;
                pos += 1;
                continue;
            }
            let mut elems = elems_before;
            let mut mem_done = d.mem_done;
            if self.config.stream_batch && mem.count > 1 {
                // Batched path: hand the whole element group for this
                // cycle to the memory system in one call (identical
                // timing and statistics to the per-element loop below —
                // enforced by the differential suite).
                let want = (mem.count - elems).min(slots.min(usize::from(u8::MAX)) as u8);
                let reply = self.mem.request_stream(
                    self.now,
                    StreamRequest {
                        tid: tid as u8,
                        base: mem.elem_addr(elems),
                        stride: mem.stride,
                        count: want,
                        size: mem.size,
                        kind,
                    },
                );
                elems += reply.issued;
                slots -= reply.issued as usize;
                mem_done = mem_done.max(reply.done_at);
                match reply.stall {
                    Some(Stall::PortBusy) => {
                        self.stats.mem_stalls += 1;
                        slots = 0; // ports exhausted this cycle
                    }
                    Some(_) => self.stats.mem_stalls += 1,
                    None => {}
                }
            } else {
                while elems < mem.count && slots > 0 {
                    let req = MemRequest {
                        tid: tid as u8,
                        addr: mem.elem_addr(elems),
                        size: mem.size,
                        kind,
                    };
                    match self.mem.request(self.now, req) {
                        Ok(reply) => {
                            elems += 1;
                            slots -= 1;
                            mem_done = mem_done.max(reply.done_at);
                        }
                        Err(Stall::PortBusy) => {
                            self.stats.mem_stalls += 1;
                            slots = 0; // ports exhausted this cycle
                            break;
                        }
                        Err(_) => {
                            self.stats.mem_stalls += 1;
                            break;
                        }
                    }
                }
            }
            let d = self.slab[id as usize].as_mut().expect("exists");
            d.mem_elems_issued = elems;
            d.mem_done = mem_done;
            if elems > elems_before {
                issued_count += 1;
            }
            if elems == mem.count {
                d.state = InstState::Executing;
                self.completions.push(mem_done.max(self.now + 1), id);
                self.threads[tid].icount -= 1;
                self.threads[tid].ocount -= d.inst.equivalent_count();
                // Fully issued: drop from the queue (hole compacted).
                // A partially run-ahead stream finished on the demand
                // path leaves the access queue here.
                if self.config.decouple {
                    self.vfetch_forget(id);
                }
            } else {
                // Ready but port/MSHR/write-buffer limited: keep, and
                // make sure the next scan starts at or before it.
                cursor_stop.get_or_insert(write);
                self.issue_blocked_ready = true;
                self.queues[qi][write] = id;
                write += 1;
            }
            pos += 1;
        }
        let resume = cursor_stop.unwrap_or(write);
        while pos < len {
            self.queues[qi][write] = self.queues[qi][pos];
            write += 1;
            pos += 1;
        }
        self.queues[qi].truncate(write);
        self.scan_from[qi] = resume;
        issued_count
    }

    /// Step the decoupled vector-fetch unit: issue stream element
    /// groups for the oldest queued vector loads ahead of execute,
    /// strictly in order, through whatever memory ports demand issue
    /// left free this cycle. Only the first
    /// [`CpuConfig::decouple_depth`] entries — the run-ahead window,
    /// which doubles as the vector-data-queue capacity since a fully
    /// issued stream keeps its slot until execute drains it — are
    /// eligible; a stalled entry (ports, MSHR headroom) blocks the
    /// younger entries behind it.
    fn vfetch_run(&mut self) {
        self.phase.vfetch_issued = 0;
        if !self.config.decouple || self.vfetch.is_empty() {
            return;
        }
        self.stats.vfetch_cycles += 1;
        self.stats.vfetch_occupancy_sum += self.vfetch.len() as u64;
        let window = self.config.decouple_depth.min(self.vfetch.len());
        let mut issued_total = 0u64;
        for i in 0..window {
            let e = self.vfetch[i];
            let d = self.slab[e.id as usize]
                .as_ref()
                .expect("vfetch entry exists");
            debug_assert_eq!(
                d.state,
                InstState::InQueue,
                "drained entries leave the access queue"
            );
            let Some(mem) = d.inst.mem else {
                continue;
            };
            if d.mem_elems_issued >= mem.count {
                continue; // buffered, waiting for execute to drain
            }
            let want = mem.count - d.mem_elems_issued;
            let reply = self.mem.request_stream_runahead(
                self.now,
                StreamRequest {
                    tid: e.tid as u8,
                    base: mem.elem_addr(d.mem_elems_issued),
                    stride: mem.stride,
                    count: want,
                    size: mem.size,
                    kind: AccessKind::VectorLoad,
                },
            );
            let d = self.slab[e.id as usize]
                .as_mut()
                .expect("vfetch entry exists");
            d.mem_elems_issued += reply.issued;
            d.mem_done = d.mem_done.max(reply.done_at);
            if reply.issued > 0 {
                self.vfetch[i].early = true;
                issued_total += u64::from(reply.issued);
            }
            if self.slab[e.id as usize]
                .as_ref()
                .expect("vfetch entry exists")
                .mem_elems_issued
                < mem.count
            {
                // Port or MSHR-headroom stall: strictly in order, so
                // nothing younger runs ahead past this entry — and the
                // idle fast-forward must not skip the retry cycles.
                self.issue_blocked_ready = true;
                break;
            }
        }
        self.stats.vfetch_runahead_elems += issued_total;
        self.phase.vfetch_issued = issued_total;
        // Run-ahead distance: entries holding early-issued elements
        // ahead of execute. Entries only move toward the queue front,
        // so every flagged entry sits inside the window — the distance
        // is bounded by the configured depth (property-tested).
        let dist = self.vfetch.iter().filter(|e| e.early).count() as u64;
        self.stats.vfetch_max_runahead = self.stats.vfetch_max_runahead.max(dist);
        if issued_total > 0 && medsim_obs::tracing() {
            medsim_obs::emit(
                self.now,
                self.obs_lane,
                medsim_obs::EventKind::VfetchIssue,
                issued_total,
            );
        }
    }

    /// Remove a drained (completed) vector load from the access queue.
    fn vfetch_forget(&mut self, id: u32) {
        self.vfetch.retain(|e| e.id != id);
    }

    /// Precise redirect flush: discard thread `tid`'s run-ahead state.
    /// Entries stay queued (this model redirects by stalling fetch —
    /// the queued instructions themselves are not squashed), but their
    /// early-issued elements are discarded and re-issue on the demand
    /// path, modelling the re-fetch of a buffered stream the redirect
    /// invalidated.
    fn vfetch_flush(&mut self, tid: usize) {
        let mut flushed = 0u64;
        for i in 0..self.vfetch.len() {
            let e = self.vfetch[i];
            if e.tid != tid || !e.early {
                continue;
            }
            let d = self.slab[e.id as usize]
                .as_mut()
                .expect("vfetch entry exists");
            debug_assert_eq!(d.state, InstState::InQueue);
            flushed += u64::from(d.mem_elems_issued);
            d.mem_elems_issued = 0;
            d.mem_done = 0;
            self.vfetch[i].early = false;
        }
        if flushed > 0 {
            self.stats.vfetch_flushes += 1;
            self.stats.vfetch_flushed_elems += flushed;
            if medsim_obs::tracing() {
                medsim_obs::emit(
                    self.now,
                    self.obs_lane,
                    medsim_obs::EventKind::VfetchFlush,
                    flushed,
                );
            }
        }
    }

    fn dispatch(&mut self) -> usize {
        let n = self.threads.len();
        let mut dispatched = 0;
        let mut budget = self.config.decode_width;
        for off in 0..n {
            let tid = (self.rr_cursor + off) % n;
            while budget > 0 {
                let Some(&inst) = self.threads[tid].decode_buf.front() else {
                    break;
                };
                if self.robs[tid].len() >= self.config.sizing.rob_per_thread {
                    self.stats.dispatch_rob_stalls += 1;
                    break;
                }
                let qi = Self::queue_idx(inst.queue());
                if self.queues[qi].len() >= self.config.sizing.queue_entries {
                    self.stats.dispatch_queue_stalls += 1;
                    break;
                }
                // Rename sources first (they must see the old mappings),
                // then the destination.
                let mut srcs: [Option<PhysReg>; 4] = [None; 4];
                for (i, s) in inst.sources().enumerate() {
                    if !s.is_zero() {
                        srcs[i] = Some(self.rename.lookup(tid, s));
                    }
                }
                // MOM instructions implicitly read the stream-length
                // register (integer r31, renamed through the int pool).
                if let Op::Mom(o) = inst.op {
                    if o != MomOp::SetVl {
                        srcs[3] =
                            Some(self.rename.lookup(
                                tid,
                                medsim_isa::regs::int(medsim_isa::regs::STREAM_LEN_REG),
                            ));
                    }
                }
                let (dst, prev_dst) = match inst.dst {
                    Some(dreg) if !dreg.is_zero() => match self.rename.allocate(tid, dreg) {
                        Some((new, prev)) => (Some(new), Some(prev)),
                        None => {
                            self.stats.dispatch_reg_stalls += 1;
                            break;
                        }
                    },
                    _ => (None, None),
                };
                self.threads[tid].decode_buf.pop_front();

                // Branch prediction at decode: a wrong prediction blocks
                // this thread's fetch until the branch resolves.
                let mut mispredicted = false;
                if let (Op::Ctl(c), Some(b)) = (inst.op, inst.branch) {
                    if c.is_conditional() {
                        mispredicted = !self.predictors[tid].predict_conditional(inst.pc, b.taken);
                    } else if c.is_indirect() {
                        mispredicted = !self.predictors[tid].predict_indirect(inst.pc, b.target);
                    }
                }

                let d = DynInst {
                    inst,
                    tid,
                    dst,
                    prev_dst,
                    srcs,
                    state: InstState::InQueue,
                    mem_elems_issued: 0,
                    mem_done: 0,
                    mispredicted,
                };
                let id = match self.free_slots.pop() {
                    Some(slot) => {
                        self.slab[slot as usize] = Some(d);
                        slot
                    }
                    None => {
                        self.slab.push(Some(d));
                        (self.slab.len() - 1) as u32
                    }
                };
                self.queues[qi].push(id);
                self.robs[tid].push_back(id);
                self.threads[tid].in_flight += 1;
                // Stream loads also enter the decoupled vector-fetch
                // unit's access queue (stream addresses are known at
                // dispatch — source operands gate execute, not fetch).
                // Only MOM stream instructions decouple: a single
                // packed MMX load is one demand access with nothing to
                // run ahead of, and on the conventional hierarchy it
                // would only fight demand misses for MSHR headroom.
                // An empty window (depth 0) keeps the unit fully
                // dormant — nothing is enqueued, so not even the
                // occupancy bookkeeping can diverge from the coupled
                // machine.
                if self.config.decouple
                    && self.config.decouple_depth > 0
                    && inst.op.is_stream()
                    && inst.queue() == QueueKind::Mem
                    && matches!(access_kind(&inst), AccessKind::VectorLoad)
                {
                    self.vfetch.push_back(VFetchEntry {
                        id,
                        tid,
                        early: false,
                    });
                }
                if mispredicted {
                    self.threads[tid].blocked_on_branch = Some(id);
                }
                dispatched += 1;
                budget -= 1;
            }
        }
        dispatched
    }

    /// Fetch into the decode buffers. Returns whether anything moved:
    /// a thread was selected (even a fruitless selection touches the
    /// I-cache or exhausts a stream) — when `false`, fetch is fully
    /// stalled and contributes nothing until a wakeup time.
    fn fetch(&mut self) -> bool {
        // Build the selection inputs and account stall reasons in one
        // pass over the thread contexts.
        let mut infos = std::mem::take(&mut self.fetch_infos);
        infos.clear();
        let mut any_runnable = false;
        for t in &self.threads {
            let runnable = !t.exhausted
                && t.blocked_on_branch.is_none()
                && t.fetch_blocked_until <= self.now
                && t.decode_buf.len() + self.config.fetch_width <= DECODE_BUF_CAP;
            any_runnable |= runnable;
            infos.push(ThreadFetchInfo {
                runnable,
                icount: t.icount,
                ocount: t.ocount,
                fetched_vector_last: t.fetched_vector_last,
            });
            if !t.exhausted {
                if t.blocked_on_branch.is_some() {
                    self.stats.fetch_branch_stalls += 1;
                } else if t.fetch_blocked_until > self.now {
                    self.stats.fetch_icache_stalls += 1;
                }
            }
        }
        let mut chosen = std::mem::take(&mut self.fetch_sel);
        chosen.clear();
        // The selection policies only ever pick runnable threads, so
        // with none runnable the sort-and-pick is a no-op — skip it.
        if any_runnable {
            let vector_pipe_empty = self.queues[Self::queue_idx(QueueKind::Simd)].is_empty();
            select_threads_into(
                self.config.fetch_policy,
                &infos,
                self.rr_cursor,
                self.config.fetch_threads,
                vector_pipe_empty,
                &mut chosen,
            );
        }
        self.fetch_infos = infos;
        let any_chosen = !chosen.is_empty();
        for &tid in &chosen {
            let mut any_vector = false;
            for _ in 0..self.config.fetch_width {
                // Peek the next instruction.
                let next = match self.threads[tid].lookahead.take() {
                    Some(i) => Some(i),
                    None => {
                        let t = &mut self.threads[tid];
                        match t.next_from_block() {
                            Some(i) => Some(i),
                            None => {
                                t.exhausted = true;
                                t.source = None;
                                None
                            }
                        }
                    }
                };
                let Some(inst) = next else { break };
                // I-cache: a new line must be fetched before its
                // instructions can be consumed.
                let line = inst.pc & !(ICACHE_LINE - 1);
                if line != self.threads[tid].last_fetch_line {
                    let ready = self.mem.ifetch(self.now, tid as u8, line);
                    self.threads[tid].last_fetch_line = line;
                    if ready > self.now + 1 {
                        self.threads[tid].fetch_blocked_until = ready;
                        self.threads[tid].lookahead = Some(inst);
                        break;
                    }
                }
                any_vector |= inst.op.is_simd();
                let t = &mut self.threads[tid];
                t.decode_buf.push_back(inst);
                t.icount += 1;
                t.ocount += inst.equivalent_count();
                self.stats.fetched += 1;
                // Fetch stops at a taken control transfer.
                if inst.branch.map(|b| b.taken).unwrap_or(false) {
                    break;
                }
            }
            self.threads[tid].fetched_vector_last = any_vector;
        }
        self.fetch_sel = chosen;
        self.rr_cursor = (self.rr_cursor + 1) % self.threads.len();
        any_chosen
    }
}

fn access_kind(inst: &Inst) -> AccessKind {
    let is_store = inst.op.is_store();
    match inst.op {
        Op::Mem(medsim_isa::MemOp::Prefetch) => AccessKind::Prefetch,
        Op::Mom(MomOp::Vprefetch) => AccessKind::Prefetch,
        Op::Mem(_) => {
            if is_store {
                AccessKind::ScalarStore
            } else {
                AccessKind::ScalarLoad
            }
        }
        _ => {
            // MMX and MOM packed/stream accesses use the vector path.
            if is_store {
                AccessKind::VectorStore
            } else {
                AccessKind::VectorLoad
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsim_isa::prelude::*;
    use medsim_mem::MemConfig;
    use medsim_workloads::trace::VecStream;

    fn cpu(threads: usize, isa: SimdIsa) -> Cpu {
        Cpu::new(
            CpuConfig::paper(threads, isa),
            MemSystem::new(MemConfig::ideal()),
        )
    }

    fn independent_ints(n: usize) -> Vec<Inst> {
        (0..n)
            .map(|i| {
                Inst::int_rrr(IntOp::Add, int(1 + (i % 8) as u8), int(10), int(11))
                    .at(0x1000 + 4 * i as u64)
            })
            .collect()
    }

    #[test]
    fn runs_a_simple_program_to_completion() {
        let mut c = cpu(1, SimdIsa::Mmx);
        c.attach_thread(0, Box::new(VecStream::new(independent_ints(100))));
        assert!(c.run_to_idle(10_000));
        assert_eq!(c.stats().committed(), 100);
        assert!(
            c.stats().cycles < 200,
            "100 independent adds shouldn't take {} cycles",
            c.stats().cycles
        );
    }

    #[test]
    fn ipc_bounded_by_int_issue_width() {
        let mut c = cpu(1, SimdIsa::Mmx);
        c.attach_thread(0, Box::new(VecStream::new(independent_ints(4000))));
        assert!(c.run_to_idle(100_000));
        let ipc = c.stats().ipc();
        assert!(ipc <= 4.05, "int issue width is 4: {ipc}");
        assert!(ipc > 2.0, "independent adds should flow: {ipc}");
    }

    #[test]
    fn dependent_chain_executes_serially() {
        // r1 = r1 + r1, repeated: one per cycle at best.
        let insts: Vec<Inst> = (0..500)
            .map(|i| Inst::int_rrr(IntOp::Add, int(1), int(1), int(1)).at(0x1000 + 4 * i as u64))
            .collect();
        let mut c = cpu(1, SimdIsa::Mmx);
        c.attach_thread(0, Box::new(VecStream::new(insts)));
        assert!(c.run_to_idle(100_000));
        assert!(
            c.stats().cycles >= 500,
            "dependent chain is serial: {}",
            c.stats().cycles
        );
    }

    #[test]
    fn per_thread_retirement_is_in_order() {
        // A long-latency divide followed by a cheap add: the add must not
        // commit before the divide (same thread, program order).
        let insts = vec![
            Inst::int_rrr(IntOp::Div, int(1), int(2), int(3)).at(0x1000),
            Inst::int_rrr(IntOp::Add, int(4), int(5), int(6)).at(0x1004),
        ];
        let mut c = cpu(1, SimdIsa::Mmx);
        // Step true single cycles: the idle fast-forward would jump
        // straight over the divide's latency.
        c.set_fast_forward(false);
        c.attach_thread(0, Box::new(VecStream::new(insts)));
        // Run a few cycles: the add finishes fast but cannot commit alone.
        for _ in 0..6 {
            c.cycle();
        }
        assert_eq!(
            c.stats().committed(),
            0,
            "nothing commits before the divide resolves"
        );
        assert!(c.run_to_idle(1000));
        assert_eq!(c.stats().committed(), 2);
    }

    #[test]
    fn two_threads_beat_one_on_throughput() {
        let run = |threads: usize| {
            let mut c = cpu(threads, SimdIsa::Mmx);
            for t in 0..threads {
                // Dependent chains: single-thread IPC ≈ 1, leaving room.
                let insts: Vec<Inst> = (0..2000)
                    .map(|i| {
                        Inst::int_rrr(IntOp::Add, int(1), int(1), int(2))
                            .at(0x1000 + 4 * (i % 64) as u64)
                    })
                    .collect();
                c.attach_thread(t, Box::new(VecStream::new(insts)));
            }
            assert!(c.run_to_idle(1_000_000));
            c.stats().ipc()
        };
        let one = run(1);
        let two = run(2);
        assert!(
            two > one * 1.6,
            "SMT hides dependency stalls: {one} vs {two}"
        );
    }

    #[test]
    fn mom_stream_occupies_media_unit() {
        // Two independent full streams: ⌈16/2⌉ = 8 cycles each, serialized
        // on the single media unit.
        let insts = vec![
            Inst::mom(MomOp::VaddW, stream(0), stream(1), stream(2), 16).at(0x1000),
            Inst::mom(MomOp::VaddW, stream(3), stream(4), stream(5), 16).at(0x1004),
        ];
        let mut c = cpu(1, SimdIsa::Mom);
        c.attach_thread(0, Box::new(VecStream::new(insts)));
        assert!(c.run_to_idle(1000));
        assert!(
            c.stats().cycles >= 16,
            "two 8-cycle streams serialize: {}",
            c.stats().cycles
        );
        assert_eq!(c.stats().committed_equiv(), 32, "16 + 16 equivalent ops");
    }

    #[test]
    fn mmx_pair_issues_in_parallel() {
        let insts: Vec<Inst> = (0..512)
            .map(|i| {
                Inst::mmx(MmxOp::PaddW, simd((i % 12) as u8), simd(20), simd(21))
                    .at(0x1000 + 4 * (i % 32) as u64)
            })
            .collect();
        let mut c = cpu(1, SimdIsa::Mmx);
        c.attach_thread(0, Box::new(VecStream::new(insts)));
        assert!(c.run_to_idle(100_000));
        // 512 ops at 2/cycle ≥ 256 cycles, but well under serial 512.
        assert!(
            c.stats().cycles < 450,
            "MMX dual issue: {}",
            c.stats().cycles
        );
    }

    #[test]
    fn branch_mispredictions_are_counted_and_resolved() {
        // Alternating taken/not-taken pattern on one PC is hard for the
        // first iterations; the pipeline must keep making progress.
        let mut insts = Vec::new();
        for i in 0..200 {
            insts.push(Inst::int_rrr(IntOp::Add, int(1), int(2), int(3)).at(0x1000 + (i % 4) * 16));
            insts.push(
                Inst::branch(CtlOp::Bne, int(1), i % 3 == 0, 0x1000).at(0x1004 + (i % 4) * 16),
            );
        }
        let mut c = cpu(1, SimdIsa::Mmx);
        c.attach_thread(0, Box::new(VecStream::new(insts)));
        assert!(c.run_to_idle(1_000_000));
        assert_eq!(c.stats().committed(), 400);
        assert!(c.stats().threads[0].branches == 200);
        assert!(
            c.stats().threads[0].mispredicts > 0,
            "pattern must cost something"
        );
        assert!(c.stats().mispredict_rate() < 0.9);
    }

    #[test]
    fn memory_loads_flow_through_the_cache() {
        let insts: Vec<Inst> = (0..256)
            .map(|i| {
                Inst::load(
                    MemOp::LoadW,
                    int(1 + (i % 8) as u8),
                    int(10),
                    0x10_0000 + (i as u64) * 4,
                )
                .at(0x1000 + 4 * (i % 16) as u64)
            })
            .collect();
        let mut c = Cpu::new(
            CpuConfig::paper(1, SimdIsa::Mmx),
            MemSystem::new(MemConfig::paper()),
        );
        c.attach_thread(0, Box::new(VecStream::new(insts)));
        assert!(c.run_to_idle(1_000_000));
        assert_eq!(c.stats().committed(), 256);
        assert!(c.mem().l1d_stats().accesses() >= 256);
    }

    #[test]
    fn mom_stream_load_issues_elements_over_cycles() {
        let insts = vec![Inst::mom_load(stream(0), int(1), 0x10_0000, 8, 16).at(0x1000)];
        let mut c = Cpu::new(
            CpuConfig::paper(1, SimdIsa::Mom),
            MemSystem::new(MemConfig::paper()),
        );
        c.attach_thread(0, Box::new(VecStream::new(insts)));
        assert!(c.run_to_idle(100_000));
        assert_eq!(c.stats().committed(), 1);
        assert_eq!(c.stats().committed_equiv(), 16);
        // 16 element accesses through at most 4 ports/cycle ⇒ ≥ 4 cycles.
        assert!(c.stats().cycles >= 4);
    }

    #[test]
    fn attach_after_drain_reuses_context() {
        let mut c = cpu(1, SimdIsa::Mmx);
        c.attach_thread(0, Box::new(VecStream::new(independent_ints(10))));
        assert!(c.run_to_idle(10_000));
        assert!(c.thread_idle(0));
        c.attach_thread(0, Box::new(VecStream::new(independent_ints(10))));
        assert!(!c.all_idle());
        assert!(c.run_to_idle(10_000));
        assert_eq!(c.stats().committed(), 20);
    }

    #[test]
    #[should_panic(expected = "still busy")]
    fn attach_to_busy_context_panics() {
        let mut c = cpu(1, SimdIsa::Mmx);
        c.attach_thread(0, Box::new(VecStream::new(independent_ints(100))));
        c.cycle();
        c.cycle();
        c.attach_thread(0, Box::new(VecStream::new(independent_ints(1))));
    }

    #[test]
    fn setvl_serializes_following_stream_ops() {
        // SetVl writes r31; the stream op implicitly reads it.
        let insts = vec![
            Inst::new(Op::Mom(MomOp::SetVl))
                .with_dst(int(31))
                .with_imm(8)
                .at(0x1000),
            Inst::mom(MomOp::VaddW, stream(0), stream(1), stream(2), 8).at(0x1004),
        ];
        let mut c = cpu(1, SimdIsa::Mom);
        c.attach_thread(0, Box::new(VecStream::new(insts)));
        assert!(c.run_to_idle(1000));
        assert_eq!(c.stats().committed(), 2);
    }

    #[test]
    fn fast_forward_is_invisible() {
        // A latency-heavy mix under the real memory system (long DRAM
        // gaps ⇒ plenty of idle cycles to skip): every statistic must
        // be identical with the fast-forward on and off.
        let program = || -> Vec<Inst> {
            let mut insts = Vec::new();
            for i in 0..120u64 {
                insts.push(
                    Inst::load(
                        MemOp::LoadW,
                        int(1 + (i % 6) as u8),
                        int(10),
                        0x30_0000 + i * 512,
                    )
                    .at(0x1000 + 4 * (i % 32)),
                );
                insts.push(Inst::int_rrr(IntOp::Div, int(7), int(1), int(2)).at(0x1100));
                insts.push(Inst::int_rrr(IntOp::Add, int(8), int(7), int(7)).at(0x1104));
                insts.push(Inst::branch(CtlOp::Bne, int(8), i % 3 == 0, 0x1000).at(0x1108));
            }
            insts
        };
        let run = |fast_forward: bool| {
            let mut c = Cpu::new(
                CpuConfig::paper(2, SimdIsa::Mmx),
                MemSystem::new(MemConfig::paper()),
            );
            c.set_fast_forward(fast_forward);
            c.attach_thread(0, Box::new(VecStream::new(program())));
            c.attach_thread(1, Box::new(VecStream::new(program())));
            assert!(c.run_to_idle(1_000_000));
            (
                c.stats().clone(),
                c.mem().l1d_stats().accesses(),
                c.mem().stats().l1_latency_sum,
            )
        };
        let (slow, slow_l1, slow_lat) = run(false);
        let (fast, fast_l1, fast_lat) = run(true);
        assert!(
            slow.idle_cycles > 0,
            "the mix must actually have idle cycles"
        );
        assert_eq!(slow, fast, "fast-forward must not change any statistic");
        assert_eq!(slow_l1, fast_l1);
        assert_eq!(slow_lat, fast_lat);
    }

    #[test]
    fn equivalent_counting_matches_kind_buckets() {
        let insts = vec![
            Inst::int_rrr(IntOp::Add, int(1), int(2), int(3)).at(0x1000),
            Inst::mom(MomOp::VaddW, stream(0), stream(1), stream(2), 10).at(0x1004),
            Inst::mom_load(stream(3), int(1), 0x20_0000, 8, 12).at(0x1008),
        ];
        let mut c = cpu(1, SimdIsa::Mom);
        c.attach_thread(0, Box::new(VecStream::new(insts)));
        assert!(c.run_to_idle(10_000));
        assert_eq!(c.stats().committed_by_kind[0], 1);
        assert_eq!(c.stats().committed_by_kind[2], 10);
        assert_eq!(c.stats().committed_by_kind[3], 12);
        assert_eq!(c.stats().committed_equiv(), 23);
    }
}
