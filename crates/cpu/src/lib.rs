//! # medsim-cpu — the SMT out-of-order pipeline model
//!
//! Implements the processor of *"DLP + TLP Processors for the Next
//! Generation of Media Workloads"* (HPCA 2001, §3, figure 2): an 8-way
//! fetch out-of-order superscalar "closely resembling an 8-way version
//! of a MIPS R10000", extended with:
//!
//! * **SMT** following Tullsen et al.: the fetch engine selects up to
//!   two groups of four instructions per cycle from the runnable
//!   threads; per-thread rename tables share a common physical register
//!   pool; the graduation window retires per thread in order;
//! * **four instruction queues** (integer, memory, FP, multimedia) with
//!   out-of-order issue: 4 integer + 4 memory + 4 FP per cycle, plus
//!   2 MMX ops **or** 1 MOM stream op over two vector pipes (two μ-SIMD
//!   sub-instructions per cycle from the same stream);
//! * **fetch policies** — round-robin, ICOUNT, OCOUNT (stream-length
//!   aware) and BALANCE (§5.3);
//! * trace-driven **branch prediction** (gshare + BTB): mispredictions
//!   stall the thread's fetch until the branch resolves.
//!
//! The pipeline consumes instruction traces via
//! [`medsim_workloads::trace::InstStream`] and times memory through
//! [`medsim_mem::MemSystem`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod events;
pub mod fetch;
pub mod pipeline;
pub mod predictor;
pub mod rename;
pub mod stats;

pub use config::{CpuConfig, EnvKnobs, FetchPolicy, SizingParams};
pub use events::{CompletionQueue, EventQueue, SchedulerKind};
pub use pipeline::{Cpu, MemPort, ParkCause};
pub use stats::CpuStats;

/// Simulation time in CPU cycles.
pub type Cycle = u64;
