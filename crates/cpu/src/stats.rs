//! Pipeline statistics.

use medsim_isa::OpKind;
use serde::{Deserialize, Serialize};

/// Counters kept per hardware thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadStats {
    /// Instructions committed (raw — what the pipeline processed).
    pub committed: u64,
    /// Equivalent instructions committed (MOM × stream length).
    pub committed_equiv: u64,
    /// Conditional/indirect branches committed.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Programs completed in this hardware context (§5.1 scheduling).
    pub programs_completed: u64,
}

/// Aggregate pipeline statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CpuStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Per-thread counters.
    pub threads: Vec<ThreadStats>,
    /// Committed equivalent instructions by reporting class.
    pub committed_by_kind: [u64; 4],
    /// Instructions fetched.
    pub fetched: u64,
    /// Fetch-cycle slots lost to I-cache misses.
    pub fetch_icache_stalls: u64,
    /// Fetch-cycle slots lost waiting on unresolved mispredictions.
    pub fetch_branch_stalls: u64,
    /// Dispatch stalls: no free physical register.
    pub dispatch_reg_stalls: u64,
    /// Dispatch stalls: target instruction queue full.
    pub dispatch_queue_stalls: u64,
    /// Dispatch stalls: graduation window (ROB) full.
    pub dispatch_rob_stalls: u64,
    /// Issue slots actually used, by queue (int, mem, fp, simd).
    pub issued: [u64; 4],
    /// Memory issue attempts rejected by the memory system.
    pub mem_stalls: u64,
    /// Cycles in which *only* vector (SIMD-queue) instructions issued —
    /// the §5.3 scalar/vector mixing diagnostic.
    pub vector_only_cycles: u64,
    /// Cycles in which nothing issued at all.
    pub idle_cycles: u64,
    /// Quantum-edge parks because phase B would need a synchronous
    /// backend reply (load/ifetch miss or store admission). Zero under
    /// a serial or lockstep schedule.
    pub parks_backend_reply: u64,
    /// Quantum-edge parks because a store's write-allocate eviction
    /// could collide with a probed-resident load's set in the same
    /// cycle. Zero under a serial or lockstep schedule.
    pub parks_store_evict: u64,
    /// Decoupled vector fetch: sum of the access queue's occupancy over
    /// [`CpuStats::vfetch_cycles`] (occupancy_sum / cycles = average
    /// queue depth while the unit had work). Zero with the unit off.
    pub vfetch_occupancy_sum: u64,
    /// Cycles the vector access queue was non-empty.
    pub vfetch_cycles: u64,
    /// Stream elements issued early by the run-ahead unit (before the
    /// memory-issue stage reached the instruction).
    pub vfetch_runahead_elems: u64,
    /// Vector loads whose stream was fully issued by the run-ahead unit
    /// before execute reached them — execute drained the buffered reply
    /// without touching a memory port.
    pub vfetch_drains: u64,
    /// Maximum run-ahead distance observed: queued vector loads with
    /// early-issued elements ahead of the execute stage. Bounded by the
    /// configured queue depth (property-tested).
    pub vfetch_max_runahead: u64,
    /// Redirect flushes of the access queue (a resolved misprediction
    /// on the owning thread discards its run-ahead state).
    pub vfetch_flushes: u64,
    /// Early-issued stream elements discarded by redirect flushes.
    pub vfetch_flushed_elems: u64,
}

impl CpuStats {
    /// Initialize for `threads` contexts.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        CpuStats {
            threads: vec![ThreadStats::default(); threads],
            ..Default::default()
        }
    }

    /// Total raw committed instructions.
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.threads.iter().map(|t| t.committed).sum()
    }

    /// Total equivalent committed instructions (the paper's comparison
    /// currency).
    #[must_use]
    pub fn committed_equiv(&self) -> u64 {
        self.threads.iter().map(|t| t.committed_equiv).sum()
    }

    /// Raw instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed() as f64 / self.cycles as f64
        }
    }

    /// Equivalent instructions per cycle (the basis of the EIPC metric).
    #[must_use]
    pub fn equiv_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed_equiv() as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate over committed branches.
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        let b: u64 = self.threads.iter().map(|t| t.branches).sum();
        let m: u64 = self.threads.iter().map(|t| t.mispredicts).sum();
        if b == 0 {
            0.0
        } else {
            m as f64 / b as f64
        }
    }

    /// Record a committed instruction's class contribution.
    pub fn record_commit_kind(&mut self, kind: OpKind, equiv: u64) {
        let idx = match kind {
            OpKind::Integer => 0,
            OpKind::Fp => 1,
            OpKind::SimdArith => 2,
            OpKind::Memory => 3,
        };
        self.committed_by_kind[idx] += equiv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_edges() {
        let s = CpuStats::new(2);
        assert_eq!(s.ipc(), 0.0);
        let mut s = CpuStats::new(2);
        s.cycles = 100;
        s.threads[0].committed = 150;
        s.threads[1].committed = 250;
        assert_eq!(s.ipc(), 4.0);
    }

    #[test]
    fn equiv_ipc_differs_for_mom() {
        let mut s = CpuStats::new(1);
        s.cycles = 10;
        s.threads[0].committed = 10;
        s.threads[0].committed_equiv = 80;
        assert_eq!(s.ipc(), 1.0);
        assert_eq!(s.equiv_ipc(), 8.0);
    }

    #[test]
    fn mispredict_rate() {
        let mut s = CpuStats::new(1);
        s.threads[0].branches = 200;
        s.threads[0].mispredicts = 10;
        assert!((s.mispredict_rate() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn commit_kind_buckets() {
        let mut s = CpuStats::new(1);
        s.record_commit_kind(OpKind::Integer, 1);
        s.record_commit_kind(OpKind::SimdArith, 16);
        assert_eq!(s.committed_by_kind, [1, 0, 16, 0]);
        s.record_commit_kind(OpKind::Fp, 2);
        s.record_commit_kind(OpKind::Memory, 3);
        assert_eq!(s.committed_by_kind, [1, 2, 16, 3]);
    }

    /// Accessor sweep: every derived-rate accessor against a stats
    /// block with all inputs populated, including the zero-denominator
    /// edges the accessors guard.
    #[test]
    fn accessor_sweep() {
        let mut s = CpuStats::new(2);
        s.cycles = 1000;
        s.threads[0] = ThreadStats {
            committed: 300,
            committed_equiv: 900,
            branches: 40,
            mispredicts: 4,
            programs_completed: 2,
        };
        s.threads[1] = ThreadStats {
            committed: 200,
            committed_equiv: 600,
            branches: 10,
            mispredicts: 1,
            programs_completed: 1,
        };
        s.parks_backend_reply = 7;
        s.parks_store_evict = 3;

        assert_eq!(s.committed(), 500);
        assert_eq!(s.committed_equiv(), 1500);
        assert!((s.ipc() - 0.5).abs() < 1e-12);
        assert!((s.equiv_ipc() - 1.5).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.1).abs() < 1e-12);

        // Zero-denominator guards.
        let z = CpuStats::new(1);
        assert_eq!(z.committed(), 0);
        assert_eq!(z.committed_equiv(), 0);
        assert_eq!(z.ipc(), 0.0);
        assert_eq!(z.equiv_ipc(), 0.0);
        assert_eq!(z.mispredict_rate(), 0.0);
    }
}
