//! Register renaming: per-thread map tables over shared physical pools.
//!
//! As in the paper (§3): *"all threads share a common register pool. The
//! decode engine is able to rename instructions from different threads
//! using a per-thread renaming table and a shared common free register
//! pool."* Renaming removes false dependences between threads for free;
//! running out of physical registers stalls dispatch — which is exactly
//! what the Table-1 sizing sweep provisions against.

use crate::config::SizingParams;
use medsim_isa::{LogicalReg, RegClass};

/// A physical register: class + index into that class's pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysReg {
    /// Register class.
    pub class: RegClass,
    /// Index within the class pool.
    pub index: u16,
}

fn class_idx(c: RegClass) -> usize {
    match c {
        RegClass::Int => 0,
        RegClass::Fp => 1,
        RegClass::Simd => 2,
        RegClass::Stream => 3,
        RegClass::Acc => 4,
    }
}

/// Rename state: per-thread tables + shared free lists + ready bits.
#[derive(Debug)]
pub struct RenameFile {
    /// `tables[tid][class][logical] = physical index`.
    tables: Vec<[Vec<u16>; 5]>,
    free: [Vec<u16>; 5],
    ready: [Vec<bool>; 5],
}

impl RenameFile {
    /// Build rename state for `threads` contexts under `sizing`.
    ///
    /// # Panics
    ///
    /// Panics if the pools cannot hold every thread's architectural
    /// state.
    #[must_use]
    pub fn new(threads: usize, sizing: &SizingParams) -> Self {
        let pool_sizes = [
            sizing.int_regs,
            sizing.fp_regs,
            sizing.simd_regs,
            sizing.stream_regs,
            sizing.acc_regs,
        ];
        let arch_counts = [32usize, 32, 32, 16, 2];
        for (c, (&pool, &arch)) in pool_sizes.iter().zip(arch_counts.iter()).enumerate() {
            assert!(
                pool > arch * threads,
                "physical pool {c} too small: {pool} for {threads} threads × {arch} architectural"
            );
        }
        let mut free: [Vec<u16>; 5] = Default::default();
        let mut ready: [Vec<bool>; 5] = Default::default();
        for c in 0..5 {
            free[c] = (0..pool_sizes[c] as u16).rev().collect();
            ready[c] = vec![false; pool_sizes[c]];
        }
        let mut tables = Vec::with_capacity(threads);
        for _ in 0..threads {
            let mut t: [Vec<u16>; 5] = Default::default();
            for c in 0..5 {
                t[c] = (0..arch_counts[c])
                    .map(|_| {
                        let p = free[c].pop().expect("pool sized above");
                        ready[c][p as usize] = true;
                        p
                    })
                    .collect();
            }
            tables.push(t);
        }
        RenameFile {
            tables,
            free,
            ready,
        }
    }

    /// Current physical mapping of `reg` for thread `tid`.
    #[must_use]
    pub fn lookup(&self, tid: usize, reg: LogicalReg) -> PhysReg {
        let c = class_idx(reg.class);
        PhysReg {
            class: reg.class,
            index: self.tables[tid][c][reg.index as usize],
        }
    }

    /// Free physical registers remaining in `class`'s pool.
    #[must_use]
    pub fn free_count(&self, class: RegClass) -> usize {
        self.free[class_idx(class)].len()
    }

    /// Rename a destination: allocate a fresh physical register (not
    /// ready), returning `(new, previous)` — the previous mapping is
    /// freed when the instruction commits. Returns `None` when the pool
    /// is empty (dispatch must stall).
    pub fn allocate(&mut self, tid: usize, reg: LogicalReg) -> Option<(PhysReg, PhysReg)> {
        let c = class_idx(reg.class);
        let new = self.free[c].pop()?;
        self.ready[c][new as usize] = false;
        let prev = self.tables[tid][c][reg.index as usize];
        self.tables[tid][c][reg.index as usize] = new;
        Some((
            PhysReg {
                class: reg.class,
                index: new,
            },
            PhysReg {
                class: reg.class,
                index: prev,
            },
        ))
    }

    /// Mark a physical register's value available.
    pub fn mark_ready(&mut self, p: PhysReg) {
        self.ready[class_idx(p.class)][p.index as usize] = true;
    }

    /// Whether a physical register's value is available.
    #[must_use]
    pub fn is_ready(&self, p: PhysReg) -> bool {
        self.ready[class_idx(p.class)][p.index as usize]
    }

    /// Return a physical register to the free pool (at commit, the
    /// previous mapping of the committing instruction's destination).
    pub fn release(&mut self, p: PhysReg) {
        let c = class_idx(p.class);
        debug_assert!(
            !self.free[c].contains(&p.index),
            "double free of {:?}{}",
            p.class,
            p.index
        );
        self.free[c].push(p.index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsim_isa::regs::{acc, int, simd, stream};

    fn file(threads: usize) -> RenameFile {
        RenameFile::new(threads, &SizingParams::for_threads(threads))
    }

    #[test]
    fn architectural_state_is_mapped_and_ready() {
        let f = file(2);
        for tid in 0..2 {
            for i in 0..32 {
                let p = f.lookup(tid, int(i));
                assert!(f.is_ready(p), "t{tid} r{i}");
            }
            let p = f.lookup(tid, stream(15));
            assert!(f.is_ready(p));
        }
    }

    #[test]
    fn threads_have_disjoint_mappings() {
        let f = file(4);
        let a = f.lookup(0, simd(5));
        let b = f.lookup(1, simd(5));
        assert_ne!(a, b, "same logical register, different threads");
    }

    #[test]
    fn allocate_makes_not_ready_then_ready() {
        let mut f = file(1);
        let (new, prev) = f.allocate(0, int(3)).unwrap();
        assert!(!f.is_ready(new));
        assert!(f.is_ready(prev), "old value still readable");
        assert_eq!(f.lookup(0, int(3)), new);
        f.mark_ready(new);
        assert!(f.is_ready(new));
    }

    #[test]
    fn pool_exhaustion_returns_none() {
        let mut f = file(1);
        let spare = f.free_count(RegClass::Acc);
        for _ in 0..spare {
            assert!(f.allocate(0, acc(0)).is_some());
        }
        assert!(
            f.allocate(0, acc(0)).is_none(),
            "accumulator pool exhausted"
        );
    }

    #[test]
    fn release_recycles() {
        let mut f = file(1);
        let n0 = f.free_count(RegClass::Int);
        let (_, prev) = f.allocate(0, int(1)).unwrap();
        assert_eq!(f.free_count(RegClass::Int), n0 - 1);
        f.release(prev);
        assert_eq!(f.free_count(RegClass::Int), n0);
    }

    #[test]
    fn rename_chain_preserves_dataflow_order() {
        let mut f = file(1);
        let (p1, _) = f.allocate(0, int(7)).unwrap();
        let (p2, prev2) = f.allocate(0, int(7)).unwrap();
        assert_ne!(p1, p2);
        assert_eq!(prev2, p1, "second writer's previous is the first writer");
        assert_eq!(f.lookup(0, int(7)), p2, "readers see the newest mapping");
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn undersized_pool_rejected() {
        let mut s = SizingParams::for_threads(8);
        s.stream_regs = 100; // < 16 × 8
        let _ = RenameFile::new(8, &s);
    }
}
