//! Processor configuration, with the paper's parameters as defaults.

use crate::events::{wheel_slots_from_env, SchedulerKind};
use medsim_workloads::SimdIsa;
use serde::{Deserialize, Serialize};

/// SMT fetch selection policy (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FetchPolicy {
    /// Classic round-robin over runnable threads.
    RoundRobin,
    /// Priority to threads with the fewest instructions decoded but not
    /// issued (Tullsen et al., ISCA-23).
    ICount,
    /// Like ICOUNT but counts stream *operations* using the
    /// stream-length register: a queued MOM instruction of length `L`
    /// weighs `L`.
    OCount,
    /// Mixes scalar and vector fetch: when the vector pipeline is empty,
    /// threads that fetched vector instructions last time get priority;
    /// otherwise threads that did not. Round-robin breaks ties.
    Balance,
}

impl FetchPolicy {
    /// All policies in figure-6 presentation order.
    pub const ALL: [FetchPolicy; 4] = [
        FetchPolicy::RoundRobin,
        FetchPolicy::ICount,
        FetchPolicy::OCount,
        FetchPolicy::Balance,
    ];

    /// Short label used in experiment output (paper's abbreviations).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            FetchPolicy::RoundRobin => "RR",
            FetchPolicy::ICount => "IC",
            FetchPolicy::OCount => "OC",
            FetchPolicy::Balance => "BL",
        }
    }
}

impl core::fmt::Display for FetchPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Physical-register and window sizing (Table 1 of the paper: values
/// found by a near-saturation sweep per thread count; the published
/// table is partially illegible, so these are our sweep's results —
/// regenerate with the `table1_params` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizingParams {
    /// Physical integer registers (shared pool).
    pub int_regs: usize,
    /// Physical FP registers.
    pub fp_regs: usize,
    /// Physical MMX registers.
    pub simd_regs: usize,
    /// Physical MOM stream registers (each 16 × 64 bit; the paper notes
    /// lane organization keeps their area manageable).
    pub stream_regs: usize,
    /// Physical packed accumulators.
    pub acc_regs: usize,
    /// Entries per instruction queue (int/mem/fp/simd).
    pub queue_entries: usize,
    /// Graduation-window (ROB) entries per thread.
    pub rob_per_thread: usize,
}

impl SizingParams {
    /// Near-saturation sizing for `threads` hardware contexts.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is not 1, 2, 4 or 8.
    #[must_use]
    pub fn for_threads(threads: usize) -> Self {
        match threads {
            1 => SizingParams {
                int_regs: 80,
                fp_regs: 72,
                simd_regs: 72,
                stream_regs: 24,
                acc_regs: 4,
                queue_entries: 32,
                rob_per_thread: 64,
            },
            2 => SizingParams {
                int_regs: 128,
                fp_regs: 112,
                simd_regs: 112,
                stream_regs: 40,
                acc_regs: 6,
                queue_entries: 48,
                rob_per_thread: 64,
            },
            4 => SizingParams {
                int_regs: 224,
                fp_regs: 192,
                simd_regs: 192,
                stream_regs: 72,
                acc_regs: 10,
                queue_entries: 64,
                rob_per_thread: 64,
            },
            8 => SizingParams {
                int_regs: 400,
                fp_regs: 336,
                simd_regs: 336,
                stream_regs: 136,
                acc_regs: 18,
                queue_entries: 96,
                rob_per_thread: 64,
            },
            other => panic!("unsupported thread count {other} (the paper evaluates 1, 2, 4, 8)"),
        }
    }

    /// Minimum registers needed to hold every thread's architectural
    /// state (sanity bound used by the rename stage).
    #[must_use]
    pub fn architectural_floor(threads: usize) -> SizingParams {
        SizingParams {
            int_regs: 32 * threads + 8,
            fp_regs: 32 * threads + 8,
            simd_regs: 32 * threads + 8,
            stream_regs: 16 * threads + 4,
            acc_regs: 2 * threads + 1,
            queue_entries: 8,
            rob_per_thread: 8,
        }
    }
}

/// Full processor configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Hardware thread contexts (1, 2, 4 or 8).
    pub threads: usize,
    /// Which μ-SIMD extension the pipeline is built for.
    pub isa: SimdIsa,
    /// Fetch policy.
    pub fetch_policy: FetchPolicy,
    /// Threads fetched per cycle (paper: 2 groups).
    pub fetch_threads: usize,
    /// Instructions fetched per thread group (paper: 4).
    pub fetch_width: usize,
    /// Decode/rename width (paper: 8-way).
    pub decode_width: usize,
    /// Integer issue width (paper: 4).
    pub int_issue: usize,
    /// Memory issue width (paper: 4 loads or stores).
    pub mem_issue: usize,
    /// FP issue width (paper: 4).
    pub fp_issue: usize,
    /// SIMD queue issue width (2 for MMX; 1 for MOM).
    pub simd_issue: usize,
    /// Parallel vector pipes of the MOM media unit (paper: 2).
    pub vector_lanes: usize,
    /// Commit width (graduation, shared across threads).
    pub commit_width: usize,
    /// Sizing (registers, queues, ROB).
    pub sizing: SizingParams,
    /// Extra fetch-redirect penalty after a resolved misprediction.
    pub mispredict_penalty: u64,
    /// Integer multiply latency.
    pub lat_int_mul: u64,
    /// Integer divide latency (unpipelined).
    pub lat_int_div: u64,
    /// FP add/sub latency.
    pub lat_fp_add: u64,
    /// FP multiply / FMA latency.
    pub lat_fp_mul: u64,
    /// FP divide latency.
    pub lat_fp_div: u64,
    /// Packed-multiply latency (MMX or per-group MOM).
    pub lat_simd_mul: u64,
    /// Completion scheduler (calendar queue, or the seed binary heap as
    /// a differential reference).
    pub scheduler: SchedulerKind,
    /// Calendar-queue horizon in cycles (wheel slot count).
    pub wheel_slots: usize,
    /// Resolve stream memory instructions through the batched
    /// [`medsim_mem::MemSystem::request_stream`] path (`false` = the
    /// per-element reference path).
    pub stream_batch: bool,
    /// Decoupled run-ahead vector fetch: dispatch enqueues vector
    /// loads into a small vector access queue that issues their stream
    /// requests ahead of the memory-issue stage (default off — the
    /// paper-faithful coupled core).
    pub decouple: bool,
    /// Vector access-queue window: how many queued vector loads the
    /// run-ahead unit may work ahead over. `0` with `decouple` on is
    /// the degenerate case — structurally decoupled, but never issuing
    /// early — and is bitwise identical to `decouple` off.
    pub decouple_depth: usize,
}

impl CpuConfig {
    /// The paper's processor for `threads` contexts under `isa`:
    /// SMT+MMX issues up to 2 MMX ops/cycle on two media FUs; SMT+MOM
    /// has a single media unit of width 2 (issue width 1, two pipes).
    #[must_use]
    pub fn paper(threads: usize, isa: SimdIsa) -> Self {
        let knobs = EnvKnobs::get();
        CpuConfig {
            threads,
            isa,
            fetch_policy: FetchPolicy::RoundRobin,
            fetch_threads: 2,
            fetch_width: 4,
            decode_width: 8,
            int_issue: 4,
            mem_issue: 4,
            fp_issue: 4,
            simd_issue: if isa == SimdIsa::Mmx { 2 } else { 1 },
            vector_lanes: 2,
            commit_width: 8,
            sizing: SizingParams::for_threads(threads),
            mispredict_penalty: 2,
            lat_int_mul: 3,
            lat_int_div: 12,
            lat_fp_add: 2,
            lat_fp_mul: 4,
            lat_fp_div: 12,
            lat_simd_mul: 3,
            scheduler: knobs.scheduler,
            wheel_slots: knobs.wheel_slots,
            stream_batch: knobs.stream_batch,
            decouple: knobs.decouple,
            decouple_depth: knobs.decouple_depth,
        }
    }

    /// Same configuration with a different fetch policy.
    #[must_use]
    pub fn with_policy(mut self, policy: FetchPolicy) -> Self {
        self.fetch_policy = policy;
        self
    }

    /// Same configuration with a different completion scheduler.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Same configuration with the batched stream-request path enabled
    /// or disabled.
    #[must_use]
    pub fn with_stream_batch(mut self, enabled: bool) -> Self {
        self.stream_batch = enabled;
        self
    }

    /// Same configuration with the decoupled run-ahead vector-fetch
    /// unit enabled or disabled.
    #[must_use]
    pub fn with_decouple(mut self, enabled: bool) -> Self {
        self.decouple = enabled;
        self
    }

    /// Same configuration with a different vector access-queue window.
    #[must_use]
    pub fn with_decouple_depth(mut self, depth: usize) -> Self {
        self.decouple_depth = depth;
        self
    }
}

/// Default vector access-queue window of the decoupled fetch unit.
pub const DEFAULT_DECOUPLE_DEPTH: usize = 8;

/// Decoupled vector fetch from `MEDSIM_DECOUPLE` (set and not `0`
/// enables; unset or `0` keeps the paper-faithful coupled core).
///
/// Raw environment read — prefer [`EnvKnobs::get`], which resolves it
/// once per process.
#[must_use]
pub fn decouple_from_env() -> bool {
    std::env::var("MEDSIM_DECOUPLE").is_ok_and(|v| v != "0")
}

/// Vector access-queue window from `MEDSIM_DECOUPLE_DEPTH` (clamped to
/// `0..=64`; unset or unparsable falls back to
/// [`DEFAULT_DECOUPLE_DEPTH`]).
///
/// Raw environment read — prefer [`EnvKnobs::get`], which resolves it
/// once per process.
#[must_use]
pub fn decouple_depth_from_env() -> usize {
    std::env::var("MEDSIM_DECOUPLE_DEPTH")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(DEFAULT_DECOUPLE_DEPTH, |n| n.min(64))
}

/// Batched stream requests from `MEDSIM_STREAM_BATCH` (`0` disables —
/// the per-element reference path; anything else, or unset, batches).
///
/// Raw environment read — prefer [`EnvKnobs::get`], which resolves it
/// once per process.
#[must_use]
pub fn stream_batch_from_env() -> bool {
    std::env::var("MEDSIM_STREAM_BATCH").map_or(true, |v| v != "0")
}

/// Quantum override from `MEDSIM_QUANTUM`: the number of cycles each
/// core of a parallel CMP machine steps between shared-backend
/// synchronizations. Unset (or unparsable) means *derive it* from the
/// memory configuration's minimum cross-core interaction latency;
/// `1` (or `0`) forces the degenerate per-cycle lockstep schedule.
///
/// Raw environment read — prefer [`EnvKnobs::get`], which resolves it
/// once per process.
#[must_use]
pub fn quantum_from_env() -> Option<u64> {
    std::env::var("MEDSIM_QUANTUM").ok()?.parse().ok()
}

/// The pipeline's environment knobs, resolved **once** per process.
///
/// Config constructors ([`CpuConfig::paper`],
/// `medsim_core::sim::SimConfig::new`) read their defaults from here
/// instead of the ambient environment, so two configs built at
/// different times can never disagree because something mutated the
/// environment in between (a hazard for multi-threaded test binaries
/// in particular — `std::env::set_var` mid-process is otherwise
/// racy with these reads). Builder methods still override per config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvKnobs {
    /// `MEDSIM_SCHED`: completion scheduler.
    pub scheduler: SchedulerKind,
    /// `MEDSIM_STREAM_BATCH`: batched stream-request path.
    pub stream_batch: bool,
    /// `MEDSIM_WHEEL_SLOTS`: calendar-queue horizon.
    pub wheel_slots: usize,
    /// `MEDSIM_QUANTUM`: parallel-stepping quantum override (`None` =
    /// derive from the memory configuration).
    pub quantum: Option<u64>,
    /// `MEDSIM_DECOUPLE`: decoupled run-ahead vector fetch.
    pub decouple: bool,
    /// `MEDSIM_DECOUPLE_DEPTH`: vector access-queue window.
    pub decouple_depth: usize,
}

impl EnvKnobs {
    /// The process-wide knob values (first call resolves the
    /// environment; later calls return the frozen copy).
    #[must_use]
    pub fn get() -> EnvKnobs {
        static KNOBS: std::sync::OnceLock<EnvKnobs> = std::sync::OnceLock::new();
        *KNOBS.get_or_init(|| EnvKnobs {
            scheduler: SchedulerKind::from_env(),
            stream_batch: stream_batch_from_env(),
            wheel_slots: wheel_slots_from_env(),
            quantum: quantum_from_env(),
            decouple: decouple_from_env(),
            decouple_depth: decouple_depth_from_env(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_widths_match_section3() {
        let mmx = CpuConfig::paper(8, SimdIsa::Mmx);
        assert_eq!(
            mmx.fetch_threads * mmx.fetch_width,
            8,
            "fetch up to 8 per cycle"
        );
        assert_eq!(mmx.int_issue, 4);
        assert_eq!(mmx.mem_issue, 4);
        assert_eq!(mmx.fp_issue, 4);
        assert_eq!(mmx.simd_issue, 2, "two MMX ops per cycle");
        let mom = CpuConfig::paper(8, SimdIsa::Mom);
        assert_eq!(mom.simd_issue, 1, "MOM needs only issue width 1");
        assert_eq!(mom.vector_lanes, 2, "two parallel vector pipes");
    }

    #[test]
    fn sizing_grows_with_threads() {
        let mut prev = 0;
        for t in [1, 2, 4, 8] {
            let s = SizingParams::for_threads(t);
            assert!(s.int_regs > prev);
            prev = s.int_regs;
            let floor = SizingParams::architectural_floor(t);
            assert!(s.int_regs >= floor.int_regs, "{t} threads int");
            assert!(s.simd_regs >= floor.simd_regs, "{t} threads simd");
            assert!(s.stream_regs >= floor.stream_regs, "{t} threads stream");
            assert!(s.acc_regs >= floor.acc_regs, "{t} threads acc");
        }
    }

    #[test]
    #[should_panic(expected = "unsupported thread count")]
    fn odd_thread_counts_rejected() {
        let _ = SizingParams::for_threads(3);
    }

    /// Serialized, restoring environment mutation for knob tests: the
    /// process-wide lock keeps parallel test threads from interleaving
    /// `set_var` calls, and every variable is restored to its previous
    /// value (or removed) before returning.
    fn with_env_vars<T>(vars: &[(&str, &str)], f: impl FnOnce() -> T) -> T {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let prev: Vec<_> = vars
            .iter()
            .map(|(k, _)| (*k, std::env::var(k).ok()))
            .collect();
        for (k, v) in vars {
            std::env::set_var(k, v);
        }
        let out = f();
        for (k, v) in prev {
            match v {
                Some(v) => std::env::set_var(k, v),
                None => std::env::remove_var(k),
            }
        }
        out
    }

    #[test]
    fn env_knobs_are_frozen_at_first_use() {
        let first = EnvKnobs::get();
        // A mid-process environment change must not produce configs
        // that disagree with earlier ones. Only knobs no parallel test
        // reads raw are mutated here (`scheduler_kind_env_parsing`
        // asserts the unfrozen `SchedulerKind::from_env` directly, so
        // touching MEDSIM_SCHED would race it).
        let second = with_env_vars(
            &[
                ("MEDSIM_STREAM_BATCH", "0"),
                ("MEDSIM_WHEEL_SLOTS", "64"),
                ("MEDSIM_QUANTUM", "3"),
                ("MEDSIM_DECOUPLE_DEPTH", "2"),
            ],
            EnvKnobs::get,
        );
        assert_eq!(first, second, "knobs resolve once per process");
        let cfg = CpuConfig::paper(1, SimdIsa::Mmx);
        assert_eq!(cfg.scheduler, first.scheduler);
        assert_eq!(cfg.stream_batch, first.stream_batch);
        assert_eq!(cfg.wheel_slots, first.wheel_slots);
    }

    #[test]
    fn decouple_knobs_parse() {
        with_env_vars(&[("MEDSIM_DECOUPLE", "0")], || {
            assert!(!decouple_from_env(), "0 keeps the coupled core");
        });
        with_env_vars(&[("MEDSIM_DECOUPLE", "1")], || {
            assert!(decouple_from_env());
        });
        with_env_vars(&[("MEDSIM_DECOUPLE_DEPTH", "200")], || {
            assert_eq!(decouple_depth_from_env(), 64, "clamped");
        });
        with_env_vars(&[("MEDSIM_DECOUPLE_DEPTH", "junk")], || {
            assert_eq!(decouple_depth_from_env(), DEFAULT_DECOUPLE_DEPTH);
        });
    }

    #[test]
    fn policy_labels_match_figure6() {
        assert_eq!(FetchPolicy::RoundRobin.label(), "RR");
        assert_eq!(FetchPolicy::ICount.label(), "IC");
        assert_eq!(FetchPolicy::OCount.label(), "OC");
        assert_eq!(FetchPolicy::Balance.label(), "BL");
    }
}
