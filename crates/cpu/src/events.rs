//! Completion-event scheduling for the pipeline.
//!
//! The completion set has a very particular shape: almost every event is
//! scheduled a handful of cycles ahead (functional-unit latencies, cache
//! hits), a thin tail reaches hundreds of cycles out (DRAM misses, long
//! vector streams), and `complete()` drains *all* events due at the
//! current cycle, every cycle. A comparison-based heap pays `O(log n)`
//! per operation for ordering generality this workload never uses; a
//! **calendar queue** (single-level timing wheel with an overflow bucket)
//! makes both insert and pop `O(1)` for the short-horizon bulk:
//!
//! * events due within the wheel horizon (`slots` cycles, default 256)
//!   land in the slot `due mod slots` — because the wheel only ever holds
//!   dues inside one horizon window, every slot holds exactly one cycle's
//!   events, in FIFO push order;
//! * far-future events go to a small binary-heap **overflow bucket**,
//!   ordered by `(due, push sequence)`; they are popped straight from the
//!   bucket when their time comes, so correctness never depends on
//!   migrating them into the wheel;
//! * an occupancy bitmap (one bit per slot) makes "earliest wheel event"
//!   a couple of word scans — that is the `next_due` query the idle
//!   fast-forward uses to jump over provably dead cycles.
//!
//! Within one cycle, events pop in **FIFO push order**. For equal dues
//! split across wheel and overflow, the overflow entries are always the
//! older ones (an event can only land in overflow while the horizon ends
//! *before* its due cycle, i.e. strictly earlier than any wheel push of
//! that same due), so popping the bucket first preserves global FIFO.
//!
//! [`CompletionQueue`] wraps the wheel together with the seed
//! implementation's `BinaryHeap` as a selectable **reference scheduler**
//! (`MEDSIM_SCHED=heap`): the differential tests prove the two produce
//! bitwise-identical simulations.

use crate::Cycle;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Default number of wheel slots (cycles of horizon). Covers every
/// functional-unit latency and L1/L2 hit comfortably; only DRAM round
/// trips and pathological bank pile-ups overflow.
pub const DEFAULT_WHEEL_SLOTS: usize = 256;

/// Which completion scheduler the pipeline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Calendar queue / timing wheel (the default).
    Wheel,
    /// The seed implementation's binary heap, kept as the reference
    /// model for differential testing.
    Heap,
}

impl SchedulerKind {
    /// Scheduler selected by the `MEDSIM_SCHED` environment variable
    /// (`heap` for the reference; anything else, or unset, is the wheel).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("MEDSIM_SCHED") {
            Ok(v) if v.eq_ignore_ascii_case("heap") => SchedulerKind::Heap,
            _ => SchedulerKind::Wheel,
        }
    }
}

/// Wheel slot count from `MEDSIM_WHEEL_SLOTS` (rounded up to a power of
/// two, clamped to a sane range), defaulting to [`DEFAULT_WHEEL_SLOTS`].
#[must_use]
pub fn wheel_slots_from_env() -> usize {
    std::env::var("MEDSIM_WHEEL_SLOTS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .map_or(DEFAULT_WHEEL_SLOTS, |n| n.clamp(64, 1 << 16))
}

/// A calendar queue over `(due cycle, event id)` pairs.
///
/// Contract (matched by how the pipeline drives it): `push` dues are
/// never in the past, and the owner drains everything due at or before
/// `now` via [`EventQueue::pop_due`] before time advances past it —
/// `complete()` does exactly that every simulated cycle.
#[derive(Debug)]
pub struct EventQueue {
    /// `slots` FIFO buckets; slot `s` holds the events due at the unique
    /// cycle `d` in the current horizon window with `d mod slots == s`.
    wheel: Vec<VecDeque<u32>>,
    /// Occupancy bitmap over the wheel, one bit per slot.
    occ: Vec<u64>,
    /// `slots - 1` (slot count is a power of two).
    mask: u64,
    /// Events due at or beyond the horizon, ordered by `(due, seq)`.
    overflow: BinaryHeap<Reverse<(Cycle, u64, u32)>>,
    /// Lower edge of the horizon window `[base, base + slots)`. Advances
    /// lazily: whenever a drain finds nothing due, `base` snaps to `now`.
    base: Cycle,
    /// Push sequence counter (FIFO tie-break inside the overflow).
    seq: u64,
    /// Events currently in the wheel (not counting the overflow).
    wheel_len: usize,
}

impl EventQueue {
    /// Create a queue with `slots` wheel slots (rounded up to a power of
    /// two, at least 64).
    #[must_use]
    pub fn new(slots: usize) -> Self {
        let slots = slots.clamp(64, 1 << 20).next_power_of_two();
        EventQueue {
            wheel: (0..slots).map(|_| VecDeque::new()).collect(),
            occ: vec![0; slots / 64],
            mask: slots as u64 - 1,
            overflow: BinaryHeap::new(),
            base: 0,
            seq: 0,
            wheel_len: 0,
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule event `id` for cycle `due`.
    pub fn push(&mut self, due: Cycle, id: u32) {
        debug_assert!(due >= self.base, "event scheduled in the past");
        self.seq += 1;
        let horizon = self.base + self.wheel.len() as u64;
        if due < horizon {
            let slot = (due & self.mask) as usize;
            debug_assert!(
                self.wheel[slot].is_empty() || self.slot_due(slot) == due,
                "wheel slot must hold a single due cycle"
            );
            self.wheel[slot].push_back(id);
            self.occ[slot >> 6] |= 1 << (slot & 63);
            self.wheel_len += 1;
        } else {
            self.overflow.push(Reverse((due, self.seq, id)));
        }
    }

    /// The due cycle of the events in `slot` (which must be occupied):
    /// the unique cycle in the horizon window congruent to `slot`.
    fn slot_due(&self, slot: usize) -> Cycle {
        let base_slot = self.base & self.mask;
        let dist = (slot as u64).wrapping_sub(base_slot) & self.mask;
        self.base + dist
    }

    /// Earliest occupied wheel slot in horizon order, with its due cycle.
    fn wheel_min(&self) -> Option<(Cycle, usize)> {
        if self.wheel_len == 0 {
            return None;
        }
        let words = self.occ.len();
        let base_slot = (self.base & self.mask) as usize;
        let (w0, b0) = (base_slot >> 6, base_slot & 63);
        // Bits at or after `base_slot` inside its word, then the
        // following words wrapping around, then the low bits of the
        // first word — circular scan in horizon order.
        let head = self.occ[w0] & (!0u64 << b0);
        if head != 0 {
            let slot = (w0 << 6) + head.trailing_zeros() as usize;
            return Some((self.slot_due(slot), slot));
        }
        for step in 1..words {
            let w = (w0 + step) % words;
            if self.occ[w] != 0 {
                let slot = (w << 6) + self.occ[w].trailing_zeros() as usize;
                return Some((self.slot_due(slot), slot));
            }
        }
        let tail = self.occ[w0] & !(!0u64 << b0);
        debug_assert_ne!(tail, 0, "wheel_len > 0 but no occupied slot");
        let slot = (w0 << 6) + tail.trailing_zeros() as usize;
        Some((self.slot_due(slot), slot))
    }

    /// Cycle of the earliest pending event, if any — the idle
    /// fast-forward's wake-up query.
    #[must_use]
    pub fn next_due(&self) -> Option<Cycle> {
        let wheel = self.wheel_min().map(|(d, _)| d);
        let over = self.overflow.peek().map(|&Reverse((d, _, _))| d);
        match (wheel, over) {
            (Some(w), Some(o)) => Some(w.min(o)),
            (w, o) => w.or(o),
        }
    }

    /// Pop the oldest event due at or before `now`, in global FIFO order
    /// within each due cycle. Returns `None` when nothing is due (and
    /// takes the opportunity to slide the horizon window up to `now`).
    pub fn pop_due(&mut self, now: Cycle) -> Option<u32> {
        let wheel = self.wheel_min();
        let over = self.overflow.peek().map(|&Reverse((d, _, _))| d);
        // For equal dues the overflow entries are the older pushes (see
        // module docs), so the bucket wins ties.
        let from_overflow = match (wheel, over) {
            (_, None) => false,
            (None, Some(_)) => true,
            (Some((wd, _)), Some(od)) => od <= wd,
        };
        if from_overflow {
            if over.expect("checked") <= now {
                let Reverse((_, _, id)) = self.overflow.pop().expect("peeked");
                return Some(id);
            }
        } else if let Some((due, slot)) = wheel {
            if due <= now {
                let id = self.wheel[slot].pop_front().expect("occupied slot");
                self.wheel_len -= 1;
                if self.wheel[slot].is_empty() {
                    self.occ[slot >> 6] &= !(1 << (slot & 63));
                }
                return Some(id);
            }
        }
        // Nothing due: every wheel entry is strictly in the future, so
        // the window can slide forward and future pushes stay O(1).
        if now > self.base {
            self.base = now;
        }
        None
    }
}

/// The pipeline's completion scheduler: the calendar queue, or the seed
/// `BinaryHeap` kept as a differential reference.
///
/// The heap variant is *exactly* the seed structure — `(Reverse(cycle),
/// id)` pairs, so same-cycle ties pop in descending id order rather than
/// FIFO. The differential suite asserting bitwise-equal simulation
/// statistics across both variants is therefore also a proof that
/// same-cycle completion order is observationally irrelevant.
#[derive(Debug)]
pub enum CompletionQueue {
    /// Calendar-queue scheduler.
    Wheel(EventQueue),
    /// Seed reference scheduler.
    Heap(BinaryHeap<(Reverse<Cycle>, u32)>),
}

impl CompletionQueue {
    /// Build the scheduler `kind` (wheel with `wheel_slots` slots).
    #[must_use]
    pub fn new(kind: SchedulerKind, wheel_slots: usize) -> Self {
        match kind {
            SchedulerKind::Wheel => CompletionQueue::Wheel(EventQueue::new(wheel_slots)),
            SchedulerKind::Heap => CompletionQueue::Heap(BinaryHeap::new()),
        }
    }

    /// Schedule event `id` for cycle `due`.
    pub fn push(&mut self, due: Cycle, id: u32) {
        match self {
            CompletionQueue::Wheel(q) => q.push(due, id),
            CompletionQueue::Heap(h) => h.push((Reverse(due), id)),
        }
    }

    /// Pop one event due at or before `now`, if any.
    pub fn pop_due(&mut self, now: Cycle) -> Option<u32> {
        match self {
            CompletionQueue::Wheel(q) => q.pop_due(now),
            CompletionQueue::Heap(h) => match h.peek() {
                Some(&(Reverse(due), _)) if due <= now => h.pop().map(|(_, id)| id),
                _ => None,
            },
        }
    }

    /// Cycle of the earliest pending event.
    #[must_use]
    pub fn next_due(&self) -> Option<Cycle> {
        match self {
            CompletionQueue::Wheel(q) => q.next_due(),
            CompletionQueue::Heap(h) => h.peek().map(|&(Reverse(due), _)| due),
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            CompletionQueue::Wheel(q) => q.len(),
            CompletionQueue::Heap(h) => h.len(),
        }
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drain everything due at `now`, asserting FIFO within the cycle.
    fn drain(q: &mut EventQueue, now: Cycle) -> Vec<u32> {
        let mut out = Vec::new();
        while let Some(id) = q.pop_due(now) {
            out.push(id);
        }
        out
    }

    #[test]
    fn same_cycle_events_pop_fifo() {
        let mut q = EventQueue::new(64);
        q.push(5, 30);
        q.push(5, 10);
        q.push(5, 20);
        assert_eq!(q.next_due(), Some(5));
        assert!(q.pop_due(4).is_none(), "nothing due before cycle 5");
        assert_eq!(drain(&mut q, 5), vec![30, 10, 20]);
        assert!(q.is_empty());
    }

    #[test]
    fn cycles_pop_in_order() {
        let mut q = EventQueue::new(64);
        q.push(9, 1);
        q.push(3, 2);
        q.push(7, 3);
        assert_eq!(q.next_due(), Some(3));
        assert_eq!(drain(&mut q, 100), vec![2, 3, 1]);
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        let mut q = EventQueue::new(64);
        q.push(1000, 7); // way past the 64-cycle horizon
        q.push(2, 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.next_due(), Some(2));
        assert_eq!(drain(&mut q, 2), vec![1]);
        assert_eq!(q.next_due(), Some(1000), "overflow feeds next_due");
        assert!(q.pop_due(999).is_none());
        assert_eq!(drain(&mut q, 1000), vec![7]);
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_and_wheel_ties_stay_fifo() {
        let mut q = EventQueue::new(64);
        // Pushed while 100 is beyond the horizon [0, 64): goes to overflow.
        q.push(100, 1);
        // Advance the window past 40 (pop_due with nothing due slides it),
        // then 100 is inside [41, 105): goes to the wheel.
        assert!(q.pop_due(41).is_none());
        q.push(100, 2);
        assert_eq!(drain(&mut q, 100), vec![1, 2], "older overflow entry first");
    }

    #[test]
    fn wheel_reuses_slots_across_rotations() {
        let mut q = EventQueue::new(64);
        let mut now = 0;
        for round in 0..10u32 {
            q.push(now + 3, round);
            assert!(q.pop_due(now + 2).is_none());
            now += 3;
            assert_eq!(drain(&mut q, now), vec![round]);
            now += 61; // full rotation: same slot indices come around again
            assert!(q.pop_due(now).is_none());
        }
        assert!(q.is_empty());
    }

    #[test]
    fn completion_queue_variants_agree_on_single_events() {
        for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            let mut q = CompletionQueue::new(kind, 64);
            assert!(q.is_empty());
            q.push(10, 1);
            q.push(4, 2);
            assert_eq!(q.len(), 2);
            assert_eq!(q.next_due(), Some(4));
            assert_eq!(q.pop_due(3), None);
            assert_eq!(q.pop_due(4), Some(2));
            assert_eq!(q.pop_due(9), None);
            assert_eq!(q.pop_due(10), Some(1));
            assert!(q.is_empty());
        }
    }

    #[test]
    fn scheduler_kind_env_parsing() {
        // No env mutation (tests run in parallel): just the mapping.
        assert_eq!(SchedulerKind::from_env(), SchedulerKind::Wheel);
    }
}
