//! SMT fetch-thread selection policies (§5.3 of the paper).
//!
//! Every cycle the fetch engine picks up to two threads (out of the
//! runnable ones) to fetch four instructions each. The policy determines
//! the pick order; the paper shows the choice matters most at high
//! thread counts (figure 6) and differently under the decoupled
//! hierarchy (figure 8).

use crate::config::FetchPolicy;

/// Per-thread inputs to the fetch decision.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadFetchInfo {
    /// The thread can fetch this cycle (not exhausted, not stalled on an
    /// I-miss or unresolved misprediction, buffer space available).
    pub runnable: bool,
    /// Instructions fetched/decoded but not yet issued (ICOUNT metric).
    pub icount: usize,
    /// Like `icount` but weighting MOM instructions by their stream
    /// length (OCOUNT metric, using the stream-length register).
    pub ocount: u64,
    /// Whether the thread's previous fetch group contained vector
    /// (μ-SIMD) instructions (BALANCE metric).
    pub fetched_vector_last: bool,
}

/// Select up to `n_select` thread indices to fetch from, in priority
/// order. `rr_cursor` rotates round-robin fairness; `vector_pipe_empty`
/// feeds the BALANCE policy.
#[must_use]
pub fn select_threads(
    policy: FetchPolicy,
    infos: &[ThreadFetchInfo],
    rr_cursor: usize,
    n_select: usize,
    vector_pipe_empty: bool,
) -> Vec<usize> {
    let mut picked = Vec::new();
    select_threads_into(
        policy,
        infos,
        rr_cursor,
        n_select,
        vector_pipe_empty,
        &mut picked,
    );
    picked
}

/// [`select_threads`] writing into a caller-provided buffer, so the
/// per-cycle fetch stage allocates nothing in steady state.
pub fn select_threads_into(
    policy: FetchPolicy,
    infos: &[ThreadFetchInfo],
    rr_cursor: usize,
    n_select: usize,
    vector_pipe_empty: bool,
    picked: &mut Vec<usize>,
) {
    let n = infos.len();
    // Runnable threads in round-robin order starting at the cursor.
    picked.clear();
    picked.extend(
        (0..n)
            .map(|i| (rr_cursor + i) % n)
            .filter(|&t| infos[t].runnable),
    );
    match policy {
        FetchPolicy::RoundRobin => {}
        FetchPolicy::ICount => {
            // Stable sort keeps round-robin order among ties. Thread
            // counts are ≤ 8, so sorting is allocation-free in practice
            // (the stdlib stable sort only heap-allocates above a
            // small-run threshold).
            picked.sort_by_key(|&t| infos[t].icount);
        }
        FetchPolicy::OCount => {
            picked.sort_by_key(|&t| infos[t].ocount);
        }
        FetchPolicy::Balance => {
            // Vector pipe empty → prefer threads that fetched vector code
            // last time (feed the starved pipe); otherwise prefer threads
            // that did not (keep scalar flowing).
            picked.sort_by_key(|&t| {
                let pref = infos[t].fetched_vector_last == vector_pipe_empty;
                usize::from(!pref)
            });
        }
    }
    picked.truncate(n_select);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runnable(n: usize) -> Vec<ThreadFetchInfo> {
        vec![
            ThreadFetchInfo {
                runnable: true,
                ..Default::default()
            };
            n
        ]
    }

    #[test]
    fn round_robin_rotates() {
        let infos = runnable(4);
        assert_eq!(
            select_threads(FetchPolicy::RoundRobin, &infos, 0, 2, false),
            vec![0, 1]
        );
        assert_eq!(
            select_threads(FetchPolicy::RoundRobin, &infos, 2, 2, false),
            vec![2, 3]
        );
        assert_eq!(
            select_threads(FetchPolicy::RoundRobin, &infos, 3, 2, false),
            vec![3, 0]
        );
    }

    #[test]
    fn non_runnable_threads_skipped() {
        let mut infos = runnable(4);
        infos[1].runnable = false;
        assert_eq!(
            select_threads(FetchPolicy::RoundRobin, &infos, 0, 2, false),
            vec![0, 2]
        );
        infos[0].runnable = false;
        infos[2].runnable = false;
        assert_eq!(
            select_threads(FetchPolicy::RoundRobin, &infos, 0, 2, false),
            vec![3]
        );
    }

    #[test]
    fn icount_prefers_emptier_threads() {
        let mut infos = runnable(4);
        infos[0].icount = 30;
        infos[1].icount = 5;
        infos[2].icount = 12;
        infos[3].icount = 5;
        // ties (1 and 3) keep round-robin order from cursor 0
        assert_eq!(
            select_threads(FetchPolicy::ICount, &infos, 0, 2, false),
            vec![1, 3]
        );
        // from cursor 3, thread 3 precedes thread 1 among ties
        assert_eq!(
            select_threads(FetchPolicy::ICount, &infos, 3, 2, false),
            vec![3, 1]
        );
    }

    #[test]
    fn ocount_weighs_stream_lengths() {
        let mut infos = runnable(2);
        infos[0].icount = 4; // four scalar ops
        infos[0].ocount = 4;
        infos[1].icount = 2; // two full streams: ICOUNT would prefer this
        infos[1].ocount = 32;
        assert_eq!(
            select_threads(FetchPolicy::ICount, &infos, 0, 1, false),
            vec![1]
        );
        assert_eq!(
            select_threads(FetchPolicy::OCount, &infos, 0, 1, false),
            vec![0]
        );
    }

    #[test]
    fn balance_feeds_the_starved_pipe() {
        let mut infos = runnable(3);
        infos[0].fetched_vector_last = true;
        infos[1].fetched_vector_last = false;
        infos[2].fetched_vector_last = true;
        // Vector pipe empty: vector-fetching threads first.
        assert_eq!(
            select_threads(FetchPolicy::Balance, &infos, 0, 2, true),
            vec![0, 2]
        );
        // Vector pipe busy: scalar threads first.
        assert_eq!(
            select_threads(FetchPolicy::Balance, &infos, 0, 2, false)[0],
            1
        );
    }

    #[test]
    fn selection_bounded_by_n_select() {
        let infos = runnable(8);
        assert_eq!(
            select_threads(FetchPolicy::RoundRobin, &infos, 0, 2, false).len(),
            2
        );
        assert_eq!(
            select_threads(FetchPolicy::RoundRobin, &infos, 0, 8, false).len(),
            8
        );
    }
}
