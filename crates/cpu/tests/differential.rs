//! Differential proof at the pipeline level: the calendar-queue
//! scheduler and the batched stream-request path must be *invisible*
//! optimizations. Every (scheduler × stream path) combination is run
//! over stream-heavy synthetic programs on every cache hierarchy, and
//! every statistic the machine keeps — pipeline counters, cache
//! hit/miss/LRU-driven outcomes, MSHR/write-buffer/bank/DRAM counters —
//! must be bit-for-bit identical to the seed configuration
//! (binary heap + per-element requests).

use medsim_cpu::{Cpu, CpuConfig, SchedulerKind};
use medsim_isa::prelude::*;
use medsim_mem::{HierarchyKind, MemConfig, MemSystem};
use medsim_workloads::trace::{SimdIsa, VecStream};

/// A stream-heavy mix: dense and strided MOM vector loads/stores
/// (same-line runs, line crossings, L2-line crossings), scalar loads
/// and stores into overlapping lines, prefetches, long-latency divides
/// and a mispredicting branch pattern — everything that schedules
/// completions at short and far horizons.
pub fn program(seed: u64) -> Vec<Inst> {
    let mut insts = Vec::new();
    let base = 0x40_0000 + seed * 0x1_0000;
    for i in 0..160u64 {
        let blk = base + (i % 13) * 640;
        // Dense stream: 16 elements of 8B, stride 8 — two 32B lines per
        // four elements, several elements per line.
        insts.push(Inst::mom_load(stream(0), int(1), blk, 8, 16).at(0x1000 + 4 * (i % 32)));
        // Strided stream crossing lines (and often L2 banks).
        insts
            .push(Inst::mom_load(stream(1), int(2), blk + 0x200, 48, 12).at(0x1080 + 4 * (i % 32)));
        // Stream store, dense.
        insts.push(
            Inst::mom_store(stream(2), int(3), blk + 0x1400, 8, 10).at(0x1100 + 4 * (i % 32)),
        );
        insts.push(Inst::mom(MomOp::VaddW, stream(3), stream(0), stream(1), 16).at(0x1200));
        // Scalar traffic into the same lines (coherence + wbuf overlap).
        insts.push(Inst::load(MemOp::LoadW, int(4), int(10), blk + 8).at(0x1300));
        insts.push(Inst::store(MemOp::StoreW, int(4), int(10), blk + 0x1408).at(0x1304));
        if i % 5 == 0 {
            insts.push(Inst::int_rrr(IntOp::Div, int(7), int(4), int(2)).at(0x1310));
        }
        insts.push(Inst::branch(CtlOp::Bne, int(7), i % 3 == 0, 0x1000).at(0x1320));
    }
    insts
}

pub fn run(
    hierarchy: HierarchyKind,
    threads: usize,
    scheduler: SchedulerKind,
    stream_batch: bool,
    wheel_slots: usize,
) -> String {
    let config = CpuConfig::paper(threads, SimdIsa::Mom)
        .with_scheduler(scheduler)
        .with_stream_batch(stream_batch);
    let config = CpuConfig {
        wheel_slots,
        ..config
    };
    let mut cpu = Cpu::new(config, MemSystem::new(MemConfig::paper_with(hierarchy)));
    for t in 0..threads {
        cpu.attach_thread(t, Box::new(VecStream::new(program(t as u64))));
    }
    assert!(cpu.run_to_idle(10_000_000), "program must drain");
    // Every observable statistic, formatted for exact comparison.
    format!(
        "{:?}\n{:?}\n{:?}\n{:?}\n{:?}\n{:?}\n{:?}",
        cpu.stats(),
        cpu.mem().stats(),
        cpu.mem().l1d_stats(),
        cpu.mem().l1i_stats(),
        cpu.mem().l2_stats(),
        cpu.mem().dram_stats(),
        cpu.now(),
    )
}

#[test]
fn wheel_and_batched_streams_match_the_seed_bitwise() {
    for &hierarchy in &HierarchyKind::ALL {
        for threads in [1usize, 2, 4] {
            let reference = run(hierarchy, threads, SchedulerKind::Heap, false, 256);
            for (sched, batch) in [
                (SchedulerKind::Wheel, true),
                (SchedulerKind::Wheel, false),
                (SchedulerKind::Heap, true),
            ] {
                let got = run(hierarchy, threads, sched, batch, 256);
                assert_eq!(
                    got, reference,
                    "{hierarchy:?} x {threads} threads: {sched:?}/batch={batch} diverges"
                );
            }
        }
    }
}

#[test]
fn tiny_wheel_overflows_are_still_exact() {
    // A 64-slot wheel forces DRAM-class completions into the overflow
    // bucket constantly; results must not change.
    for &hierarchy in &[HierarchyKind::Conventional, HierarchyKind::Decoupled] {
        let reference = run(hierarchy, 2, SchedulerKind::Heap, false, 256);
        let small = run(hierarchy, 2, SchedulerKind::Wheel, true, 64);
        assert_eq!(small, reference, "{hierarchy:?}: 64-slot wheel diverges");
    }
}
