//! Property test: the calendar queue must be indistinguishable from a
//! totally ordered reference model.
//!
//! The reference is a `BinaryHeap` over `Reverse((due, seq, id))` — a
//! priority queue that breaks same-cycle ties by push order, i.e. the
//! FIFO-within-a-cycle contract the wheel promises. Random interleaved
//! push/advance/drain schedules (including far-future pushes that land
//! in the overflow bucket, and long jumps that cross several wheel
//! rotations at once) must produce identical pop sequences, identical
//! `next_due` answers and identical lengths at every step.

use medsim_cpu::EventQueue;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reference model: totally ordered by `(due, push sequence)`.
#[derive(Default)]
struct Model {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    seq: u64,
}

impl Model {
    fn push(&mut self, due: u64, id: u32) {
        self.seq += 1;
        self.heap.push(Reverse((due, self.seq, id)));
    }

    fn next_due(&self) -> Option<u64> {
        self.heap.peek().map(|&Reverse((d, _, _))| d)
    }

    fn pop_due(&mut self, now: u64) -> Option<u32> {
        match self.heap.peek() {
            Some(&Reverse((d, _, _))) if d <= now => self.heap.pop().map(|Reverse((_, _, id))| id),
            _ => None,
        }
    }
}

/// One random schedule: returns the full pop trace for cross-seed
/// sanity.
fn run_schedule(seed: u64, wheel_slots: usize, steps: usize) -> Vec<(u64, u32)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut q = EventQueue::new(wheel_slots);
    let mut model = Model::default();
    let mut now = 0u64;
    let mut next_id = 0u32;
    let mut trace = Vec::new();

    for step in 0..steps {
        // Advance time: small ticks usually; sometimes jump straight to
        // the earliest pending event (the fast-forward pattern), and
        // occasionally far past a whole wheel rotation.
        now += match rng.gen_range(0..10u32) {
            0..=5 => rng.gen_range(0..3u64),
            6..=7 => model.next_due().map_or(1, |d| d.saturating_sub(now).max(1)),
            8 => rng.gen_range(0..2 * wheel_slots as u64),
            _ => rng.gen_range(0..8u64),
        };

        // Drain everything due, in lock step.
        loop {
            assert_eq!(q.next_due(), model.next_due(), "step {step} next_due");
            let (a, b) = (q.pop_due(now), model.pop_due(now));
            assert_eq!(a, b, "step {step} at now={now}: wheel {a:?} vs model {b:?}");
            match a {
                Some(id) => trace.push((now, id)),
                None => break,
            }
        }
        assert_eq!(q.len(), model.heap.len(), "step {step} len");

        // Push a burst of events: mostly short-horizon (FU latencies,
        // cache hits), some same-cycle ties, a tail far enough out to
        // overflow the wheel (DRAM-class latencies).
        for _ in 0..rng.gen_range(0..6u32) {
            let offset = match rng.gen_range(0..12u32) {
                0..=6 => rng.gen_range(0..12u64),
                7..=8 => rng.gen_range(0..wheel_slots as u64),
                9 => 0, // due immediately
                _ => rng.gen_range(wheel_slots as u64..4 * wheel_slots as u64),
            };
            next_id += 1;
            q.push(now + offset, next_id);
            model.push(now + offset, next_id);
        }
    }

    // Final drain: everything left must come out in model order.
    loop {
        let due = model.next_due();
        assert_eq!(q.next_due(), due);
        let Some(due) = due else { break };
        now = now.max(due);
        let (a, b) = (q.pop_due(now), model.pop_due(now));
        assert_eq!(a, b, "final drain at {now}");
        trace.push((now, a.expect("due event")));
    }
    assert!(q.is_empty());
    trace
}

#[test]
fn random_schedules_match_the_heap_reference() {
    for seed in 0..20 {
        let trace = run_schedule(seed, 64, 400);
        assert!(!trace.is_empty(), "seed {seed} exercised nothing");
    }
}

#[test]
fn default_sized_wheel_matches_too() {
    for seed in 100..104 {
        run_schedule(seed, 256, 300);
    }
}

#[test]
fn same_cycle_bursts_pop_fifo_through_rotations() {
    let mut q = EventQueue::new(64);
    let mut model = Model::default();
    let mut id = 0u32;
    let mut now = 0;
    // Many rotations of dense same-cycle bursts.
    for round in 0..50u64 {
        let due = now + 1 + (round % 7);
        for _ in 0..8 {
            id += 1;
            q.push(due, id);
            model.push(due, id);
        }
        // Partial drains at intermediate times, then the due cycle.
        for t in [due - 1, due] {
            now = t;
            loop {
                let (a, b) = (q.pop_due(now), model.pop_due(now));
                assert_eq!(a, b, "round {round} at {now}");
                if a.is_none() {
                    break;
                }
            }
        }
    }
    assert!(q.is_empty());
}

#[test]
fn overflow_heavy_schedule_stays_ordered() {
    // Everything lands beyond the horizon, then time sweeps across.
    let mut q = EventQueue::new(64);
    let mut model = Model::default();
    let mut rng = SmallRng::seed_from_u64(7);
    for id in 1..=300u32 {
        let due = rng.gen_range(500..4000u64);
        q.push(due, id);
        model.push(due, id);
    }
    let mut now = 0;
    while !q.is_empty() {
        now += rng.gen_range(1..40u64);
        loop {
            assert_eq!(q.next_due(), model.next_due());
            let (a, b) = (q.pop_due(now), model.pop_due(now));
            assert_eq!(a, b, "at {now}");
            if a.is_none() {
                break;
            }
        }
    }
}
