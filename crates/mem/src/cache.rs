//! Set-associative cache with banking, LRU replacement and in-flight
//! (pending-fill) line tracking.
//!
//! Used for all three caches of the hierarchy (direct-mapped L1D is the
//! 1-way special case). The cache tracks *tags only* — data values live
//! with the functional workload model; a timing simulator needs presence,
//! dirtiness and fill times, not contents.
//!
//! A line allocated by a miss carries a **fill time**; accesses that
//! arrive while the fill is still in flight are *delayed hits* — they
//! coalesce onto the fill (no new next-level request, so they behave
//! like MSHR "half misses" structurally) but are **counted as hits**:
//! the reference did not cause a new miss, and its extra wait shows up
//! in the latency statistics instead of the hit rate.
//!
//! ## Two implementations, one behavior
//!
//! The default model ([`CacheModel::Packed`]) is data-oriented: a
//! contiguous tag plane, a fill-time plane, and one `u64` metadata word
//! per set packing the valid/dirty bitmaps and the LRU order as a way
//! permutation, plus a per-access-kind MRU line filter (last line
//! address + way) that short-circuits the tag walk for the same-line
//! repeat hits that dominate streaming media kernels. The seed's
//! array-of-structs model survives as [`CacheModel::Ref`]
//! (`MEDSIM_CACHE=ref`), and the two are proven access-for-access
//! identical — hit/pending/writeback outcomes and every statistic — by
//! the property suite in `crates/mem/tests/model_equivalence.rs` and
//! the pipeline differential suites.

use crate::stats::CacheStats;
use crate::Cycle;
use serde::{Deserialize, Serialize};

/// Geometry and policy of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (1 = direct mapped).
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Number of banks the cache is interleaved across (power of two).
    pub banks: usize,
    /// Write-back (`true`) or write-through (`false`).
    pub write_back: bool,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible by
    /// `ways × line_bytes` or not a power of two).
    #[must_use]
    pub fn sets(&self) -> u64 {
        let sets = self.size_bytes / (self.ways as u64 * self.line_bytes);
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "inconsistent cache geometry"
        );
        sets
    }
}

/// Which line-state implementation a [`Cache`] (and the MSHR/write-buffer
/// structures that follow the same knob) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheModel {
    /// Split-plane tag/fill arrays with per-set packed metadata words
    /// and MRU line filters — the default.
    Packed,
    /// The seed's array-of-structs `Vec<Line>` model, kept as the
    /// differential reference (`MEDSIM_CACHE=ref`).
    Ref,
}

impl CacheModel {
    /// Model selected by the `MEDSIM_CACHE` environment variable
    /// (`ref` selects the reference model; anything else, the packed
    /// planes). Read at construction time, like `MEDSIM_SCHED`.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("MEDSIM_CACHE") {
            Ok(v) if v.eq_ignore_ascii_case("ref") => CacheModel::Ref,
            _ => CacheModel::Packed,
        }
    }
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Tag matched and the data is ready: a true hit.
    pub hit: bool,
    /// Tag matched but the fill is still in flight: data ready at the
    /// given cycle (delayed hit — coalesces onto the outstanding fill).
    pub pending: Option<Cycle>,
    /// On a miss that evicted a dirty victim, the victim's address.
    pub writeback: Option<u64>,
}

// ---------------------------------------------------------------------
// Reference model: the seed's array-of-structs layout, verbatim.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    /// Cycle at which the line's data arrives (allocation sets it to the
    /// allocation cycle; `set_fill_time` moves it out for real misses).
    fill_at: Cycle,
    /// LRU timestamp (larger = more recent).
    last_use: Cycle,
}

/// The seed's banked set-associative tag store: one 40-byte record per
/// line, timestamp LRU, linear per-way scans. Kept bit-for-bit as the
/// reference the packed planes are differenced against.
#[derive(Debug, Clone)]
struct RefCache {
    config: CacheConfig,
    sets: u64,
    lines: Vec<Line>,
    stats: CacheStats,
    use_counter: Cycle,
}

impl RefCache {
    fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        RefCache {
            config,
            sets,
            lines: vec![Line::default(); (sets as usize) * config.ways],
            stats: CacheStats::default(),
            use_counter: 0,
        }
    }

    fn set_of(&self, addr: u64) -> u64 {
        (addr / self.config.line_bytes) % self.sets
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / self.config.line_bytes / self.sets
    }

    fn set_slice_mut(&mut self, set: u64) -> &mut [Line] {
        let w = self.config.ways;
        let base = set as usize * w;
        &mut self.lines[base..base + w]
    }

    fn probe(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set as usize * self.config.ways;
        self.lines[base..base + self.config.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    fn access(&mut self, now: Cycle, addr: u64, is_store: bool) -> Access {
        self.use_counter += 1;
        let lru_now = self.use_counter;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let write_back = self.config.write_back;
        let line_bytes = self.config.line_bytes;
        let sets = self.sets;

        // Hit / delayed-hit path.
        let tag_match = {
            let lines = self.set_slice_mut(set);
            lines
                .iter_mut()
                .find(|l| l.valid && l.tag == tag)
                .map(|line| {
                    line.last_use = lru_now;
                    if is_store && write_back {
                        line.dirty = true;
                    }
                    line.fill_at
                })
        };
        if let Some(fill_at) = tag_match {
            if fill_at <= now {
                self.stats.record(is_store, true);
                return Access {
                    hit: true,
                    pending: None,
                    writeback: None,
                };
            }
            // Delayed hit: the tag matches but the fill is still in
            // flight. Counted as a hit (the reference did not cause a new
            // miss); its extra latency shows up in the latency statistics.
            self.stats.record(is_store, true);
            return Access {
                hit: false,
                pending: Some(fill_at),
                writeback: None,
            };
        }

        self.stats.record(is_store, false);

        // Write-allocate under both policies: media staging patterns
        // (write a block, read it right back) need the line installed or
        // every reload pays an L2 round trip. The write itself still
        // drains through the write buffer in a write-through cache.
        // Allocate: choose the LRU way among the set.
        let writeback = {
            let lines = self.set_slice_mut(set);
            let victim = lines
                .iter_mut()
                .min_by_key(|l| if l.valid { l.last_use } else { 0 })
                .expect("ways >= 1");
            let wb = if victim.valid && victim.dirty {
                Some((victim.tag * sets + set) * line_bytes)
            } else {
                None
            };
            *victim = Line {
                valid: true,
                dirty: is_store && write_back,
                tag,
                fill_at: now,
                last_use: lru_now,
            };
            wb
        };
        if writeback.is_some() {
            self.stats.writebacks += 1;
        }
        Access {
            hit: false,
            pending: None,
            writeback,
        }
    }

    fn retouch_many(&mut self, addr: u64, is_store: bool, n: u64) {
        self.use_counter += n;
        let lru_now = self.use_counter;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let write_back = self.config.write_back;
        let line = self
            .set_slice_mut(set)
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
            .expect("retouch of a line that is not resident");
        line.last_use = lru_now;
        if is_store && write_back {
            line.dirty = true;
        }
        if is_store {
            self.stats.stores += n;
        } else {
            self.stats.hits += n;
        }
    }

    fn fill_time_of(&self, addr: u64) -> Option<Cycle> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set as usize * self.config.ways;
        self.lines[base..base + self.config.ways]
            .iter()
            .find(|l| l.valid && l.tag == tag)
            .map(|l| l.fill_at)
    }

    fn set_fill_time(&mut self, addr: u64, fill_at: Cycle) {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        for line in self.set_slice_mut(set) {
            if line.valid && line.tag == tag {
                line.fill_at = fill_at;
            }
        }
    }

    fn invalidate(&mut self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        for line in self.set_slice_mut(set) {
            if line.valid && line.tag == tag {
                line.valid = false;
                line.dirty = false;
                return true;
            }
        }
        false
    }

    fn clean(&mut self, addr: u64) {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        for line in self.set_slice_mut(set) {
            if line.valid && line.tag == tag {
                line.dirty = false;
            }
        }
    }

    fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

// ---------------------------------------------------------------------
// Packed model: split planes + per-set metadata words + MRU filters.
// ---------------------------------------------------------------------

/// Most ways one packed metadata word can describe: 8 valid bits,
/// 8 dirty bits and an 8-slot × 3-bit LRU permutation fit a `u64` with
/// room to spare. Geometries beyond this fall back to the reference
/// model (none of the paper's caches exceed 2 ways).
const PACKED_MAX_WAYS: usize = 8;
/// Bit offset of the dirty bitmap within a metadata word.
const DIRTY_SHIFT: u32 = 8;
/// Bit offset of the LRU permutation within a metadata word.
const PERM_SHIFT: u32 = 16;

/// One remembered (line, set, way) mapping: the MRU filter. `valid` is
/// cleared whenever the line leaves that slot (eviction or explicit
/// invalidation), so a valid memo always names a resident line.
#[derive(Debug, Clone, Copy, Default)]
struct MruMemo {
    line: u64,
    set: u32,
    way: u8,
    valid: bool,
}

/// Split-plane tag store: `tags` and `fill_at` are contiguous per-line
/// planes indexed `set * ways + way`; `meta` holds one `u64` per set
/// with the valid bitmap (bits 0–7), dirty bitmap (bits 8–15) and the
/// LRU order as a way permutation (3 bits per slot from bit 16, slot 0
/// = least recently used). Two MRU memos (loads, stores) short-circuit
/// the tag walk for same-line repeat accesses.
#[derive(Debug, Clone)]
struct PackedCache {
    line_shift: u32,
    set_mask: u64,
    set_shift: u32,
    ways: usize,
    write_back: bool,
    tags: Box<[u64]>,
    fill_at: Box<[Cycle]>,
    meta: Box<[u64]>,
    memos: [MruMemo; 2],
    stats: CacheStats,
}

impl PackedCache {
    /// Whether the packed planes can represent this geometry.
    fn supports(config: &CacheConfig) -> bool {
        config.ways >= 1
            && config.ways <= PACKED_MAX_WAYS
            && config.line_bytes.is_power_of_two()
            && (config.banks as u64).is_power_of_two()
    }

    fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        debug_assert!(PackedCache::supports(&config));
        let n = sets as usize * config.ways;
        // Initial LRU permutation: way `w` in slot `w`. The order among
        // never-used ways is irrelevant — allocation fills invalid ways
        // by index before the permutation is ever consulted.
        let mut perm = 0u64;
        for w in 0..config.ways as u64 {
            perm |= w << (PERM_SHIFT + 3 * w as u32);
        }
        PackedCache {
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            set_shift: sets.trailing_zeros(),
            ways: config.ways,
            write_back: config.write_back,
            tags: vec![0; n].into_boxed_slice(),
            fill_at: vec![0; n].into_boxed_slice(),
            meta: vec![perm; sets as usize].into_boxed_slice(),
            memos: [MruMemo::default(); 2],
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) & self.set_mask) as usize
    }

    #[inline]
    fn tag_of(&self, addr: u64) -> u64 {
        addr >> (self.line_shift + self.set_shift)
    }

    #[inline]
    fn line_of(&self, addr: u64) -> u64 {
        addr & !((1u64 << self.line_shift) - 1)
    }

    #[inline]
    fn valid_mask(&self) -> u64 {
        (1u64 << self.ways) - 1
    }

    /// Move `way` to the MRU end of the set's LRU permutation.
    #[inline]
    fn perm_touch(&self, meta: u64, way: usize) -> u64 {
        let ways = self.ways as u32;
        if ways == 1 {
            return meta;
        }
        let perm = (meta >> PERM_SHIFT) & ((1u64 << (3 * ways)) - 1);
        // Find the slot currently holding `way` (the permutation always
        // contains every way exactly once).
        let mut slot = 0u32;
        while (perm >> (3 * slot)) & 7 != way as u64 {
            slot += 1;
        }
        let below = perm & ((1u64 << (3 * slot)) - 1);
        let above = (perm >> (3 * (slot + 1))) << (3 * slot);
        let mut p = (below | above) & ((1u64 << (3 * (ways - 1))) - 1);
        p |= (way as u64) << (3 * (ways - 1));
        (meta & !(((1u64 << (3 * ways)) - 1) << PERM_SHIFT)) | (p << PERM_SHIFT)
    }

    /// The LRU way of a fully-valid set (permutation slot 0).
    #[inline]
    fn lru_way(meta: u64) -> usize {
        ((meta >> PERM_SHIFT) & 7) as usize
    }

    /// Tag-walk a set for `tag`, valid ways only.
    #[inline]
    fn find(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.ways;
        let mut valid = self.meta[set] & self.valid_mask();
        while valid != 0 {
            let w = valid.trailing_zeros() as usize;
            if self.tags[base + w] == tag {
                return Some(w);
            }
            valid &= valid - 1;
        }
        None
    }

    /// The resident way serving `addr`, via the MRU filter when it
    /// matches, else a tag walk. Read-only — does not refresh the memo.
    #[inline]
    fn find_resident(&self, addr: u64) -> Option<(usize, usize)> {
        let line = self.line_of(addr);
        for m in &self.memos {
            if m.valid && m.line == line {
                return Some((m.set as usize, m.way as usize));
            }
        }
        let set = self.set_of(addr);
        self.find(set, self.tag_of(addr)).map(|w| (set, w))
    }

    /// Clear any memo naming `(set, way)` — the slot is being reused or
    /// invalidated, so the remembered line is no longer there.
    #[inline]
    fn forget_slot(&mut self, set: usize, way: usize) {
        for m in &mut self.memos {
            if m.valid && m.set as usize == set && m.way as usize == way {
                m.valid = false;
            }
        }
    }

    fn access(&mut self, now: Cycle, addr: u64, is_store: bool) -> Access {
        let line = self.line_of(addr);
        let kind = usize::from(is_store);
        // MRU filter: a repeat access to the last line this kind
        // touched skips the set walk entirely.
        let memo = self.memos[kind];
        let found = if memo.valid && memo.line == line {
            Some((memo.set as usize, memo.way as usize))
        } else {
            let set = self.set_of(addr);
            self.find(set, self.tag_of(addr)).map(|w| (set, w))
        };

        if let Some((set, way)) = found {
            let mut meta = self.perm_touch(self.meta[set], way);
            if is_store && self.write_back {
                meta |= 1 << (DIRTY_SHIFT + way as u32);
            }
            self.meta[set] = meta;
            self.memos[kind] = MruMemo {
                line,
                set: set as u32,
                way: way as u8,
                valid: true,
            };
            let fill_at = self.fill_at[set * self.ways + way];
            self.stats.record(is_store, true);
            if fill_at <= now {
                return Access {
                    hit: true,
                    pending: None,
                    writeback: None,
                };
            }
            // Delayed hit: the fill is still in flight (see the module
            // docs — a hit for the rate, a wait for the latency sum).
            return Access {
                hit: false,
                pending: Some(fill_at),
                writeback: None,
            };
        }

        self.stats.record(is_store, false);

        // Write-allocate under both policies (see the reference model).
        // Victim: first invalid way by index, else the LRU way.
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.ways;
        let meta = self.meta[set];
        let valid = meta & self.valid_mask();
        let victim = if valid != self.valid_mask() {
            (!valid).trailing_zeros() as usize
        } else {
            PackedCache::lru_way(meta)
        };
        let vbit = 1u64 << victim;
        let writeback = if valid & vbit != 0 && meta & (vbit << DIRTY_SHIFT) != 0 {
            self.stats.writebacks += 1;
            Some(((self.tags[base + victim] << self.set_shift) | set as u64) << self.line_shift)
        } else {
            None
        };
        self.forget_slot(set, victim);
        let mut meta = self.perm_touch(meta, victim);
        meta |= vbit;
        if is_store && self.write_back {
            meta |= vbit << DIRTY_SHIFT;
        } else {
            meta &= !(vbit << DIRTY_SHIFT);
        }
        self.meta[set] = meta;
        self.tags[base + victim] = tag;
        self.fill_at[base + victim] = now;
        self.memos[kind] = MruMemo {
            line,
            set: set as u32,
            way: victim as u8,
            valid: true,
        };
        Access {
            hit: false,
            pending: None,
            writeback,
        }
    }

    fn retouch_many(&mut self, addr: u64, is_store: bool, n: u64) {
        let (set, way) = self
            .find_resident(addr)
            .expect("retouch of a line that is not resident");
        let mut meta = self.perm_touch(self.meta[set], way);
        if is_store && self.write_back {
            meta |= 1 << (DIRTY_SHIFT + way as u32);
        }
        self.meta[set] = meta;
        self.memos[usize::from(is_store)] = MruMemo {
            line: self.line_of(addr),
            set: set as u32,
            way: way as u8,
            valid: true,
        };
        if is_store {
            self.stats.stores += n;
        } else {
            self.stats.hits += n;
        }
    }

    fn probe(&self, addr: u64) -> bool {
        self.find_resident(addr).is_some()
    }

    fn fill_time_of(&self, addr: u64) -> Option<Cycle> {
        self.find_resident(addr)
            .map(|(set, way)| self.fill_at[set * self.ways + way])
    }

    fn set_fill_time(&mut self, addr: u64, fill_at: Cycle) {
        if let Some((set, way)) = self.find_resident(addr) {
            self.fill_at[set * self.ways + way] = fill_at;
        }
    }

    fn invalidate(&mut self, addr: u64) -> bool {
        match self.find_resident(addr) {
            Some((set, way)) => {
                let bit = 1u64 << way;
                self.meta[set] &= !(bit | (bit << DIRTY_SHIFT));
                self.forget_slot(set, way);
                true
            }
            None => false,
        }
    }

    fn clean(&mut self, addr: u64) {
        if let Some((set, way)) = self.find_resident(addr) {
            self.meta[set] &= !(1u64 << (DIRTY_SHIFT + way as u32));
        }
    }

    fn valid_lines(&self) -> usize {
        let mask = self.valid_mask();
        self.meta
            .iter()
            .map(|&m| (m & mask).count_ones() as usize)
            .sum()
    }
}

// ---------------------------------------------------------------------
// The public cache: precomputed geometry + model dispatch.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Model {
    Packed(PackedCache),
    Ref(RefCache),
}

/// A banked set-associative cache (tags only). Pure geometry helpers
/// (`line_addr`, `bank_of`, `set_index`) use precomputed shift/mask
/// pairs regardless of model; line state lives in the selected
/// [`CacheModel`].
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    line_mask: u64,
    line_shift: u32,
    set_mask: u64,
    /// `banks - 1` when the bank count is a power of two (always, per
    /// the [`CacheConfig`] contract — asserted for the packed model).
    bank_mask: u64,
    inner: Model,
}

impl Cache {
    /// Build a cache from its configuration, using the model selected
    /// by `MEDSIM_CACHE` (see [`CacheModel::from_env`]).
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        Cache::with_model(config, CacheModel::from_env())
    }

    /// Build a cache with an explicit model (differential tests and
    /// benches compare both in one process). Geometries the packed
    /// planes cannot represent (more than 8 ways, non-power-of-two
    /// banks) fall back to the reference model.
    #[must_use]
    pub fn with_model(config: CacheConfig, model: CacheModel) -> Self {
        let sets = config.sets();
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let inner = match model {
            CacheModel::Packed if PackedCache::supports(&config) => {
                Model::Packed(PackedCache::new(config))
            }
            _ => Model::Ref(RefCache::new(config)),
        };
        Cache {
            line_mask: !(config.line_bytes - 1),
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            bank_mask: config.banks as u64 - 1,
            inner,
            config,
        }
    }

    /// The model actually in use (after any geometry fallback).
    #[must_use]
    pub fn model(&self) -> CacheModel {
        match self.inner {
            Model::Packed(_) => CacheModel::Packed,
            Model::Ref(_) => CacheModel::Ref,
        }
    }

    /// The configuration this cache was built from.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        match &self.inner {
            Model::Packed(p) => &p.stats,
            Model::Ref(r) => &r.stats,
        }
    }

    /// Line-aligned address of `addr`.
    #[inline]
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & self.line_mask
    }

    /// Bank index serving `addr` (line-interleaved).
    #[inline]
    #[must_use]
    pub fn bank_of(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) & self.bank_mask) as usize
    }

    /// Set index serving `addr` (pure geometry — no state touched).
    /// Two addresses can only evict each other when their sets match.
    #[inline]
    #[must_use]
    pub fn set_index(&self, addr: u64) -> u64 {
        (addr >> self.line_shift) & self.set_mask
    }

    /// Pure presence probe (tag match, ready or in flight) — no
    /// statistics, no LRU update.
    #[inline]
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        match &self.inner {
            Model::Packed(p) => p.probe(addr),
            Model::Ref(r) => r.probe(addr),
        }
    }

    /// Access the cache at cycle `now`: updates LRU and statistics; on a
    /// miss, allocates the line (evicting the LRU way) and reports any
    /// dirty victim. The caller should follow a real miss with
    /// [`Cache::set_fill_time`] once the next-level completion is known.
    ///
    /// `is_store` marks the line dirty in a write-back cache. In a
    /// write-through cache store misses do **not** allocate
    /// (write-around), matching the L1's no-allocate-on-write-miss policy.
    pub fn access(&mut self, now: Cycle, addr: u64, is_store: bool) -> Access {
        match &mut self.inner {
            Model::Packed(p) => p.access(now, addr, is_store),
            Model::Ref(r) => r.access(now, addr, is_store),
        }
    }

    /// Re-access a line known to be resident (tag present, possibly with
    /// a fill still in flight): exactly the bookkeeping [`Cache::access`]
    /// does on its tag-match path — LRU touch, hit/store accounting,
    /// dirty marking — without re-deciding hit vs miss. The batched
    /// stream path uses this for the second and later elements that
    /// land on a line the first element already walked the tags for.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident (protocol violation: the
    /// caller just accessed it).
    pub fn retouch(&mut self, addr: u64, is_store: bool) {
        self.retouch_many(addr, is_store, 1);
    }

    /// [`Cache::retouch`] for `n` back-to-back accesses to the same
    /// resident line: one tag walk, with the LRU counter and statistics
    /// advanced exactly as `n` sequential accesses would have left them
    /// (only the final LRU position is ever observable, since nothing
    /// else touches the cache in between).
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident (protocol violation: the
    /// caller just accessed it).
    pub fn retouch_many(&mut self, addr: u64, is_store: bool, n: u64) {
        match &mut self.inner {
            Model::Packed(p) => p.retouch_many(addr, is_store, n),
            Model::Ref(r) => r.retouch_many(addr, is_store, n),
        }
    }

    /// Fill time of the line holding `addr`, if resident. A past value
    /// means the data is there; a future one, that the fill is still in
    /// flight. No statistics, no LRU update.
    #[must_use]
    pub fn fill_time_of(&self, addr: u64) -> Option<Cycle> {
        match &self.inner {
            Model::Packed(p) => p.fill_time_of(addr),
            Model::Ref(r) => r.fill_time_of(addr),
        }
    }

    /// Record when the fill for the line holding `addr` completes.
    pub fn set_fill_time(&mut self, addr: u64, fill_at: Cycle) {
        match &mut self.inner {
            Model::Packed(p) => p.set_fill_time(addr, fill_at),
            Model::Ref(r) => r.set_fill_time(addr, fill_at),
        }
    }

    /// Invalidate the line containing `addr` if present (exclusive-bit
    /// coherence probe from the decoupled hierarchy). Returns whether a
    /// line was invalidated.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        match &mut self.inner {
            Model::Packed(p) => p.invalidate(addr),
            Model::Ref(r) => r.invalidate(addr),
        }
    }

    /// Mark the line containing `addr` clean (after a write-back drains).
    pub fn clean(&mut self, addr: u64) {
        match &mut self.inner {
            Model::Packed(p) => p.clean(addr),
            Model::Ref(r) => r.clean(addr),
        }
    }

    /// Number of valid lines (testing / occupancy inspection).
    #[must_use]
    pub fn valid_lines(&self) -> usize {
        match &self.inner {
            Model::Packed(p) => p.valid_lines(),
            Model::Ref(r) => r.valid_lines(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODELS: [CacheModel; 2] = [CacheModel::Packed, CacheModel::Ref];

    fn small_with(model: CacheModel) -> Cache {
        // 4 sets × 2 ways × 32B = 256 B
        Cache::with_model(
            CacheConfig {
                size_bytes: 256,
                ways: 2,
                line_bytes: 32,
                banks: 2,
                write_back: true,
            },
            model,
        )
    }

    fn small() -> Cache {
        small_with(CacheModel::Packed)
    }

    #[test]
    fn geometry() {
        for model in MODELS {
            let c = small_with(model);
            assert_eq!(c.config().sets(), 4);
            assert_eq!(c.line_addr(0x47), 0x40);
            assert_eq!(c.bank_of(0x00), 0);
            assert_eq!(c.bank_of(0x20), 1);
            assert_eq!(c.bank_of(0x40), 0);
            assert_eq!(c.set_index(0x00), 0);
            assert_eq!(c.set_index(0x20), 1);
            assert_eq!(c.set_index(0x80), 0);
        }
    }

    #[test]
    fn model_selection_and_fallback() {
        let cfg = CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 32,
            banks: 2,
            write_back: true,
        };
        assert_eq!(
            Cache::with_model(cfg, CacheModel::Packed).model(),
            CacheModel::Packed
        );
        assert_eq!(
            Cache::with_model(cfg, CacheModel::Ref).model(),
            CacheModel::Ref
        );
        // 16 ways exceed one packed metadata word: silently fall back.
        let wide = CacheConfig {
            size_bytes: 16 * 1024,
            ways: 16,
            line_bytes: 32,
            banks: 2,
            write_back: true,
        };
        assert_eq!(
            Cache::with_model(wide, CacheModel::Packed).model(),
            CacheModel::Ref
        );
    }

    #[test]
    fn miss_then_hit() {
        for model in MODELS {
            let mut c = small_with(model);
            assert!(!c.access(0, 0x100, false).hit);
            assert!(c.access(1, 0x100, false).hit);
            assert!(c.access(2, 0x11f, false).hit, "same line");
            assert!(!c.access(3, 0x120, false).hit, "next line");
            assert_eq!(c.stats().hits, 2);
            assert_eq!(c.stats().misses, 2);
        }
    }

    #[test]
    fn delayed_hit_while_fill_in_flight() {
        for model in MODELS {
            let mut c = small_with(model);
            let m = c.access(0, 0x100, false);
            assert!(!m.hit);
            c.set_fill_time(0x100, 90);
            // Access at cycle 5: tag matches, data not ready until 90.
            let d = c.access(5, 0x100, false);
            assert!(!d.hit);
            assert_eq!(d.pending, Some(90));
            // Access at cycle 90: true hit.
            let h = c.access(90, 0x100, false);
            assert!(h.hit);
            assert_eq!(c.stats().misses, 1, "only the original miss counts");
            assert_eq!(c.stats().hits, 2, "the delayed hit counts as a hit");
        }
    }

    /// Dedicated pin of the delayed-hit ("half miss") accounting: a
    /// tag-matching access to an in-flight line increments `hits` (or
    /// `stores` for stores), never `misses` — the fill it coalesces
    /// onto already counted. Mirrors the MSHR half-miss convention and
    /// the module docs.
    #[test]
    fn delayed_hit_accounting_is_half_miss_style() {
        for model in MODELS {
            let mut c = small_with(model);
            assert!(!c.access(0, 0x200, false).hit); // the real miss
            c.set_fill_time(0x200, 100);
            for t in 1..=5 {
                let a = c.access(t, 0x200, false);
                assert!(!a.hit);
                assert_eq!(a.pending, Some(100), "coalesces onto the fill");
            }
            let s = c.access(6, 0x208, true); // store into the same in-flight line
            assert_eq!(s.pending, Some(100));
            assert_eq!(c.stats().misses, 1, "one miss, not six");
            assert_eq!(c.stats().hits, 5, "every delayed load counts as a hit");
            assert_eq!(c.stats().stores, 1, "delayed stores count as stores");
            assert_eq!(c.stats().writebacks, 0);
        }
    }

    #[test]
    fn lru_replacement_within_set() {
        for model in MODELS {
            let mut c = small_with(model);
            // Three lines mapping to the same set (set stride = 4 lines × 32B = 128B).
            let a = 0x000;
            let b = 0x080;
            let d = 0x100;
            c.access(0, a, false);
            c.access(1, b, false);
            c.access(2, a, false); // a is MRU
            c.access(3, d, false); // evicts b
            assert!(c.probe(a));
            assert!(!c.probe(b));
            assert!(c.probe(d));
        }
    }

    #[test]
    fn writeback_of_dirty_victim() {
        for model in MODELS {
            let mut c = small_with(model);
            c.access(0, 0x000, true); // dirty
            c.access(1, 0x080, false);
            let r = c.access(2, 0x100, false); // evicts 0x000 (LRU, dirty)
            assert_eq!(r.writeback, Some(0x000));
            assert_eq!(c.stats().writebacks, 1);
        }
    }

    #[test]
    fn clean_prevents_writeback() {
        for model in MODELS {
            let mut c = small_with(model);
            c.access(0, 0x000, true);
            c.clean(0x000);
            c.access(1, 0x080, false);
            let r = c.access(2, 0x100, false);
            assert_eq!(r.writeback, None);
        }
    }

    #[test]
    fn write_through_store_miss_allocates_for_later_loads() {
        for model in MODELS {
            let mut c = Cache::with_model(
                CacheConfig {
                    size_bytes: 256,
                    ways: 1,
                    line_bytes: 32,
                    banks: 1,
                    write_back: false,
                },
                model,
            );
            let r = c.access(0, 0x40, true);
            assert!(!r.hit);
            assert!(c.probe(0x40), "write-allocate installs the line");
            // The staging pattern: store then load hits.
            assert!(c.access(1, 0x40, false).hit);
            // Store accounting stays out of the read hit rate.
            assert_eq!(c.stats().stores, 1);
            assert_eq!(c.stats().hits, 1);
            assert_eq!(c.stats().misses, 0, "store misses are not read misses");
        }
    }

    #[test]
    fn write_through_lines_never_dirty() {
        for model in MODELS {
            let mut c = Cache::with_model(
                CacheConfig {
                    size_bytes: 256,
                    ways: 1,
                    line_bytes: 32,
                    banks: 1,
                    write_back: false,
                },
                model,
            );
            c.access(0, 0x40, false);
            c.access(1, 0x40, true);
            // Evict 0x40's line: direct-mapped, 8 sets; same-set stride = 256.
            let r = c.access(2, 0x40 + 256, false);
            assert_eq!(r.writeback, None, "write-through cache never writes back");
        }
    }

    #[test]
    fn invalidate_removes_line() {
        for model in MODELS {
            let mut c = small_with(model);
            c.access(0, 0x200, false);
            assert!(c.probe(0x200));
            assert!(c.invalidate(0x200));
            assert!(!c.probe(0x200));
            assert!(!c.invalidate(0x200), "second invalidate finds nothing");
        }
    }

    #[test]
    fn probe_does_not_disturb_lru_or_stats() {
        for model in MODELS {
            let mut c = small_with(model);
            c.access(0, 0x000, false);
            let hits_before = c.stats().hits;
            for _ in 0..10 {
                let _ = c.probe(0x000);
            }
            assert_eq!(c.stats().hits, hits_before);
        }
    }

    #[test]
    fn direct_mapped_conflicts() {
        for model in MODELS {
            let mut c = Cache::with_model(
                CacheConfig {
                    size_bytes: 128,
                    ways: 1,
                    line_bytes: 32,
                    banks: 1,
                    write_back: false,
                },
                model,
            );
            // 4 sets; addresses 0x00 and 0x80 collide in set 0.
            c.access(0, 0x00, false);
            c.access(1, 0x80, false);
            assert!(!c.probe(0x00));
            assert!(c.probe(0x80));
        }
    }

    #[test]
    fn valid_line_count() {
        for model in MODELS {
            let mut c = small_with(model);
            assert_eq!(c.valid_lines(), 0);
            c.access(0, 0x000, false);
            c.access(1, 0x080, false);
            assert_eq!(c.valid_lines(), 2);
        }
    }

    #[test]
    fn store_to_pending_writeback_line_marks_dirty() {
        for model in MODELS {
            let mut c = small_with(model);
            c.access(0, 0x300, false); // allocate (set 0)
            c.set_fill_time(0x300, 50);
            let s = c.access(10, 0x300, true);
            assert_eq!(s.pending, Some(50), "store while fill in flight is delayed");
            // Fill lands; the merged store left the line dirty, so filling the
            // set (same-set stride 128: 0x380, 0x400) must write 0x300 back.
            c.access(60, 0x380, false);
            let r = c.access(61, 0x400, false);
            assert_eq!(r.writeback, Some(0x300));
        }
    }

    /// The MRU filter must never outlive the line it remembers: evict
    /// the remembered line via a conflicting allocation, then re-access
    /// it — the access must be a miss, not a stale filter hit.
    #[test]
    fn mru_filter_is_invalidated_by_eviction() {
        let mut c = Cache::with_model(
            CacheConfig {
                size_bytes: 128,
                ways: 1,
                line_bytes: 32,
                banks: 1,
                write_back: false,
            },
            CacheModel::Packed,
        );
        assert!(!c.access(0, 0x00, false).hit);
        assert!(c.access(1, 0x00, false).hit, "filter hit");
        assert!(!c.access(2, 0x80, false).hit, "conflict evicts 0x00");
        assert!(
            !c.access(3, 0x00, false).hit,
            "filter must have been cleared"
        );
        assert!(!c.probe(0x80 + 0x80), "probe via filter only when resident");
        assert_eq!(c.stats().misses, 3);
        assert_eq!(c.stats().hits, 1);
    }

    /// Same, via explicit invalidation (the decoupled hierarchy's
    /// coherence probe) and for the store-kind filter.
    #[test]
    fn mru_filter_is_invalidated_by_invalidate() {
        let mut c = small();
        c.access(0, 0x100, true); // store filter remembers 0x100
        c.access(1, 0x100, false); // load filter remembers 0x100
        assert!(c.invalidate(0x100));
        assert!(!c.probe(0x100));
        assert!(!c.access(2, 0x100, true).hit, "store filter cleared");
        // The store re-allocated the line; the load filter was cleared
        // too, so this goes through a fresh tag walk and hits.
        assert!(
            c.access(3, 0x100, false).hit,
            "load filter cleared, tag walk hits"
        );
        assert_eq!(c.stats().stores, 2);
    }

    /// Alternating loads and stores to lines in the same set keep both
    /// filters live at once; LRU order must still match the reference.
    #[test]
    fn interleaved_kinds_keep_lru_exact() {
        let mut packed = small_with(CacheModel::Packed);
        let mut reference = small_with(CacheModel::Ref);
        // 0x000 and 0x080 share set 0; 0x100 forces the eviction choice.
        let seq: [(u64, bool); 7] = [
            (0x000, false),
            (0x080, true),
            (0x000, true),
            (0x080, false),
            (0x000, false),
            (0x100, false), // evicts 0x080 in both models
            (0x080, false), // miss in both
        ];
        for (t, (addr, st)) in seq.iter().enumerate() {
            let a = packed.access(t as u64, *addr, *st);
            let b = reference.access(t as u64, *addr, *st);
            assert_eq!(a, b, "step {t}");
        }
        assert_eq!(packed.stats(), reference.stats());
    }
}
