//! Set-associative cache with banking, LRU replacement and in-flight
//! (pending-fill) line tracking.
//!
//! Used for all three caches of the hierarchy (direct-mapped L1D is the
//! 1-way special case). The cache tracks *tags only* — data values live
//! with the functional workload model; a timing simulator needs presence,
//! dirtiness and fill times, not contents.
//!
//! A line allocated by a miss carries a **fill time**; accesses that
//! arrive while the fill is still in flight are *delayed hits* — they
//! coalesce onto the fill (no new next-level request) but are accounted
//! as misses, matching how MSHR "half misses" are normally counted.

use crate::stats::CacheStats;
use crate::Cycle;
use serde::{Deserialize, Serialize};

/// Geometry and policy of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (1 = direct mapped).
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Number of banks the cache is interleaved across (power of two).
    pub banks: usize,
    /// Write-back (`true`) or write-through (`false`).
    pub write_back: bool,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible by
    /// `ways × line_bytes` or not a power of two).
    #[must_use]
    pub fn sets(&self) -> u64 {
        let sets = self.size_bytes / (self.ways as u64 * self.line_bytes);
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "inconsistent cache geometry"
        );
        sets
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    /// Cycle at which the line's data arrives (allocation sets it to the
    /// allocation cycle; `set_fill_time` moves it out for real misses).
    fill_at: Cycle,
    /// LRU timestamp (larger = more recent).
    last_use: Cycle,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Tag matched and the data is ready: a true hit.
    pub hit: bool,
    /// Tag matched but the fill is still in flight: data ready at the
    /// given cycle (delayed hit — coalesces onto the outstanding fill).
    pub pending: Option<Cycle>,
    /// On a miss that evicted a dirty victim, the victim's address.
    pub writeback: Option<u64>,
}

/// A banked set-associative cache (tags only).
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: u64,
    lines: Vec<Line>,
    stats: CacheStats,
    use_counter: Cycle,
}

impl Cache {
    /// Build a cache from its configuration.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Cache {
            config,
            sets,
            lines: vec![Line::default(); (sets as usize) * config.ways],
            stats: CacheStats::default(),
            use_counter: 0,
        }
    }

    /// The configuration this cache was built from.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Line-aligned address of `addr`.
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.config.line_bytes - 1)
    }

    /// Bank index serving `addr` (line-interleaved).
    #[must_use]
    pub fn bank_of(&self, addr: u64) -> usize {
        ((addr / self.config.line_bytes) % self.config.banks as u64) as usize
    }

    fn set_of(&self, addr: u64) -> u64 {
        (addr / self.config.line_bytes) % self.sets
    }

    /// Set index serving `addr` (pure geometry — no state touched).
    /// Two addresses can only evict each other when their sets match.
    #[must_use]
    pub fn set_index(&self, addr: u64) -> u64 {
        self.set_of(addr)
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / self.config.line_bytes / self.sets
    }

    fn set_slice_mut(&mut self, set: u64) -> &mut [Line] {
        let w = self.config.ways;
        let base = set as usize * w;
        &mut self.lines[base..base + w]
    }

    /// Pure presence probe (tag match, ready or in flight) — no
    /// statistics, no LRU update.
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set as usize * self.config.ways;
        self.lines[base..base + self.config.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Access the cache at cycle `now`: updates LRU and statistics; on a
    /// miss, allocates the line (evicting the LRU way) and reports any
    /// dirty victim. The caller should follow a real miss with
    /// [`Cache::set_fill_time`] once the next-level completion is known.
    ///
    /// `is_store` marks the line dirty in a write-back cache. In a
    /// write-through cache store misses do **not** allocate
    /// (write-around), matching the L1's no-allocate-on-write-miss policy.
    pub fn access(&mut self, now: Cycle, addr: u64, is_store: bool) -> Access {
        self.use_counter += 1;
        let lru_now = self.use_counter;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let write_back = self.config.write_back;
        let line_bytes = self.config.line_bytes;
        let sets = self.sets;

        // Hit / delayed-hit path.
        let tag_match = {
            let lines = self.set_slice_mut(set);
            lines
                .iter_mut()
                .find(|l| l.valid && l.tag == tag)
                .map(|line| {
                    line.last_use = lru_now;
                    if is_store && write_back {
                        line.dirty = true;
                    }
                    line.fill_at
                })
        };
        if let Some(fill_at) = tag_match {
            if fill_at <= now {
                self.stats.record(is_store, true);
                return Access {
                    hit: true,
                    pending: None,
                    writeback: None,
                };
            }
            // Delayed hit: the tag matches but the fill is still in
            // flight. Counted as a hit (the reference did not cause a new
            // miss); its extra latency shows up in the latency statistics.
            self.stats.record(is_store, true);
            return Access {
                hit: false,
                pending: Some(fill_at),
                writeback: None,
            };
        }

        self.stats.record(is_store, false);

        // Write-allocate under both policies: media staging patterns
        // (write a block, read it right back) need the line installed or
        // every reload pays an L2 round trip. The write itself still
        // drains through the write buffer in a write-through cache.
        // Allocate: choose the LRU way among the set.
        let writeback = {
            let lines = self.set_slice_mut(set);
            let victim = lines
                .iter_mut()
                .min_by_key(|l| if l.valid { l.last_use } else { 0 })
                .expect("ways >= 1");
            let wb = if victim.valid && victim.dirty {
                Some((victim.tag * sets + set) * line_bytes)
            } else {
                None
            };
            *victim = Line {
                valid: true,
                dirty: is_store && write_back,
                tag,
                fill_at: now,
                last_use: lru_now,
            };
            wb
        };
        if writeback.is_some() {
            self.stats.writebacks += 1;
        }
        Access {
            hit: false,
            pending: None,
            writeback,
        }
    }

    /// Re-access a line known to be resident (tag present, possibly with
    /// a fill still in flight): exactly the bookkeeping [`Cache::access`]
    /// does on its tag-match path — LRU touch, hit/store accounting,
    /// dirty marking — without re-deciding hit vs miss. The batched
    /// stream path uses this for the second and later elements that
    /// land on a line the first element already walked the tags for.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident (protocol violation: the
    /// caller just accessed it).
    pub fn retouch(&mut self, addr: u64, is_store: bool) {
        self.retouch_many(addr, is_store, 1);
    }

    /// [`Cache::retouch`] for `n` back-to-back accesses to the same
    /// resident line: one tag walk, with the LRU counter and statistics
    /// advanced exactly as `n` sequential accesses would have left them
    /// (only the final `last_use` is ever observable, since nothing else
    /// touches the cache in between).
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident (protocol violation: the
    /// caller just accessed it).
    pub fn retouch_many(&mut self, addr: u64, is_store: bool, n: u64) {
        self.use_counter += n;
        let lru_now = self.use_counter;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let write_back = self.config.write_back;
        let line = self
            .set_slice_mut(set)
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
            .expect("retouch of a line that is not resident");
        line.last_use = lru_now;
        if is_store && write_back {
            line.dirty = true;
        }
        if is_store {
            self.stats.stores += n;
        } else {
            self.stats.hits += n;
        }
    }

    /// Fill time of the line holding `addr`, if resident. A past value
    /// means the data is there; a future one, that the fill is still in
    /// flight. No statistics, no LRU update.
    #[must_use]
    pub fn fill_time_of(&self, addr: u64) -> Option<Cycle> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set as usize * self.config.ways;
        self.lines[base..base + self.config.ways]
            .iter()
            .find(|l| l.valid && l.tag == tag)
            .map(|l| l.fill_at)
    }

    /// Record when the fill for the line holding `addr` completes.
    pub fn set_fill_time(&mut self, addr: u64, fill_at: Cycle) {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        for line in self.set_slice_mut(set) {
            if line.valid && line.tag == tag {
                line.fill_at = fill_at;
            }
        }
    }

    /// Invalidate the line containing `addr` if present (exclusive-bit
    /// coherence probe from the decoupled hierarchy). Returns whether a
    /// line was invalidated.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        for line in self.set_slice_mut(set) {
            if line.valid && line.tag == tag {
                line.valid = false;
                line.dirty = false;
                return true;
            }
        }
        false
    }

    /// Mark the line containing `addr` clean (after a write-back drains).
    pub fn clean(&mut self, addr: u64) {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        for line in self.set_slice_mut(set) {
            if line.valid && line.tag == tag {
                line.dirty = false;
            }
        }
    }

    /// Number of valid lines (testing / occupancy inspection).
    #[must_use]
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets × 2 ways × 32B = 256 B
        Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 32,
            banks: 2,
            write_back: true,
        })
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.config().sets(), 4);
        assert_eq!(c.line_addr(0x47), 0x40);
        assert_eq!(c.bank_of(0x00), 0);
        assert_eq!(c.bank_of(0x20), 1);
        assert_eq!(c.bank_of(0x40), 0);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0, 0x100, false).hit);
        assert!(c.access(1, 0x100, false).hit);
        assert!(c.access(2, 0x11f, false).hit, "same line");
        assert!(!c.access(3, 0x120, false).hit, "next line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn delayed_hit_while_fill_in_flight() {
        let mut c = small();
        let m = c.access(0, 0x100, false);
        assert!(!m.hit);
        c.set_fill_time(0x100, 90);
        // Access at cycle 5: tag matches, data not ready until 90.
        let d = c.access(5, 0x100, false);
        assert!(!d.hit);
        assert_eq!(d.pending, Some(90));
        // Access at cycle 90: true hit.
        let h = c.access(90, 0x100, false);
        assert!(h.hit);
        assert_eq!(c.stats().misses, 1, "only the original miss counts");
        assert_eq!(c.stats().hits, 2, "the delayed hit counts as a hit");
    }

    #[test]
    fn lru_replacement_within_set() {
        let mut c = small();
        // Three lines mapping to the same set (set stride = 4 lines × 32B = 128B).
        let a = 0x000;
        let b = 0x080;
        let d = 0x100;
        c.access(0, a, false);
        c.access(1, b, false);
        c.access(2, a, false); // a is MRU
        c.access(3, d, false); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn writeback_of_dirty_victim() {
        let mut c = small();
        c.access(0, 0x000, true); // dirty
        c.access(1, 0x080, false);
        let r = c.access(2, 0x100, false); // evicts 0x000 (LRU, dirty)
        assert_eq!(r.writeback, Some(0x000));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_prevents_writeback() {
        let mut c = small();
        c.access(0, 0x000, true);
        c.clean(0x000);
        c.access(1, 0x080, false);
        let r = c.access(2, 0x100, false);
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn write_through_store_miss_allocates_for_later_loads() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 1,
            line_bytes: 32,
            banks: 1,
            write_back: false,
        });
        let r = c.access(0, 0x40, true);
        assert!(!r.hit);
        assert!(c.probe(0x40), "write-allocate installs the line");
        // The staging pattern: store then load hits.
        assert!(c.access(1, 0x40, false).hit);
        // Store accounting stays out of the read hit rate.
        assert_eq!(c.stats().stores, 1);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 0, "store misses are not read misses");
    }

    #[test]
    fn write_through_lines_never_dirty() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 1,
            line_bytes: 32,
            banks: 1,
            write_back: false,
        });
        c.access(0, 0x40, false);
        c.access(1, 0x40, true);
        // Evict 0x40's line: direct-mapped, 8 sets; same-set stride = 256.
        let r = c.access(2, 0x40 + 256, false);
        assert_eq!(r.writeback, None, "write-through cache never writes back");
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.access(0, 0x200, false);
        assert!(c.probe(0x200));
        assert!(c.invalidate(0x200));
        assert!(!c.probe(0x200));
        assert!(!c.invalidate(0x200), "second invalidate finds nothing");
    }

    #[test]
    fn probe_does_not_disturb_lru_or_stats() {
        let mut c = small();
        c.access(0, 0x000, false);
        let hits_before = c.stats().hits;
        for _ in 0..10 {
            let _ = c.probe(0x000);
        }
        assert_eq!(c.stats().hits, hits_before);
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 128,
            ways: 1,
            line_bytes: 32,
            banks: 1,
            write_back: false,
        });
        // 4 sets; addresses 0x00 and 0x80 collide in set 0.
        c.access(0, 0x00, false);
        c.access(1, 0x80, false);
        assert!(!c.probe(0x00));
        assert!(c.probe(0x80));
    }

    #[test]
    fn valid_line_count() {
        let mut c = small();
        assert_eq!(c.valid_lines(), 0);
        c.access(0, 0x000, false);
        c.access(1, 0x080, false);
        assert_eq!(c.valid_lines(), 2);
    }

    #[test]
    fn store_to_pending_writeback_line_marks_dirty() {
        let mut c = small();
        c.access(0, 0x300, false); // allocate (set 0)
        c.set_fill_time(0x300, 50);
        let s = c.access(10, 0x300, true);
        assert_eq!(s.pending, Some(50), "store while fill in flight is delayed");
        // Fill lands; the merged store left the line dirty, so filling the
        // set (same-set stride 128: 0x380, 0x400) must write 0x300 back.
        c.access(60, 0x380, false);
        let r = c.access(61, 0x400, false);
        assert_eq!(r.writeback, Some(0x300));
    }
}
