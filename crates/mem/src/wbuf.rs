//! Coalescing write buffer with selective flush.
//!
//! The paper's caches have "8-depth coalescing write buffers with
//! selective flush policy" (§3). The L1 is write-through, so every store
//! enters the buffer and drains towards L2 in the background. Stores to a
//! line already buffered *coalesce* (no new entry). A load that hits a
//! buffered line triggers a *selective flush*: only the matching entry is
//! forced out (ahead of order) rather than draining the whole buffer.
//!
//! Two implementations behind the `MEDSIM_CACHE` knob, mirroring
//! [`crate::Cache`] and [`crate::MshrFile`]: the default keeps entries
//! in occupancy-bitmap-guided fixed planes (no `retain`/`remove`
//! compaction on the hot path); `ref` keeps the seed's `Vec<Entry>`.
//! Buffered line addresses are unique (same-line stores coalesce), so
//! slot and scan order are unobservable and the models are behaviorally
//! identical.

use crate::cache::CacheModel;
use crate::Cycle;

/// Outcome of offering a store to the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// A new entry was created.
    Accepted,
    /// The store merged into an existing entry for the same line.
    Coalesced,
    /// Buffer full: the store must stall and retry.
    Full,
}

// ---------------------------------------------------------------------
// Reference model: the seed's Vec<Entry> scans, verbatim.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Entry {
    line_addr: u64,
    /// Cycle at which this entry will have drained to L2.
    drains_at: Cycle,
}

#[derive(Debug, Clone)]
struct RefWbuf {
    entries: Vec<Entry>,
}

impl RefWbuf {
    fn retire(&mut self, now: Cycle) {
        self.entries.retain(|e| e.drains_at > now);
    }

    fn occupancy(&mut self, now: Cycle) -> usize {
        self.retire(now);
        self.entries.len()
    }

    fn find(&self, line_addr: u64) -> Option<usize> {
        self.entries.iter().position(|e| e.line_addr == line_addr)
    }

    fn insert(&mut self, line_addr: u64, drains_at: Cycle) {
        self.entries.push(Entry {
            line_addr,
            drains_at,
        });
    }

    fn remove(&mut self, idx: usize) -> Cycle {
        self.entries.remove(idx).drains_at
    }
}

// ---------------------------------------------------------------------
// Packed model: occupancy-bitmap-guided fixed split planes.
// ---------------------------------------------------------------------

/// Most entries one occupancy word can govern (the paper's buffers are
/// 8-deep; deeper configurations fall back to the reference model).
const PACKED_MAX_ENTRIES: usize = 64;

#[derive(Debug, Clone)]
struct PackedWbuf {
    /// Bit `i` set ⇔ slot `i` holds a buffered line.
    occ: u64,
    line_addr: Box<[u64]>,
    drains_at: Box<[Cycle]>,
}

impl PackedWbuf {
    #[inline]
    fn retire(&mut self, now: Cycle) {
        let mut live = self.occ;
        while live != 0 {
            let i = live.trailing_zeros() as usize;
            if self.drains_at[i] <= now {
                self.occ &= !(1u64 << i);
            }
            live &= live - 1;
        }
    }

    fn occupancy(&mut self, now: Cycle) -> usize {
        self.retire(now);
        self.occ.count_ones() as usize
    }

    #[inline]
    fn find(&self, line_addr: u64) -> Option<usize> {
        let mut live = self.occ;
        while live != 0 {
            let i = live.trailing_zeros() as usize;
            if self.line_addr[i] == line_addr {
                return Some(i);
            }
            live &= live - 1;
        }
        None
    }

    fn insert(&mut self, line_addr: u64, drains_at: Cycle) {
        // O(1) free-slot pick: occupancy below capacity guarantees a
        // clear bit among slots 0..capacity.
        let slot = (!self.occ).trailing_zeros() as usize;
        self.occ |= 1u64 << slot;
        self.line_addr[slot] = line_addr;
        self.drains_at[slot] = drains_at;
    }

    fn remove(&mut self, idx: usize) -> Cycle {
        self.occ &= !(1u64 << idx);
        self.drains_at[idx]
    }
}

// ---------------------------------------------------------------------
// Public buffer: drain-port bookkeeping + model dispatch.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Model {
    Packed(PackedWbuf),
    Ref(RefWbuf),
}

/// An 8-deep (configurable) coalescing write buffer.
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    capacity: usize,
    inner: Model,
    /// Cycles needed to push one entry to the next level.
    drain_latency: Cycle,
    /// Next cycle the drain port to L2 is free.
    drain_port_free: Cycle,
}

impl WriteBuffer {
    /// Create a buffer of `capacity` entries that drains one entry every
    /// `drain_latency` cycles, using the model selected by `MEDSIM_CACHE`
    /// (see [`CacheModel::from_env`]).
    #[must_use]
    pub fn new(capacity: usize, drain_latency: Cycle) -> Self {
        WriteBuffer::with_model(capacity, drain_latency, CacheModel::from_env())
    }

    /// Create a buffer with an explicit model. Capacities beyond one
    /// occupancy word (64) fall back to the reference model.
    #[must_use]
    pub fn with_model(capacity: usize, drain_latency: Cycle, model: CacheModel) -> Self {
        let inner = match model {
            CacheModel::Packed if capacity <= PACKED_MAX_ENTRIES => Model::Packed(PackedWbuf {
                occ: 0,
                line_addr: vec![0; capacity].into_boxed_slice(),
                drains_at: vec![0; capacity].into_boxed_slice(),
            }),
            _ => Model::Ref(RefWbuf {
                entries: Vec::with_capacity(capacity),
            }),
        };
        WriteBuffer {
            capacity,
            inner,
            drain_latency,
            drain_port_free: 0,
        }
    }

    /// Entries still buffered at `now`.
    #[must_use]
    pub fn occupancy(&mut self, now: Cycle) -> usize {
        match &mut self.inner {
            Model::Packed(p) => p.occupancy(now),
            Model::Ref(r) => r.occupancy(now),
        }
    }

    /// Offer a store to line `line_addr` at `now`.
    pub fn push(&mut self, now: Cycle, line_addr: u64) -> WriteOutcome {
        let (found, len) = match &mut self.inner {
            Model::Packed(p) => {
                p.retire(now);
                (p.find(line_addr).is_some(), p.occ.count_ones() as usize)
            }
            Model::Ref(r) => {
                r.retire(now);
                (r.find(line_addr).is_some(), r.entries.len())
            }
        };
        if found {
            return WriteOutcome::Coalesced;
        }
        if len >= self.capacity {
            return WriteOutcome::Full;
        }
        // The drain port serializes entries towards L2.
        let start = self.drain_port_free.max(now);
        let drains_at = start + self.drain_latency;
        self.drain_port_free = start + self.drain_latency;
        match &mut self.inner {
            Model::Packed(p) => p.insert(line_addr, drains_at),
            Model::Ref(r) => r.insert(line_addr, drains_at),
        }
        WriteOutcome::Accepted
    }

    /// Selective flush: if a load touches a buffered line, force that
    /// entry out now and return the cycle by which it is safely in L2
    /// (the load must wait for it). Returns `None` when nothing matches.
    pub fn selective_flush(&mut self, now: Cycle, line_addr: u64) -> Option<Cycle> {
        let drains_at = match &mut self.inner {
            Model::Packed(p) => {
                p.retire(now);
                let idx = p.find(line_addr)?;
                p.remove(idx)
            }
            Model::Ref(r) => {
                r.retire(now);
                let idx = r.find(line_addr)?;
                r.remove(idx)
            }
        };
        // Flushing ahead of order still costs the drain latency from now
        // (or completes at its scheduled time if that is sooner).
        Some(drains_at.min(now + self.drain_latency))
    }

    /// Drop entries that have drained by `now` — the lazy retirement
    /// every buffer operation performs on entry. Exposed so the batched
    /// stream path can replicate the per-element path's retirement
    /// schedule exactly: a selective-flush probe retires entries as of
    /// its (possibly bank-delayed, future) start cycle, and whether an
    /// entry is still present is observable to later coalescing checks.
    pub fn retire_until(&mut self, now: Cycle) {
        match &mut self.inner {
            Model::Packed(p) => p.retire(now),
            Model::Ref(r) => r.retire(now),
        }
    }

    /// Buffer capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODELS: [CacheModel; 2] = [CacheModel::Packed, CacheModel::Ref];

    #[test]
    fn accept_and_coalesce() {
        for model in MODELS {
            let mut wb = WriteBuffer::with_model(8, 4, model);
            assert_eq!(wb.push(0, 0x100), WriteOutcome::Accepted);
            assert_eq!(wb.push(1, 0x100), WriteOutcome::Coalesced);
            assert_eq!(wb.push(1, 0x140), WriteOutcome::Accepted);
            assert_eq!(wb.occupancy(1), 2);
        }
    }

    #[test]
    fn fills_and_drains() {
        for model in MODELS {
            let mut wb = WriteBuffer::with_model(2, 10, model);
            assert_eq!(wb.push(0, 0x000), WriteOutcome::Accepted); // drains at 10
            assert_eq!(wb.push(0, 0x040), WriteOutcome::Accepted); // drains at 20
            assert_eq!(wb.push(0, 0x080), WriteOutcome::Full);
            // At cycle 11 the first entry has drained.
            assert_eq!(wb.push(11, 0x080), WriteOutcome::Accepted);
        }
    }

    #[test]
    fn drain_is_serialized() {
        for model in MODELS {
            let mut wb = WriteBuffer::with_model(8, 5, model);
            wb.push(0, 0x000);
            wb.push(0, 0x040);
            wb.push(0, 0x080);
            // Entries drain at 5, 10, 15 — at cycle 12 one remains.
            assert_eq!(wb.occupancy(12), 1);
            assert_eq!(wb.occupancy(15), 0);
        }
    }

    #[test]
    fn selective_flush_hits_matching_entry() {
        for model in MODELS {
            let mut wb = WriteBuffer::with_model(8, 6, model);
            wb.push(0, 0x200);
            wb.push(0, 0x240);
            let ready = wb.selective_flush(1, 0x240).expect("entry present");
            assert!(
                ready <= 12,
                "flush completes within one drain latency: {ready}"
            );
            assert_eq!(
                wb.occupancy(1),
                1,
                "only the matching entry left the buffer"
            );
            assert!(wb.selective_flush(1, 0x240).is_none(), "already flushed");
        }
    }

    #[test]
    fn selective_flush_misses_cleanly() {
        for model in MODELS {
            let mut wb = WriteBuffer::with_model(8, 6, model);
            wb.push(0, 0x200);
            assert!(wb.selective_flush(0, 0x999).is_none());
        }
    }

    #[test]
    fn flush_of_nearly_drained_entry_uses_scheduled_time() {
        for model in MODELS {
            let mut wb = WriteBuffer::with_model(8, 10, model);
            wb.push(0, 0x100); // drains at 10
            let ready = wb.selective_flush(9, 0x100).unwrap();
            assert_eq!(ready, 10, "scheduled drain is sooner than 9+10");
        }
    }

    /// Dedicated pin of the `retire_until` contract: retirement is by
    /// drain time against the *given* cycle (which may be in the future
    /// relative to the last operation), it frees capacity, and it makes
    /// retired lines invisible to later coalescing checks — exactly the
    /// lazy retirement `push`/`selective_flush` perform on entry.
    #[test]
    fn retire_until_matches_lazy_retirement_schedule() {
        for model in MODELS {
            let mut wb = WriteBuffer::with_model(2, 10, model);
            wb.push(0, 0x000); // drains at 10
            wb.push(0, 0x040); // drains at 20
            assert_eq!(wb.push(5, 0x080), WriteOutcome::Full);
            // A future-cycle probe (bank-delayed start) retires the first
            // entry even though "now" for the caller is still 5.
            wb.retire_until(10);
            assert_eq!(
                wb.push(5, 0x000),
                WriteOutcome::Accepted,
                "retired line no longer coalesces — it re-enters as new"
            );
            // 0x040 is still buffered and still coalesces.
            assert_eq!(wb.push(5, 0x040), WriteOutcome::Coalesced);
            // retire_until beyond every drain empties the buffer.
            wb.retire_until(1_000);
            assert_eq!(wb.occupancy(5), 0);
        }
    }

    /// Out-of-order slot reuse keeps survivors intact (packed model's
    /// free-slot pick must not clobber live entries).
    #[test]
    fn out_of_order_drain_reuses_slots() {
        for model in MODELS {
            let mut wb = WriteBuffer::with_model(4, 5, model);
            wb.push(0, 0x000); // drains at 5
            wb.push(0, 0x040); // drains at 10
            wb.push(0, 0x080); // drains at 15
                               // Flush the middle entry out of order.
            assert!(wb.selective_flush(0, 0x040).is_some());
            wb.push(0, 0x0c0); // reuses the freed slot
            assert_eq!(wb.push(0, 0x000), WriteOutcome::Coalesced);
            assert_eq!(wb.push(0, 0x080), WriteOutcome::Coalesced);
            assert_eq!(wb.push(0, 0x0c0), WriteOutcome::Coalesced);
        }
    }
}
