//! Coalescing write buffer with selective flush.
//!
//! The paper's caches have "8-depth coalescing write buffers with
//! selective flush policy" (§3). The L1 is write-through, so every store
//! enters the buffer and drains towards L2 in the background. Stores to a
//! line already buffered *coalesce* (no new entry). A load that hits a
//! buffered line triggers a *selective flush*: only the matching entry is
//! forced out (ahead of order) rather than draining the whole buffer.

use crate::Cycle;

#[derive(Debug, Clone, Copy)]
struct Entry {
    line_addr: u64,
    /// Cycle at which this entry will have drained to L2.
    drains_at: Cycle,
}

/// An 8-deep (configurable) coalescing write buffer.
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    capacity: usize,
    entries: Vec<Entry>,
    /// Cycles needed to push one entry to the next level.
    drain_latency: Cycle,
    /// Next cycle the drain port to L2 is free.
    drain_port_free: Cycle,
}

/// Outcome of offering a store to the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// A new entry was created.
    Accepted,
    /// The store merged into an existing entry for the same line.
    Coalesced,
    /// Buffer full: the store must stall and retry.
    Full,
}

impl WriteBuffer {
    /// Create a buffer of `capacity` entries that drains one entry every
    /// `drain_latency` cycles.
    #[must_use]
    pub fn new(capacity: usize, drain_latency: Cycle) -> Self {
        WriteBuffer {
            capacity,
            entries: Vec::with_capacity(capacity),
            drain_latency,
            drain_port_free: 0,
        }
    }

    fn retire(&mut self, now: Cycle) {
        self.entries.retain(|e| e.drains_at > now);
    }

    /// Entries still buffered at `now`.
    #[must_use]
    pub fn occupancy(&mut self, now: Cycle) -> usize {
        self.retire(now);
        self.entries.len()
    }

    /// Offer a store to line `line_addr` at `now`.
    pub fn push(&mut self, now: Cycle, line_addr: u64) -> WriteOutcome {
        self.retire(now);
        if self.entries.iter().any(|e| e.line_addr == line_addr) {
            return WriteOutcome::Coalesced;
        }
        if self.entries.len() >= self.capacity {
            return WriteOutcome::Full;
        }
        // The drain port serializes entries towards L2.
        let start = self.drain_port_free.max(now);
        let drains_at = start + self.drain_latency;
        self.drain_port_free = start + self.drain_latency;
        self.entries.push(Entry {
            line_addr,
            drains_at,
        });
        WriteOutcome::Accepted
    }

    /// Selective flush: if a load touches a buffered line, force that
    /// entry out now and return the cycle by which it is safely in L2
    /// (the load must wait for it). Returns `None` when nothing matches.
    pub fn selective_flush(&mut self, now: Cycle, line_addr: u64) -> Option<Cycle> {
        self.retire(now);
        let idx = self.entries.iter().position(|e| e.line_addr == line_addr)?;
        let entry = self.entries.remove(idx);
        // Flushing ahead of order still costs the drain latency from now
        // (or completes at its scheduled time if that is sooner).
        Some(entry.drains_at.min(now + self.drain_latency))
    }

    /// Drop entries that have drained by `now` — the lazy retirement
    /// every buffer operation performs on entry. Exposed so the batched
    /// stream path can replicate the per-element path's retirement
    /// schedule exactly: a selective-flush probe retires entries as of
    /// its (possibly bank-delayed, future) start cycle, and whether an
    /// entry is still present is observable to later coalescing checks.
    pub fn retire_until(&mut self, now: Cycle) {
        self.retire(now);
    }

    /// Buffer capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_and_coalesce() {
        let mut wb = WriteBuffer::new(8, 4);
        assert_eq!(wb.push(0, 0x100), WriteOutcome::Accepted);
        assert_eq!(wb.push(1, 0x100), WriteOutcome::Coalesced);
        assert_eq!(wb.push(1, 0x140), WriteOutcome::Accepted);
        assert_eq!(wb.occupancy(1), 2);
    }

    #[test]
    fn fills_and_drains() {
        let mut wb = WriteBuffer::new(2, 10);
        assert_eq!(wb.push(0, 0x000), WriteOutcome::Accepted); // drains at 10
        assert_eq!(wb.push(0, 0x040), WriteOutcome::Accepted); // drains at 20
        assert_eq!(wb.push(0, 0x080), WriteOutcome::Full);
        // At cycle 11 the first entry has drained.
        assert_eq!(wb.push(11, 0x080), WriteOutcome::Accepted);
    }

    #[test]
    fn drain_is_serialized() {
        let mut wb = WriteBuffer::new(8, 5);
        wb.push(0, 0x000);
        wb.push(0, 0x040);
        wb.push(0, 0x080);
        // Entries drain at 5, 10, 15 — at cycle 12 one remains.
        assert_eq!(wb.occupancy(12), 1);
        assert_eq!(wb.occupancy(15), 0);
    }

    #[test]
    fn selective_flush_hits_matching_entry() {
        let mut wb = WriteBuffer::new(8, 6);
        wb.push(0, 0x200);
        wb.push(0, 0x240);
        let ready = wb.selective_flush(1, 0x240).expect("entry present");
        assert!(
            ready <= 12,
            "flush completes within one drain latency: {ready}"
        );
        assert_eq!(
            wb.occupancy(1),
            1,
            "only the matching entry left the buffer"
        );
        assert!(wb.selective_flush(1, 0x240).is_none(), "already flushed");
    }

    #[test]
    fn selective_flush_misses_cleanly() {
        let mut wb = WriteBuffer::new(8, 6);
        wb.push(0, 0x200);
        assert!(wb.selective_flush(0, 0x999).is_none());
    }

    #[test]
    fn flush_of_nearly_drained_entry_uses_scheduled_time() {
        let mut wb = WriteBuffer::new(8, 10);
        wb.push(0, 0x100); // drains at 10
        let ready = wb.selective_flush(9, 0x100).unwrap();
        assert_eq!(ready, 10, "scheduled drain is sooner than 9+10");
    }
}
