//! # medsim-mem — cycle-level memory hierarchy model
//!
//! Implements the memory system of *"DLP + TLP Processors for the Next
//! Generation of Media Workloads"* (HPCA 2001, §3):
//!
//! * **L1 data cache** — 32 KB, direct-mapped, write-through, 32-byte
//!   lines, interleaved among 8 banks, 1-cycle latency;
//! * **L1 instruction cache** — 64 KB, 2-way, 32-byte lines, 4 banks;
//! * **L2 cache** — 1 MB, 2-way, write-back, 128-byte lines, 12-cycle
//!   latency, on-chip (as in the Alpha 21364);
//! * **8 MSHRs** per cache and **8-deep coalescing write buffers** with a
//!   selective-flush policy;
//! * **Direct Rambus DRAM** — a DRDRAM controller driving 8 devices over
//!   a 128-bit (16-byte) 200 MHz bi-directional channel feeding an
//!   800 MHz processor: 3.2 GB/s peak = 4 bytes per CPU cycle;
//! * two **hierarchy organizations** (§5.4, figure 7): the conventional
//!   one (4 general-purpose L1 ports) and the *decoupled* one (2 scalar
//!   ports into L1 + 2 vector ports straight into a 2-banked L2 through a
//!   crossbar, with exclusive-bit coherence between the levels).
//!
//! The model is tick-free: requests are timed at issue using per-resource
//! reservation counters (ports, banks, MSHRs, DRAM channel), which
//! reproduces the contention phenomenology the paper studies — hit-rate
//! degradation under multithreading, latency growth from bank conflicts
//! and MSHR pressure, and bandwidth recovery from the decoupled
//! organization — while staying fast enough to sweep every experiment.
//!
//! ## Example
//!
//! ```
//! use medsim_mem::{AccessKind, MemConfig, MemRequest, MemSystem};
//!
//! let mut mem = MemSystem::new(MemConfig::paper());
//! let req = MemRequest { tid: 0, addr: 0x10_0000, size: 8, kind: AccessKind::ScalarLoad };
//! let reply = mem.request(0, req).expect("a port is free at cycle 0");
//! assert!(reply.done_at > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod config;
pub mod dram;
pub mod mshr;
pub mod stats;
pub mod system;
pub mod wbuf;

pub use backend::{DeferredOp, L2Backend, SharedL2};
pub use cache::{Cache, CacheConfig, CacheModel};
pub use config::{HierarchyKind, MemConfig};
pub use dram::{Dram, DramConfig};
pub use mshr::MshrFile;
pub use stats::{CacheStats, MemStats};
pub use system::{AccessKind, MemReply, MemRequest, MemSystem, Stall, StreamReply, StreamRequest};
pub use wbuf::WriteBuffer;

/// Simulation time in CPU cycles.
pub type Cycle = u64;
