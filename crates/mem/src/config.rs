//! Memory system configuration, with the paper's parameters as defaults.

use crate::cache::CacheConfig;
use crate::dram::DramConfig;
use serde::{Deserialize, Serialize};

/// Which cache-hierarchy organization to model (§5.4, figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HierarchyKind {
    /// Perfect memory: every access hits in one cycle, no contention
    /// (§5.2's "idealistic memory system").
    Ideal,
    /// Conventional: 4 general-purpose memory ports into the banked L1;
    /// vector (stream) accesses share them with scalar accesses.
    Conventional,
    /// Decoupled: 2 scalar ports into L1 (single-banked, double-pumped as
    /// in the Alpha 21264) plus 2 vector ports connected directly to the
    /// 2-banked L2 through a crossbar; exclusive-bit coherence keeps the
    /// levels consistent.
    Decoupled,
}

impl HierarchyKind {
    /// All hierarchy kinds, in figure-9 presentation order.
    pub const ALL: [HierarchyKind; 3] = [
        HierarchyKind::Ideal,
        HierarchyKind::Conventional,
        HierarchyKind::Decoupled,
    ];

    /// Label used in experiment output.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            HierarchyKind::Ideal => "ideal",
            HierarchyKind::Conventional => "conventional",
            HierarchyKind::Decoupled => "decoupled",
        }
    }
}

impl core::fmt::Display for HierarchyKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Full memory-system configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemConfig {
    /// Hierarchy organization.
    pub hierarchy: HierarchyKind,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L2 unified cache geometry.
    pub l2: CacheConfig,
    /// L1 data latency in cycles.
    pub l1_latency: u64,
    /// L2 latency in cycles.
    pub l2_latency: u64,
    /// Number of data MSHRs (outstanding L1 misses).
    pub mshrs: usize,
    /// Coalescing write-buffer depth.
    pub write_buffer_depth: usize,
    /// Number of L1 data ports in the conventional organization.
    pub general_ports: usize,
    /// Number of scalar L1 ports in the decoupled organization.
    pub scalar_ports: usize,
    /// Number of vector L2 ports in the decoupled organization.
    pub vector_ports: usize,
    /// Extra cycles when a decoupled vector access must invalidate an L1
    /// copy (exclusive-bit coherence probe).
    pub coherence_probe_penalty: u64,
    /// DRDRAM parameters.
    pub dram: DramConfig,
}

impl MemConfig {
    /// The paper's memory system (§3 "Architectural Parameters").
    #[must_use]
    pub fn paper() -> Self {
        MemConfig {
            hierarchy: HierarchyKind::Conventional,
            // 32 KB, direct mapped, write-through, 32-byte lines, 8 banks
            l1d: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 1,
                line_bytes: 32,
                banks: 8,
                write_back: false,
            },
            // 64 KB, 2-way, 32-byte lines, 4 banks
            l1i: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 2,
                line_bytes: 32,
                banks: 4,
                write_back: false,
            },
            // 1 MB, 2-way, write-back, 128-byte lines, 2 banks
            l2: CacheConfig {
                size_bytes: 1024 * 1024,
                ways: 2,
                line_bytes: 128,
                banks: 2,
                write_back: true,
            },
            l1_latency: 1,
            l2_latency: 12,
            mshrs: 8,
            write_buffer_depth: 8,
            general_ports: 4,
            scalar_ports: 2,
            vector_ports: 2,
            coherence_probe_penalty: 2,
            dram: DramConfig::paper(),
        }
    }

    /// The paper's memory system with the given hierarchy organization.
    #[must_use]
    pub fn paper_with(hierarchy: HierarchyKind) -> Self {
        MemConfig {
            hierarchy,
            ..MemConfig::paper()
        }
    }

    /// An ideal (perfect) memory system.
    #[must_use]
    pub fn ideal() -> Self {
        MemConfig::paper_with(HierarchyKind::Ideal)
    }

    /// The minimum cross-core interaction latency of this hierarchy in
    /// cycles — the conservative lookahead bound for quantum-stepped
    /// CMP simulation. A request one core issues can influence another
    /// core only through the shared L2/DRAM backend, and nothing comes
    /// back out of the backend faster than an L2 hit, so a core that
    /// stays inside its private levels cannot affect (or be affected
    /// by) its neighbours for at least `l2_latency` cycles.
    #[must_use]
    pub fn quantum_bound(&self) -> u64 {
        self.l2_latency.max(1)
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_match_section3() {
        let c = MemConfig::paper();
        assert_eq!(c.l1d.size_bytes, 32 * 1024);
        assert_eq!(c.l1d.ways, 1, "L1 is direct mapped");
        assert!(!c.l1d.write_back, "L1 is write-through");
        assert_eq!(c.l1d.line_bytes, 32);
        assert_eq!(c.l1d.banks, 8);
        assert_eq!(c.l1i.size_bytes, 64 * 1024);
        assert_eq!(c.l1i.ways, 2);
        assert_eq!(c.l1i.banks, 4);
        assert_eq!(c.l2.size_bytes, 1024 * 1024);
        assert_eq!(c.l2.ways, 2);
        assert!(c.l2.write_back);
        assert_eq!(c.l2.line_bytes, 128);
        assert_eq!(c.l1_latency, 1);
        assert_eq!(c.l2_latency, 12);
        assert_eq!(c.mshrs, 8);
        assert_eq!(c.write_buffer_depth, 8);
        assert_eq!(c.general_ports, 4);
        assert_eq!(c.scalar_ports + c.vector_ports, 4);
    }

    #[test]
    fn hierarchy_labels() {
        assert_eq!(HierarchyKind::Ideal.label(), "ideal");
        assert_eq!(HierarchyKind::Decoupled.to_string(), "decoupled");
        assert_eq!(HierarchyKind::ALL.len(), 3);
    }
}
