//! The assembled memory system: ports, banks, caches, MSHRs, write
//! buffers and DRAM behind one request interface.
//!
//! The CPU model calls [`MemSystem::request`] at issue time with the
//! current cycle; the reply carries the completion cycle, computed
//! through every contention point on the path. A request can instead be
//! rejected with a [`Stall`] (no free port, MSHRs exhausted, write buffer
//! full) in which case the CPU retries on a later cycle — exactly the
//! back-pressure the paper's §5.3 attributes the 8-thread slowdown to.
//!
//! Calls must be made with non-decreasing `now` values (the resource
//! reservation counters advance monotonically).
//!
//! A `MemSystem` is one core's view of the hierarchy: the L1 levels
//! (data and instruction caches, MSHRs, write buffer, ports, banks) are
//! owned privately, while the L2/DRAM levels live in an
//! [`L2Backend`](crate::backend::L2Backend) that is either owned
//! exclusively (the single-core case — exactly the pre-CMP layout) or
//! shared with the other cores of a CMP through
//! [`MemSystem::with_shared_backend`]. Sharing cores must serialize
//! their backend-touching calls (the machine layer's per-cycle bus
//! arbiter drains requests in fixed core order), preserving the
//! non-decreasing-`now` contract across the whole chip.

use crate::backend::{DeferredOp, L2Backend, SharedL2};
use crate::cache::Cache;
use crate::config::{HierarchyKind, MemConfig};
use crate::mshr::{MshrFile, MshrOutcome};
use crate::stats::MemStats;
use crate::wbuf::{WriteBuffer, WriteOutcome};
use crate::Cycle;
use serde::{Deserialize, Serialize};

/// Classification of a data access, determining its path through the
/// hierarchy (scalar ports vs vector ports in the decoupled organization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Scalar integer/FP load.
    ScalarLoad,
    /// Scalar integer/FP store.
    ScalarStore,
    /// Packed/stream load (MMX `ldq.m`, MOM `vld*`).
    VectorLoad,
    /// Packed/stream store.
    VectorStore,
    /// Software prefetch (no consumer waits on it).
    Prefetch,
}

impl AccessKind {
    /// Whether this access writes memory.
    #[must_use]
    pub const fn is_store(self) -> bool {
        matches!(self, AccessKind::ScalarStore | AccessKind::VectorStore)
    }

    /// Whether this access uses the vector path in the decoupled
    /// organization.
    #[must_use]
    pub const fn is_vector(self) -> bool {
        matches!(self, AccessKind::VectorLoad | AccessKind::VectorStore)
    }
}

/// One data access request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRequest {
    /// Requesting hardware thread (statistics only).
    pub tid: u8,
    /// Effective virtual address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u8,
    /// Access classification.
    pub kind: AccessKind,
}

/// A successfully issued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemReply {
    /// Cycle at which the value is available (loads) or the store is
    /// globally performed enough to retire.
    pub done_at: Cycle,
    /// Whether the access hit in the first cache it consulted.
    pub l1_hit: bool,
}

/// One strided multi-element (vector/stream) access request: the whole
/// element group a stream memory instruction wants to issue this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamRequest {
    /// Requesting hardware thread (statistics only).
    pub tid: u8,
    /// Effective address of the first element in this group.
    pub base: u64,
    /// Byte distance between consecutive elements.
    pub stride: i64,
    /// Elements to attempt in this call (the caller caps it by its
    /// per-cycle issue budget).
    pub count: u8,
    /// Size of each element access in bytes.
    pub size: u8,
    /// Access classification (applies to every element).
    pub kind: AccessKind,
}

impl StreamRequest {
    /// The `i`-th element as a single-access request.
    #[must_use]
    fn elem(&self, i: u8) -> MemRequest {
        MemRequest {
            tid: self.tid,
            addr: (self.base as i64).wrapping_add(self.stride.wrapping_mul(i64::from(i))) as u64,
            size: self.size,
            kind: self.kind,
        }
    }
}

/// Outcome of a [`MemSystem::request_stream`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamReply {
    /// Elements accepted this cycle (a prefix of the request).
    pub issued: u8,
    /// Latest completion cycle among the accepted elements (`0` when
    /// none were accepted).
    pub done_at: Cycle,
    /// Why issuing stopped before `count` elements, if it did.
    pub stall: Option<Stall>,
}

/// Reasons a request could not be accepted this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stall {
    /// Every suitable memory port is busy this cycle.
    PortBusy,
    /// All MSHRs are in flight; the miss cannot be tracked.
    MshrFull,
    /// The coalescing write buffer is full.
    WriteBufferFull,
}

impl core::fmt::Display for Stall {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Stall::PortBusy => "all memory ports busy",
            Stall::MshrFull => "MSHRs exhausted",
            Stall::WriteBufferFull => "write buffer full",
        };
        f.write_str(s)
    }
}

impl std::error::Error for Stall {}

/// Widest port pool the inline reservation array holds. The paper's
/// widest is 4 (conventional general-purpose ports); 8 leaves sweep
/// headroom without growing the struct past one cache line.
const MAX_PORTS: usize = 8;

/// A pool of identical memory ports as an inline fixed array of
/// busy-until cycles — no heap indirection on the per-access claim
/// path (the seed kept these in `Vec<Cycle>`s).
#[derive(Debug, Clone, Copy)]
struct PortSet {
    busy_until: [Cycle; MAX_PORTS],
    len: u8,
}

impl PortSet {
    fn new(n: usize) -> Self {
        assert!(n <= MAX_PORTS, "port pools are at most {MAX_PORTS} wide");
        #[allow(clippy::cast_possible_truncation)]
        PortSet {
            busy_until: [0; MAX_PORTS],
            len: n as u8,
        }
    }

    #[inline]
    fn slots(&self) -> &[Cycle] {
        &self.busy_until[..usize::from(self.len)]
    }

    /// Whether any port is free at `now`.
    #[inline]
    fn any_free(&self, now: Cycle) -> bool {
        self.slots().iter().any(|&p| p <= now)
    }

    /// Ports still free at `now`.
    #[inline]
    fn free_count(&self, now: Cycle) -> usize {
        self.slots().iter().filter(|&&p| p <= now).count()
    }

    /// Claim the first free port (busy until `now + 1`). Returns whether
    /// one was free.
    #[inline]
    fn claim(&mut self, now: Cycle) -> bool {
        for p in &mut self.busy_until[..usize::from(self.len)] {
            if *p <= now {
                *p = now + 1;
                return true;
            }
        }
        false
    }

    /// Claim `n` ports at once: identical final state to `n` sequential
    /// [`PortSet::claim`] calls at the same cycle.
    #[inline]
    fn claim_bulk(&mut self, now: Cycle, n: usize) {
        let mut left = n;
        for p in &mut self.busy_until[..usize::from(self.len)] {
            if left == 0 {
                break;
            }
            if *p <= now {
                *p = now + 1;
                left -= 1;
            }
        }
        debug_assert_eq!(left, 0, "bulk claim exceeded the free-port count");
    }
}

/// The L2/DRAM levels behind one core's private levels: owned
/// exclusively (single core — a zero-overhead match) or shared with the
/// other cores of a CMP (serialized by the machine layer's bus
/// arbiter).
#[derive(Debug)]
enum Backend {
    Owned(Box<L2Backend>),
    Shared(SharedL2),
}

/// One core's view of the full memory hierarchy: private L1 levels plus
/// an owned or shared L2/DRAM backend.
#[derive(Debug)]
pub struct MemSystem {
    config: MemConfig,
    l1d: Cache,
    l1i: Cache,
    d_mshrs: MshrFile,
    v_mshrs: MshrFile,
    i_mshrs: MshrFile,
    wbuf: WriteBuffer,
    general_ports: PortSet,
    scalar_ports: PortSet,
    vector_ports: PortSet,
    l1d_banks: Box<[Cycle]>,
    l1i_banks: Box<[Cycle]>,
    backend: Backend,
    /// Observability lane (core index in a CMP) this system's trace
    /// events report under; cosmetic, never read by the timing model.
    obs_lane: u32,
    /// When set (a core stepping inside a multi-cycle quantum), the
    /// fire-and-forget write-buffer drain traffic is logged into
    /// `drain_log` instead of touching the shared backend; every other
    /// backend access is forbidden (the machine layer parks the core at
    /// the quantum edge before it can happen).
    defer: bool,
    drain_log: Vec<DeferredOp>,
    stats: MemStats,
}

impl MemSystem {
    /// Build the memory system from a configuration, owning its
    /// L2/DRAM backend exclusively (the single-core case).
    #[must_use]
    pub fn new(config: MemConfig) -> Self {
        let backend = Backend::Owned(Box::new(L2Backend::new(&config)));
        MemSystem::assemble(config, backend)
    }

    /// Build one core's memory system over a **shared** L2/DRAM backend
    /// (the CMP case). The caller is responsible for serializing the
    /// cores' backend-touching calls in a deterministic order with
    /// non-decreasing cycles — the machine layer's per-cycle bus
    /// arbiter does exactly that.
    #[must_use]
    pub fn with_shared_backend(config: MemConfig, backend: SharedL2) -> Self {
        MemSystem::assemble(config, Backend::Shared(backend))
    }

    fn assemble(config: MemConfig, backend: Backend) -> Self {
        MemSystem {
            l1d: Cache::new(config.l1d),
            l1i: Cache::new(config.l1i),
            d_mshrs: MshrFile::new(config.mshrs),
            v_mshrs: MshrFile::new(config.mshrs),
            i_mshrs: MshrFile::new(config.mshrs),
            // The write buffer drains one entry per L2-bank occupancy
            // slot (2 cycles), not a full L2 access — stores are fire
            // and forget once buffered.
            wbuf: WriteBuffer::new(config.write_buffer_depth, 2),
            general_ports: PortSet::new(config.general_ports),
            scalar_ports: PortSet::new(config.scalar_ports),
            vector_ports: PortSet::new(config.vector_ports),
            l1d_banks: vec![0; config.l1d.banks].into_boxed_slice(),
            l1i_banks: vec![0; config.l1i.banks].into_boxed_slice(),
            backend,
            obs_lane: 0,
            defer: false,
            drain_log: Vec::new(),
            stats: MemStats::default(),
            config,
        }
    }

    /// Set the observability lane (core index) this memory system's
    /// trace events report under. Purely cosmetic for the event trace;
    /// the timing model never reads it.
    pub fn set_obs_lane(&mut self, lane: u32) {
        self.obs_lane = lane;
    }

    /// Write-buffer occupancy at `now` as `(entries, capacity)` —
    /// interval-sampler fodder. Retires already-drained entries first,
    /// which the next store admission would do anyway.
    pub fn wbuf_occupancy(&mut self, now: Cycle) -> (usize, usize) {
        (self.wbuf.occupancy(now), self.wbuf.capacity())
    }

    /// Scalar-data MSHR occupancy at `now` as `(outstanding misses,
    /// capacity)` — interval-sampler fodder.
    pub fn dmshr_occupancy(&mut self, now: Cycle) -> (usize, usize) {
        (self.d_mshrs.outstanding(now), self.d_mshrs.capacity())
    }

    /// Enter deferred mode for a quantum: until [`MemSystem::end_defer`]
    /// is called, fire-and-forget store-drain traffic is logged instead
    /// of hitting the backend, and any other backend access is a bug
    /// (the machine layer must park the core first — see
    /// [`MemSystem::request_would_defer`]).
    pub fn begin_defer(&mut self) {
        debug_assert!(self.drain_log.is_empty(), "stale drain log");
        self.defer = true;
    }

    /// Leave deferred mode, returning the cycle-stamped log of backend
    /// operations the core emitted during the quantum (in issue order,
    /// so non-decreasing `at`).
    pub fn end_defer(&mut self) -> Vec<DeferredOp> {
        self.defer = false;
        std::mem::take(&mut self.drain_log)
    }

    /// Run `f` over the (owned or shared) backend.
    fn with_backend<R>(&mut self, f: impl FnOnce(&mut L2Backend) -> R) -> R {
        debug_assert!(
            !self.defer,
            "backend access during a quantum: the park predicate missed this request"
        );
        match &mut self.backend {
            Backend::Owned(b) => f(b),
            Backend::Shared(m) => f(&mut m.lock().expect("L2 backend poisoned")),
        }
    }

    /// Run `f` over the backend read-only.
    fn backend_ref<R>(&self, f: impl FnOnce(&L2Backend) -> R) -> R {
        match &self.backend {
            Backend::Owned(b) => f(b),
            Backend::Shared(m) => f(&m.lock().expect("L2 backend poisoned")),
        }
    }

    /// The L2-line-aligned address of `addr` (pure geometry — no
    /// backend access).
    fn l2_line_addr(&self, addr: u64) -> u64 {
        addr & !(self.config.l2.line_bytes - 1)
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Aggregate statistics: the core-private counters merged with the
    /// backend-side ones (L2 bank conflicts, L2 MSHR exhaustion, DRAM
    /// traffic). With a shared backend the latter cover the whole chip,
    /// so sum the *private* sides across cores and add the backend once.
    #[must_use]
    pub fn stats(&self) -> MemStats {
        self.stats.merged(&self.backend_ref(L2Backend::stats))
    }

    /// Core-private counters only (excludes the L2/DRAM backend side) —
    /// what a CMP sums per core before adding the shared backend once.
    #[must_use]
    pub fn private_stats(&self) -> MemStats {
        self.stats
    }

    /// Backend-side counters only (see [`MemSystem::stats`]).
    #[must_use]
    pub fn backend_stats(&self) -> MemStats {
        self.backend_ref(L2Backend::stats)
    }

    /// L1 data-cache statistics (Table 4's "L1 hit rate" row).
    #[must_use]
    pub fn l1d_stats(&self) -> &crate::stats::CacheStats {
        self.l1d.stats()
    }

    /// Instruction-cache statistics (Table 4's "I hit rate" row).
    #[must_use]
    pub fn l1i_stats(&self) -> &crate::stats::CacheStats {
        self.l1i.stats()
    }

    /// L2 statistics (chip-wide when the backend is shared).
    #[must_use]
    pub fn l2_stats(&self) -> crate::stats::CacheStats {
        self.backend_ref(L2Backend::l2_stats)
    }

    /// DRAM statistics (chip-wide when the backend is shared).
    #[must_use]
    pub fn dram_stats(&self) -> crate::dram::DramStats {
        self.backend_ref(L2Backend::dram_stats)
    }

    /// Instruction fetch of one cache line for thread `tid`. Returns the
    /// cycle the line is available. The fetch engine has a dedicated path
    /// into the banked I-cache, so fetches never compete for data ports.
    pub fn ifetch(&mut self, now: Cycle, _tid: u8, addr: u64) -> Cycle {
        if self.config.hierarchy == HierarchyKind::Ideal {
            return now + 1;
        }
        let bank = self.l1i.bank_of(addr);
        let start = self.l1i_banks[bank].max(now);
        self.l1i_banks[bank] = start + 1;
        let line = self.l1i.line_addr(addr);
        let acc = self.l1i.access(start, addr, false);
        if acc.hit {
            return start + self.config.l1_latency;
        }
        if medsim_obs::tracing() {
            medsim_obs::emit(start, self.obs_lane, medsim_obs::EventKind::L1Miss, addr);
        }
        if let Some(ready) = acc.pending {
            return ready.max(start + self.config.l1_latency);
        }
        match self.i_mshrs.register(start, line) {
            MshrOutcome::Coalesced(t) => t,
            MshrOutcome::Full => {
                // The fetch engine simply retries; model as waiting out a
                // full L2 round-trip.
                self.stats.mshr_full_stalls += 1;
                start + self.config.l2_latency + self.config.l1_latency
            }
            MshrOutcome::Allocated => {
                let fill = self.access_l2(start + self.config.l1_latency, line, false);
                self.i_mshrs.set_fill_time(line, fill);
                self.l1i.set_fill_time(line, fill);
                fill
            }
        }
    }

    /// Access the L2 for a full line fill (L1 misses, I-misses).
    fn access_l2(&mut self, at: Cycle, addr: u64, is_store: bool) -> Cycle {
        let bytes = self.config.l1d.line_bytes;
        self.with_backend(|b| b.access_sized(at, addr, is_store, bytes))
    }

    /// Issue a data access. `now` is the issue cycle; calls must use
    /// non-decreasing `now`.
    ///
    /// # Errors
    ///
    /// Returns a [`Stall`] when no port is free, the MSHRs are exhausted
    /// (load miss) or the write buffer is full (store).
    pub fn request(&mut self, now: Cycle, req: MemRequest) -> Result<MemReply, Stall> {
        if self.config.hierarchy == HierarchyKind::Ideal {
            self.stats.l1_accesses += 1;
            self.stats.l1_latency_sum += 1;
            return Ok(MemReply {
                done_at: now + 1,
                l1_hit: true,
            });
        }
        let use_vector_path =
            self.config.hierarchy == HierarchyKind::Decoupled && req.kind.is_vector();
        if use_vector_path {
            self.vector_request(now, req)
        } else {
            self.l1_request(now, req)
        }
    }

    /// Whether a port of the right kind is free at `now` (lets the CPU
    /// check before committing issue slots).
    #[must_use]
    pub fn port_available(&self, now: Cycle, kind: AccessKind) -> bool {
        self.ports_for(kind).any_free(now)
    }

    fn ports_for(&self, kind: AccessKind) -> &PortSet {
        match self.config.hierarchy {
            HierarchyKind::Ideal | HierarchyKind::Conventional => &self.general_ports,
            HierarchyKind::Decoupled => {
                if kind.is_vector() {
                    &self.vector_ports
                } else {
                    &self.scalar_ports
                }
            }
        }
    }

    fn ports_for_mut(&mut self, kind: AccessKind) -> &mut PortSet {
        match self.config.hierarchy {
            HierarchyKind::Ideal | HierarchyKind::Conventional => &mut self.general_ports,
            HierarchyKind::Decoupled => {
                if kind.is_vector() {
                    &mut self.vector_ports
                } else {
                    &mut self.scalar_ports
                }
            }
        }
    }

    fn claim_port(&mut self, now: Cycle, kind: AccessKind) -> Result<(), Stall> {
        if self.ports_for_mut(kind).claim(now) {
            Ok(())
        } else {
            Err(Stall::PortBusy)
        }
    }

    /// Ports of the right kind still free at `now`.
    fn ports_free_count(&self, now: Cycle, kind: AccessKind) -> usize {
        self.ports_for(kind).free_count(now)
    }

    /// Claim `n` ports at once: identical final state to `n` sequential
    /// [`MemSystem::claim_port`] calls at the same cycle (each claim
    /// takes the first free port and busies it until `now + 1`).
    fn claim_ports_bulk(&mut self, now: Cycle, kind: AccessKind, n: usize) {
        self.ports_for_mut(kind).claim_bulk(now, n);
    }

    /// Issue one stream memory instruction's element group for this
    /// cycle in a single call: semantically **identical** to calling
    /// [`MemSystem::request`] once per element (same completion cycles,
    /// same statistics, same stall behavior, bit for bit — the
    /// differential suite enforces it), but with the per-element
    /// overheads amortized per touched cache line. Elements that stay
    /// within the line the previous element already walked skip the tag
    /// walk, MSHR scan, write-buffer scan and per-element port scan; the
    /// first element of each line pays the full path. Issuing stops at
    /// the first back-pressure stall, which is reported in the reply
    /// exactly as `request` would have returned it.
    pub fn request_stream(&mut self, now: Cycle, req: StreamRequest) -> StreamReply {
        if self.config.hierarchy == HierarchyKind::Ideal {
            self.stats.l1_accesses += u64::from(req.count);
            self.stats.l1_latency_sum += u64::from(req.count);
            return StreamReply {
                issued: req.count,
                done_at: if req.count == 0 { 0 } else { now + 1 },
                stall: None,
            };
        }
        let use_vector_path =
            self.config.hierarchy == HierarchyKind::Decoupled && req.kind.is_vector();
        if use_vector_path {
            return self.vector_request_stream(now, req);
        }
        if req.kind.is_store() {
            // Through-L1 store admission rides on write-buffer drain
            // timing element by element; the batched fast path covers
            // the latency-critical load side. Delegate faithfully.
            let mut reply = StreamReply {
                issued: 0,
                done_at: 0,
                stall: None,
            };
            for i in 0..req.count {
                match self.l1_request(now, req.elem(i)) {
                    Ok(r) => {
                        reply.issued += 1;
                        reply.done_at = reply.done_at.max(r.done_at);
                    }
                    Err(e) => {
                        reply.stall = Some(e);
                        break;
                    }
                }
            }
            return reply;
        }
        self.l1_request_stream(now, req)
    }

    /// [`MemSystem::request_stream`] for the decoupled vector-fetch
    /// unit's run-ahead requests. Timing-identical to the demand path —
    /// a run-ahead element is the *same* access, just issued earlier —
    /// with one admission difference: on MSHR-tracked paths the unit
    /// must **coexist with scalar traffic**, so it keeps one MSHR of
    /// headroom free for demand misses. When the relevant file is down
    /// to its last free entry the request is held (an `MshrFull` stall
    /// the pipeline retries next cycle) instead of racing demand loads
    /// for it. Loads only — stores are never issued ahead.
    pub fn request_stream_runahead(&mut self, now: Cycle, req: StreamRequest) -> StreamReply {
        debug_assert!(!req.kind.is_store(), "run-ahead never issues stores");
        let mshr_tracked = match self.config.hierarchy {
            // Ideal has no MSHRs; the decoupled vector path goes
            // straight to L2 without touching the L1 miss machinery.
            HierarchyKind::Ideal => false,
            HierarchyKind::Decoupled if req.kind.is_vector() => false,
            _ => true,
        };
        if mshr_tracked {
            let mshrs = if req.kind.is_vector() {
                &mut self.v_mshrs
            } else {
                &mut self.d_mshrs
            };
            let free = mshrs.capacity().saturating_sub(mshrs.outstanding(now));
            if free <= 1 {
                self.stats.runahead_mshr_holds += 1;
                return StreamReply {
                    issued: 0,
                    done_at: 0,
                    stall: Some(Stall::MshrFull),
                };
            }
        }
        let reply = self.request_stream(now, req);
        self.stats.runahead_elems += u64::from(reply.issued);
        reply
    }

    /// Batched through-L1 loads/prefetches: one full reference-path
    /// access per touched line, then the rest of that line's run in
    /// bulk arithmetic. A repeat access is fully determined by the
    /// line's fill time (`hit` once it has passed, delayed hit before —
    /// both count as cache hits) and its bank-arbitrated start, which
    /// advances by exactly one slot per element; the LRU/statistics
    /// effects of the whole run collapse into one `retouch_many` and
    /// one write-buffer retirement sweep.
    fn l1_request_stream(&mut self, now: Cycle, req: StreamRequest) -> StreamReply {
        debug_assert!(!req.kind.is_store());
        let lat = self.config.l1_latency;
        let track_stats = req.kind != AccessKind::Prefetch;
        let mut avail = self.ports_free_count(now, req.kind);
        let mut used = 0usize;
        let mut reply = StreamReply {
            issued: 0,
            done_at: 0,
            stall: None,
        };
        let mut i = 0u8;
        while i < req.count {
            // First element of a line: the full reference path —
            // admission (stats on rejection), port, bank, selective
            // flush, tag walk, miss handling.
            let r = req.elem(i);
            if let Err(e) = self.l1_admission(now, r) {
                reply.stall = Some(e);
                break;
            }
            if avail == 0 {
                reply.stall = Some(Stall::PortBusy);
                break;
            }
            avail -= 1;
            used += 1;
            let elem_reply = self.l1_data_access(now, r);
            reply.issued += 1;
            reply.done_at = reply.done_at.max(elem_reply.done_at);
            i += 1;
            // Length of the same-line run that follows.
            let line = self.l1d.line_addr(r.addr);
            let mut run = 0u8;
            while i + run < req.count && self.l1d.line_addr(req.elem(i + run).addr) == line {
                run += 1;
            }
            if run == 0 {
                continue;
            }
            let k = u64::from(run).min(avail as u64);
            if k > 0 {
                // The k repeats start at consecutive bank slots s, s+1,
                // …: the first element already pushed the bank counter
                // past `now`, so every one of them is a bank conflict —
                // exactly as the per-element walk would count them.
                let ready_at = self.l1d.fill_time_of(r.addr).expect("line just accessed");
                let bank = self.l1d.bank_of(r.addr);
                let s = self.l1d_banks[bank].max(now);
                debug_assert!(s > now);
                self.stats.bank_conflicts += k;
                self.l1d_banks[bank] = s + k;
                // The per-element selective-flush scans find nothing
                // (the first touch flushed or found nothing), but their
                // retirement sweeps are observable state: the last one
                // subsumes the rest.
                self.wbuf.retire_until(s + k - 1);
                self.l1d.retouch_many(r.addr, false, k);
                for t in 0..k {
                    // hit once ready_at <= start (done = start + lat);
                    // delayed hit before that (done = fill time).
                    let done = ready_at.max(s + t + lat);
                    if track_stats {
                        self.stats.l1_accesses += 1;
                        self.stats.l1_latency_sum += done - now;
                    }
                    reply.done_at = reply.done_at.max(done);
                }
                #[allow(clippy::cast_possible_truncation)]
                {
                    reply.issued += k as u8;
                    i += k as u8;
                }
                avail -= k as usize;
                used += k as usize;
            }
            if k < u64::from(run) {
                // The next repeat would have found every port busy.
                reply.stall = Some(Stall::PortBusy);
                break;
            }
        }
        if used > 0 {
            self.claim_ports_bulk(now, req.kind, used);
        }
        reply
    }

    /// Batched decoupled vector accesses (loads and stores): the L2 tag
    /// walk, coherence probe and write-buffer scan are per-line; repeat
    /// elements pay only the L2 bank slot and LRU/dirty bookkeeping.
    fn vector_request_stream(&mut self, now: Cycle, req: StreamRequest) -> StreamReply {
        let is_store = req.kind.is_store();
        let mut avail = self.ports_free_count(now, req.kind);
        let mut used = 0usize;
        // (L1 line, L2 line, L2 fill time, L2 bank) of the previous element.
        let mut memo: Option<(u64, u64, Cycle, usize)> = None;
        let mut reply = StreamReply {
            issued: 0,
            done_at: 0,
            stall: None,
        };
        for i in 0..req.count {
            let r = req.elem(i);
            let l1_line = self.l1d.line_addr(r.addr);
            let l2_line = self.l2_line_addr(r.addr);
            if avail == 0 {
                reply.stall = Some(Stall::PortBusy);
                break;
            }
            avail -= 1;
            used += 1;
            let same_l2 = memo.is_some_and(|(_, l2, _, _)| l2 == l2_line);
            let done = if let (true, Some((prev_l1, _, ready_at, bank))) = (same_l2, memo) {
                self.stats.vector_bypasses += 1;
                let mut start = now;
                if prev_l1 != l1_line {
                    // Crossed into a new L1 line within the same L2
                    // line: the coherence probe and selective flush are
                    // keyed on L1 lines, so they run for real.
                    if self.l1d.probe(r.addr) {
                        self.l1d.invalidate(r.addr);
                        self.stats.coherence_invalidation += 1;
                        start += self.config.coherence_probe_penalty;
                    }
                    if let Some(ready) = self.wbuf.selective_flush(start, l1_line) {
                        self.stats.selective_flushes += 1;
                        start = start.max(ready);
                    }
                    memo = Some((l1_line, l2_line, ready_at, bank));
                } else {
                    // Same L1 line as the previous element: the flush
                    // scan finds nothing, but replicate its retirement.
                    self.wbuf.retire_until(start);
                }
                // The L2 side of the sized access on a resident line:
                // bank slot, LRU/dirty touch, hit or delayed hit.
                self.with_backend(|b| {
                    b.repeat_access(start, r.addr, is_store, req.size, ready_at, bank)
                })
            } else {
                let elem_reply = self.vector_data_access(now, r);
                let (ready_at, bank) = self.with_backend(|b| {
                    (
                        b.fill_time_of(r.addr).expect("access allocates the line"),
                        b.bank_of(r.addr),
                    )
                });
                memo = Some((l1_line, l2_line, ready_at, bank));
                elem_reply.done_at
            };
            reply.issued += 1;
            reply.done_at = reply.done_at.max(done);
        }
        if used > 0 {
            self.claim_ports_bulk(now, req.kind, used);
        }
        reply
    }

    /// The normal (through-L1) data path.
    fn l1_request(&mut self, now: Cycle, req: MemRequest) -> Result<MemReply, Stall> {
        self.l1_admission(now, req)?;
        self.claim_port(now, req.kind)?;
        Ok(self.l1_data_access(now, req))
    }

    /// Admission checks for the through-L1 path, made before any state
    /// is mutated (back-pressure stalls the requester, stats included).
    fn l1_admission(&mut self, now: Cycle, req: MemRequest) -> Result<(), Stall> {
        let line = self.l1d.line_addr(req.addr);
        if req.kind.is_store() {
            if !self.wbuf_would_accept(now, line) {
                self.stats.write_buffer_full_stalls += 1;
                return Err(Stall::WriteBufferFull);
            }
        } else if !self.l1d.probe(req.addr)
            && self.mshr_would_reject(now, line, req.kind.is_vector())
        {
            self.stats.mshr_full_stalls += 1;
            return Err(Stall::MshrFull);
        }
        Ok(())
    }

    /// The through-L1 access proper: everything [`MemSystem::l1_request`]
    /// does after admission and port claim.
    fn l1_data_access(&mut self, now: Cycle, req: MemRequest) -> MemReply {
        let line = self.l1d.line_addr(req.addr);
        let is_store = req.kind.is_store();

        // Bank arbitration.
        let bank = self.l1d.bank_of(req.addr);
        let mut start = self.l1d_banks[bank].max(now);
        if start > now {
            self.stats.bank_conflicts += 1;
        }
        self.l1d_banks[bank] = start + 1;

        if is_store {
            match self.wbuf.push(start, line) {
                WriteOutcome::Full => unreachable!("admission checked"),
                WriteOutcome::Coalesced => self.stats.write_coalesced += 1,
                WriteOutcome::Accepted => {
                    // Write-through traffic drains into the L2: each
                    // buffered line consumes an L2 bank slot, contending
                    // with read misses. This is the bandwidth wall the
                    // decoupled hierarchy's port split alleviates (§5.4).
                    // Nothing flows back to the core, so inside a
                    // quantum the slot is logged and replayed at the
                    // boundary in (cycle, core) order.
                    if self.defer {
                        self.drain_log.push(DeferredOp {
                            at: now,
                            line,
                            start,
                        });
                    } else {
                        self.with_backend(|b| b.store_drain_slot(line, start));
                    }
                }
            }
            // Write-through: update L1 if present (no allocate on miss).
            let _ = self.l1d.access(start, req.addr, true);
            let done = start + self.config.l1_latency;
            return MemReply {
                done_at: done,
                l1_hit: true,
            };
        }

        // Loads must see buffered stores to the same line: selective flush.
        if let Some(ready) = self.wbuf.selective_flush(start, line) {
            self.stats.selective_flushes += 1;
            start = start.max(ready);
        }

        let lookup = self.l1d.access(start, req.addr, false);
        if medsim_obs::tracing() && !lookup.hit {
            medsim_obs::emit(
                start,
                self.obs_lane,
                medsim_obs::EventKind::L1Miss,
                req.addr,
            );
        }
        let done = if lookup.hit {
            start + self.config.l1_latency
        } else if let Some(ready) = lookup.pending {
            ready.max(start + self.config.l1_latency)
        } else {
            // Vector fills run through their own MSHRs (the stream
            // engine's fill path), so a long stream of misses cannot
            // starve scalar miss handling.
            let mshrs = if req.kind.is_vector() {
                &mut self.v_mshrs
            } else {
                &mut self.d_mshrs
            };
            match mshrs.register(start, line) {
                MshrOutcome::Coalesced(t) => t.max(start + self.config.l1_latency),
                MshrOutcome::Full => unreachable!("admission checked"),
                MshrOutcome::Allocated => {
                    let fill = self.access_l2(start + self.config.l1_latency, line, false);
                    let mshrs = if req.kind.is_vector() {
                        &mut self.v_mshrs
                    } else {
                        &mut self.d_mshrs
                    };
                    mshrs.set_fill_time(line, fill);
                    self.l1d.set_fill_time(line, fill);
                    fill
                }
            }
        };
        if req.kind != AccessKind::Prefetch {
            self.stats.l1_accesses += 1;
            self.stats.l1_latency_sum += done - now;
        }
        MemReply {
            done_at: done,
            l1_hit: lookup.hit,
        }
    }

    /// The decoupled vector path: bypass L1, access L2 directly through
    /// the vector ports and crossbar, keeping coherence with the
    /// exclusive-bit policy.
    fn vector_request(&mut self, now: Cycle, req: MemRequest) -> Result<MemReply, Stall> {
        self.claim_port(now, req.kind)?;
        Ok(self.vector_data_access(now, req))
    }

    /// The decoupled vector access proper: everything
    /// [`MemSystem::vector_request`] does after the port claim.
    fn vector_data_access(&mut self, now: Cycle, req: MemRequest) -> MemReply {
        self.stats.vector_bypasses += 1;
        let line = self.l1d.line_addr(req.addr);
        let mut start = now;

        // Exclusive-bit coherence: if L1 may hold the line, probe and
        // invalidate it (write-through L1 ⇒ L2/write-buffer has the data).
        if self.l1d.probe(req.addr) {
            self.l1d.invalidate(req.addr);
            self.stats.coherence_invalidation += 1;
            start += self.config.coherence_probe_penalty;
        }
        // Buffered scalar stores to the line must drain first.
        if let Some(ready) = self.wbuf.selective_flush(start, line) {
            self.stats.selective_flushes += 1;
            start = start.max(ready);
        }

        let is_store = req.kind.is_store();
        let bytes = u64::from(req.size);
        let done = self.with_backend(|b| b.access_sized(start, req.addr, is_store, bytes));
        let hit_l2 = done <= start + self.config.l2_latency + 2;
        MemReply {
            done_at: done,
            l1_hit: hit_l2,
        }
    }

    /// Whether issuing this data access *might* touch the shared
    /// backend with a reply the core consumes immediately — i.e.
    /// whether a core stepping inside a quantum must park at the
    /// quantum edge before issuing it. Conservative (may say `true`
    /// for an access that would stay private — e.g. an MSHR-full
    /// rejection); never `false` for one that reaches the backend:
    ///
    /// * ideal hierarchy — no backend at all;
    /// * decoupled vector path — always a direct L2 access;
    /// * through-L1 stores — only ever emit the fire-and-forget drain
    ///   slot, which the deferral log captures;
    /// * through-L1 loads/prefetches — reach the backend only on a
    ///   real L1 miss (probe-resident lines, including in-fill ones,
    ///   are served from private state).
    ///
    /// A load's `false` verdict rests on an L1 probe taken before the
    /// cycle runs, and a store miss issued earlier in the *same* cycle
    /// write-allocates — evicting a line from its set. The park
    /// predicate closes that gap with
    /// [`MemSystem::store_would_evict_set`]: it must also park when a
    /// ready store's allocation set collides with a ready load's set.
    #[must_use]
    pub fn request_would_defer(&self, addr: u64, kind: AccessKind) -> bool {
        match self.config.hierarchy {
            HierarchyKind::Ideal => false,
            HierarchyKind::Decoupled if kind.is_vector() => true,
            _ if kind.is_store() => false,
            _ => !self.l1d.probe(addr),
        }
    }

    /// The instruction-fetch analogue of
    /// [`MemSystem::request_would_defer`]: an I-fetch reaches the
    /// backend only on a real I-cache miss.
    #[must_use]
    pub fn ifetch_would_defer(&self, addr: u64) -> bool {
        self.config.hierarchy != HierarchyKind::Ideal && !self.l1i.probe(addr)
    }

    /// The L1 data set a store to `addr` would write-allocate into if
    /// it misses ([`Cache::access`] installs the line and evicts the
    /// set's LRU way even in the write-through L1). `None` when the
    /// store cannot evict anything: no L1 on this hierarchy's path, or
    /// the line is already resident (hit stores only touch LRU/dirty
    /// state). The quantum park predicate needs this because an
    /// in-cycle eviction can invalidate the probe a load's no-park
    /// verdict rested on — see [`MemSystem::request_would_defer`].
    #[must_use]
    pub fn store_would_evict_set(&self, addr: u64) -> Option<u64> {
        match self.config.hierarchy {
            HierarchyKind::Ideal => None,
            _ if self.l1d.probe(addr) => None,
            _ => Some(self.l1d.set_index(addr)),
        }
    }

    /// The L1 data set serving `addr` (pure geometry) — the companion
    /// to [`MemSystem::store_would_evict_set`] for the load side of
    /// the collision check.
    #[must_use]
    pub fn l1d_set_of(&self, addr: u64) -> u64 {
        self.l1d.set_index(addr)
    }

    fn wbuf_would_accept(&mut self, now: Cycle, line: u64) -> bool {
        // Coalescing writes are always accepted; otherwise a slot is needed.
        self.wbuf.occupancy(now) < self.wbuf.capacity() || {
            // occupancy() already retired entries; re-push probing is not
            // available, so test coalescing via a selective peek: pushing
            // is safe because a Coalesced outcome does not take a slot.
            matches!(self.wbuf.push(now, line), WriteOutcome::Coalesced)
        }
    }

    fn mshr_would_reject(&mut self, now: Cycle, line: u64, vector: bool) -> bool {
        let mshrs = if vector {
            &mut self.v_mshrs
        } else {
            &mut self.d_mshrs
        };
        if mshrs.outstanding(now) < mshrs.capacity() {
            return false;
        }
        // Full, but a coalescing miss is still acceptable.
        !matches!(mshrs.register(now, line), MshrOutcome::Coalesced(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(h: HierarchyKind) -> MemSystem {
        MemSystem::new(MemConfig::paper_with(h))
    }

    fn load(addr: u64) -> MemRequest {
        MemRequest {
            tid: 0,
            addr,
            size: 8,
            kind: AccessKind::ScalarLoad,
        }
    }

    fn store(addr: u64) -> MemRequest {
        MemRequest {
            tid: 0,
            addr,
            size: 8,
            kind: AccessKind::ScalarStore,
        }
    }

    fn vload(addr: u64) -> MemRequest {
        MemRequest {
            tid: 0,
            addr,
            size: 8,
            kind: AccessKind::VectorLoad,
        }
    }

    #[test]
    fn ideal_memory_single_cycle() {
        let mut m = sys(HierarchyKind::Ideal);
        for i in 0..100 {
            let r = m.request(i, load(i * 4096)).unwrap();
            assert_eq!(r.done_at, i + 1);
            assert!(r.l1_hit);
        }
        assert_eq!(m.stats().avg_l1_latency(), 1.0);
    }

    #[test]
    fn cold_miss_then_warm_hit() {
        let mut m = sys(HierarchyKind::Conventional);
        let miss = m.request(0, load(0x10000)).unwrap();
        assert!(!miss.l1_hit);
        assert!(
            miss.done_at > 50,
            "cold miss goes to DRAM: {}",
            miss.done_at
        );
        let hit = m.request(miss.done_at, load(0x10000)).unwrap();
        assert!(hit.l1_hit);
        assert_eq!(hit.done_at, miss.done_at + 1);
    }

    #[test]
    fn l2_hit_is_cheaper_than_dram() {
        let mut m = sys(HierarchyKind::Conventional);
        let a = m.request(0, load(0x20000)).unwrap(); // DRAM
                                                      // A different L1 set mapping to the same L2 line: 0x20000 + 32
                                                      // shares the L2 128B line but is a different L1 32B line.
        let b = m.request(a.done_at, load(0x20020)).unwrap();
        assert!(!b.l1_hit);
        assert!(
            b.done_at - a.done_at < a.done_at,
            "L2 hit: {} vs {}",
            b.done_at - a.done_at,
            a.done_at
        );
    }

    #[test]
    fn port_limit_enforced() {
        let mut m = sys(HierarchyKind::Conventional);
        let n_ports = m.config().general_ports;
        let mut issued = 0;
        for i in 0..8 {
            if m.request(0, load(0x1000 + i * 32)).is_ok() {
                issued += 1;
            }
        }
        assert_eq!(issued, n_ports, "only {n_ports} requests per cycle");
        // Next cycle the ports are free again.
        assert!(m.request(1, load(0x9000)).is_ok());
    }

    #[test]
    fn bank_conflicts_detected() {
        let mut m = sys(HierarchyKind::Conventional);
        // Same L1 bank: same line twice in one cycle (second waits).
        let a = m.request(0, load(0x4000)).unwrap();
        let _ = a;
        let before = m.stats().bank_conflicts;
        let _ = m.request(0, load(0x4000 + 256)).unwrap(); // 8 banks × 32B = 256 stride → same bank
        assert!(m.stats().bank_conflicts > before);
    }

    #[test]
    fn mshr_exhaustion_stalls() {
        let mut m = sys(HierarchyKind::Conventional);
        let mshrs = m.config().mshrs;
        let mut stalled = false;
        // Issue misses to distinct lines over several cycles so ports are
        // not the limit; lines are distinct so no coalescing.
        let mut issued = 0;
        for i in 0..(mshrs + 4) {
            let addr = 0x100_0000 + (i as u64) * 4096;
            match m.request(i as u64, load(addr)) {
                Ok(_) => issued += 1,
                Err(Stall::MshrFull) => {
                    stalled = true;
                    break;
                }
                Err(_) => {}
            }
        }
        assert!(stalled, "issued {issued} misses without MSHR back-pressure");
        assert!(m.stats().mshr_full_stalls > 0);
    }

    #[test]
    fn same_line_misses_coalesce_without_new_mshr() {
        let mut m = sys(HierarchyKind::Conventional);
        let a = m.request(0, load(0x50000)).unwrap();
        let b = m.request(1, load(0x50008)).unwrap(); // same 32B line
        assert!(!b.l1_hit);
        assert!(
            b.done_at <= a.done_at,
            "coalesced fill: {} vs {}",
            b.done_at,
            a.done_at
        );
        assert_eq!(m.stats().dram_reads, 1, "one line fetch serves both");
    }

    #[test]
    fn write_buffer_fills_under_store_burst() {
        let mut m = sys(HierarchyKind::Conventional);
        let mut full_seen = false;
        let mut cycle = 0;
        for i in 0..64u64 {
            match m.request(cycle, store(0x8000 + i * 64)) {
                Ok(_) => {}
                Err(Stall::WriteBufferFull) => {
                    full_seen = true;
                    break;
                }
                Err(Stall::PortBusy) => cycle += 1,
                Err(e) => panic!("unexpected stall {e:?}"),
            }
            // two stores per cycle keeps ports available but outruns drain
            if i % 2 == 1 {
                cycle += 1;
            }
        }
        assert!(full_seen, "write buffer should fill under a store burst");
    }

    #[test]
    fn stores_to_same_line_coalesce() {
        let mut m = sys(HierarchyKind::Conventional);
        m.request(0, store(0x6000)).unwrap();
        m.request(1, store(0x6008)).unwrap();
        assert_eq!(m.stats().write_coalesced, 1);
    }

    #[test]
    fn load_after_store_selectively_flushes() {
        let mut m = sys(HierarchyKind::Conventional);
        m.request(0, store(0x7000)).unwrap();
        let r = m.request(1, load(0x7000)).unwrap();
        assert_eq!(m.stats().selective_flushes, 1);
        assert!(r.done_at > 2, "the load waits for the flushed write");
    }

    #[test]
    fn decoupled_vector_bypasses_l1() {
        let mut m = sys(HierarchyKind::Decoupled);
        let r = m.request(0, vload(0x9000)).unwrap();
        assert!(m.stats().vector_bypasses == 1);
        assert!(r.done_at > 12, "vector access pays at least L2 latency");
        // L1 never saw the access.
        assert_eq!(m.l1d_stats().accesses(), 0);
    }

    #[test]
    fn decoupled_coherence_invalidates_l1_copy() {
        let mut m = sys(HierarchyKind::Decoupled);
        // Scalar load brings the line into L1.
        let a = m.request(0, load(0xa000)).unwrap();
        // Vector access to the same line must invalidate it.
        let _ = m.request(a.done_at, vload(0xa000)).unwrap();
        assert_eq!(m.stats().coherence_invalidation, 1);
        // Scalar load again: L1 miss (line was invalidated) but L2 hit.
        let c = m.request(a.done_at + 100, load(0xa000)).unwrap();
        assert!(!c.l1_hit);
    }

    #[test]
    fn decoupled_separates_port_pools() {
        let mut m = sys(HierarchyKind::Decoupled);
        // 2 scalar ports: the 3rd scalar access in one cycle stalls...
        assert!(m.request(0, load(0x100)).is_ok());
        assert!(m.request(0, load(0x200)).is_ok());
        assert_eq!(m.request(0, load(0x300)), Err(Stall::PortBusy));
        // ...but vector ports are still free that same cycle.
        assert!(m.request(0, vload(0x400)).is_ok());
        assert!(m.request(0, vload(0x500)).is_ok());
        assert_eq!(m.request(0, vload(0x600)), Err(Stall::PortBusy));
    }

    #[test]
    fn conventional_vector_accesses_share_l1_ports() {
        let mut m = sys(HierarchyKind::Conventional);
        for i in 0..4u64 {
            assert!(m.request(0, vload(0x1000 + 32 * i)).is_ok());
        }
        assert_eq!(m.request(0, load(0x2000)), Err(Stall::PortBusy));
        assert_eq!(m.stats().vector_bypasses, 0);
    }

    #[test]
    fn ifetch_hits_after_fill() {
        let mut m = sys(HierarchyKind::Conventional);
        let t1 = m.ifetch(0, 0, 0x400000);
        assert!(t1 > 1, "cold I-miss");
        let t2 = m.ifetch(t1, 0, 0x400000);
        assert_eq!(t2, t1 + 1);
        assert_eq!(m.l1i_stats().misses, 1);
        assert_eq!(m.l1i_stats().hits, 1);
    }

    #[test]
    fn dirty_l2_victim_writes_back_to_dram() {
        let mut m = sys(HierarchyKind::Decoupled);
        // Vector stores dirty L2 lines; walk enough distinct lines to
        // force evictions from the 1MB 2-way L2 (8192 sets → same set
        // stride = 8192 × 128B = 1 MiB / 2... walk 3 lines in one set).
        let set_stride = (1024 * 1024 / 2) as u64; // sets × line
        let mut now = 0;
        for i in 0..3u64 {
            let r = m
                .request(
                    now,
                    MemRequest {
                        tid: 0,
                        addr: i * set_stride,
                        size: 8,
                        kind: AccessKind::VectorStore,
                    },
                )
                .unwrap();
            now = r.done_at + 1;
        }
        assert!(m.stats().dram_writes >= 1, "a dirty victim must reach DRAM");
    }

    #[test]
    fn latency_statistics_accumulate() {
        let mut m = sys(HierarchyKind::Conventional);
        let a = m.request(0, load(0x123400)).unwrap();
        let _ = m.request(a.done_at, load(0x123400)).unwrap();
        assert_eq!(m.stats().l1_accesses, 2);
        assert!(m.stats().avg_l1_latency() > 1.0);
    }

    #[test]
    fn deferred_store_drain_replays_to_the_same_backend_state() {
        use std::sync::Arc;
        let config = MemConfig::paper();
        // Reference: a direct store drains an L2 bank slot immediately.
        let direct_backend = L2Backend::shared(&config);
        let mut direct =
            MemSystem::with_shared_backend(config.clone(), Arc::clone(&direct_backend));
        direct.request(0, store(0x8000)).unwrap();
        // Deferred: the same store only logs; the backend stays
        // untouched until the boundary replay.
        let shared = L2Backend::shared(&config);
        let mut m = MemSystem::with_shared_backend(config.clone(), Arc::clone(&shared));
        m.begin_defer();
        m.request(0, store(0x8000)).unwrap();
        let log = m.end_defer();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].at, 0);
        for op in log {
            shared.lock().unwrap().replay(op);
        }
        // Identical observable backend state: an access right behind
        // the drained slot conflicts the same way in both.
        let conflicts = |b: &SharedL2| {
            let mut b = b.lock().unwrap();
            let _ = b.access_sized(0, 0x8000, false, 32);
            b.stats().bank_conflicts
        };
        let (c1, c2) = (conflicts(&direct_backend), conflicts(&shared));
        assert_eq!(c1, c2);
        assert!(c1 >= 1);
    }

    #[test]
    fn would_defer_predicates_track_private_residency() {
        let mut m = sys(HierarchyKind::Conventional);
        // Cold line: a load would reach the backend.
        assert!(m.request_would_defer(0xb000, AccessKind::ScalarLoad));
        // Stores never need the backend synchronously (drain is logged).
        assert!(!m.request_would_defer(0xb000, AccessKind::ScalarStore));
        // Once resident (even still in flight), loads stay private.
        let r = m.request(0, load(0xb000)).unwrap();
        assert!(!m.request_would_defer(0xb000, AccessKind::ScalarLoad));
        let _ = r;
        // I-side analogue.
        assert!(m.ifetch_would_defer(0xc000));
        let t = m.ifetch(0, 0, 0xc000);
        assert!(!m.ifetch_would_defer(0xc000));
        let _ = t;
        // Ideal memory never touches a backend.
        let ideal = sys(HierarchyKind::Ideal);
        assert!(!ideal.request_would_defer(0xb000, AccessKind::ScalarLoad));
        assert!(!ideal.ifetch_would_defer(0xb000));
        // The decoupled vector path always goes straight to L2.
        let d = sys(HierarchyKind::Decoupled);
        assert!(d.request_would_defer(0xb000, AccessKind::VectorLoad));
        assert!(d.request_would_defer(0xb000, AccessKind::VectorStore));
    }

    #[test]
    fn port_available_matches_claim() {
        let mut m = sys(HierarchyKind::Conventional);
        assert!(m.port_available(0, AccessKind::ScalarLoad));
        for i in 0..4u64 {
            m.request(0, load(0x100 + i * 32)).unwrap();
        }
        assert!(!m.port_available(0, AccessKind::ScalarLoad));
        assert!(m.port_available(1, AccessKind::ScalarLoad));
    }
}
