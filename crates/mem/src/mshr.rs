//! Miss Status Holding Registers with same-line coalescing.
//!
//! The paper gives both cache levels "8 MSHRs". An MSHR tracks one
//! outstanding miss line; further misses to the same line coalesce onto
//! the existing entry (sharing its fill time) instead of issuing another
//! next-level request. When all entries are busy, new misses must stall —
//! this is the mechanism that throttles memory-level parallelism and
//! makes latency grow under many threads (§5.3).

use crate::Cycle;

#[derive(Debug, Clone, Copy)]
struct Entry {
    line_addr: u64,
    fill_at: Cycle,
}

/// A file of MSHRs for one cache.
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    entries: Vec<Entry>,
}

/// Outcome of trying to register a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; the caller must issue the next-level
    /// request.
    Allocated,
    /// The line is already outstanding; the miss coalesces and completes
    /// at the returned fill time.
    Coalesced(Cycle),
    /// All entries busy: the request must stall and retry.
    Full,
}

impl MshrFile {
    /// Create a file with `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        MshrFile {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Number of entries currently outstanding at `now`.
    #[must_use]
    pub fn outstanding(&mut self, now: Cycle) -> usize {
        self.retire(now);
        self.entries.len()
    }

    /// Drop entries whose fill time has passed.
    fn retire(&mut self, now: Cycle) {
        self.entries.retain(|e| e.fill_at > now);
    }

    /// Register a miss on `line_addr` observed at `now`.
    ///
    /// If a new entry is allocated the caller computes the fill time and
    /// must confirm it with [`MshrFile::set_fill_time`].
    pub fn register(&mut self, now: Cycle, line_addr: u64) -> MshrOutcome {
        self.retire(now);
        if let Some(e) = self.entries.iter().find(|e| e.line_addr == line_addr) {
            return MshrOutcome::Coalesced(e.fill_at);
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        // Reserve with a provisional infinite fill time; set_fill_time fixes it.
        self.entries.push(Entry {
            line_addr,
            fill_at: Cycle::MAX,
        });
        MshrOutcome::Allocated
    }

    /// Fix the fill time of the entry allocated for `line_addr`.
    ///
    /// # Panics
    ///
    /// Panics if no entry exists for `line_addr` (protocol violation).
    pub fn set_fill_time(&mut self, line_addr: u64, fill_at: Cycle) {
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.line_addr == line_addr)
            .expect("set_fill_time without register");
        e.fill_at = fill_at;
    }

    /// Capacity of the file.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_then_coalesce() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.register(0, 0x100), MshrOutcome::Allocated);
        m.set_fill_time(0x100, 50);
        assert_eq!(m.register(3, 0x100), MshrOutcome::Coalesced(50));
        assert_eq!(m.outstanding(10), 1);
    }

    #[test]
    fn fills_free_entries() {
        let mut m = MshrFile::new(1);
        assert_eq!(m.register(0, 0x100), MshrOutcome::Allocated);
        m.set_fill_time(0x100, 20);
        assert_eq!(m.register(5, 0x200), MshrOutcome::Full);
        // After the fill time passes, the entry is free again.
        assert_eq!(m.register(21, 0x200), MshrOutcome::Allocated);
        m.set_fill_time(0x200, 80);
        assert_eq!(m.outstanding(21), 1);
    }

    #[test]
    fn full_when_capacity_reached() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.register(0, 0x0), MshrOutcome::Allocated);
        m.set_fill_time(0x0, 100);
        assert_eq!(m.register(0, 0x40), MshrOutcome::Allocated);
        m.set_fill_time(0x40, 100);
        assert_eq!(m.register(1, 0x80), MshrOutcome::Full);
        // Coalescing still works while full.
        assert_eq!(m.register(1, 0x40), MshrOutcome::Coalesced(100));
    }

    #[test]
    fn distinct_lines_use_distinct_entries() {
        let mut m = MshrFile::new(8);
        for i in 0..8u64 {
            assert_eq!(m.register(0, i * 0x40), MshrOutcome::Allocated);
            m.set_fill_time(i * 0x40, 100 + i);
        }
        assert_eq!(m.outstanding(0), 8);
        assert_eq!(m.register(0, 0x1000), MshrOutcome::Full);
        // Entries retire one by one as fill times pass.
        assert_eq!(m.outstanding(100), 7);
        assert_eq!(m.outstanding(107), 0);
    }

    #[test]
    #[should_panic(expected = "set_fill_time without register")]
    fn set_fill_time_requires_register() {
        let mut m = MshrFile::new(1);
        m.set_fill_time(0xdead, 10);
    }
}
