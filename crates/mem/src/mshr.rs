//! Miss Status Holding Registers with same-line coalescing.
//!
//! The paper gives both cache levels "8 MSHRs". An MSHR tracks one
//! outstanding miss line; further misses to the same line coalesce onto
//! the existing entry (sharing its fill time) instead of issuing another
//! next-level request. When all entries are busy, new misses must stall —
//! this is the mechanism that throttles memory-level parallelism and
//! makes latency grow under many threads (§5.3).
//!
//! Like [`crate::Cache`], the file has two implementations selected by
//! the `MEDSIM_CACHE` knob: the default packs entries into fixed
//! split planes guided by an occupancy bitmap (O(1) free-slot pick, no
//! `retain` compaction), while `ref` keeps the seed's `Vec<Entry>`
//! scans. Line addresses are unique within a file (misses to an
//! outstanding line coalesce instead of allocating), so slot choice and
//! scan order are unobservable — the two models are behaviorally
//! identical, which the equivalence property suite checks directly.

use crate::cache::CacheModel;
use crate::Cycle;

/// Outcome of trying to register a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; the caller must issue the next-level
    /// request.
    Allocated,
    /// The line is already outstanding; the miss coalesces and completes
    /// at the returned fill time.
    Coalesced(Cycle),
    /// All entries busy: the request must stall and retry.
    Full,
}

// ---------------------------------------------------------------------
// Reference model: the seed's Vec<Entry> scans, verbatim.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Entry {
    line_addr: u64,
    fill_at: Cycle,
}

#[derive(Debug, Clone)]
struct RefMshr {
    capacity: usize,
    entries: Vec<Entry>,
}

impl RefMshr {
    fn new(capacity: usize) -> Self {
        RefMshr {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    fn retire(&mut self, now: Cycle) {
        self.entries.retain(|e| e.fill_at > now);
    }

    fn outstanding(&mut self, now: Cycle) -> usize {
        self.retire(now);
        self.entries.len()
    }

    fn register(&mut self, now: Cycle, line_addr: u64) -> MshrOutcome {
        self.retire(now);
        if let Some(e) = self.entries.iter().find(|e| e.line_addr == line_addr) {
            return MshrOutcome::Coalesced(e.fill_at);
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        // Reserve with a provisional infinite fill time; set_fill_time fixes it.
        self.entries.push(Entry {
            line_addr,
            fill_at: Cycle::MAX,
        });
        MshrOutcome::Allocated
    }

    fn set_fill_time(&mut self, line_addr: u64, fill_at: Cycle) {
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.line_addr == line_addr)
            .expect("set_fill_time without register");
        e.fill_at = fill_at;
    }
}

// ---------------------------------------------------------------------
// Packed model: occupancy-bitmap-guided fixed split planes.
// ---------------------------------------------------------------------

/// Most entries one occupancy word can govern. The paper's files are
/// 8-deep; larger configurations fall back to the reference model.
const PACKED_MAX_ENTRIES: usize = 64;

#[derive(Debug, Clone)]
struct PackedMshr {
    capacity: usize,
    /// Bit `i` set ⇔ slot `i` holds a live entry.
    occ: u64,
    line_addr: Box<[u64]>,
    fill_at: Box<[Cycle]>,
}

impl PackedMshr {
    fn new(capacity: usize) -> Self {
        PackedMshr {
            capacity,
            occ: 0,
            line_addr: vec![0; capacity].into_boxed_slice(),
            fill_at: vec![0; capacity].into_boxed_slice(),
        }
    }

    #[inline]
    fn retire(&mut self, now: Cycle) {
        let mut live = self.occ;
        while live != 0 {
            let i = live.trailing_zeros() as usize;
            if self.fill_at[i] <= now {
                self.occ &= !(1u64 << i);
            }
            live &= live - 1;
        }
    }

    #[inline]
    fn find(&self, line_addr: u64) -> Option<usize> {
        let mut live = self.occ;
        while live != 0 {
            let i = live.trailing_zeros() as usize;
            if self.line_addr[i] == line_addr {
                return Some(i);
            }
            live &= live - 1;
        }
        None
    }

    fn outstanding(&mut self, now: Cycle) -> usize {
        self.retire(now);
        self.occ.count_ones() as usize
    }

    fn register(&mut self, now: Cycle, line_addr: u64) -> MshrOutcome {
        self.retire(now);
        if let Some(i) = self.find(line_addr) {
            return MshrOutcome::Coalesced(self.fill_at[i]);
        }
        if self.occ.count_ones() as usize >= self.capacity {
            return MshrOutcome::Full;
        }
        // O(1) free-slot pick: occupancy below capacity guarantees a
        // clear bit among slots 0..capacity.
        let slot = (!self.occ).trailing_zeros() as usize;
        self.occ |= 1u64 << slot;
        self.line_addr[slot] = line_addr;
        // Provisional infinite fill time; set_fill_time fixes it.
        self.fill_at[slot] = Cycle::MAX;
        MshrOutcome::Allocated
    }

    fn set_fill_time(&mut self, line_addr: u64, fill_at: Cycle) {
        let i = self
            .find(line_addr)
            .expect("set_fill_time without register");
        self.fill_at[i] = fill_at;
    }
}

// ---------------------------------------------------------------------
// Public file: model dispatch.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Model {
    Packed(PackedMshr),
    Ref(RefMshr),
}

/// A file of MSHRs for one cache.
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    inner: Model,
}

impl MshrFile {
    /// Create a file with `capacity` entries, using the model selected
    /// by `MEDSIM_CACHE` (see [`CacheModel::from_env`]).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        MshrFile::with_model(capacity, CacheModel::from_env())
    }

    /// Create a file with an explicit model. Capacities beyond one
    /// occupancy word (64) fall back to the reference model.
    #[must_use]
    pub fn with_model(capacity: usize, model: CacheModel) -> Self {
        let inner = match model {
            CacheModel::Packed if capacity <= PACKED_MAX_ENTRIES => {
                Model::Packed(PackedMshr::new(capacity))
            }
            _ => Model::Ref(RefMshr::new(capacity)),
        };
        MshrFile { capacity, inner }
    }

    /// Number of entries currently outstanding at `now`.
    #[must_use]
    pub fn outstanding(&mut self, now: Cycle) -> usize {
        match &mut self.inner {
            Model::Packed(p) => p.outstanding(now),
            Model::Ref(r) => r.outstanding(now),
        }
    }

    /// Register a miss on `line_addr` observed at `now`.
    ///
    /// If a new entry is allocated the caller computes the fill time and
    /// must confirm it with [`MshrFile::set_fill_time`].
    pub fn register(&mut self, now: Cycle, line_addr: u64) -> MshrOutcome {
        match &mut self.inner {
            Model::Packed(p) => p.register(now, line_addr),
            Model::Ref(r) => r.register(now, line_addr),
        }
    }

    /// Fix the fill time of the entry allocated for `line_addr`.
    ///
    /// # Panics
    ///
    /// Panics if no entry exists for `line_addr` (protocol violation).
    pub fn set_fill_time(&mut self, line_addr: u64, fill_at: Cycle) {
        match &mut self.inner {
            Model::Packed(p) => p.set_fill_time(line_addr, fill_at),
            Model::Ref(r) => r.set_fill_time(line_addr, fill_at),
        }
    }

    /// Capacity of the file.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODELS: [CacheModel; 2] = [CacheModel::Packed, CacheModel::Ref];

    #[test]
    fn allocate_then_coalesce() {
        for model in MODELS {
            let mut m = MshrFile::with_model(2, model);
            assert_eq!(m.register(0, 0x100), MshrOutcome::Allocated);
            m.set_fill_time(0x100, 50);
            assert_eq!(m.register(3, 0x100), MshrOutcome::Coalesced(50));
            assert_eq!(m.outstanding(10), 1);
        }
    }

    #[test]
    fn fills_free_entries() {
        for model in MODELS {
            let mut m = MshrFile::with_model(1, model);
            assert_eq!(m.register(0, 0x100), MshrOutcome::Allocated);
            m.set_fill_time(0x100, 20);
            assert_eq!(m.register(5, 0x200), MshrOutcome::Full);
            // After the fill time passes, the entry is free again.
            assert_eq!(m.register(21, 0x200), MshrOutcome::Allocated);
            m.set_fill_time(0x200, 80);
            assert_eq!(m.outstanding(21), 1);
        }
    }

    #[test]
    fn full_when_capacity_reached() {
        for model in MODELS {
            let mut m = MshrFile::with_model(2, model);
            assert_eq!(m.register(0, 0x0), MshrOutcome::Allocated);
            m.set_fill_time(0x0, 100);
            assert_eq!(m.register(0, 0x40), MshrOutcome::Allocated);
            m.set_fill_time(0x40, 100);
            assert_eq!(m.register(1, 0x80), MshrOutcome::Full);
            // Coalescing still works while full.
            assert_eq!(m.register(1, 0x40), MshrOutcome::Coalesced(100));
        }
    }

    #[test]
    fn distinct_lines_use_distinct_entries() {
        for model in MODELS {
            let mut m = MshrFile::with_model(8, model);
            for i in 0..8u64 {
                assert_eq!(m.register(0, i * 0x40), MshrOutcome::Allocated);
                m.set_fill_time(i * 0x40, 100 + i);
            }
            assert_eq!(m.outstanding(0), 8);
            assert_eq!(m.register(0, 0x1000), MshrOutcome::Full);
            // Entries retire one by one as fill times pass.
            assert_eq!(m.outstanding(100), 7);
            assert_eq!(m.outstanding(107), 0);
        }
    }

    /// Slots freed out of order are reused without disturbing survivors
    /// — the packed model's free-slot pick must not clobber live entries.
    #[test]
    fn out_of_order_retirement_reuses_slots() {
        for model in MODELS {
            let mut m = MshrFile::with_model(4, model);
            for i in 0..4u64 {
                assert_eq!(m.register(0, i * 0x40), MshrOutcome::Allocated);
                // Middle entries retire first.
                m.set_fill_time(i * 0x40, if i == 1 || i == 2 { 10 } else { 100 });
            }
            assert_eq!(m.outstanding(11), 2);
            assert_eq!(m.register(12, 0x400), MshrOutcome::Allocated);
            m.set_fill_time(0x400, 200);
            assert_eq!(m.register(13, 0x0), MshrOutcome::Coalesced(100));
            assert_eq!(m.register(13, 0xc0), MshrOutcome::Coalesced(100));
            assert_eq!(m.register(13, 0x400), MshrOutcome::Coalesced(200));
            assert_eq!(m.outstanding(13), 3);
        }
    }

    #[test]
    #[should_panic(expected = "set_fill_time without register")]
    fn set_fill_time_requires_register() {
        let mut m = MshrFile::new(1);
        m.set_fill_time(0xdead, 10);
    }

    #[test]
    #[should_panic(expected = "set_fill_time without register")]
    fn set_fill_time_requires_register_ref_model() {
        let mut m = MshrFile::with_model(1, CacheModel::Ref);
        m.set_fill_time(0xdead, 10);
    }
}
