//! Direct Rambus DRAM (DRDRAM) channel model.
//!
//! The paper models "a 128 MB Direct Rambus main memory system which
//! contains a DRDRAM controller driving 8 Rambus chips and leveraging up
//! to 3.2 GB/s with a 128-bit wide, bi-directional 200 MHz main bus
//! (feeding an 800 MHz processor)" (§3).
//!
//! At 800 MHz CPU cycles, 3.2 GB/s is exactly **4 bytes per CPU cycle**:
//! a 128-byte L2 line occupies the channel for 32 cycles. The model
//! tracks, per device, the open row (row-buffer hits are cheaper) and a
//! single shared channel that serializes transfers — the source of the
//! bandwidth ceiling that the decoupled hierarchy works around.

use crate::Cycle;
use serde::{Deserialize, Serialize};

/// DRDRAM timing and geometry parameters (in CPU cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of Rambus devices on the channel.
    pub devices: usize,
    /// Row (page) size per device in bytes.
    pub row_bytes: u64,
    /// Channel bandwidth in bytes per CPU cycle (3.2 GB/s at 800 MHz = 4).
    pub bytes_per_cycle: u64,
    /// Access latency when the target row is already open.
    pub row_hit_latency: Cycle,
    /// Access latency when a new row must be activated.
    pub row_miss_latency: Cycle,
}

impl DramConfig {
    /// The paper's DRDRAM system.
    #[must_use]
    pub fn paper() -> Self {
        DramConfig {
            devices: 8,
            row_bytes: 2 * 1024,
            bytes_per_cycle: 4,
            row_hit_latency: 32,
            row_miss_latency: 64,
        }
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::paper()
    }
}

/// Statistics kept by the DRAM model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Accesses that had to open a row.
    pub row_misses: u64,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Total cycles a request waited for the busy channel.
    pub channel_wait: u64,
}

/// The DRDRAM controller + devices + channel.
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    /// Open row per device (`None` until first touch).
    open_rows: Vec<Option<u64>>,
    /// Next cycle the shared channel is free.
    channel_free: Cycle,
    stats: DramStats,
}

impl Dram {
    /// Build the DRAM model.
    #[must_use]
    pub fn new(config: DramConfig) -> Self {
        Dram {
            open_rows: vec![None; config.devices],
            channel_free: 0,
            config,
            stats: DramStats::default(),
        }
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    fn device_of(&self, addr: u64) -> usize {
        // Rows are interleaved across devices at row granularity.
        ((addr / self.config.row_bytes) % self.config.devices as u64) as usize
    }

    fn row_of(&self, addr: u64) -> u64 {
        addr / (self.config.row_bytes * self.config.devices as u64)
    }

    /// Issue a transfer of `bytes` at `addr`, starting no earlier than
    /// `now`. Returns the completion cycle.
    pub fn access(&mut self, now: Cycle, addr: u64, bytes: u64) -> Cycle {
        let dev = self.device_of(addr);
        let row = self.row_of(addr);
        let latency = if self.open_rows[dev] == Some(row) {
            self.stats.row_hits += 1;
            self.config.row_hit_latency
        } else {
            self.stats.row_misses += 1;
            self.open_rows[dev] = Some(row);
            self.config.row_miss_latency
        };
        // The channel serializes data transfers.
        let start = self.channel_free.max(now);
        self.stats.channel_wait += start - now;
        let transfer = bytes.div_ceil(self.config.bytes_per_cycle);
        self.channel_free = start + transfer;
        self.stats.bytes += bytes;
        start + latency + transfer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_hit_is_cheaper_than_row_miss() {
        let mut d = Dram::new(DramConfig::paper());
        let t_miss = d.access(0, 0x1000, 128);
        let mut d2 = Dram::new(DramConfig::paper());
        d2.access(0, 0x1000, 128);
        // Second access to the same row, after the channel is free.
        let now = 1000;
        let t_hit = d2.access(now, 0x1040, 128) - now;
        assert!(t_hit < t_miss, "row hit {t_hit} vs first access {t_miss}");
        assert_eq!(d2.stats().row_hits, 1);
        assert_eq!(d2.stats().row_misses, 1);
    }

    #[test]
    fn line_transfer_time_matches_bandwidth() {
        let mut d = Dram::new(DramConfig::paper());
        let done = d.access(0, 0, 128);
        // 64 (row miss) + 128/4 = 32 transfer
        assert_eq!(done, 64 + 32);
    }

    #[test]
    fn channel_serializes_transfers() {
        let mut d = Dram::new(DramConfig::paper());
        let a = d.access(0, 0x0000, 128);
        // Different device, but the shared channel is busy for 32 cycles.
        let b = d.access(0, 2 * 1024, 128);
        assert!(
            b > a - 48 + 48,
            "second transfer starts after the first's channel slot"
        );
        assert_eq!(d.stats().channel_wait, 32);
    }

    #[test]
    fn different_devices_have_independent_rows() {
        let mut d = Dram::new(DramConfig::paper());
        d.access(0, 0, 16);
        d.access(100, 2 * 1024, 16); // device 1
                                     // back to device 0, same row: hit
        d.access(200, 64, 16);
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_misses, 2);
    }

    #[test]
    fn bytes_accounted() {
        let mut d = Dram::new(DramConfig::paper());
        d.access(0, 0, 128);
        d.access(500, 4096, 32);
        assert_eq!(d.stats().bytes, 160);
    }
}
