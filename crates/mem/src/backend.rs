//! The shared L2/DRAM backend of the hierarchy.
//!
//! A CMP machine gives every core its own private L1 levels (data and
//! instruction caches, MSHRs, write buffer, ports, banks — the fields
//! [`crate::MemSystem`] keeps) while the unified L2, its MSHRs and bank
//! reservation counters, and the Direct Rambus channel are **one**
//! structure all cores contend on. This module is that structure,
//! factored out of `MemSystem` so it can sit behind an
//! [`SharedL2`] handle: a single-core `MemSystem` owns its backend
//! exclusively (zero-overhead, exactly the pre-split layout), while the
//! cores of a CMP share one through the machine layer's per-cycle bus
//! arbiter — requests drain in fixed core order within a cycle, so the
//! backend only ever sees a deterministic, monotonic access sequence
//! regardless of how the host schedules the core worker threads.

use crate::cache::Cache;
use crate::config::MemConfig;
use crate::dram::{Dram, DramStats};
use crate::mshr::{MshrFile, MshrOutcome};
use crate::stats::{CacheStats, MemStats};
use crate::Cycle;
use medsim_obs::EventKind;
use std::sync::{Arc, Mutex};

/// A shared handle to one [`L2Backend`]: what the machine layer hands
/// to every core's `MemSystem` in a CMP. Accesses are serialized by the
/// machine's per-cycle bus arbiter (fixed core-order draining), so the
/// mutex is never contended — it exists to make the sharing safe, not
/// to schedule it.
pub type SharedL2 = Arc<Mutex<L2Backend>>;

/// One deferred shared-backend operation, logged by a core stepping
/// inside a multi-cycle quantum instead of touching the [`SharedL2`]
/// directly. The only backend traffic a core can emit without needing
/// the result back in the same cycle is the write-buffer drain slot
/// ([`L2Backend::store_drain_slot`]) — every other backend call returns
/// a completion time the core consumes immediately, so the machine
/// layer parks such a core at the quantum edge instead of logging.
///
/// At the quantum boundary the machine drains every core's log in
/// (cycle, core) order — the same sequence the serial per-cycle bus
/// arbiter produces — by replaying each entry with
/// [`L2Backend::store_drain_slot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeferredOp {
    /// The core-local cycle the operation was issued at.
    pub at: Cycle,
    /// The line address being drained into the L2.
    pub line: u64,
    /// The start cycle the drain slot reserves from.
    pub start: Cycle,
}

/// The L2 cache, its MSHRs and banks, and the DRAM channel — the levels
/// of the hierarchy a CMP shares between cores.
#[derive(Debug)]
pub struct L2Backend {
    l2: Cache,
    l2_mshrs: MshrFile,
    l2_banks: Box<[Cycle]>,
    dram: Dram,
    l2_latency: u64,
    /// Backend-side counters only (L2 bank conflicts, L2 MSHR
    /// exhaustion, DRAM traffic); the L1-side counters live in each
    /// core's `MemSystem` and the two are merged for reporting.
    stats: MemStats,
}

impl L2Backend {
    /// Build the backend from a memory configuration (its `l2`, `dram`,
    /// `mshrs` and `l2_latency` fields).
    #[must_use]
    pub fn new(config: &MemConfig) -> Self {
        L2Backend {
            l2: Cache::new(config.l2),
            l2_mshrs: MshrFile::new(config.mshrs),
            l2_banks: vec![0; config.l2.banks].into_boxed_slice(),
            dram: Dram::new(config.dram),
            l2_latency: config.l2_latency,
            stats: MemStats::default(),
        }
    }

    /// A backend wrapped for sharing between the cores of a CMP.
    #[must_use]
    pub fn shared(config: &MemConfig) -> SharedL2 {
        Arc::new(Mutex::new(L2Backend::new(config)))
    }

    /// L2 cache statistics.
    #[must_use]
    pub fn l2_stats(&self) -> CacheStats {
        *self.l2.stats()
    }

    /// DRAM statistics.
    #[must_use]
    pub fn dram_stats(&self) -> DramStats {
        *self.dram.stats()
    }

    /// Backend-side memory-system counters (merged with the L1-side
    /// counters by [`crate::MemSystem::stats`]).
    #[must_use]
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// The L2 bank serving `addr`.
    #[must_use]
    pub fn bank_of(&self, addr: u64) -> usize {
        self.l2.bank_of(addr)
    }

    /// Fill time of the L2 line holding `addr`, if resident.
    #[must_use]
    pub fn fill_time_of(&self, addr: u64) -> Option<Cycle> {
        self.l2.fill_time_of(addr)
    }

    /// One write-buffer drain slot into the L2: each buffered
    /// write-through line consumes a bank slot, contending with read
    /// misses (the bandwidth wall the decoupled hierarchy's port split
    /// alleviates, §5.4).
    pub fn store_drain_slot(&mut self, line: u64, start: Cycle) {
        let bank = self.l2.bank_of(line);
        let slot = self.l2_banks[bank].max(start);
        self.l2_banks[bank] = slot + 2;
    }

    /// Replay one operation a core deferred during a quantum. Replays
    /// happen in (cycle, core) order at the quantum boundary, so the
    /// backend observes the exact access sequence the serial per-cycle
    /// bus arbiter would have produced.
    pub fn replay(&mut self, op: DeferredOp) {
        self.store_drain_slot(op.line, op.start);
    }

    /// A repeat access to a resident L2 line (the memoized fast path of
    /// the batched vector stream): bank slot, LRU/dirty touch, hit or
    /// delayed hit against the known fill time.
    pub fn repeat_access(
        &mut self,
        start: Cycle,
        addr: u64,
        is_store: bool,
        size: u8,
        ready_at: Cycle,
        bank: usize,
    ) -> Cycle {
        let s = self.l2_banks[bank].max(start);
        if s > start {
            self.stats.bank_conflicts += 1;
        }
        let occupancy = u64::from(size).div_ceil(8).clamp(1, 4);
        self.l2_banks[bank] = s + occupancy;
        self.l2.retouch(addr, is_store);
        ready_at.max(s + self.l2_latency)
    }

    /// Access the L2, going to DRAM on a miss. Returns the completion
    /// cycle (data at the requester). Bank occupancy scales with the
    /// transfer size: a 32-byte line fill holds a bank four cycles, a
    /// direct 8-byte vector element access only one — the effective
    /// bandwidth the decoupled organization exploits.
    pub fn access_sized(&mut self, at: Cycle, addr: u64, is_store: bool, bytes: u64) -> Cycle {
        let bank = self.l2.bank_of(addr);
        let start = self.l2_banks[bank].max(at);
        if start > at {
            self.stats.bank_conflicts += 1;
        }
        let occupancy = bytes.div_ceil(8).clamp(1, 4);
        self.l2_banks[bank] = start + occupancy;
        let line = self.l2.line_addr(addr);
        let line_bytes = self.l2.config().line_bytes;
        let lookup = self.l2.access(start, addr, is_store);
        if let Some(victim) = lookup.writeback {
            let _ = self
                .dram
                .access(start + self.l2_latency, victim, line_bytes);
            self.stats.dram_writes += 1;
            if medsim_obs::tracing() {
                medsim_obs::emit(start, medsim_obs::LANE_SHARED_MEM, EventKind::DramAccess, 1);
            }
        }
        if lookup.hit {
            return start + self.l2_latency;
        }
        if medsim_obs::tracing() {
            medsim_obs::emit(start, medsim_obs::LANE_SHARED_MEM, EventKind::L2Miss, line);
        }
        if let Some(ready) = lookup.pending {
            return ready.max(start + self.l2_latency);
        }
        match self.l2_mshrs.register(start, line) {
            MshrOutcome::Coalesced(t) => t.max(start + self.l2_latency),
            MshrOutcome::Full => {
                self.stats.mshr_full_stalls += 1;
                // Wait out a DRAM round trip before the retry succeeds.
                let fill = self.dram.access(start + self.l2_latency, line, line_bytes);
                self.stats.dram_reads += 1;
                if medsim_obs::tracing() {
                    medsim_obs::emit(start, medsim_obs::LANE_SHARED_MEM, EventKind::DramAccess, 0);
                }
                fill + self.l2_latency
            }
            MshrOutcome::Allocated => {
                let fill = self.dram.access(start + self.l2_latency, line, line_bytes);
                self.stats.dram_reads += 1;
                if medsim_obs::tracing() {
                    medsim_obs::emit(start, medsim_obs::LANE_SHARED_MEM, EventKind::DramAccess, 0);
                }
                self.l2_mshrs.set_fill_time(line, fill);
                self.l2.set_fill_time(line, fill);
                fill
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_access_goes_to_dram_and_warm_hits() {
        let mut b = L2Backend::new(&MemConfig::paper());
        let cold = b.access_sized(0, 0x40_0000, false, 32);
        assert!(cold > 12, "cold miss pays DRAM: {cold}");
        assert_eq!(b.dram_stats().row_hits + b.dram_stats().row_misses, 1);
        let warm = b.access_sized(cold, 0x40_0000, false, 32);
        assert_eq!(warm, cold + 12, "resident line pays L2 latency only");
        assert_eq!(b.stats().dram_reads, 1);
    }

    #[test]
    fn store_drain_consumes_bank_slots() {
        let mut b = L2Backend::new(&MemConfig::paper());
        b.store_drain_slot(0x1000, 0);
        // The drained bank is busy: an access right behind it conflicts.
        let before = b.stats().bank_conflicts;
        let _ = b.access_sized(0, 0x1000, false, 32);
        assert_eq!(b.stats().bank_conflicts, before + 1);
    }

    #[test]
    fn shared_handle_is_send_and_clonable() {
        let shared = L2Backend::shared(&MemConfig::paper());
        let other = Arc::clone(&shared);
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut b = other.lock().expect("backend");
                let _ = b.access_sized(0, 0x2000, false, 32);
            });
        });
        assert_eq!(shared.lock().expect("backend").stats().dram_reads, 1);
    }
}
