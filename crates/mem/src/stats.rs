//! Statistics collected by the memory system.
//!
//! These feed Table 4 of the paper directly (instruction-cache hit rate,
//! L1 hit rate, average L1 latency per thread count) and the cache
//! sections of EXPERIMENTS.md.

use serde::{Deserialize, Serialize};

/// Per-cache hit/miss counters.
///
/// Hit/miss counters track **read accesses** (loads and fetches) — the
/// latency-critical traffic the paper's Table 4 reports. Stores are
/// counted separately: a write-through cache absorbs them through the
/// write buffer regardless of presence, so counting them as misses
/// would misstate locality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Read accesses that hit.
    pub hits: u64,
    /// Read accesses that missed (including delayed hits on in-flight
    /// lines).
    pub misses: u64,
    /// Store accesses (counted separately from hits/misses).
    pub stores: u64,
    /// Dirty lines written back to the next level.
    pub writebacks: u64,
}

impl CacheStats {
    pub(crate) fn record(&mut self, is_store: bool, hit: bool) {
        if is_store {
            self.stores += 1;
            return;
        }
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    /// Total accesses (reads + stores).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses + self.stores
    }

    /// Read accesses only.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.hits + self.misses
    }

    /// Read hit rate in [0, 1]; 1.0 when there were no reads.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.reads() == 0 {
            1.0
        } else {
            self.hits as f64 / self.reads() as f64
        }
    }
}

/// Aggregate memory-system statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MemStats {
    /// Data accesses that consulted the L1 (scalar always; vector in the
    /// conventional organization).
    pub l1_accesses: u64,
    /// Sum of data-access latencies through L1, in cycles (for the
    /// average-latency row of Table 4).
    pub l1_latency_sum: u64,
    /// Accesses delayed by a busy bank.
    pub bank_conflicts: u64,
    /// Requests rejected because every MSHR was busy.
    pub mshr_full_stalls: u64,
    /// Stores rejected because the write buffer was full.
    pub write_buffer_full_stalls: u64,
    /// Stores coalesced into an existing write-buffer entry.
    pub write_coalesced: u64,
    /// Loads that had to selectively flush a matching buffered write.
    pub selective_flushes: u64,
    /// Vector accesses that bypassed L1 (decoupled organization).
    pub vector_bypasses: u64,
    /// Exclusive-bit coherence probes that invalidated an L1 line.
    pub coherence_invalidation: u64,
    /// L2 misses that went to DRAM.
    pub dram_reads: u64,
    /// Write-backs that reached DRAM.
    pub dram_writes: u64,
    /// Stream elements issued through the run-ahead path (the decoupled
    /// vector-fetch unit working ahead of execute).
    pub runahead_elems: u64,
    /// Run-ahead stream requests held back to preserve MSHR headroom
    /// for demand traffic.
    pub runahead_mshr_holds: u64,
}

impl MemStats {
    /// Average L1 data latency in cycles (Table 4's "L1 latency" row);
    /// zero when no accesses were made.
    #[must_use]
    pub fn avg_l1_latency(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            self.l1_latency_sum as f64 / self.l1_accesses as f64
        }
    }

    /// Field-wise sum of two counter sets. Every memory-system event
    /// increments exactly one side of the private/backend split, so the
    /// merge of a core's private counters with its backend's equals the
    /// single pre-split structure.
    #[must_use]
    pub fn merged(&self, other: &MemStats) -> MemStats {
        MemStats {
            l1_accesses: self.l1_accesses + other.l1_accesses,
            l1_latency_sum: self.l1_latency_sum + other.l1_latency_sum,
            bank_conflicts: self.bank_conflicts + other.bank_conflicts,
            mshr_full_stalls: self.mshr_full_stalls + other.mshr_full_stalls,
            write_buffer_full_stalls: self.write_buffer_full_stalls
                + other.write_buffer_full_stalls,
            write_coalesced: self.write_coalesced + other.write_coalesced,
            selective_flushes: self.selective_flushes + other.selective_flushes,
            vector_bypasses: self.vector_bypasses + other.vector_bypasses,
            coherence_invalidation: self.coherence_invalidation + other.coherence_invalidation,
            dram_reads: self.dram_reads + other.dram_reads,
            dram_writes: self.dram_writes + other.dram_writes,
            runahead_elems: self.runahead_elems + other.runahead_elems,
            runahead_mshr_holds: self.runahead_mshr_holds + other.runahead_mshr_holds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_edges() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 1.0);
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert_eq!(s.hit_rate(), 0.75);
        assert_eq!(s.accesses(), 4);
    }

    /// Field-exhaustive check of [`MemStats::merged`]: the
    /// destructuring patterns below have no `..` rest, so adding a
    /// counter to `MemStats` fails this test's build until both the
    /// merge and this test account for it.
    #[test]
    fn merged_sums_every_field() {
        // Distinct primes on one side, distinct offsets on the other,
        // so a swapped or dropped field changes some asserted sum.
        let a = MemStats {
            l1_accesses: 2,
            l1_latency_sum: 3,
            bank_conflicts: 5,
            mshr_full_stalls: 7,
            write_buffer_full_stalls: 11,
            write_coalesced: 13,
            selective_flushes: 17,
            vector_bypasses: 19,
            coherence_invalidation: 23,
            dram_reads: 29,
            dram_writes: 31,
            runahead_elems: 37,
            runahead_mshr_holds: 41,
        };
        let b = MemStats {
            l1_accesses: 100,
            l1_latency_sum: 200,
            bank_conflicts: 300,
            mshr_full_stalls: 400,
            write_buffer_full_stalls: 500,
            write_coalesced: 600,
            selective_flushes: 700,
            vector_bypasses: 800,
            coherence_invalidation: 900,
            dram_reads: 1000,
            dram_writes: 1100,
            runahead_elems: 1200,
            runahead_mshr_holds: 1300,
        };
        let MemStats {
            l1_accesses,
            l1_latency_sum,
            bank_conflicts,
            mshr_full_stalls,
            write_buffer_full_stalls,
            write_coalesced,
            selective_flushes,
            vector_bypasses,
            coherence_invalidation,
            dram_reads,
            dram_writes,
            runahead_elems,
            runahead_mshr_holds,
        } = a.merged(&b);
        assert_eq!(l1_accesses, 102);
        assert_eq!(l1_latency_sum, 203);
        assert_eq!(bank_conflicts, 305);
        assert_eq!(mshr_full_stalls, 407);
        assert_eq!(write_buffer_full_stalls, 511);
        assert_eq!(write_coalesced, 613);
        assert_eq!(selective_flushes, 717);
        assert_eq!(vector_bypasses, 819);
        assert_eq!(coherence_invalidation, 923);
        assert_eq!(dram_reads, 1029);
        assert_eq!(dram_writes, 1131);
        assert_eq!(runahead_elems, 1237);
        assert_eq!(runahead_mshr_holds, 1341);
    }

    #[test]
    fn avg_latency_edges() {
        let s = MemStats::default();
        assert_eq!(s.avg_l1_latency(), 0.0);
        let s = MemStats {
            l1_accesses: 4,
            l1_latency_sum: 10,
            ..Default::default()
        };
        assert_eq!(s.avg_l1_latency(), 2.5);
    }
}
