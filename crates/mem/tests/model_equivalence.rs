//! Differential property tests: the packed line-state model must be
//! access-for-access identical to the seed's reference model across the
//! paper's cache geometries under randomized protocol-conforming
//! streams. The unit tests inside `cache.rs`/`mshr.rs`/`wbuf.rs` pin
//! hand-picked corner cases; these drive long random interleavings of
//! every public operation and compare the full observable state after
//! each step, so a divergence pinpoints the first operation that
//! disagrees (the failing seed is printed in the assert message).

use medsim_mem::mshr::MshrOutcome;
use medsim_mem::{Cache, CacheConfig, CacheModel, MshrFile, WriteBuffer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The paper's L1 data cache: 32 KB direct-mapped, 32 B lines, 8 banks,
/// write-through.
fn l1d() -> CacheConfig {
    CacheConfig {
        size_bytes: 32 * 1024,
        ways: 1,
        line_bytes: 32,
        banks: 8,
        write_back: false,
    }
}

/// The paper's L1 instruction cache: 64 KB 2-way, 32 B lines, 4 banks.
fn l1i() -> CacheConfig {
    CacheConfig {
        size_bytes: 64 * 1024,
        ways: 2,
        line_bytes: 32,
        banks: 4,
        write_back: false,
    }
}

/// The paper's L2: 1 MB 2-way, 128 B lines, 2 banks, write-back.
fn l2() -> CacheConfig {
    CacheConfig {
        size_bytes: 1024 * 1024,
        ways: 2,
        line_bytes: 128,
        banks: 2,
        write_back: true,
    }
}

/// Drive both models through one random operation and compare every
/// observable: access outcomes, probes, fill times, line counts, stats.
fn step_caches(
    rng: &mut SmallRng,
    now: u64,
    packed: &mut Cache,
    reference: &mut Cache,
    seed: u64,
    step: usize,
) {
    let cfg = *packed.config();
    // A working set of 4× capacity: plenty of hits, misses, and way
    // conflicts; biased toward a small hot region so LRU order matters.
    let span = cfg.size_bytes * 4;
    let addr = if rng.gen_bool(0.6) {
        rng.gen_range(0..span / 16)
    } else {
        rng.gen_range(0..span)
    };
    let ctx = |what: &str| format!("seed {seed} step {step} addr {addr:#x}: {what}");

    match rng.gen_range(0..10u32) {
        // Plain access, load-heavy; a real miss is followed by the
        // protocol's set_fill_time, as the hierarchy would do.
        0..=5 => {
            let is_store = rng.gen_bool(0.3);
            let a = packed.access(now, addr, is_store);
            let b = reference.access(now, addr, is_store);
            assert_eq!(a, b, "{}", ctx("access outcome"));
            let allocated = !a.hit && a.pending.is_none() && (cfg.write_back || !is_store);
            if allocated {
                let fill = now + rng.gen_range(5..40u64);
                packed.set_fill_time(addr, fill);
                reference.set_fill_time(addr, fill);
            }
        }
        // Retouch a line the caller just made resident (the batched
        // stream path's contract). Skip when the access didn't allocate.
        6 => {
            let a = packed.access(now, addr, false);
            let b = reference.access(now, addr, false);
            assert_eq!(a, b, "{}", ctx("access before retouch"));
            if !a.hit && a.pending.is_none() {
                let fill = now + 20;
                packed.set_fill_time(addr, fill);
                reference.set_fill_time(addr, fill);
            }
            let n = rng.gen_range(1..5u64);
            let is_store = rng.gen_bool(0.25);
            packed.retouch_many(addr, is_store, n);
            reference.retouch_many(addr, is_store, n);
        }
        // Coherence invalidate (decoupled hierarchy's exclusive probe).
        7 => {
            assert_eq!(
                packed.invalidate(addr),
                reference.invalidate(addr),
                "{}",
                ctx("invalidate")
            );
        }
        // Write-back drain marks the line clean.
        8 => {
            packed.clean(addr);
            reference.clean(addr);
        }
        // Pure observers.
        _ => {
            assert_eq!(
                packed.probe(addr),
                reference.probe(addr),
                "{}",
                ctx("probe")
            );
            assert_eq!(
                packed.fill_time_of(addr),
                reference.fill_time_of(addr),
                "{}",
                ctx("fill_time_of")
            );
        }
    }

    assert_eq!(
        packed.valid_lines(),
        reference.valid_lines(),
        "{}",
        ctx("valid line count")
    );
    assert_eq!(packed.stats(), reference.stats(), "{}", ctx("statistics"));
}

fn run_cache_equivalence(cfg: CacheConfig, seeds: std::ops::Range<u64>, steps: usize) {
    for seed in seeds {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut packed = Cache::with_model(cfg, CacheModel::Packed);
        let mut reference = Cache::with_model(cfg, CacheModel::Ref);
        let mut now = 0u64;
        for step in 0..steps {
            now += rng.gen_range(0..3u64);
            step_caches(&mut rng, now, &mut packed, &mut reference, seed, step);
        }
    }
}

#[test]
fn l1d_geometry_packed_matches_ref() {
    run_cache_equivalence(l1d(), 0..8, 4000);
}

#[test]
fn l1i_geometry_packed_matches_ref() {
    run_cache_equivalence(l1i(), 100..108, 4000);
}

#[test]
fn l2_geometry_packed_matches_ref() {
    run_cache_equivalence(l2(), 200..208, 4000);
}

/// Degenerate geometries the packed planes must still agree on: a tiny
/// direct-mapped cache (constant conflict evictions) and a high-way
/// one that exercises the LRU permutation at its widest packed width.
#[test]
fn stress_geometries_packed_matches_ref() {
    let tiny = CacheConfig {
        size_bytes: 1024,
        ways: 1,
        line_bytes: 32,
        banks: 1,
        write_back: true,
    };
    run_cache_equivalence(tiny, 300..306, 4000);
    let wide = CacheConfig {
        size_bytes: 16 * 1024,
        ways: 8,
        line_bytes: 64,
        banks: 2,
        write_back: true,
    };
    run_cache_equivalence(wide, 400..406, 4000);
}

#[test]
fn mshr_packed_matches_ref() {
    for seed in 500..510u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let capacity = rng.gen_range(1..33usize);
        let mut packed = MshrFile::with_model(capacity, CacheModel::Packed);
        let mut reference = MshrFile::with_model(capacity, CacheModel::Ref);
        let mut now = 0u64;
        for step in 0..4000 {
            now += rng.gen_range(0..4u64);
            // A small line pool forces coalescing; occasional bursts
            // beyond capacity force Full outcomes.
            let line = u64::from(rng.gen_range(0..capacity as u32 * 2)) * 64;
            let a = packed.register(now, line);
            let b = reference.register(now, line);
            assert_eq!(a, b, "seed {seed} step {step} line {line:#x}: register");
            if a == MshrOutcome::Allocated {
                let fill = now + rng.gen_range(10..60u64);
                packed.set_fill_time(line, fill);
                reference.set_fill_time(line, fill);
            }
            assert_eq!(
                packed.outstanding(now),
                reference.outstanding(now),
                "seed {seed} step {step}: outstanding"
            );
        }
    }
}

#[test]
fn write_buffer_packed_matches_ref() {
    for seed in 600..610u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let capacity = rng.gen_range(1..33usize);
        let drain = rng.gen_range(1..20u64);
        let mut packed = WriteBuffer::with_model(capacity, drain, CacheModel::Packed);
        let mut reference = WriteBuffer::with_model(capacity, drain, CacheModel::Ref);
        let mut now = 0u64;
        for step in 0..4000 {
            now += rng.gen_range(0..3u64);
            let line = u64::from(rng.gen_range(0..capacity as u32 * 2)) * 32;
            match rng.gen_range(0..4u32) {
                0..=1 => {
                    let a = packed.push(now, line);
                    let b = reference.push(now, line);
                    assert_eq!(a, b, "seed {seed} step {step} line {line:#x}: push");
                }
                2 => {
                    assert_eq!(
                        packed.selective_flush(now, line),
                        reference.selective_flush(now, line),
                        "seed {seed} step {step} line {line:#x}: selective_flush"
                    );
                }
                _ => {
                    packed.retire_until(now);
                    reference.retire_until(now);
                }
            }
            assert_eq!(
                packed.occupancy(now),
                reference.occupancy(now),
                "seed {seed} step {step}: occupancy"
            );
        }
    }
}
