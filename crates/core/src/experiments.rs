//! One driver per table/figure of the paper's evaluation section.
//!
//! Every function returns structured rows; [`crate::report`] renders
//! them in the paper's table shapes. The bench targets in
//! `medsim-bench` are thin wrappers around these drivers.

use crate::metrics::{EipcFactor, RunResult};
use crate::runner::{effective_jobs, run_grid_with, TraceCache};
use crate::sim::SimConfig;
use medsim_cpu::FetchPolicy;
use medsim_mem::HierarchyKind;
use medsim_workloads::trace::{InstStream, SimdIsa};
use medsim_workloads::{Benchmark, InstMix, MixBreakdown, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// The thread counts the paper evaluates.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A performance curve over thread counts for one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Curve {
    /// ISA of the runs.
    pub isa: SimdIsa,
    /// Hierarchy of the runs.
    pub hierarchy: HierarchyKind,
    /// Fetch policy of the runs.
    pub policy: FetchPolicy,
    /// `(threads, figure of merit)` points: IPC for MMX, EIPC for MOM.
    pub points: Vec<(usize, f64)>,
    /// The raw run results behind the points.
    pub runs: Vec<RunResult>,
}

impl Curve {
    /// Figure of merit at a thread count, if present.
    #[must_use]
    pub fn at(&self, threads: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|(t, _)| *t == threads)
            .map(|(_, v)| *v)
    }
}

/// One curve to produce: every `(isa, hierarchy, policy)` combination
/// expands to the four thread-count runs of [`THREAD_COUNTS`].
type CurveCombo = (SimdIsa, HierarchyKind, FetchPolicy);

/// Run a batch of curves as **one grid**: all `combos × THREAD_COUNTS`
/// configurations fan out through [`run_grid_with`] over a shared
/// trace cache, and the flat results are folded back into [`Curve`]s in
/// combo order.
fn run_curves(
    spec: &WorkloadSpec,
    combos: &[CurveCombo],
    factor: &EipcFactor,
    cache: &TraceCache,
) -> Vec<Curve> {
    let configs: Vec<SimConfig> = combos
        .iter()
        .flat_map(|&(isa, hierarchy, policy)| {
            THREAD_COUNTS.iter().map(move |&threads| {
                SimConfig::new(isa, threads)
                    .with_hierarchy(hierarchy)
                    .with_policy(policy)
                    .with_spec(*spec)
            })
        })
        .collect();
    let results = run_grid_with(&configs, effective_jobs(configs.len()), cache);
    combos
        .iter()
        .zip(results.chunks_exact(THREAD_COUNTS.len()))
        .map(|(&(isa, hierarchy, policy), runs)| Curve {
            isa,
            hierarchy,
            policy,
            points: THREAD_COUNTS
                .iter()
                .zip(runs)
                .map(|(&t, r)| (t, r.figure_of_merit(factor)))
                .collect(),
            runs: runs.to_vec(),
        })
        .collect()
}

/// Figure 4: performance with perfect cache — SMT+MMX IPC and SMT+MOM
/// EIPC over 1/2/4/8 threads under the ideal memory system.
#[must_use]
pub fn fig4_ideal(spec: &WorkloadSpec) -> Vec<Curve> {
    let cache = TraceCache::from_env();
    let factor = EipcFactor::compute_cached(spec, &cache);
    let combos: Vec<CurveCombo> = SimdIsa::ALL
        .iter()
        .map(|&isa| (isa, HierarchyKind::Ideal, FetchPolicy::RoundRobin))
        .collect();
    run_curves(spec, &combos, &factor, &cache)
}

/// Figure 5: the same curves under the real (conventional) memory
/// system, plus the ideal curves for comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5 {
    /// Ideal-memory curves (as figure 4).
    pub ideal: Vec<Curve>,
    /// Real-memory curves.
    pub real: Vec<Curve>,
}

/// Run figure 5 (includes a figure-4 pass for the dashed reference
/// curves). The ideal and real sweeps form a single 16-run grid.
#[must_use]
pub fn fig5_real(spec: &WorkloadSpec) -> Fig5 {
    let cache = TraceCache::from_env();
    let factor = EipcFactor::compute_cached(spec, &cache);
    let combos: Vec<CurveCombo> = [HierarchyKind::Ideal, HierarchyKind::Conventional]
        .iter()
        .flat_map(|&h| {
            SimdIsa::ALL
                .iter()
                .map(move |&isa| (isa, h, FetchPolicy::RoundRobin))
        })
        .collect();
    let mut curves = run_curves(spec, &combos, &factor, &cache);
    let real = curves.split_off(SimdIsa::ALL.len());
    Fig5 {
        ideal: curves,
        real,
    }
}

/// One row of Table 4: cache behaviour vs thread count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    /// ISA of the run.
    pub isa: SimdIsa,
    /// Thread count.
    pub threads: usize,
    /// Instruction-cache hit rate.
    pub icache_hit_rate: f64,
    /// L1 data-cache hit rate.
    pub l1_hit_rate: f64,
    /// Average L1 latency (cycles).
    pub l1_avg_latency: f64,
}

/// Table 4: I-cache/L1 hit rates and average L1 latency under the real
/// memory system with round-robin fetch.
#[must_use]
pub fn table4_cache(spec: &WorkloadSpec) -> Vec<Table4Row> {
    let cache = TraceCache::from_env();
    let factor = EipcFactor::compute_cached(spec, &cache);
    let combos: Vec<CurveCombo> = SimdIsa::ALL
        .iter()
        .map(|&isa| (isa, HierarchyKind::Conventional, FetchPolicy::RoundRobin))
        .collect();
    run_curves(spec, &combos, &factor, &cache)
        .iter()
        .flat_map(|curve| {
            curve.runs.iter().map(|r| Table4Row {
                isa: curve.isa,
                threads: r.threads,
                icache_hit_rate: r.icache_hit_rate,
                l1_hit_rate: r.l1_hit_rate,
                l1_avg_latency: r.l1_avg_latency,
            })
        })
        .collect()
}

/// The policy set the paper plots per ISA (figure 6/8): OCOUNT only
/// applies to MOM (it reads the stream-length register).
#[must_use]
pub fn policies_for(isa: SimdIsa) -> Vec<FetchPolicy> {
    match isa {
        SimdIsa::Mmx => vec![
            FetchPolicy::RoundRobin,
            FetchPolicy::ICount,
            FetchPolicy::Balance,
        ],
        SimdIsa::Mom => FetchPolicy::ALL.to_vec(),
    }
}

/// Figures 6 and 8: fetch-policy comparison under the given hierarchy
/// (figure 6 = conventional, figure 8 = decoupled).
#[must_use]
pub fn fig_fetch_policies(spec: &WorkloadSpec, hierarchy: HierarchyKind) -> Vec<Curve> {
    let cache = TraceCache::from_env();
    let factor = EipcFactor::compute_cached(spec, &cache);
    let combos: Vec<CurveCombo> = SimdIsa::ALL
        .iter()
        .flat_map(|&isa| {
            policies_for(isa)
                .into_iter()
                .map(move |p| (isa, hierarchy, p))
        })
        .collect();
    run_curves(spec, &combos, &factor, &cache)
}

/// Figure 9: ideal vs conventional vs decoupled hierarchies, with the
/// best policy per ISA (ICOUNT for MMX, OCOUNT for MOM, per §5.4).
#[must_use]
pub fn fig9_hierarchy(spec: &WorkloadSpec) -> Vec<Curve> {
    let cache = TraceCache::from_env();
    let factor = EipcFactor::compute_cached(spec, &cache);
    let combos: Vec<CurveCombo> = SimdIsa::ALL
        .iter()
        .flat_map(|&isa| {
            let policy = match isa {
                SimdIsa::Mmx => FetchPolicy::ICount,
                SimdIsa::Mom => FetchPolicy::OCount,
            };
            HierarchyKind::ALL.iter().map(move |&h| (isa, h, policy))
        })
        .collect();
    run_curves(spec, &combos, &factor, &cache)
}

/// The core counts the CMP scaling driver sweeps.
pub const CORE_COUNTS: [usize; 3] = [1, 2, 4];

/// A performance curve over **core counts** for one `(ISA, threads per
/// core)` configuration — the CMP analogue of [`Curve`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CmpCurve {
    /// ISA of the runs.
    pub isa: SimdIsa,
    /// Hardware thread contexts per core.
    pub threads: usize,
    /// Hierarchy of the runs (the non-ideal organizations share one
    /// L2/DRAM backend across cores).
    pub hierarchy: HierarchyKind,
    /// `(cores, figure of merit)` points: IPC for MMX, EIPC for MOM.
    pub points: Vec<(usize, f64)>,
    /// The raw run results behind the points.
    pub runs: Vec<RunResult>,
}

impl CmpCurve {
    /// Figure of merit at a core count, if present.
    #[must_use]
    pub fn at(&self, cores: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|(c, _)| *c == cores)
            .map(|(_, v)| *v)
    }
}

/// CMP scaling: sweep the machine over [`CORE_COUNTS`] × threads per
/// core {1, 2} × both ISAs under the conventional hierarchy — every
/// core a full SMT pipeline with private L1s, all sharing one L2/DRAM
/// backend. The whole sweep fans out as **one grid** over a shared
/// trace cache, like every other figure driver.
#[must_use]
pub fn cmp_scaling(spec: &WorkloadSpec) -> Vec<CmpCurve> {
    let cache = TraceCache::from_env();
    let factor = EipcFactor::compute_cached(spec, &cache);
    let combos: Vec<(SimdIsa, usize)> = SimdIsa::ALL
        .iter()
        .flat_map(|&isa| [1usize, 2].iter().map(move |&t| (isa, t)))
        .collect();
    let configs: Vec<SimConfig> = combos
        .iter()
        .flat_map(|&(isa, threads)| {
            CORE_COUNTS.iter().map(move |&cores| {
                SimConfig::new(isa, threads)
                    .with_cores(cores)
                    .with_spec(*spec)
            })
        })
        .collect();
    let results = run_grid_with(&configs, effective_jobs(configs.len()), &cache);
    combos
        .iter()
        .zip(results.chunks_exact(CORE_COUNTS.len()))
        .map(|(&(isa, threads), runs)| CmpCurve {
            isa,
            threads,
            hierarchy: HierarchyKind::Conventional,
            points: CORE_COUNTS
                .iter()
                .zip(runs)
                .map(|(&c, r)| (c, r.figure_of_merit(&factor)))
                .collect(),
            runs: runs.to_vec(),
        })
        .collect()
}

/// One row of the decoupled-vs-coupled sweep: the same `(isa,
/// hierarchy, threads)` configuration run with the decoupled
/// vector-fetch unit off and on, with each side's figure of merit and
/// achieved fraction of the DRDRAM memory roofline side by side.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecoupleRow {
    /// ISA of the pair.
    pub isa: SimdIsa,
    /// Hierarchy of the pair.
    pub hierarchy: HierarchyKind,
    /// Hardware thread contexts.
    pub threads: usize,
    /// The DRDRAM channel's peak transfer rate (bytes per cycle) the
    /// roofline fractions are measured against.
    pub peak_bytes_per_cycle: f64,
    /// The coupled (paper-faithful) run.
    pub coupled: RunResult,
    /// The decoupled run-ahead run.
    pub decoupled: RunResult,
}

impl DecoupleRow {
    fn pct_of_roof(&self, r: &RunResult) -> Option<f64> {
        (r.dram_bytes > 0 && r.cycles > 0)
            .then(|| (r.dram_bytes as f64 / r.cycles as f64) / self.peak_bytes_per_cycle)
    }

    /// Fraction of the memory roofline the coupled run achieved
    /// (`None` without DRAM traffic).
    #[must_use]
    pub fn coupled_pct_of_roof(&self) -> Option<f64> {
        self.pct_of_roof(&self.coupled)
    }

    /// Fraction of the memory roofline the decoupled run achieved.
    #[must_use]
    pub fn decoupled_pct_of_roof(&self) -> Option<f64> {
        self.pct_of_roof(&self.decoupled)
    }

    /// Decoupled-over-coupled cycle-count speedup (> 1 means the
    /// run-ahead unit helped).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.coupled.cycles as f64 / self.decoupled.cycles.max(1) as f64
    }
}

/// The decoupled-vs-coupled sweep over the §5 workload: both ISAs ×
/// both real hierarchies at the paper's 4-thread SMT configuration,
/// each run twice — vector-fetch unit off (the paper-faithful coupled
/// pipeline) and on — as **one grid** over a shared trace cache. Rows
/// report IPC/EIPC and pct-of-roofline side by side, so the readout is
/// directly "decoupling moved this kernel from X% to Y% of its
/// DRDRAM roofline".
#[must_use]
pub fn decoupled_sweep(spec: &WorkloadSpec) -> Vec<DecoupleRow> {
    let cache = TraceCache::from_env();
    let combos: Vec<(SimdIsa, HierarchyKind)> = SimdIsa::ALL
        .iter()
        .flat_map(|&isa| {
            [HierarchyKind::Conventional, HierarchyKind::Decoupled]
                .iter()
                .map(move |&h| (isa, h))
        })
        .collect();
    let threads = 4;
    let configs: Vec<SimConfig> = combos
        .iter()
        .flat_map(|&(isa, h)| {
            [false, true].iter().map(move |&on| {
                SimConfig::new(isa, threads)
                    .with_hierarchy(h)
                    .with_spec(*spec)
                    .with_decouple(on)
            })
        })
        .collect();
    let results = run_grid_with(&configs, effective_jobs(configs.len()), &cache);
    combos
        .iter()
        .zip(results.chunks_exact(2))
        .map(|(&(isa, hierarchy), pair)| DecoupleRow {
            isa,
            hierarchy,
            threads,
            peak_bytes_per_cycle: medsim_mem::MemConfig::paper_with(hierarchy)
                .dram
                .bytes_per_cycle as f64,
            coupled: pair[0].clone(),
            decoupled: pair[1].clone(),
        })
        .collect()
}

/// The headline numbers of the abstract: SMT speedups at 8 threads over
/// the 1-thread MMX superscalar baseline, and the degradation vs ideal
/// memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Headline {
    /// Baseline: 1-thread MMX IPC under the real memory system.
    pub baseline_ipc: f64,
    /// Best 8-thread SMT+MMX speedup (paper: 2.1×).
    pub mmx_speedup: f64,
    /// Best 8-thread SMT+MOM EIPC speedup (paper: 3.3×).
    pub mom_speedup: f64,
    /// SMT+MMX degradation vs ideal memory at 8 threads (paper: ~30%).
    pub mmx_degradation: f64,
    /// SMT+MOM degradation vs ideal memory at 8 threads (paper: ~15%).
    pub mom_degradation: f64,
}

/// Compute the headline summary from figure-9 curves.
///
/// # Panics
///
/// Panics if the curves are missing expected configurations.
#[must_use]
pub fn headline(curves: &[Curve]) -> Headline {
    let find = |isa: SimdIsa, h: HierarchyKind| -> &Curve {
        curves
            .iter()
            .find(|c| c.isa == isa && c.hierarchy == h)
            .expect("figure-9 curve set complete")
    };
    let mmx_conv = find(SimdIsa::Mmx, HierarchyKind::Conventional);
    let mmx_dec = find(SimdIsa::Mmx, HierarchyKind::Decoupled);
    let mmx_ideal = find(SimdIsa::Mmx, HierarchyKind::Ideal);
    let mom_dec = find(SimdIsa::Mom, HierarchyKind::Decoupled);
    let mom_ideal = find(SimdIsa::Mom, HierarchyKind::Ideal);
    let baseline = mmx_conv.at(1).expect("1-thread baseline");
    let mmx_best = mmx_dec.at(8).expect("8-thread MMX");
    let mom_best = mom_dec.at(8).expect("8-thread MOM");
    Headline {
        baseline_ipc: baseline,
        mmx_speedup: mmx_best / baseline,
        mom_speedup: mom_best / baseline,
        mmx_degradation: 1.0 - mmx_best / mmx_ideal.at(8).expect("ideal MMX"),
        mom_degradation: 1.0 - mom_best / mom_ideal.at(8).expect("ideal MOM"),
    }
}

/// One row of Table 3: a benchmark's instruction breakdown under one ISA.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// ISA.
    pub isa: SimdIsa,
    /// Percentage breakdown + total.
    pub breakdown: MixBreakdown,
}

/// Table 3: instruction breakdown per benchmark under both ISAs,
/// generated by walking the traces (no timing simulation needed).
#[must_use]
pub fn table3_breakdown(spec: &WorkloadSpec) -> Vec<Table3Row> {
    let cache = TraceCache::from_env();
    let mut rows = Vec::new();
    for (slot, &b) in Benchmark::PAPER_ORDER.iter().enumerate().take(7) {
        for &isa in &SimdIsa::ALL {
            let mut mix = InstMix::default();
            let mut s = cache.stream_for(spec, slot, isa);
            while let Some(i) = s.next_inst() {
                mix.record(&i);
            }
            rows.push(Table3Row {
                benchmark: b,
                isa,
                breakdown: mix.breakdown(),
            });
        }
    }
    rows
}

/// Suite-level aggregate of Table 3 (the paper's "average" column and
/// the §4.2 reduction claims).
#[must_use]
pub fn table3_suite_mix(spec: &WorkloadSpec, isa: SimdIsa) -> InstMix {
    let cache = TraceCache::from_env();
    let mut total = InstMix::default();
    for slot in 0..Benchmark::PAPER_ORDER.len() {
        let mut s = cache.stream_for(spec, slot, isa);
        while let Some(i) = s.next_inst() {
            total.record(&i);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> WorkloadSpec {
        WorkloadSpec {
            scale: 1.5e-5,
            seed: 11,
        }
    }

    #[test]
    fn fig4_produces_both_isa_curves() {
        let curves = fig4_ideal(&tiny());
        assert_eq!(curves.len(), 2);
        for c in &curves {
            assert_eq!(c.points.len(), 4);
            assert!(c.at(1).unwrap() > 0.0);
            assert!(
                c.at(8).unwrap() > c.at(1).unwrap(),
                "SMT scales under ideal memory ({:?})",
                c.isa
            );
        }
    }

    #[test]
    fn policies_match_paper_figures() {
        assert_eq!(policies_for(SimdIsa::Mmx).len(), 3, "no OCOUNT for MMX");
        assert_eq!(policies_for(SimdIsa::Mom).len(), 4);
    }

    #[test]
    fn table3_has_fourteen_rows() {
        let rows = table3_breakdown(&tiny());
        assert_eq!(rows.len(), 14, "7 benchmarks × 2 ISAs");
        for r in &rows {
            let b = r.breakdown;
            let sum = b.integer_pct + b.fp_pct + b.simd_pct + b.memory_pct;
            assert!((sum - 100.0).abs() < 1e-6, "{sum}");
        }
    }

    #[test]
    fn table4_rows_cover_thread_counts() {
        let rows = table4_cache(&tiny());
        assert_eq!(rows.len(), 8, "2 ISAs × 4 thread counts");
        for r in &rows {
            assert!(r.l1_hit_rate > 0.3 && r.l1_hit_rate <= 1.0, "{r:?}");
            assert!(r.l1_avg_latency >= 1.0, "{r:?}");
        }
    }

    #[test]
    fn cmp_scaling_produces_curves_per_isa_and_thread_count() {
        let curves = cmp_scaling(&tiny());
        assert_eq!(curves.len(), 4, "2 ISAs × 2 thread counts");
        for c in &curves {
            assert_eq!(c.points.len(), CORE_COUNTS.len());
            assert!(c.at(1).unwrap() > 0.0);
            for r in &c.runs {
                assert_eq!(r.threads, c.threads);
                assert!(r.programs_completed >= 8, "{r:?}");
            }
            // More cores must not lose work throughput: the per-core
            // private L1s only add capacity, and the shared L2 is the
            // same size. (Equal is possible at tiny scales.)
            assert!(
                c.at(4).unwrap() >= c.at(1).unwrap() * 0.9,
                "4 cores should roughly scale ({:?} t{}): {:?}",
                c.isa,
                c.threads,
                c.points
            );
        }
    }

    #[test]
    fn headline_computes_from_fig9() {
        let curves = fig9_hierarchy(&tiny());
        assert_eq!(curves.len(), 6, "2 ISAs × 3 hierarchies");
        let h = headline(&curves);
        assert!(h.baseline_ipc > 0.0);
        assert!(h.mmx_speedup > 1.0, "8 threads beat 1: {}", h.mmx_speedup);
        assert!(
            h.mom_speedup > h.mmx_speedup * 0.8,
            "MOM in the same league"
        );
    }
}
