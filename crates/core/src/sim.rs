//! One simulation run with the paper's §5.1 methodology.
//!
//! *"We selected a random order of the 8 programs… Simulation starts
//! with as many programs concurrently as the number of contexts allowed
//! by the machine. When a program completes, the next program from the
//! list is initiated. In case that no further programs are available, we
//! initiate again selecting programs from the same list from the
//! beginning. This process is repeated until the end of the 8th context.
//! This avoids having fractions of time with less threads than those
//! allowed by the machine."*

use crate::frontend::Frontend;
use crate::machine::{self, ExecMode};
use crate::metrics::RunResult;
use crate::resultstore::{ResultCache, ResultKey};
use crate::runner::TraceCache;
use medsim_cpu::{EnvKnobs, FetchPolicy, SchedulerKind};
use medsim_mem::{HierarchyKind, MemConfig};
use medsim_workloads::trace::SimdIsa;
use medsim_workloads::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// Configuration of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// μ-SIMD extension under evaluation.
    pub isa: SimdIsa,
    /// Hardware thread contexts **per core** (1, 2, 4 or 8).
    pub threads: usize,
    /// Cores of the simulated CMP, each a full SMT pipeline with
    /// private L1 levels, all sharing one L2/DRAM backend. The default
    /// of `1` is the paper's machine.
    pub cores: usize,
    /// How the host steps the cores of a CMP each cycle (serial
    /// reference order, or phase-A-parallel behind a barrier). Results
    /// are bitwise identical either way; irrelevant at `cores = 1`.
    pub exec: ExecMode,
    /// Cache-hierarchy organization.
    pub hierarchy: HierarchyKind,
    /// SMT fetch policy.
    pub fetch_policy: FetchPolicy,
    /// Workload scaling/seeding.
    pub spec: WorkloadSpec,
    /// Safety limit on simulated cycles.
    pub max_cycles: u64,
    /// Full memory-system override (ablation studies); when set, its
    /// `hierarchy` field wins over [`SimConfig::hierarchy`].
    pub mem_override: Option<MemConfig>,
    /// Cap on MOM stream lengths (ablation): stream instructions longer
    /// than this are split. `16` (the architectural maximum) disables it.
    pub max_stream_len: u8,
    /// Completion scheduler (calendar queue by default; the seed binary
    /// heap as a differential reference).
    pub scheduler: SchedulerKind,
    /// Batched stream-request path (`false` = per-element reference).
    pub stream_batch: bool,
    /// Decoupled vector-fetch unit (`MEDSIM_DECOUPLE`, default off): a
    /// vector access queue runs ahead of execute, issuing stream loads
    /// early and buffering the replies execute drains in order. Off
    /// keeps the paper-faithful coupled pipeline, bitwise (enforced by
    /// `tests/decouple_equivalence.rs`).
    pub decouple: bool,
    /// Run-ahead window of the decoupled unit (`MEDSIM_DECOUPLE_DEPTH`,
    /// default 8): how many vector loads may sit ahead of execute with
    /// early-issued elements. `0` disables run-ahead issuing entirely —
    /// bitwise identical to `decouple = false`.
    pub decouple_depth: usize,
    /// Parallel-stepping quantum override in cycles (`MEDSIM_QUANTUM`):
    /// how long each core of a parallel CMP steps between shared-
    /// backend synchronizations. `None` derives it from the active
    /// memory configuration's minimum cross-core interaction latency
    /// (see [`machine::quantum_cycles`]); `1` (or `0`) forces the
    /// degenerate per-cycle lockstep schedule. Results are bitwise
    /// identical for every value; irrelevant under [`ExecMode::Serial`].
    pub quantum: Option<u64>,
}

impl SimConfig {
    /// Paper defaults: conventional hierarchy, round-robin fetch,
    /// default workload scale.
    #[must_use]
    pub fn new(isa: SimdIsa, threads: usize) -> Self {
        // Environment-defaulted knobs come from the process-wide
        // EnvKnobs snapshot, so configs built at different times can
        // never disagree because the environment changed in between.
        let knobs = EnvKnobs::get();
        SimConfig {
            isa,
            threads,
            cores: machine::cores_from_env(),
            exec: ExecMode::from_env(),
            hierarchy: HierarchyKind::Conventional,
            fetch_policy: FetchPolicy::RoundRobin,
            spec: WorkloadSpec::default(),
            max_cycles: 2_000_000_000,
            mem_override: None,
            max_stream_len: medsim_isa::MAX_STREAM_LEN,
            scheduler: knobs.scheduler,
            stream_batch: knobs.stream_batch,
            decouple: knobs.decouple,
            decouple_depth: knobs.decouple_depth,
            quantum: knobs.quantum,
        }
    }

    /// Builder: size the CMP (cores sharing one L2/DRAM backend).
    #[must_use]
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Builder: select the host stepping mode for a CMP (differential
    /// testing; results are identical either way).
    #[must_use]
    pub fn with_exec(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }

    /// Builder: select the completion scheduler (differential testing).
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Builder: enable/disable the batched stream-request path
    /// (differential testing).
    #[must_use]
    pub fn with_stream_batch(mut self, enabled: bool) -> Self {
        self.stream_batch = enabled;
        self
    }

    /// Builder: enable/disable the decoupled vector-fetch unit.
    #[must_use]
    pub fn with_decouple(mut self, enabled: bool) -> Self {
        self.decouple = enabled;
        self
    }

    /// Builder: set the decoupled unit's run-ahead window (`0` issues
    /// nothing early — bitwise identical to the unit being off).
    #[must_use]
    pub fn with_decouple_depth(mut self, depth: usize) -> Self {
        self.decouple_depth = depth;
        self
    }

    /// Builder: force the parallel-stepping quantum to `k` cycles
    /// (differential testing; `1` degenerates to per-cycle lockstep).
    #[must_use]
    pub fn with_quantum(mut self, k: u64) -> Self {
        self.quantum = Some(k);
        self
    }

    /// Builder: override the full memory configuration (ablations).
    #[must_use]
    pub fn with_mem(mut self, mem: MemConfig) -> Self {
        self.hierarchy = mem.hierarchy;
        self.mem_override = Some(mem);
        self
    }

    /// Builder: cap MOM stream lengths (ablations).
    #[must_use]
    pub fn with_max_stream_len(mut self, cap: u8) -> Self {
        self.max_stream_len = cap;
        self
    }

    /// Builder: set the hierarchy.
    #[must_use]
    pub fn with_hierarchy(mut self, h: HierarchyKind) -> Self {
        self.hierarchy = h;
        self
    }

    /// Builder: set the fetch policy.
    #[must_use]
    pub fn with_policy(mut self, p: FetchPolicy) -> Self {
        self.fetch_policy = p;
        self
    }

    /// Builder: set the workload spec.
    #[must_use]
    pub fn with_spec(mut self, spec: WorkloadSpec) -> Self {
        self.spec = spec;
        self
    }
}

/// Namespace for running simulations.
#[derive(Debug)]
pub struct Simulation;

impl Simulation {
    /// Execute one run and collect its metrics.
    ///
    /// Equivalent to [`Simulation::run_cached`] with a run-local trace
    /// cache: program slots that cycle back to the same list entry
    /// replay the memoized trace instead of regenerating it.
    ///
    /// # Panics
    ///
    /// Panics if the run exceeds `config.max_cycles` (indicates a
    /// deadlocked model — should never happen).
    #[must_use]
    pub fn run(config: &SimConfig) -> RunResult {
        Simulation::run_cached(config, &TraceCache::from_env())
    }

    /// Execute one run, drawing program traces through `cache` (shared
    /// by [`crate::runner::run_grid`] across a whole grid of runs),
    /// under the environment-selected frontend (see
    /// [`crate::frontend`]).
    ///
    /// # Panics
    ///
    /// Panics if the run exceeds `config.max_cycles` (indicates a
    /// deadlocked model — should never happen).
    #[must_use]
    pub fn run_cached(config: &SimConfig, cache: &TraceCache) -> RunResult {
        Simulation::run_resulted(config, cache, &ResultCache::from_env())
    }

    /// Execute one run through the content-addressed **result cache**
    /// ([`crate::resultstore`]): a warm hit returns the stored
    /// [`RunResult`] without stepping a single pipeline cycle; a miss
    /// simulates and writes the store back. With the cache inactive
    /// (no `MEDSIM_RESULT_DIR`, `MEDSIM_RESULT_CACHE=0`, or
    /// observability output requested — a cached run has no timeline
    /// to trace) this is exactly [`Simulation::run_cached`]'s
    /// uncached behavior, and either way the returned result is
    /// bitwise identical: the store only ever holds what an identical
    /// run produced.
    ///
    /// # Panics
    ///
    /// Panics if the run exceeds `config.max_cycles` (indicates a
    /// deadlocked model — should never happen).
    #[must_use]
    pub fn run_resulted(
        config: &SimConfig,
        cache: &TraceCache,
        results: &ResultCache,
    ) -> RunResult {
        if !results.active() {
            return Simulation::run_fronted(config, cache, &Frontend::from_env());
        }
        let key = ResultKey::of(config, cache);
        if let Some(hit) = results.load(&key) {
            return hit;
        }
        let result = Simulation::run_fronted(config, cache, &Frontend::from_env());
        results.save(&key, &result);
        result
    }

    /// Execute one run under an explicit [`Frontend`]: sharded
    /// (per-thread producer workers feeding bounded rings of decoded
    /// blocks) or inline (the serial reference). Results are bitwise
    /// identical across frontends — the consumer sees the exact same
    /// instruction sequence either way, just earlier (enforced by
    /// `tests/frontend_equivalence.rs`).
    ///
    /// The run is executed by the machine layer ([`crate::machine`]):
    /// one core by default, or a CMP of [`SimConfig::cores`] SMT cores
    /// sharing an L2/DRAM backend, stepped per [`SimConfig::exec`].
    ///
    /// # Panics
    ///
    /// Panics if the run exceeds `config.max_cycles` (indicates a
    /// deadlocked model — should never happen).
    #[must_use]
    pub fn run_fronted(config: &SimConfig, cache: &TraceCache, frontend: &Frontend) -> RunResult {
        machine::run(config, cache, frontend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> WorkloadSpec {
        WorkloadSpec {
            scale: 2e-5,
            seed: 42,
        }
    }

    #[test]
    fn single_thread_run_completes_all_eight_programs() {
        let cfg = SimConfig::new(SimdIsa::Mmx, 1).with_spec(tiny_spec());
        let r = Simulation::run(&cfg);
        assert!(r.cycles > 0);
        assert!(
            r.programs_completed >= 8,
            "all list entries ran: {}",
            r.programs_completed
        );
        assert!(r.ipc() > 0.5, "IPC {}", r.ipc());
    }

    #[test]
    fn more_threads_do_not_lose_throughput_under_ideal_memory() {
        let base = SimConfig::new(SimdIsa::Mmx, 1)
            .with_hierarchy(HierarchyKind::Ideal)
            .with_spec(tiny_spec());
        let smt = SimConfig::new(SimdIsa::Mmx, 4)
            .with_hierarchy(HierarchyKind::Ideal)
            .with_spec(tiny_spec());
        let r1 = Simulation::run(&base);
        let r4 = Simulation::run(&smt);
        assert!(
            r4.equiv_ipc() > r1.equiv_ipc() * 1.15,
            "4 threads {} vs 1 thread {}",
            r4.equiv_ipc(),
            r1.equiv_ipc()
        );
    }

    #[test]
    fn mom_run_reports_equivalent_work() {
        let cfg = SimConfig::new(SimdIsa::Mom, 2)
            .with_hierarchy(HierarchyKind::Ideal)
            .with_spec(tiny_spec());
        let r = Simulation::run(&cfg);
        assert!(r.committed_equiv > r.committed, "MOM streams expand");
    }

    #[test]
    fn deterministic_runs() {
        let cfg = SimConfig::new(SimdIsa::Mmx, 2).with_spec(tiny_spec());
        let a = Simulation::run(&cfg);
        let b = Simulation::run(&cfg);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.committed, b.committed);
    }
}
