//! Performance metrics: IPC, EIPC and run-result collection.
//!
//! §5.1 of the paper: *"the IPC is not a good measure of performance
//! when comparing different ISAs, as every ISA needs a different number
//! of instructions to execute a given benchmark. Therefore … EIPC stands
//! for Equivalent IPC, and intuitively indicates the IPC a SMT+MMX
//! processor should reach in order to match the performance of the
//! SMT+MOM processor"*:
//!
//! ```text
//! EIPC_MOM = (instructions_MMX / instructions_MOM) × IPC_MOM
//! ```
//!
//! where the instruction counts are the workload totals under each ISA
//! (Table 3's `#ins` row) and `IPC_MOM` counts equivalent (stream-length
//! expanded) instructions per cycle.

use crate::sim::SimConfig;
use medsim_cpu::Cpu;
use medsim_mem::HierarchyKind;
use medsim_workloads::trace::SimdIsa;
use medsim_workloads::{Benchmark, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// The `I_MMX / I_MOM` ratio for a workload spec, computed from the
/// generated traces (the model's own Table-3 `#ins` row).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EipcFactor {
    /// Suite total equivalent instructions under MMX.
    pub mmx_insts: u64,
    /// Suite total equivalent instructions under MOM.
    pub mom_insts: u64,
}

impl EipcFactor {
    /// Walk the eight program slots under both ISAs and total their
    /// equivalent instruction counts. Costs one trace generation pass
    /// per ISA; cache the result across experiments.
    #[must_use]
    pub fn compute(spec: &WorkloadSpec) -> Self {
        EipcFactor::compute_cached(spec, &crate::runner::TraceCache::disabled())
    }

    /// [`EipcFactor::compute`] drawing traces through `cache`, so a
    /// grid driver pays for trace generation once across the factor
    /// computation and all of its runs. The per-slot totals come from
    /// the packed traces' precomputed equivalent counts
    /// ([`crate::runner::TraceCache::equiv_total_for`]) — no decode
    /// pass, and resolved traces stay resident for the runs that
    /// follow.
    #[must_use]
    pub fn compute_cached(spec: &WorkloadSpec, cache: &crate::runner::TraceCache) -> Self {
        let total = |isa: SimdIsa| -> u64 {
            (0..Benchmark::PAPER_ORDER.len())
                .map(|slot| cache.equiv_total_for(spec, slot, isa))
                .sum()
        };
        EipcFactor {
            mmx_insts: total(SimdIsa::Mmx),
            mom_insts: total(SimdIsa::Mom),
        }
    }

    /// The ratio `I_MMX / I_MOM` (≈ 1429/1087 ≈ 1.31 in the paper).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.mmx_insts as f64 / self.mom_insts.max(1) as f64
    }
}

/// Counters describing how the machine layer *scheduled* a run: quanta
/// taken vs. lockstep degenerations, parks by cause, and the deferred
/// store-drain operations replayed at quantum boundaries.
///
/// These describe a **host scheduling decision**, not a property of the
/// simulated machine: a serial run and a quantum-parallel run of the
/// same configuration produce bitwise-identical architectural results
/// (the equivalence suites enforce it) while taking entirely different
/// paths through the scheduler. `RunResult`'s equality therefore
/// ignores this block — see the manual `PartialEq` below.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedCounters {
    /// Barrier rounds that degenerated to per-cycle lockstep (no
    /// feasible quantum: a thread near its end, or cores too close to
    /// a refill).
    pub lockstep_rounds: u64,
    /// Barrier rounds that ran as a multi-cycle quantum.
    pub quantum_rounds: u64,
    /// Total cycles covered by quantum rounds.
    pub quantum_cycles: u64,
    /// Quantum-edge parks because phase B would need a synchronous
    /// backend reply (summed over cores).
    pub parks_backend_reply: u64,
    /// Quantum-edge parks from a store-evict / load set collision
    /// (summed over cores).
    pub parks_store_evict: u64,
    /// Deferred store-drain operations replayed at quantum boundaries.
    pub deferred_replays: u64,
}

impl SchedCounters {
    /// Total barrier rounds of either kind.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.lockstep_rounds + self.quantum_rounds
    }

    /// Total quantum-edge parks of either cause.
    #[must_use]
    pub fn parks(&self) -> u64 {
        self.parks_backend_reply + self.parks_store_evict
    }
}

/// Decoupled vector-fetch unit counters, summed across a machine's
/// cores (the max-runahead field takes the per-core maximum instead).
///
/// All zeros with the unit off — and unlike [`SchedCounters`] these
/// describe the *simulated* machine, so `RunResult` equality covers
/// them: the knob-off equivalence suite thereby proves the off path
/// never wakes the unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VfetchCounters {
    /// Stream elements issued early, ahead of execute.
    pub runahead_elems: u64,
    /// Vector loads fully issued by the run-ahead unit and drained by
    /// execute without touching a memory port.
    pub drains: u64,
    /// Maximum run-ahead distance observed (streams holding
    /// early-issued elements ahead of execute); bounded by the
    /// configured window depth.
    pub max_runahead: u64,
    /// Redirect flushes that discarded run-ahead state.
    pub flushes: u64,
    /// Early-issued elements discarded by redirect flushes.
    pub flushed_elems: u64,
    /// Cycles the vector access queue was non-empty (summed).
    pub busy_cycles: u64,
    /// Occupancy integral over those busy cycles.
    pub occupancy_sum: u64,
}

impl VfetchCounters {
    /// Average access-queue occupancy while the unit had work.
    #[must_use]
    pub fn avg_occupancy(&self) -> f64 {
        if self.busy_cycles == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.busy_cycles as f64
        }
    }
}

/// Everything measured in one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// The ISA the run used.
    pub isa: SimdIsa,
    /// Thread count (per core).
    pub threads: usize,
    /// Cores of the simulated CMP (1 = the paper's machine).
    pub cores: usize,
    /// Hierarchy organization.
    pub hierarchy: HierarchyKind,
    /// Cycles to complete the §5.1 workload.
    pub cycles: u64,
    /// Raw instructions committed.
    pub committed: u64,
    /// Equivalent instructions committed.
    pub committed_equiv: u64,
    /// Programs completed across all contexts.
    pub programs_completed: u64,
    /// Branch misprediction rate.
    pub mispredict_rate: f64,
    /// Instruction-cache hit rate (Table 4 row 1).
    pub icache_hit_rate: f64,
    /// L1 data hit rate (Table 4 row 2).
    pub l1_hit_rate: f64,
    /// Average L1 data latency in cycles (Table 4 row 3).
    pub l1_avg_latency: f64,
    /// L2 hit rate.
    pub l2_hit_rate: f64,
    /// Cycles in which only vector instructions issued (§5.3).
    pub vector_only_cycles: u64,
    /// Memory-system stall events observed at issue.
    pub mem_stalls: u64,
    /// Bytes moved over the (chip-shared) DRAM channel — the roofline
    /// numerator, surfaced here so sweeps can report pct-of-roof
    /// without re-deriving it.
    pub dram_bytes: u64,
    /// Decoupled vector-fetch unit counters (all zeros when off).
    pub vfetch: VfetchCounters,
    /// How the machine layer scheduled the run (all zeros for a serial
    /// schedule). **Excluded from equality** — see [`SchedCounters`].
    pub sched: SchedCounters,
}

/// Equality over the *architectural* outcome only: every field except
/// [`RunResult::sched`], which records host scheduling decisions that
/// legitimately differ between bitwise-equivalent serial and parallel
/// runs of the same configuration.
impl PartialEq for RunResult {
    fn eq(&self, other: &Self) -> bool {
        // Exhaustive destructuring (no `..`): adding a field to
        // RunResult forces a decision here about whether it is part of
        // the architectural outcome.
        let RunResult {
            isa,
            threads,
            cores,
            hierarchy,
            cycles,
            committed,
            committed_equiv,
            programs_completed,
            mispredict_rate,
            icache_hit_rate,
            l1_hit_rate,
            l1_avg_latency,
            l2_hit_rate,
            vector_only_cycles,
            mem_stalls,
            dram_bytes,
            vfetch,
            sched: _,
        } = self;
        *isa == other.isa
            && *threads == other.threads
            && *cores == other.cores
            && *hierarchy == other.hierarchy
            && *cycles == other.cycles
            && *committed == other.committed
            && *committed_equiv == other.committed_equiv
            && *programs_completed == other.programs_completed
            && *mispredict_rate == other.mispredict_rate
            && *icache_hit_rate == other.icache_hit_rate
            && *l1_hit_rate == other.l1_hit_rate
            && *l1_avg_latency == other.l1_avg_latency
            && *l2_hit_rate == other.l2_hit_rate
            && *vector_only_cycles == other.vector_only_cycles
            && *mem_stalls == other.mem_stalls
            && *dram_bytes == other.dram_bytes
            && *vfetch == other.vfetch
    }
}

impl RunResult {
    /// Collect metrics from a finished single-core simulation.
    #[must_use]
    pub fn collect(config: &SimConfig, cpu: &Cpu) -> Self {
        RunResult::collect_cores(config, &[cpu])
    }

    /// Collect metrics from a finished machine of one or more cores:
    /// per-core counters are summed, rate denominators are summed
    /// before dividing, and the shared L2/DRAM side is read once (every
    /// core of a CMP sees the same backend). At one core this is
    /// arithmetic-identical to the pre-CMP collection.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is empty.
    #[must_use]
    pub fn collect_cores(config: &SimConfig, cores: &[&Cpu]) -> Self {
        assert!(!cores.is_empty(), "a machine has at least one core");
        let cycles = cores[0].stats().cycles;
        debug_assert!(
            cores.iter().all(|c| c.stats().cycles == cycles),
            "lockstep cores share one clock"
        );
        let sum = |f: &dyn Fn(&Cpu) -> u64| -> u64 { cores.iter().map(|c| f(c)).sum() };
        let branches = sum(&|c| c.stats().threads.iter().map(|t| t.branches).sum());
        let mispredicts = sum(&|c| c.stats().threads.iter().map(|t| t.mispredicts).sum());
        let rate = |num: u64, den: u64, empty: f64| {
            if den == 0 {
                empty
            } else {
                num as f64 / den as f64
            }
        };
        let (ihits, ireads) = cores.iter().fold((0u64, 0u64), |(h, r), c| {
            let s = c.mem().l1i_stats();
            (h + s.hits, r + s.reads())
        });
        let (dhits, dreads) = cores.iter().fold((0u64, 0u64), |(h, r), c| {
            let s = c.mem().l1d_stats();
            (h + s.hits, r + s.reads())
        });
        let (lat_sum, lat_n) = cores.iter().fold((0u64, 0u64), |(s, n), c| {
            let p = c.mem().private_stats();
            (s + p.l1_latency_sum, n + p.l1_accesses)
        });
        RunResult {
            isa: config.isa,
            threads: config.threads,
            cores: cores.len(),
            hierarchy: config.hierarchy,
            cycles,
            committed: sum(&|c| c.stats().committed()),
            committed_equiv: sum(&|c| c.stats().committed_equiv()),
            programs_completed: sum(&|c| {
                c.stats().threads.iter().map(|t| t.programs_completed).sum()
            }),
            mispredict_rate: rate(mispredicts, branches, 0.0),
            icache_hit_rate: rate(ihits, ireads, 1.0),
            l1_hit_rate: rate(dhits, dreads, 1.0),
            l1_avg_latency: rate(lat_sum, lat_n, 0.0),
            l2_hit_rate: cores[0].mem().l2_stats().hit_rate(),
            vector_only_cycles: sum(&|c| c.stats().vector_only_cycles),
            mem_stalls: sum(&|c| c.stats().mem_stalls),
            // The DRAM channel is chip-shared: read it once.
            dram_bytes: cores[0].mem().dram_stats().bytes,
            vfetch: VfetchCounters {
                runahead_elems: sum(&|c| c.stats().vfetch_runahead_elems),
                drains: sum(&|c| c.stats().vfetch_drains),
                max_runahead: cores
                    .iter()
                    .map(|c| c.stats().vfetch_max_runahead)
                    .max()
                    .unwrap_or(0),
                flushes: sum(&|c| c.stats().vfetch_flushes),
                flushed_elems: sum(&|c| c.stats().vfetch_flushed_elems),
                busy_cycles: sum(&|c| c.stats().vfetch_cycles),
                occupancy_sum: sum(&|c| c.stats().vfetch_occupancy_sum),
            },
            sched: SchedCounters {
                parks_backend_reply: sum(&|c| c.stats().parks_backend_reply),
                parks_store_evict: sum(&|c| c.stats().parks_store_evict),
                // Round and replay counts are machine-layer state; the
                // parallel scheduler fills them in after collection.
                ..SchedCounters::default()
            },
        }
    }

    /// Raw instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        self.committed as f64 / self.cycles.max(1) as f64
    }

    /// Equivalent instructions per cycle.
    #[must_use]
    pub fn equiv_ipc(&self) -> f64 {
        self.committed_equiv as f64 / self.cycles.max(1) as f64
    }

    /// The figure-of-merit the paper plots: IPC for MMX runs, EIPC for
    /// MOM runs (needs the workload's instruction-count factor).
    #[must_use]
    pub fn figure_of_merit(&self, factor: &EipcFactor) -> f64 {
        match self.isa {
            SimdIsa::Mmx => self.equiv_ipc(),
            SimdIsa::Mom => factor.ratio() * self.equiv_ipc(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eipc_factor_is_above_one() {
        // MOM fuses instructions: the suite needs fewer of them, so the
        // MMX/MOM ratio exceeds 1 (paper: ≈1.31).
        let spec = WorkloadSpec {
            scale: 2e-5,
            seed: 7,
        };
        let f = EipcFactor::compute(&spec);
        assert!(
            f.mmx_insts > f.mom_insts,
            "{} vs {}",
            f.mmx_insts,
            f.mom_insts
        );
        let r = f.ratio();
        assert!(r > 1.05 && r < 2.0, "ratio {r}");
    }

    #[test]
    fn figure_of_merit_scales_mom_by_the_factor() {
        let f = EipcFactor {
            mmx_insts: 1429,
            mom_insts: 1087,
        };
        let mk = |isa: SimdIsa| RunResult {
            isa,
            threads: 1,
            cores: 1,
            hierarchy: HierarchyKind::Ideal,
            cycles: 100,
            committed: 200,
            committed_equiv: 300,
            programs_completed: 8,
            mispredict_rate: 0.0,
            icache_hit_rate: 1.0,
            l1_hit_rate: 1.0,
            l1_avg_latency: 1.0,
            l2_hit_rate: 1.0,
            vector_only_cycles: 0,
            mem_stalls: 0,
            dram_bytes: 0,
            vfetch: VfetchCounters::default(),
            sched: SchedCounters::default(),
        };
        let mmx = mk(SimdIsa::Mmx);
        assert!(
            (mmx.figure_of_merit(&f) - 3.0).abs() < 1e-12,
            "MMX: plain equivalent IPC"
        );
        let mom = mk(SimdIsa::Mom);
        let expect = 1429.0 / 1087.0 * 3.0;
        assert!((mom.figure_of_merit(&f) - expect).abs() < 1e-12);
    }

    #[test]
    fn ipc_guards_against_zero_cycles() {
        let r = RunResult {
            isa: SimdIsa::Mmx,
            threads: 1,
            cores: 1,
            hierarchy: HierarchyKind::Ideal,
            cycles: 0,
            committed: 0,
            committed_equiv: 0,
            programs_completed: 0,
            mispredict_rate: 0.0,
            icache_hit_rate: 1.0,
            l1_hit_rate: 1.0,
            l1_avg_latency: 0.0,
            l2_hit_rate: 1.0,
            vector_only_cycles: 0,
            mem_stalls: 0,
            dram_bytes: 0,
            vfetch: VfetchCounters::default(),
            sched: SchedCounters::default(),
        };
        assert_eq!(r.ipc(), 0.0);
    }

    #[test]
    fn equality_ignores_sched_counters() {
        let base = RunResult {
            isa: SimdIsa::Mom,
            threads: 4,
            cores: 2,
            hierarchy: HierarchyKind::Conventional,
            cycles: 1000,
            committed: 2000,
            committed_equiv: 4000,
            programs_completed: 8,
            mispredict_rate: 0.05,
            icache_hit_rate: 0.99,
            l1_hit_rate: 0.9,
            l1_avg_latency: 2.0,
            l2_hit_rate: 0.8,
            vector_only_cycles: 10,
            mem_stalls: 5,
            dram_bytes: 4096,
            vfetch: VfetchCounters::default(),
            sched: SchedCounters::default(),
        };
        let mut parallel = base.clone();
        parallel.sched = SchedCounters {
            lockstep_rounds: 3,
            quantum_rounds: 40,
            quantum_cycles: 400,
            parks_backend_reply: 7,
            parks_store_evict: 2,
            deferred_replays: 19,
        };
        assert_eq!(base, parallel, "sched is a host decision, not an outcome");
        assert_eq!(parallel.sched.rounds(), 43);
        assert_eq!(parallel.sched.parks(), 9);
        let mut different = base.clone();
        different.cycles += 1;
        assert_ne!(base, different);
    }
}
