//! Decoupled per-thread frontends: trace synthesis and packed-trace
//! decode sharded across host cores.
//!
//! The paper's machine runs up to eight independent media-program
//! instruction streams (§5.1). The cycle loop consumes those streams
//! as blocks of decoded [`Inst`]s ([`InstSource`]); this module moves
//! the *production* of those blocks — workload synthesis on a cache
//! miss, packed-trace decode on replay — onto worker threads, one per
//! attached program, feeding the cycle loop through bounded SPSC ring
//! buffers. Decode overlaps simulation instead of stalling it, and the
//! consumer observes the **exact same instruction sequence** either
//! way, so results are bitwise identical to the inline path (enforced
//! by `tests/frontend_equivalence.rs`).
//!
//! The worker pool is a process-wide **job budget** shared with
//! [`crate::runner::run_grid`]: grid workers and frontend shards draw
//! permits from the same `MEDSIM_JOBS` pool, so a figure-5 grid does
//! not oversubscribe the host while a lone big run finally uses its
//! idle cores. When no permit is available, a shard falls back to
//! producing inline on the consumer thread — same sequence, no extra
//! thread.
//!
//! Environment knobs (resolved once per process):
//!
//! * `MEDSIM_FRONTEND` — `inline` forces the serial reference path
//!   (the differential baseline); anything else, or unset, shards;
//! * `MEDSIM_PREFETCH_BLOCKS` — ring depth in decoded blocks per
//!   shard (default 4, clamped to `1..=64`);
//! * `MEDSIM_JOBS` — the shared worker pool size (default: available
//!   parallelism).

use medsim_isa::Inst;
use medsim_workloads::trace::InstSource;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicIsize, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::Scope;

/// Which frontend feeds the cycle loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontendKind {
    /// Blocks are produced inline on the simulation thread (the
    /// differential reference path).
    Inline,
    /// Blocks are produced by budgeted worker threads and shipped over
    /// bounded rings (falling back to inline when the budget is dry).
    Sharded,
}

impl FrontendKind {
    /// Frontend selected by `MEDSIM_FRONTEND` (`inline` for the serial
    /// reference; anything else, or unset, shards). Resolved once per
    /// process.
    #[must_use]
    pub fn from_env() -> Self {
        static KIND: OnceLock<FrontendKind> = OnceLock::new();
        *KIND.get_or_init(|| match std::env::var("MEDSIM_FRONTEND") {
            Ok(v) if v.eq_ignore_ascii_case("inline") => FrontendKind::Inline,
            _ => FrontendKind::Sharded,
        })
    }
}

/// Ring depth in blocks from `MEDSIM_PREFETCH_BLOCKS` (default 4,
/// clamped to `1..=64`). Resolved once per process.
#[must_use]
pub fn prefetch_blocks_from_env() -> usize {
    static DEPTH: OnceLock<usize> = OnceLock::new();
    *DEPTH.get_or_init(|| {
        std::env::var("MEDSIM_PREFETCH_BLOCKS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map_or(4, |n| n.clamp(1, 64))
    })
}

/// Total worker budget of the process: `MEDSIM_JOBS` if set, else the
/// machine's available parallelism. Resolved once per process.
#[must_use]
pub fn total_workers() -> usize {
    static TOTAL: OnceLock<usize> = OnceLock::new();
    *TOTAL.get_or_init(|| {
        std::env::var("MEDSIM_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&j| j > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            })
    })
}

/// A counting pool of *extra* worker threads (beyond the thread doing
/// the asking). [`crate::runner::run_grid`] claims permits for its grid
/// workers and frontend shards claim one per producer, so the two
/// levels of parallelism share one `MEDSIM_JOBS` budget instead of
/// multiplying.
#[derive(Debug)]
pub struct JobBudget {
    permits: AtomicIsize,
}

impl JobBudget {
    /// A budget of `extra` worker threads.
    #[must_use]
    pub fn new(extra: usize) -> Self {
        JobBudget {
            permits: AtomicIsize::new(extra.try_into().unwrap_or(isize::MAX)),
        }
    }

    /// The process-wide budget: [`total_workers`]` - 1` extra threads
    /// (the calling thread is the first worker).
    #[must_use]
    pub fn global() -> &'static JobBudget {
        static GLOBAL: OnceLock<JobBudget> = OnceLock::new();
        GLOBAL.get_or_init(|| JobBudget::new(total_workers().saturating_sub(1)))
    }

    /// Permits currently available (snapshot; racy by nature).
    #[must_use]
    pub fn available(&self) -> usize {
        self.permits.load(Ordering::Relaxed).max(0) as usize
    }

    /// Try to take one permit. The permit returns to the pool on drop.
    #[must_use]
    pub fn try_acquire(&self) -> Option<JobPermit<'_>> {
        let prev = self.permits.fetch_sub(1, Ordering::AcqRel);
        if prev <= 0 {
            self.permits.fetch_add(1, Ordering::AcqRel);
            return None;
        }
        Some(JobPermit { budget: self })
    }

    /// Take up to `want` permits as one claim (for a batch of grid
    /// workers). The claim returns its permits on drop.
    #[must_use]
    pub fn claim_up_to(&self, want: usize) -> BudgetClaim<'_> {
        let mut taken = 0usize;
        while taken < want {
            let prev = self.permits.fetch_sub(1, Ordering::AcqRel);
            if prev <= 0 {
                self.permits.fetch_add(1, Ordering::AcqRel);
                break;
            }
            taken += 1;
        }
        BudgetClaim {
            budget: self,
            taken,
        }
    }
}

/// One held worker permit (see [`JobBudget::try_acquire`]).
#[derive(Debug)]
pub struct JobPermit<'b> {
    budget: &'b JobBudget,
}

impl Drop for JobPermit<'_> {
    fn drop(&mut self) {
        self.budget.permits.fetch_add(1, Ordering::AcqRel);
    }
}

/// A batch of held permits (see [`JobBudget::claim_up_to`]).
#[derive(Debug)]
pub struct BudgetClaim<'b> {
    budget: &'b JobBudget,
    taken: usize,
}

impl BudgetClaim<'_> {
    /// How many permits the claim actually obtained.
    #[must_use]
    pub fn taken(&self) -> usize {
        self.taken
    }

    /// Return permits beyond `keep` to the pool immediately; the rest
    /// stay held until drop. Lets a caller that over-claimed (it could
    /// not know its real need yet) hand the surplus back to concurrent
    /// grid workers and frontend shards instead of parking it.
    pub fn shrink_to(&mut self, keep: usize) {
        if keep < self.taken {
            self.budget.permits.fetch_add(
                (self.taken - keep).try_into().unwrap_or(isize::MAX),
                Ordering::AcqRel,
            );
            self.taken = keep;
        }
    }
}

impl Drop for BudgetClaim<'_> {
    fn drop(&mut self) {
        self.budget.permits.fetch_add(
            self.taken.try_into().unwrap_or(isize::MAX),
            Ordering::AcqRel,
        );
    }
}

/// Process-wide frontend counters (diagnostics — deliberately *not*
/// part of [`crate::metrics::RunResult`], which must stay bitwise
/// identical across frontends).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontendStats {
    /// Program attaches served by a dedicated producer thread.
    pub sharded: u64,
    /// Program attaches produced inline (inline frontend, or budget
    /// exhausted).
    pub inline: u64,
}

static SHARDED_SOURCES: AtomicU64 = AtomicU64::new(0);
static INLINE_SOURCES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide frontend counters.
#[must_use]
pub fn stats() -> FrontendStats {
    FrontendStats {
        sharded: SHARDED_SOURCES.load(Ordering::Relaxed),
        inline: INLINE_SOURCES.load(Ordering::Relaxed),
    }
}

/// Frontend selection for one simulation run: the kind, the ring depth
/// and the worker budget the shards draw from.
#[derive(Debug, Clone, Copy)]
pub struct Frontend<'b> {
    /// Sharded or inline.
    pub kind: FrontendKind,
    /// Ring capacity in decoded blocks per shard.
    pub prefetch_blocks: usize,
    /// Worker pool the shards draw permits from.
    pub budget: &'b JobBudget,
}

impl Frontend<'static> {
    /// The environment-selected frontend over the global budget (what
    /// [`crate::sim::Simulation::run`] uses).
    #[must_use]
    pub fn from_env() -> Self {
        Frontend {
            kind: FrontendKind::from_env(),
            prefetch_blocks: prefetch_blocks_from_env(),
            budget: JobBudget::global(),
        }
    }

    /// The serial inline reference frontend.
    #[must_use]
    pub fn inline() -> Self {
        Frontend {
            kind: FrontendKind::Inline,
            prefetch_blocks: prefetch_blocks_from_env(),
            budget: JobBudget::global(),
        }
    }
}

impl<'b> Frontend<'b> {
    /// A sharded frontend over an explicit budget (tests, benches —
    /// independent of the global pool and the environment).
    #[must_use]
    pub fn sharded_with(budget: &'b JobBudget) -> Self {
        Frontend {
            kind: FrontendKind::Sharded,
            prefetch_blocks: prefetch_blocks_from_env(),
            budget,
        }
    }

    /// Realize one program's instruction supply under this frontend.
    ///
    /// `make` builds the underlying source (workload synthesis or
    /// packed-trace decode). Sharded with a permit available: `make`
    /// runs on a new scoped producer thread that fills a bounded ring
    /// of blocks, and the returned source is the ring consumer.
    /// Otherwise `make` runs right here and its source is returned
    /// unwrapped. Either way the consumer sees the identical
    /// instruction sequence.
    pub fn source<'scope>(
        &self,
        scope: &'scope Scope<'scope, '_>,
        make: impl FnOnce() -> Box<dyn InstSource> + Send + 'scope,
    ) -> Box<dyn InstSource>
    where
        'b: 'scope,
    {
        if self.kind == FrontendKind::Inline {
            INLINE_SOURCES.fetch_add(1, Ordering::Relaxed);
            return make();
        }
        let Some(permit) = self.budget.try_acquire() else {
            INLINE_SOURCES.fetch_add(1, Ordering::Relaxed);
            if medsim_obs::tracing() {
                // The budget was dry: this shard degrades to inline
                // production on the consumer thread.
                medsim_obs::emit(
                    medsim_obs::approx_now(),
                    medsim_obs::LANE_FRONTEND,
                    medsim_obs::EventKind::BudgetWait,
                    0,
                );
            }
            return make();
        };
        SHARDED_SOURCES.fetch_add(1, Ordering::Relaxed);
        // JobPermit borrows the budget for 'b; the producer thread only
        // needs it for 'scope, which `source` callers guarantee is
        // outlived by the budget ('b: 'scope via the `self` borrow).
        let ring = Ring::new(self.prefetch_blocks);
        let producer = RingProducer {
            ring: Arc::clone(&ring),
        };
        scope.spawn(move || {
            let _permit = permit;
            let mut source = make();
            loop {
                // Reuse a spent buffer from the consumer when one is
                // waiting; steady state allocates nothing.
                let mut block = producer.take_spare();
                if !source.next_block(&mut block) {
                    break;
                }
                if producer.send(block).is_err() {
                    // Consumer gone (the run finished early, or its
                    // thread is unwinding through an abort): stop
                    // producing.
                    break;
                }
            }
        });
        Box::new(RingSource { ring })
    }
}

/// Shared state of one shard's bounded SPSC ring: decoded blocks in
/// flight, spent buffers headed back for reuse, and the two disconnect
/// flags.
///
/// Both disconnects (producer exhausted its source; consumer dropped —
/// possibly mid-panic while an abort guard unwinds the simulation) are
/// a flag write plus a `notify_all` **under the same mutex the other
/// side waits on**, so a park/detach interleaving that loses the
/// wakeup cannot be expressed: either the waiter re-checks the flag
/// before sleeping, or it is woken by the notify. Every lock
/// acquisition is poison-tolerant — the whole point of the disconnect
/// path is surviving a panicking peer.
struct RingState {
    blocks: VecDeque<Vec<Inst>>,
    spares: Vec<Vec<Inst>>,
    producer_done: bool,
    consumer_gone: bool,
}

struct Ring {
    capacity: usize,
    state: Mutex<RingState>,
    cond: Condvar,
}

impl Ring {
    fn new(capacity: usize) -> Arc<Ring> {
        Arc::new(Ring {
            capacity: capacity.max(1),
            state: Mutex::new(RingState {
                blocks: VecDeque::new(),
                spares: Vec::new(),
                producer_done: false,
                consumer_gone: false,
            }),
            cond: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, RingState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn wait<'g>(&self, guard: MutexGuard<'g, RingState>) -> MutexGuard<'g, RingState> {
        self.cond
            .wait(guard)
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Producer half of one shard's ring (owned by the producer thread).
struct RingProducer {
    ring: Arc<Ring>,
}

impl RingProducer {
    /// A spent buffer returned by the consumer, if one is waiting
    /// (never blocks).
    fn take_spare(&self) -> Vec<Inst> {
        self.ring.lock().spares.pop().unwrap_or_default()
    }

    /// Ship one decoded block, blocking while the ring is full.
    /// `Err` when the consumer is gone (the block is dropped).
    fn send(&self, block: Vec<Inst>) -> Result<(), ()> {
        let mut st = self.ring.lock();
        loop {
            if st.consumer_gone {
                return Err(());
            }
            if st.blocks.len() < self.ring.capacity {
                let was_empty = st.blocks.is_empty();
                st.blocks.push_back(block);
                if was_empty {
                    // The consumer only ever waits on an empty ring.
                    self.ring.cond.notify_all();
                }
                return Ok(());
            }
            st = self.ring.wait(st);
        }
    }
}

impl Drop for RingProducer {
    fn drop(&mut self) {
        let mut st = self.ring.lock();
        st.producer_done = true;
        self.ring.cond.notify_all();
    }
}

/// Consumer half of one shard's ring: hands decoded blocks to the
/// cycle loop, returning spent buffers for reuse.
struct RingSource {
    ring: Arc<Ring>,
}

impl InstSource for RingSource {
    fn next_block(&mut self, out: &mut Vec<Inst>) -> bool {
        let mut st = self.ring.lock();
        let mut stalled = false;
        loop {
            if let Some(mut block) = st.blocks.pop_front() {
                let was_full = st.blocks.len() + 1 == self.ring.capacity;
                // `out` holds the spent previous block; swap it to the
                // producer for reuse and hand its replacement back.
                std::mem::swap(out, &mut block);
                st.spares.push(block);
                if was_full {
                    // The producer only ever waits on a full ring.
                    self.ring.cond.notify_all();
                }
                return true;
            }
            if st.producer_done {
                // Producer finished and the ring drained.
                out.clear();
                return false;
            }
            if !stalled && medsim_obs::tracing() {
                // Under-run: the cycle loop is about to block on the
                // producer. Emitted once per under-run, like the old
                // probe-then-recv shape.
                medsim_obs::emit(
                    medsim_obs::approx_now(),
                    medsim_obs::LANE_FRONTEND,
                    medsim_obs::EventKind::RingStall,
                    0,
                );
            }
            stalled = true;
            st = self.ring.wait(st);
        }
    }
}

impl Drop for RingSource {
    fn drop(&mut self) {
        let mut st = self.ring.lock();
        st.consumer_gone = true;
        self.ring.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsim_isa::prelude::*;
    use medsim_workloads::trace::{BlockStream, StreamIter, VecSource};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn program(rng: &mut SmallRng, n: usize) -> Vec<Inst> {
        (0..n)
            .map(|i| {
                let imm: i32 = rng.gen_range(-8000..8000);
                Inst::int_rri(IntOp::Addi, int((i % 28) as u8 + 1), int(0), imm).at(4 * i as u64)
            })
            .collect()
    }

    #[test]
    fn budget_counts_and_restores_permits() {
        let budget = JobBudget::new(2);
        assert_eq!(budget.available(), 2);
        let a = budget.try_acquire().expect("first permit");
        let b = budget.try_acquire().expect("second permit");
        assert!(budget.try_acquire().is_none(), "pool exhausted");
        drop(a);
        assert_eq!(budget.available(), 1);
        let claim = budget.claim_up_to(5);
        assert_eq!(claim.taken(), 1, "claims are best-effort");
        drop(claim);
        drop(b);
        assert_eq!(budget.available(), 2, "all permits restored");
        // Shrinking returns the surplus immediately, keeps the rest.
        let mut claim = budget.claim_up_to(2);
        assert_eq!(claim.taken(), 2);
        claim.shrink_to(1);
        assert_eq!(claim.taken(), 1);
        assert_eq!(budget.available(), 1, "surplus permit back in the pool");
        claim.shrink_to(5);
        assert_eq!(claim.taken(), 1, "growing is not a thing");
        drop(claim);
        assert_eq!(budget.available(), 2);
    }

    #[test]
    fn budget_never_oversubscribes_under_concurrent_claim_release() {
        // Property: across racing acquirers, the permits in flight
        // never exceed the pool, and every permit returns — including
        // permits dropped early, batch claims dropped unused, and
        // claims that raced to a partial take.
        use std::sync::atomic::AtomicUsize;
        const POOL: usize = 3;
        let budget = JobBudget::new(POOL);
        let in_flight = AtomicUsize::new(0);
        let max_seen = AtomicUsize::new(0);
        let track = |n: usize| {
            let now = in_flight.fetch_add(n, Ordering::SeqCst) + n;
            max_seen.fetch_max(now, Ordering::SeqCst);
        };
        std::thread::scope(|scope| {
            for t in 0..6u64 {
                let budget = &budget;
                let in_flight = &in_flight;
                let track = &track;
                scope.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(0xb06e7 + t);
                    for _ in 0..500 {
                        match rng.gen_range(0..3) {
                            0 => {
                                if let Some(permit) = budget.try_acquire() {
                                    track(1);
                                    if rng.gen_range(0..2) == 0 {
                                        std::thread::yield_now();
                                    }
                                    in_flight.fetch_sub(1, Ordering::SeqCst);
                                    drop(permit);
                                }
                            }
                            1 => {
                                let want = rng.gen_range(0..POOL + 2);
                                let claim = budget.claim_up_to(want);
                                assert!(claim.taken() <= want);
                                track(claim.taken());
                                in_flight.fetch_sub(claim.taken(), Ordering::SeqCst);
                                drop(claim);
                            }
                            _ => {
                                // Early drop: take and abandon immediately.
                                let claim = budget.claim_up_to(1);
                                track(claim.taken());
                                in_flight.fetch_sub(claim.taken(), Ordering::SeqCst);
                            }
                        }
                    }
                });
            }
        });
        assert!(
            max_seen.load(Ordering::SeqCst) <= POOL,
            "permits in flight exceeded the pool: {}",
            max_seen.load(Ordering::SeqCst)
        );
        assert!(
            max_seen.load(Ordering::SeqCst) > 0,
            "the property run must actually acquire permits"
        );
        assert_eq!(
            budget.available(),
            POOL,
            "every permit restored after the storm"
        );
    }

    #[test]
    fn ring_replays_any_source_exactly() {
        // Property-style: random programs of random sizes through a
        // real producer thread + ring must equal the inline sequence,
        // at several ring depths (including depth 1, maximal
        // backpressure).
        let mut rng = SmallRng::seed_from_u64(0x51a6);
        for case in 0..12 {
            let n = rng.gen_range(0..6000);
            let insts = program(&mut rng, n);
            let depth = [1usize, 2, 7][case % 3];
            let budget = JobBudget::new(1);
            let frontend = Frontend {
                kind: FrontendKind::Sharded,
                prefetch_blocks: depth,
                budget: &budget,
            };
            let got: Vec<Inst> = std::thread::scope(|scope| {
                let feed = insts.clone();
                let source = frontend.source(scope, move || Box::new(VecSource::new(feed)));
                StreamIter(BlockStream::new(source)).collect()
            });
            assert_eq!(got, insts, "case {case} depth {depth}");
        }
    }

    #[test]
    fn exhausted_budget_falls_back_inline() {
        let budget = JobBudget::new(0);
        let frontend = Frontend {
            kind: FrontendKind::Sharded,
            prefetch_blocks: 4,
            budget: &budget,
        };
        let before = stats();
        let mut rng = SmallRng::seed_from_u64(9);
        let insts = program(&mut rng, 500);
        let got: Vec<Inst> = std::thread::scope(|scope| {
            let feed = insts.clone();
            let source = frontend.source(scope, move || Box::new(VecSource::new(feed)));
            StreamIter(BlockStream::new(source)).collect()
        });
        assert_eq!(got, insts, "inline fallback replays exactly");
        // The counters are process-global and other tests in this
        // binary run concurrently, so only monotonic facts are safe to
        // assert: the fallback was counted, and this frontend never
        // took a permit from its (empty) pool.
        assert!(stats().inline > before.inline, "fallback counted");
        assert_eq!(budget.available(), 0, "no permit was ever available");
    }

    #[test]
    fn dropping_the_consumer_unblocks_the_producer() {
        // A consumer that stops mid-program: the scope must still join
        // (the producer's send fails once the receiver is gone).
        let budget = JobBudget::new(1);
        let frontend = Frontend {
            kind: FrontendKind::Sharded,
            prefetch_blocks: 1,
            budget: &budget,
        };
        let mut rng = SmallRng::seed_from_u64(77);
        let insts = program(&mut rng, 50_000);
        std::thread::scope(|scope| {
            let mut source = frontend.source(scope, move || Box::new(VecSource::new(insts)));
            let mut block = Vec::new();
            assert!(source.next_block(&mut block));
            drop(source);
            // Scope exit joins the producer; a deadlock here fails the
            // test by hanging.
        });
        assert_eq!(budget.available(), 1, "permit returned");
    }

    #[test]
    fn consumer_detach_always_wakes_a_parked_producer() {
        // Pins the ring's disconnect guarantee: a producer parked on a
        // full ring must always observe the consumer's detach (the
        // machine's abort guard relies on this to unwedge producers
        // when a run unwinds). The race window for a lost wakeup would
        // be one park/detach interleaving, so loop many times with a
        // depth-1 ring (the producer parks after the second block) and
        // a consumer that detaches while the producer is (probably)
        // parked.
        let block = program(&mut SmallRng::seed_from_u64(5), 4);
        for round in 0..300 {
            let ring = Ring::new(1);
            let producer = RingProducer {
                ring: Arc::clone(&ring),
            };
            let mut consumer = RingSource {
                ring: Arc::clone(&ring),
            };
            let payload = block.clone();
            let handle = std::thread::spawn(move || {
                let mut sent = 0u32;
                while producer.send(payload.clone()).is_ok() {
                    sent += 1;
                }
                sent
            });
            // Vary how far the consumer gets before detaching so the
            // drop lands on every producer state: mid-send, parked on
            // full, and between sends.
            let mut out = Vec::new();
            for _ in 0..(round % 4) {
                if !consumer.next_block(&mut out) {
                    break;
                }
            }
            if round % 2 == 0 {
                std::thread::yield_now();
            }
            drop(consumer);
            let sent = handle.join().expect("producer exits after detach");
            assert!(sent >= 1 || round % 4 == 0, "producer made progress");
        }
    }

    #[test]
    fn env_knobs_freeze() {
        let kind = FrontendKind::from_env();
        let depth = prefetch_blocks_from_env();
        crate::testenv::with_env_vars(
            &[
                ("MEDSIM_FRONTEND", "inline"),
                ("MEDSIM_PREFETCH_BLOCKS", "63"),
            ],
            || {
                assert_eq!(FrontendKind::from_env(), kind);
                assert_eq!(prefetch_blocks_from_env(), depth);
            },
        );
    }
}
