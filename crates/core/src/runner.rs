//! The parallel experiment engine.
//!
//! The paper's evaluation is a grid: every figure/table sweeps
//! `(μ-SIMD ISA × {1,2,4,8} threads × hierarchy × fetch policy)`. Each
//! grid point is an independent simulation, so [`run_grid`] fans the
//! points out across OS threads with a work-stealing index and collects
//! the results back **in input order** — bit-identical to running each
//! config through [`Simulation::run`] serially (enforced by the
//! `grid_equivalence` integration tests).
//!
//! The second lever is the [`TraceCache`]: all grid points over one
//! [`WorkloadSpec`] consume the same eight program traces, and trace
//! generation is a large fraction of small-scale runs. The cache holds
//! each trace as an [`Arc`]`<`[`PackedTrace`]`>` — the compact
//! `medsim-trace` encoding at roughly a quarter of the 64 B/inst cost of
//! the former `Vec<Inst>`, which raises the cacheable scale ~4× under
//! the same budget — keyed by `(slot, isa, spec)` and replayed through
//! the chunked [`PackedStream`] decoder.
//!
//! The cache also layers over the **persistent on-disk trace store**
//! ([`TraceStore`]): when `MEDSIM_TRACE_DIR` is set, misses read through
//! the store before synthesizing, and synthesized traces are written
//! back — so repeated figure/bench invocations across *processes* skip
//! trace generation entirely. Corrupt or version-mismatched store files
//! silently fall back to synthesis (counted in [`TraceCache::stats`]).
//!
//! Environment knobs:
//!
//! * `MEDSIM_JOBS` — worker threads (default: available parallelism);
//! * `MEDSIM_TRACE_CACHE` — set to `0` to disable trace memoization;
//! * `MEDSIM_TRACE_CACHE_MAX_BYTES` — approximate in-memory budget for
//!   packed traces (default 256 MiB). Traces whose estimated packed
//!   size does not fit the remaining budget fall back to streamed
//!   generation. (`MEDSIM_TRACE_CACHE_MAX_INSTS` is still honored as a
//!   legacy alias, converted at the old 64 B/inst resident cost.)
//! * `MEDSIM_TRACE_DIR` — directory of the persistent trace store
//!   (unset: persistence disabled);
//! * `MEDSIM_RESULT_DIR` / `MEDSIM_RESULT_CACHE` — the persistent
//!   **result** store ([`crate::resultstore`]): grid points whose
//!   complete identity hash matches a stored run return its
//!   [`RunResult`] without simulating at all.

use crate::frontend::{total_workers, JobBudget};
use crate::metrics::RunResult;
use crate::resultstore::ResultCache;
use crate::sim::{SimConfig, Simulation};
use medsim_isa::Inst;
use medsim_trace::{PackedStream, PackedTrace, StoreStats, TraceKey, TraceStore};
use medsim_workloads::trace::{
    BlockStream, InstSource, InstStream, SimdIsa, StreamIter, VecSource,
};
use medsim_workloads::{Workload, WorkloadSpec};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Default in-memory budget for packed traces: 256 MiB. The former
/// `Vec<Inst>` ceiling (4M insts × 64 B) allowed the same bytes, so the
/// packed encoding admits roughly 4× the instructions by default.
const DEFAULT_BYTE_BUDGET: u64 = 256 * 1024 * 1024;

/// Resident bytes per instruction of the old `Vec<Inst>` representation
/// (legacy `MEDSIM_TRACE_CACHE_MAX_INSTS` conversion).
const UNPACKED_BYTES_PER_INST: u64 = 64;

/// Conservative packed-size estimate used for budget admission before a
/// trace is synthesized (the real suite averages ~10–12 B/inst; the
/// acceptance tests pin ≤ 16).
const EST_PACKED_BYTES_PER_INST: f64 = 16.0;

/// Counters describing the cache's behavior, including the on-disk
/// store layer (zeros when no store is configured).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Traces synthesized from workload generators (in-memory and store
    /// both missed, or the trace did not fit the budget).
    pub synthesized: u64,
    /// Approximate packed bytes resident in the in-memory cache.
    pub bytes_used: u64,
    /// On-disk store counters (all zero without `MEDSIM_TRACE_DIR`).
    pub store: StoreStats,
}

/// Resolve the in-memory byte budget from the two knob values:
/// `MEDSIM_TRACE_CACHE_MAX_BYTES` wins; the legacy
/// `MEDSIM_TRACE_CACHE_MAX_INSTS` instruction-count ceiling is
/// converted at the 64 B/inst resident cost instructions had when that
/// knob was introduced; unparseable or absent values fall back to the
/// 256 MiB default.
fn byte_budget_from(max_bytes: Option<&str>, legacy_max_insts: Option<&str>) -> u64 {
    max_bytes
        .and_then(|v| v.parse::<u64>().ok())
        .or_else(|| {
            legacy_max_insts
                .and_then(|v| v.parse::<u64>().ok())
                .map(|insts| insts.saturating_mul(UNPACKED_BYTES_PER_INST))
        })
        .unwrap_or(DEFAULT_BYTE_BUDGET)
}

fn cache_key(spec: &WorkloadSpec, slot: usize, isa: SimdIsa) -> TraceKey {
    TraceKey {
        // Streams cycle through the eight-entry program list, so slot 8
        // replays slot 0's trace (§5.1).
        slot: slot % 8,
        isa,
        scale_bits: spec.scale.to_bits(),
        seed: spec.seed,
    }
}

/// Memoizes packed program traces per `(slot, isa, spec)`, layered over
/// the optional persistent [`TraceStore`].
///
/// Shared across the workers of a grid (and usable across grids over
/// the same spec). Thread-safe; concurrent misses on the same key may
/// generate the trace twice, but the generators are deterministic so
/// either result is identical and one wins the insert.
#[derive(Debug)]
pub struct TraceCache {
    enabled: bool,
    byte_budget: u64,
    bytes_used: AtomicU64,
    synthesized: AtomicU64,
    store: Option<TraceStore>,
    map: Mutex<HashMap<TraceKey, Arc<PackedTrace>>>,
    /// Memoized [`PackedTrace::content_checksum`] per key — the result
    /// cache hashes the eight workload traces into every
    /// [`crate::resultstore::ResultKey`], and this keeps that from
    /// costing more than one resolution per trace per grid.
    checksums: Mutex<HashMap<TraceKey, u64>>,
    /// Memoized equivalent-instruction totals per key (the EIPC
    /// factor's Table-3 `#ins` inputs), so the factor computation never
    /// decodes a trace it — or any run in the grid — already resolved.
    equiv_totals: Mutex<HashMap<TraceKey, u64>>,
}

impl TraceCache {
    /// A cache configured from the environment (see module docs).
    #[must_use]
    pub fn from_env() -> Self {
        let enabled = std::env::var("MEDSIM_TRACE_CACHE").map_or(true, |v| v != "0");
        let byte_budget = byte_budget_from(
            std::env::var("MEDSIM_TRACE_CACHE_MAX_BYTES")
                .ok()
                .as_deref(),
            std::env::var("MEDSIM_TRACE_CACHE_MAX_INSTS")
                .ok()
                .as_deref(),
        );
        TraceCache {
            enabled,
            byte_budget,
            bytes_used: AtomicU64::new(0),
            synthesized: AtomicU64::new(0),
            store: TraceStore::from_env(),
            map: Mutex::new(HashMap::new()),
            checksums: Mutex::new(HashMap::new()),
            equiv_totals: Mutex::new(HashMap::new()),
        }
    }

    /// A cache that never memoizes (every stream is generated afresh).
    #[must_use]
    pub fn disabled() -> Self {
        TraceCache {
            enabled: false,
            byte_budget: 0,
            bytes_used: AtomicU64::new(0),
            synthesized: AtomicU64::new(0),
            store: None,
            map: Mutex::new(HashMap::new()),
            checksums: Mutex::new(HashMap::new()),
            equiv_totals: Mutex::new(HashMap::new()),
        }
    }

    /// Builder: attach an explicit persistent store (tests, tools) in
    /// place of the `MEDSIM_TRACE_DIR` one.
    #[must_use]
    pub fn with_store(mut self, store: TraceStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Number of memoized traces.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked while holding the cache lock.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().expect("trace cache poisoned").len()
    }

    /// Whether the cache holds no traces.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the cache and store counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            synthesized: self.synthesized.load(Ordering::Relaxed),
            bytes_used: self.bytes_used.load(Ordering::Relaxed),
            store: self
                .store
                .as_ref()
                .map(TraceStore::stats)
                .unwrap_or_default(),
        }
    }

    /// The block-oriented instruction source for program-list `slot`
    /// under `isa`, memoized when enabled and the estimated packed size
    /// fits the byte budget; read through (and written back to) the
    /// persistent store when one is configured. This is the interface
    /// the CPU model consumes — and the call a sharded frontend's
    /// producer thread runs, so synthesis and decode happen off the
    /// cycle loop.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked while holding the cache lock.
    #[must_use]
    pub fn source_for(
        &self,
        spec: &WorkloadSpec,
        slot: usize,
        isa: SimdIsa,
    ) -> Box<dyn InstSource> {
        let workload = Workload::new(*spec);
        if !self.enabled {
            return workload.source_for_slot(slot, isa);
        }
        // Map lookup first: a hit costs no new budget, so it must not
        // be subject to admission (a near-full cache would otherwise
        // re-synthesize traces it already holds).
        let key = cache_key(spec, slot, isa);
        if let Some(trace) = self.map.lock().expect("trace cache poisoned").get(&key) {
            return Box::new(PackedStream::new(Arc::clone(trace)));
        }
        if !self.admits(spec, slot, isa) {
            self.synthesized.fetch_add(1, Ordering::Relaxed);
            return workload.source_for_slot(slot, isa);
        }
        // Resolve the miss outside the lock: store reads and synthesis
        // can take a while and other workers may need other traces.
        let (trace, materialized) = self.load_or_synthesize(&workload, &key, slot, isa);
        let mut map = self.map.lock().expect("trace cache poisoned");
        let entry = map.entry(key).or_insert_with(|| {
            self.bytes_used
                .fetch_add(trace.packed_bytes() as u64, Ordering::Relaxed);
            Arc::clone(&trace)
        });
        // On a synthesis miss the instructions were materialized to be
        // packed; hand them to this first consumer directly (memcpy
        // block replay) instead of round-tripping through the decoder.
        match materialized {
            Some(insts) => Box::new(VecSource::new(insts)),
            None => Box::new(PackedStream::new(Arc::clone(entry))),
        }
    }

    /// [`TraceCache::source_for`] as a per-instruction stream
    /// (analysis consumers and tests).
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked while holding the cache lock.
    #[must_use]
    pub fn stream_for(
        &self,
        spec: &WorkloadSpec,
        slot: usize,
        isa: SimdIsa,
    ) -> Box<dyn InstStream> {
        Box::new(BlockStream::new(self.source_for(spec, slot, isa)))
    }

    /// Store read-through, falling back to synthesis plus write-back.
    /// Synthesis also returns the materialized instructions so the
    /// caller can serve the first consumer without a decode pass.
    fn load_or_synthesize(
        &self,
        workload: &Workload,
        key: &TraceKey,
        slot: usize,
        isa: SimdIsa,
    ) -> (Arc<PackedTrace>, Option<Vec<Inst>>) {
        if let Some(store) = &self.store {
            if let Some(trace) = store.load(key) {
                return (Arc::new(trace), None);
            }
        }
        self.synthesized.fetch_add(1, Ordering::Relaxed);
        let insts: Vec<Inst> = StreamIter(workload.stream_for_slot(slot, isa)).collect();
        let trace = Arc::new(PackedTrace::pack(insts.iter().copied()));
        if let Some(store) = &self.store {
            // Write-back failures are non-fatal: the store is a cache,
            // and its `io_errors` counter records the event.
            let _ = store.store(key, &trace);
        }
        (trace, Some(insts))
    }

    /// Stable content checksum of the packed trace for `(spec, slot,
    /// isa)` — what the result cache folds into its keys. Memoized per
    /// key; resolves through the in-memory map, then the persistent
    /// store, then synthesis (which, when the trace is admitted,
    /// leaves it resident for the simulation that asked).
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked while holding a cache lock.
    #[must_use]
    pub fn trace_checksum(&self, spec: &WorkloadSpec, slot: usize, isa: SimdIsa) -> u64 {
        let key = cache_key(spec, slot, isa);
        if let Some(&sum) = self
            .checksums
            .lock()
            .expect("checksum memo poisoned")
            .get(&key)
        {
            return sum;
        }
        let sum = self.compute_checksum(&key, spec, slot, isa);
        self.checksums
            .lock()
            .expect("checksum memo poisoned")
            .insert(key, sum);
        sum
    }

    fn compute_checksum(
        &self,
        key: &TraceKey,
        spec: &WorkloadSpec,
        slot: usize,
        isa: SimdIsa,
    ) -> u64 {
        if self.enabled {
            if let Some(trace) = self.map.lock().expect("trace cache poisoned").get(key) {
                return trace.content_checksum();
            }
        }
        // Same miss resolution as `source_for`: store read-through,
        // else synthesize + write back. The packed trace is then kept
        // resident when admissible — whoever asked for the checksum is
        // about to run (or hit the result cache for) this very config.
        let workload = Workload::new(*spec);
        let (trace, _) = self.load_or_synthesize(&workload, key, slot, isa);
        let sum = trace.content_checksum();
        if self.enabled && self.admits(spec, slot, isa) {
            let mut map = self.map.lock().expect("trace cache poisoned");
            map.entry(*key).or_insert_with(|| {
                self.bytes_used
                    .fetch_add(trace.packed_bytes() as u64, Ordering::Relaxed);
                trace
            });
        }
        sum
    }

    /// Total equivalent instructions of the trace for `(spec, slot,
    /// isa)` — the Table-3 `#ins` input of
    /// [`crate::metrics::EipcFactor`]. Memoized per key. Resolution
    /// order mirrors [`TraceCache::source_for`]: an in-memory hit reads
    /// the packed trace's precomputed total (O(1), no decode); a miss
    /// resolves through the store / synthesis — leaving the trace
    /// resident when admissible, since the factor computation always
    /// precedes the grid that consumes the same traces — and a
    /// disabled cache walks a fresh stream.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked while holding a cache lock.
    #[must_use]
    pub fn equiv_total_for(&self, spec: &WorkloadSpec, slot: usize, isa: SimdIsa) -> u64 {
        let key = cache_key(spec, slot, isa);
        if let Some(&t) = self
            .equiv_totals
            .lock()
            .expect("equiv-total memo poisoned")
            .get(&key)
        {
            return t;
        }
        let total = self.compute_equiv_total(&key, spec, slot, isa);
        self.equiv_totals
            .lock()
            .expect("equiv-total memo poisoned")
            .insert(key, total);
        total
    }

    fn compute_equiv_total(
        &self,
        key: &TraceKey,
        spec: &WorkloadSpec,
        slot: usize,
        isa: SimdIsa,
    ) -> u64 {
        if self.enabled {
            if let Some(trace) = self.map.lock().expect("trace cache poisoned").get(key) {
                return trace.equiv_total();
            }
            if self.admits(spec, slot, isa) {
                let workload = Workload::new(*spec);
                let (trace, _) = self.load_or_synthesize(&workload, key, slot, isa);
                let total = trace.equiv_total();
                let mut map = self.map.lock().expect("trace cache poisoned");
                map.entry(*key).or_insert_with(|| {
                    self.bytes_used
                        .fetch_add(trace.packed_bytes() as u64, Ordering::Relaxed);
                    trace
                });
                return total;
            }
        }
        // Disabled or not admissible: stream the generator once and sum
        // (exactly what the pre-memo EIPC pass did per call).
        self.synthesized.fetch_add(1, Ordering::Relaxed);
        let workload = Workload::new(*spec);
        StreamIter(workload.stream_for_slot(slot, isa))
            .map(|i| i.equivalent_count())
            .sum()
    }

    /// Budget admission: memoize only traces whose estimated packed
    /// size (from the paper's Table-3 instruction counts, scaled) fits
    /// the *remaining* byte budget — full-scale runs stream their
    /// multi-hundred-million instruction traces instead of holding them
    /// resident.
    fn admits(&self, spec: &WorkloadSpec, slot: usize, isa: SimdIsa) -> bool {
        let benchmark = Workload::slot_benchmark(slot);
        let estimated_insts = benchmark.paper_minsts(isa) * 1.0e6 * spec.scale;
        let estimated_bytes = estimated_insts * EST_PACKED_BYTES_PER_INST;
        let used = self.bytes_used.load(Ordering::Relaxed);
        estimated_bytes <= self.byte_budget.saturating_sub(used) as f64
    }
}

/// Worker-thread count for a grid of `n_configs` runs: the process's
/// [`total_workers`] budget (`MEDSIM_JOBS`, else available
/// parallelism), capped at the number of runs.
#[must_use]
pub fn effective_jobs(n_configs: usize) -> usize {
    total_workers().min(n_configs).max(1)
}

/// Run every configuration and return the results in input order.
///
/// Fans out across OS threads (see [`effective_jobs`]) with a shared
/// [`TraceCache`]. Results are bit-identical to mapping
/// [`Simulation::run`] over the slice serially.
#[must_use]
pub fn run_grid(configs: &[SimConfig]) -> Vec<RunResult> {
    let cache = TraceCache::from_env();
    run_grid_with(configs, effective_jobs(configs.len()), &cache)
}

/// [`run_grid`] with explicit worker count and trace cache. The
/// result cache is the environment-configured one, constructed once
/// for the whole grid.
///
/// # Panics
///
/// Propagates panics from worker threads (a panicking simulation run
/// aborts the grid).
#[must_use]
pub fn run_grid_with(configs: &[SimConfig], jobs: usize, cache: &TraceCache) -> Vec<RunResult> {
    run_grid_resulted(configs, jobs, cache, &ResultCache::from_env())
}

/// [`run_grid_with`] with an explicit result cache: every grid point
/// is a read-through lookup (warm hits skip simulation entirely) with
/// write-back after cold runs. Results are bit-identical either way —
/// the store only ever returns what an identical run produced.
///
/// # Panics
///
/// Propagates panics from worker threads (a panicking simulation run
/// aborts the grid).
#[must_use]
pub fn run_grid_resulted(
    configs: &[SimConfig],
    jobs: usize,
    cache: &TraceCache,
    results: &ResultCache,
) -> Vec<RunResult> {
    if configs.is_empty() {
        return Vec::new();
    }
    if jobs <= 1 || configs.len() == 1 {
        return configs
            .iter()
            .map(|c| Simulation::run_resulted(c, cache, results))
            .collect();
    }
    // Grid workers and frontend shards draw from the same MEDSIM_JOBS
    // pool: claim the extra workers (beyond the calling thread, which
    // blocks while the grid runs) so the per-run sharded frontends
    // inside the workers see an exhausted budget and produce inline
    // instead of oversubscribing the host.
    let workers = jobs.min(configs.len());
    let _claim = JobBudget::global().claim_up_to(workers - 1);
    let next = AtomicUsize::new(0);
    let done = Mutex::new(Vec::with_capacity(configs.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(config) = configs.get(idx) else {
                    break;
                };
                let result = Simulation::run_resulted(config, cache, results);
                done.lock()
                    .expect("result sink poisoned")
                    .push((idx, result));
            });
        }
    });
    let mut indexed = done.into_inner().expect("result sink poisoned");
    indexed.sort_by_key(|&(idx, _)| idx);
    debug_assert_eq!(indexed.len(), configs.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsim_workloads::WorkloadSpec;

    fn tiny() -> WorkloadSpec {
        WorkloadSpec {
            scale: 1.5e-5,
            seed: 3,
        }
    }

    fn unique_dir(tag: &str) -> std::path::PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "medsim-runner-test-{tag}-{}-{n}",
            std::process::id()
        ))
    }

    #[test]
    fn cached_streams_replay_generated_streams() {
        let spec = tiny();
        let cache = TraceCache::from_env();
        for isa in SimdIsa::ALL {
            for slot in 0..8 {
                let mut fresh = Workload::new(spec).stream_for_slot(slot, isa);
                let mut cached = cache.stream_for(&spec, slot, isa);
                let mut n = 0u64;
                loop {
                    let (a, b) = (fresh.next_inst(), cached.next_inst());
                    assert_eq!(a, b, "{isa} slot {slot} inst {n}");
                    if a.is_none() {
                        break;
                    }
                    n += 1;
                }
                assert!(n > 0);
            }
        }
        assert_eq!(cache.len(), 16, "2 ISAs x 8 slots memoized");
        let stats = cache.stats();
        assert_eq!(stats.synthesized, 16, "each trace synthesized once");
        assert!(stats.bytes_used > 0, "byte accounting tracks inserts");
    }

    #[test]
    fn cycling_slots_share_cache_entries() {
        let spec = tiny();
        let cache = TraceCache::from_env();
        let _ = cache.stream_for(&spec, 0, SimdIsa::Mmx);
        let _ = cache.stream_for(&spec, 8, SimdIsa::Mmx);
        assert_eq!(cache.len(), 1, "slot 8 replays slot 0 (§5.1 cycling)");
        assert_eq!(cache.stats().synthesized, 1);
    }

    #[test]
    fn oversized_traces_are_not_memoized() {
        let spec = WorkloadSpec {
            scale: 1.0,
            seed: 1,
        };
        let cache = TraceCache::from_env();
        assert!(
            !cache.admits(&spec, 0, SimdIsa::Mmx),
            "full-scale mpeg2enc (~640M insts, ~10 GB packed) must stream"
        );
        assert!(cache.admits(&tiny(), 0, SimdIsa::Mmx));
    }

    #[test]
    fn byte_budget_is_cumulative() {
        // A budget that fits roughly one tiny trace: admission must
        // tighten as bytes accumulate instead of counting entries.
        let spec = tiny();
        let probe = TraceCache::from_env();
        let _ = probe.stream_for(&spec, 0, SimdIsa::Mmx);
        let one_trace_bytes = probe.stats().bytes_used;
        assert!(one_trace_bytes > 0);

        // Admission uses the conservative 16 B/inst estimate, inserts
        // account actual packed bytes; a budget of (estimate + half a
        // trace) admits exactly one.
        let estimate = (Workload::slot_benchmark(0).paper_minsts(SimdIsa::Mmx)
            * 1.0e6
            * spec.scale
            * EST_PACKED_BYTES_PER_INST)
            .ceil() as u64;
        let mut small = TraceCache::from_env();
        small.byte_budget = estimate + one_trace_bytes / 2;
        assert!(small.admits(&spec, 0, SimdIsa::Mmx));
        let _ = small.stream_for(&spec, 0, SimdIsa::Mmx);
        // Same benchmark under a different seed: distinct key, same
        // estimate — but the remaining budget no longer covers it.
        let reseeded = WorkloadSpec {
            seed: spec.seed + 1,
            ..spec
        };
        assert!(
            !small.admits(&reseeded, 0, SimdIsa::Mmx),
            "remaining budget too small for a second trace"
        );
        let _ = small.stream_for(&reseeded, 0, SimdIsa::Mmx);
        assert_eq!(small.len(), 1, "second trace streamed, not memoized");
        assert_eq!(small.stats().synthesized, 2);
        // A key already in the map must be served from the map even
        // with the budget exhausted — hits cost no new bytes.
        let _ = small.stream_for(&spec, 0, SimdIsa::Mmx);
        assert_eq!(
            small.stats().synthesized,
            2,
            "cached key served from memory despite full budget"
        );
    }

    #[test]
    fn zero_byte_budget_admits_nothing_but_still_streams() {
        let spec = tiny();
        let mut cache = TraceCache::from_env();
        cache.byte_budget = 0;
        assert!(!cache.admits(&spec, 0, SimdIsa::Mmx));
        // Streams still flow — straight from synthesis, unmemoized.
        let mut want = Vec::new();
        let mut s = Workload::new(spec).stream_for_slot(0, SimdIsa::Mmx);
        while let Some(i) = s.next_inst() {
            want.push(i);
        }
        let mut got = Vec::new();
        let mut s = cache.stream_for(&spec, 0, SimdIsa::Mmx);
        while let Some(i) = s.next_inst() {
            got.push(i);
        }
        assert_eq!(got, want);
        assert_eq!(cache.len(), 0, "nothing memoized under a zero budget");
        assert_eq!(cache.stats().bytes_used, 0);
        assert_eq!(cache.stats().synthesized, 1);
    }

    #[test]
    fn legacy_max_insts_knob_converts_at_64_bytes_per_inst() {
        // MAX_BYTES wins when both are set.
        assert_eq!(byte_budget_from(Some("12345"), Some("99")), 12345);
        // The legacy instruction ceiling converts at the 64 B/inst
        // resident cost of the former Vec<Inst> representation.
        assert_eq!(
            byte_budget_from(None, Some("1000")),
            1000 * UNPACKED_BYTES_PER_INST
        );
        // Saturating: a huge legacy count must not wrap.
        assert_eq!(
            byte_budget_from(None, Some(&u64::MAX.to_string())),
            u64::MAX
        );
        // Unparseable or absent values fall back to the default.
        assert_eq!(byte_budget_from(Some("oops"), None), DEFAULT_BYTE_BUDGET);
        assert_eq!(byte_budget_from(None, Some("-3")), DEFAULT_BYTE_BUDGET);
        assert_eq!(byte_budget_from(None, None), DEFAULT_BYTE_BUDGET);
        // And an unparseable MAX_BYTES still honors the legacy knob.
        assert_eq!(
            byte_budget_from(Some(""), Some("2")),
            2 * UNPACKED_BYTES_PER_INST
        );
    }

    #[test]
    fn estimate_fits_but_real_size_overshoots_the_budget() {
        // At microscopic scales the admission estimate (paper Table-3
        // counts x scale x 16 B) is a handful of bytes, but generators
        // floor at one work unit, so the real packed trace is orders of
        // magnitude bigger. Admission is by estimate (the trace does
        // not exist yet); the insert then accounts *actual* bytes, so
        // the budget overshoots once and subsequent admissions see a
        // saturated pool — the documented "approximate budget"
        // behavior.
        let spec = WorkloadSpec {
            scale: 1e-9,
            seed: 5,
        };
        let estimate = (Workload::slot_benchmark(0).paper_minsts(SimdIsa::Mmx)
            * 1.0e6
            * spec.scale
            * EST_PACKED_BYTES_PER_INST)
            .ceil() as u64;
        let mut cache = TraceCache::from_env();
        cache.byte_budget = estimate + 8;
        assert!(cache.admits(&spec, 0, SimdIsa::Mmx), "estimate fits");
        let mut s = cache.stream_for(&spec, 0, SimdIsa::Mmx);
        let mut n = 0u64;
        while s.next_inst().is_some() {
            n += 1;
        }
        assert!(n > 100, "one floored work unit is much bigger: {n} insts");
        let stats = cache.stats();
        assert_eq!(cache.len(), 1, "the admitted trace is memoized anyway");
        assert!(
            stats.bytes_used > cache.byte_budget,
            "actual packed bytes ({}) overshoot the budget ({})",
            stats.bytes_used,
            cache.byte_budget
        );
        // The pool is saturated: the same benchmark under another seed
        // (same estimate) is no longer admitted...
        let reseeded = WorkloadSpec {
            seed: spec.seed + 1,
            ..spec
        };
        assert!(!cache.admits(&reseeded, 0, SimdIsa::Mmx));
        // ...but the resident key keeps serving from memory.
        let _ = cache.stream_for(&spec, 0, SimdIsa::Mmx);
        assert_eq!(cache.stats().synthesized, 1, "no re-synthesis on a hit");
    }

    #[test]
    fn store_read_through_and_write_back() {
        let dir = unique_dir("readthrough");
        let spec = tiny();

        // First cache: cold store — synthesizes and writes back.
        let cold = TraceCache::from_env().with_store(medsim_trace::TraceStore::at(&dir));
        let mut a = Vec::new();
        let mut s = cold.stream_for(&spec, 0, SimdIsa::Mom);
        while let Some(i) = s.next_inst() {
            a.push(i);
        }
        let cold_stats = cold.stats();
        assert_eq!(cold_stats.synthesized, 1);
        assert_eq!(cold_stats.store.writes, 1);
        assert_eq!(cold_stats.store.misses, 1);

        // Second cache (fresh process, same dir): warm store — loads
        // without synthesizing.
        let warm = TraceCache::from_env().with_store(medsim_trace::TraceStore::at(&dir));
        let mut b = Vec::new();
        let mut s = warm.stream_for(&spec, 0, SimdIsa::Mom);
        while let Some(i) = s.next_inst() {
            b.push(i);
        }
        assert_eq!(a, b, "store round-trip is lossless");
        let warm_stats = warm.stats();
        assert_eq!(warm_stats.synthesized, 0, "no synthesis on a warm store");
        assert_eq!(warm_stats.store.hits, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_store_files_fall_back_to_synthesis() {
        let dir = unique_dir("corrupt");
        let spec = tiny();
        let seed_cache = TraceCache::from_env().with_store(medsim_trace::TraceStore::at(&dir));
        let mut want = Vec::new();
        let mut s = seed_cache.stream_for(&spec, 2, SimdIsa::Mmx);
        while let Some(i) = s.next_inst() {
            want.push(i);
        }

        // Garble every stored file.
        for entry in std::fs::read_dir(&dir).expect("store dir") {
            let path = entry.expect("entry").path();
            let mut bytes = std::fs::read(&path).expect("read");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xff;
            std::fs::write(&path, &bytes).expect("garble");
        }

        let cache = TraceCache::from_env().with_store(medsim_trace::TraceStore::at(&dir));
        let mut got = Vec::new();
        let mut s = cache.stream_for(&spec, 2, SimdIsa::Mmx);
        while let Some(i) = s.next_inst() {
            got.push(i);
        }
        assert_eq!(got, want, "fallback synthesis yields the same trace");
        let stats = cache.stats();
        assert_eq!(stats.store.corrupt, 1, "corruption detected and counted");
        assert_eq!(stats.synthesized, 1, "trace re-synthesized");
        assert_eq!(stats.store.writes, 1, "store self-heals on write-back");

        // Third cache over the healed store: a clean hit again.
        let healed = TraceCache::from_env().with_store(medsim_trace::TraceStore::at(&dir));
        let mut s = healed.stream_for(&spec, 2, SimdIsa::Mmx);
        let mut n = 0usize;
        while s.next_inst().is_some() {
            n += 1;
        }
        assert_eq!(n, want.len());
        assert_eq!(healed.stats().store.hits, 1);
        assert_eq!(healed.stats().synthesized, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_grid_is_fine() {
        assert!(run_grid(&[]).is_empty());
    }
}
