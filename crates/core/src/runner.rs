//! The parallel experiment engine.
//!
//! The paper's evaluation is a grid: every figure/table sweeps
//! `(μ-SIMD ISA × {1,2,4,8} threads × hierarchy × fetch policy)`. Each
//! grid point is an independent simulation, so [`run_grid`] fans the
//! points out across OS threads with a work-stealing index and collects
//! the results back **in input order** — bit-identical to running each
//! config through [`Simulation::run`] serially (enforced by the
//! `grid_equivalence` integration tests).
//!
//! The second lever is the [`TraceCache`]: all grid points over one
//! [`WorkloadSpec`] consume the same eight program traces, and trace
//! generation is a large fraction of small-scale runs. The cache
//! memoizes each fully materialized trace behind an [`Arc`] keyed by
//! `(slot, isa, spec)` so it is synthesized once per grid instead of
//! once per run, and replayed by an allocation-free cursor stream.
//!
//! Environment knobs:
//!
//! * `MEDSIM_JOBS` — worker threads (default: available parallelism);
//! * `MEDSIM_TRACE_CACHE` — set to `0` to disable trace memoization;
//! * `MEDSIM_TRACE_CACHE_MAX_INSTS` — per-trace memoization ceiling in
//!   instructions (default 4,000,000 ≈ a few hundred MB at full
//!   workload scale); longer traces fall back to streamed generation.

use crate::metrics::RunResult;
use crate::sim::{SimConfig, Simulation};
use medsim_isa::Inst;
use medsim_workloads::trace::{InstStream, SimdIsa};
use medsim_workloads::{Workload, WorkloadSpec};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Key of one memoized program trace. The workload scale enters via
/// its exact bit pattern: a trace is only ever shared between runs
/// whose specs are identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TraceKey {
    slot: usize,
    isa: SimdIsa,
    scale_bits: u64,
    seed: u64,
}

impl TraceKey {
    fn new(spec: &WorkloadSpec, slot: usize, isa: SimdIsa) -> Self {
        TraceKey {
            // Streams cycle through the eight-entry program list, so
            // slot 8 replays slot 0's trace (§5.1).
            slot: slot % 8,
            isa,
            scale_bits: spec.scale.to_bits(),
            seed: spec.seed,
        }
    }
}

/// Replays a memoized trace: an index walking a shared `Arc<[Inst]>` —
/// no per-instruction work beyond a bounds check.
struct CachedStream {
    trace: Arc<Vec<Inst>>,
    pos: usize,
}

impl InstStream for CachedStream {
    fn next_inst(&mut self) -> Option<Inst> {
        let inst = self.trace.get(self.pos).copied();
        self.pos += inst.is_some() as usize;
        inst
    }
}

/// Memoizes fully materialized program traces per `(slot, isa, spec)`.
///
/// Shared across the workers of a grid (and usable across grids over
/// the same spec). Thread-safe; concurrent misses on the same key may
/// generate the trace twice, but the generators are deterministic so
/// either result is identical and one wins the insert.
#[derive(Debug)]
pub struct TraceCache {
    enabled: bool,
    max_insts: u64,
    map: Mutex<HashMap<TraceKey, Arc<Vec<Inst>>>>,
}

impl TraceCache {
    /// A cache configured from the environment (see module docs).
    #[must_use]
    pub fn from_env() -> Self {
        let enabled = std::env::var("MEDSIM_TRACE_CACHE").map_or(true, |v| v != "0");
        let max_insts = std::env::var("MEDSIM_TRACE_CACHE_MAX_INSTS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(4_000_000);
        TraceCache {
            enabled,
            max_insts,
            map: Mutex::new(HashMap::new()),
        }
    }

    /// A cache that never memoizes (every stream is generated afresh).
    #[must_use]
    pub fn disabled() -> Self {
        TraceCache {
            enabled: false,
            max_insts: 0,
            map: Mutex::new(HashMap::new()),
        }
    }

    /// Number of memoized traces.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked while holding the cache lock.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().expect("trace cache poisoned").len()
    }

    /// Whether the cache holds no traces.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The instruction stream for program-list `slot` under `isa`,
    /// memoized when enabled and the estimated trace length is within
    /// the ceiling.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked while holding the cache lock.
    #[must_use]
    pub fn stream_for(
        &self,
        spec: &WorkloadSpec,
        slot: usize,
        isa: SimdIsa,
    ) -> Box<dyn InstStream> {
        let workload = Workload::new(*spec);
        if !self.enabled || !self.should_memoize(spec, slot, isa) {
            return workload.stream_for_slot(slot, isa);
        }
        let key = TraceKey::new(spec, slot, isa);
        if let Some(trace) = self.map.lock().expect("trace cache poisoned").get(&key) {
            return Box::new(CachedStream {
                trace: Arc::clone(trace),
                pos: 0,
            });
        }
        // Materialize outside the lock: generation can take a while and
        // other workers may need other traces meanwhile.
        let mut source = workload.stream_for_slot(slot, isa);
        let mut insts = Vec::new();
        while let Some(i) = source.next_inst() {
            insts.push(i);
        }
        let trace = Arc::new(insts);
        let mut map = self.map.lock().expect("trace cache poisoned");
        let entry = map.entry(key).or_insert_with(|| Arc::clone(&trace));
        Box::new(CachedStream {
            trace: Arc::clone(entry),
            pos: 0,
        })
    }

    /// Memoize only traces whose estimated dynamic length (from the
    /// paper's Table-3 instruction counts, scaled) fits the ceiling —
    /// full-scale runs stream their multi-hundred-million instruction
    /// traces instead of holding them resident.
    fn should_memoize(&self, spec: &WorkloadSpec, slot: usize, isa: SimdIsa) -> bool {
        let benchmark = Workload::slot_benchmark(slot);
        let estimated = benchmark.paper_minsts(isa) * 1.0e6 * spec.scale;
        estimated <= self.max_insts as f64
    }
}

/// Worker-thread count for a grid of `n_configs` runs: `MEDSIM_JOBS`
/// if set, else the machine's available parallelism, capped at the
/// number of runs.
#[must_use]
pub fn effective_jobs(n_configs: usize) -> usize {
    let jobs = std::env::var("MEDSIM_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&j| j > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        });
    jobs.min(n_configs).max(1)
}

/// Run every configuration and return the results in input order.
///
/// Fans out across OS threads (see [`effective_jobs`]) with a shared
/// [`TraceCache`]. Results are bit-identical to mapping
/// [`Simulation::run`] over the slice serially.
#[must_use]
pub fn run_grid(configs: &[SimConfig]) -> Vec<RunResult> {
    let cache = TraceCache::from_env();
    run_grid_with(configs, effective_jobs(configs.len()), &cache)
}

/// [`run_grid`] with explicit worker count and trace cache.
///
/// # Panics
///
/// Propagates panics from worker threads (a panicking simulation run
/// aborts the grid).
#[must_use]
pub fn run_grid_with(configs: &[SimConfig], jobs: usize, cache: &TraceCache) -> Vec<RunResult> {
    if configs.is_empty() {
        return Vec::new();
    }
    if jobs <= 1 || configs.len() == 1 {
        return configs
            .iter()
            .map(|c| Simulation::run_cached(c, cache))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let done = Mutex::new(Vec::with_capacity(configs.len()));
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(configs.len()) {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(config) = configs.get(idx) else {
                    break;
                };
                let result = Simulation::run_cached(config, cache);
                done.lock()
                    .expect("result sink poisoned")
                    .push((idx, result));
            });
        }
    });
    let mut indexed = done.into_inner().expect("result sink poisoned");
    indexed.sort_by_key(|&(idx, _)| idx);
    debug_assert_eq!(indexed.len(), configs.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsim_workloads::WorkloadSpec;

    fn tiny() -> WorkloadSpec {
        WorkloadSpec {
            scale: 1.5e-5,
            seed: 3,
        }
    }

    #[test]
    fn cached_streams_replay_generated_streams() {
        let spec = tiny();
        let cache = TraceCache::from_env();
        for isa in SimdIsa::ALL {
            for slot in 0..8 {
                let mut fresh = Workload::new(spec).stream_for_slot(slot, isa);
                let mut cached = cache.stream_for(&spec, slot, isa);
                let mut n = 0u64;
                loop {
                    let (a, b) = (fresh.next_inst(), cached.next_inst());
                    assert_eq!(a, b, "{isa} slot {slot} inst {n}");
                    if a.is_none() {
                        break;
                    }
                    n += 1;
                }
                assert!(n > 0);
            }
        }
        assert_eq!(cache.len(), 16, "2 ISAs x 8 slots memoized");
    }

    #[test]
    fn cycling_slots_share_cache_entries() {
        let spec = tiny();
        let cache = TraceCache::from_env();
        let _ = cache.stream_for(&spec, 0, SimdIsa::Mmx);
        let _ = cache.stream_for(&spec, 8, SimdIsa::Mmx);
        assert_eq!(cache.len(), 1, "slot 8 replays slot 0 (§5.1 cycling)");
    }

    #[test]
    fn oversized_traces_are_not_memoized() {
        let spec = WorkloadSpec {
            scale: 1.0,
            seed: 1,
        };
        let cache = TraceCache::from_env();
        assert!(
            !cache.should_memoize(&spec, 0, SimdIsa::Mmx),
            "full-scale mpeg2enc (~640M insts) must stream"
        );
        assert!(cache.should_memoize(&tiny(), 0, SimdIsa::Mmx));
    }

    #[test]
    fn empty_grid_is_fine() {
        assert!(run_grid(&[]).is_empty());
    }
}
