//! The CMP machine layer: N SMT cores sharing an L2/DRAM backend,
//! stepped in multi-cycle quanta bounded by the hierarchy's cross-core
//! interaction latency (degenerating to per-cycle lockstep).
//!
//! The paper's machine is one SMT core. This module scales the *machine
//! model* along the scale-out axis: every core is a full
//! [`Cpu`] pipeline with private L1 levels (data/instruction caches,
//! MSHRs, write buffer, ports, banks), and all cores contend on one
//! [`L2Backend`] — the shared-cache pressure that decides throughput
//! for low-operational-intensity media kernels.
//!
//! ## The per-cycle bus arbiter
//!
//! Each machine cycle is two phases per core:
//!
//! 1. **Phase A** ([`Cpu::cycle_compute`]) — complete, commit, and
//!    issue from the integer/FP/SIMD queues. Touches only core-private
//!    state, so the phases of different cores commute.
//! 2. **Phase B** ([`Cpu::cycle_mem_frontend`]) — memory issue,
//!    dispatch and fetch: everything that reaches the memory system.
//!    The machine runs this phase **serially in fixed core order**,
//!    which is the bus arbiter: the shared backend always observes the
//!    same deterministic, monotonic request sequence, so results are
//!    seed-stable and independent of host scheduling.
//!
//! Under [`ExecMode::Serial`] one thread runs both phases core by core
//! — the reference schedule. Under [`ExecMode::Parallel`] phase A fans
//! out across worker threads (permits drawn from the run's
//! [`JobBudget`](crate::frontend::JobBudget), the same pool the grid
//! runner and the sharded frontends use) behind a per-cycle barrier,
//! and phase B stays serial. Because phase A is core-private and phase
//! B order is fixed, the two modes are **bitwise identical** — enforced
//! by `tests/cmp_equivalence.rs` over cores × threads × hierarchies —
//! and a 1-core machine is stat-for-stat the pre-CMP pipeline.
//!
//! ## Multi-cycle quanta, and how they stay deterministic
//!
//! Two barriers per simulated cycle dwarf the ~µs of phase-A work, so
//! the parallel schedule steps cores in multi-cycle **quanta** whenever
//! it can prove the serial outcome is unchanged — classic conservative-
//! lookahead parallel discrete-event simulation. The lookahead is the
//! minimum cross-core interaction latency of the active memory
//! configuration ([`MemConfig::quantum_bound`]: nothing comes back out
//! of the shared L2/DRAM backend faster than an L2 hit), overridable
//! with `MEDSIM_QUANTUM` / [`SimConfig::quantum`]. Determinism and
//! bitwise equality with the serial reference rest on four mechanisms:
//!
//! 1. **Deferred fire-and-forget traffic.** Inside a quantum each
//!    core's `MemSystem` runs in deferred mode: the only backend
//!    traffic with no synchronous reply (write-buffer drain slots) is
//!    logged cycle-stamped per core instead of touching the backend.
//! 2. **Parking.** Before each in-quantum cycle's phase B the core
//!    checks, conservatively, whether any memory issue or I-fetch might
//!    need a backend *reply* this cycle ([`Cpu::step_quantum`]) —
//!    including the indirect case where a ready store's write-allocate
//!    would evict the L1 set a probed-resident ready load depends on;
//!    if so it stops with phase A done and its local clock frozen. A
//!    `debug_assert` in `MemSystem` guarantees the check never
//!    under-approximates.
//! 3. **The boundary merge.** At the quantum boundary one thread
//!    replays every core's log and finishes every parked core in
//!    **(cycle, core) order** — exactly the per-cycle bus-arbiter
//!    sequence the serial schedule produces, so the backend observes
//!    the identical monotonic request stream.
//! 4. **The supply horizon.** A quantum is only taken when every
//!    thread of every core has enough instructions pulled ahead
//!    ([`Cpu::quantum_horizon`]) that in-quantum fetches never query a
//!    source and no context can drain mid-quantum (the §5.1 refill
//!    stays a boundary-only event). Otherwise the round degenerates to
//!    the per-cycle lockstep schedule above — which is also the `K=1`
//!    behavior, so `MEDSIM_QUANTUM=1` continuously proves the
//!    degenerate case equals the barrier schedule.
//!
//! The idle fast-forward generalizes per-core: when *no* core had any
//! activity this cycle, the whole chip jumps to the earliest per-core
//! wakeup (idle cycles touch no shared state, so the jump is exact).
//! Inside a quantum the same jump applies per core, clipped at the
//! quantum edge.
//!
//! The §5.1 program list generalizes to context order `(core, tid)`:
//! context `(c, t)` starts with list slot `c × threads + t`, drained
//! contexts pull the next slot from a machine-global counter, and the
//! run ends when the first eight list entries complete — at one core
//! this is exactly the paper's methodology.
//!
//! Environment knobs (resolved once per process):
//!
//! * `MEDSIM_CORES` — cores of the simulated CMP (default 1: the
//!   paper's machine, reproducing its figures unchanged);
//! * `MEDSIM_EXEC` — `serial` forces the reference schedule; anything
//!   else, or unset, steps phase A on worker threads when the job
//!   budget has permits (falling back to serial when it is dry).

use crate::frontend::Frontend;
use crate::metrics::{RunResult, SchedCounters};
use crate::runner::TraceCache;
use crate::runreport::{Roofline, Sampler};
use crate::sim::SimConfig;
use medsim_cpu::{Cpu, CpuConfig};
use medsim_mem::{DeferredOp, L2Backend, MemConfig, MemSystem, SharedL2};
use medsim_obs::{EventKind, LANE_MACHINE};
use medsim_workloads::trace::{ClampSource, InstSource};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Number of program-list entries that must complete before a run ends
/// (§5.1: the first eight entries of the cycling list).
pub const PROGRAMS_TO_COMPLETE: usize = 8;

/// How the host steps the cores of a CMP each machine cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecMode {
    /// One thread steps every core, both phases, in core order — the
    /// differential reference schedule.
    Serial,
    /// Phase A fans out across budgeted worker threads behind a
    /// per-cycle barrier; phase B stays serial in core order. Bitwise
    /// identical to [`ExecMode::Serial`].
    Parallel,
}

impl ExecMode {
    /// Stepping mode selected by `MEDSIM_EXEC` (`serial` for the
    /// reference schedule; anything else, or unset, parallel).
    /// Resolved once per process.
    #[must_use]
    pub fn from_env() -> Self {
        static MODE: OnceLock<ExecMode> = OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("MEDSIM_EXEC") {
            Ok(v) if v.eq_ignore_ascii_case("serial") => ExecMode::Serial,
            _ => ExecMode::Parallel,
        })
    }

    /// Label used in experiment output.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            ExecMode::Serial => "serial",
            ExecMode::Parallel => "parallel",
        }
    }
}

impl core::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Cores of the simulated CMP from `MEDSIM_CORES` (default 1 — the
/// paper's single-core machine; clamped to `1..=64`). Resolved once per
/// process.
#[must_use]
pub fn cores_from_env() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::env::var("MEDSIM_CORES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .map_or(1, |n| n.clamp(1, 64))
    })
}

/// The memory configuration a run actually simulates — the ablation
/// override when present, else the paper hierarchy's defaults. The
/// single resolution point [`build_cores`] and [`quantum_cycles`]
/// share, so the lookahead bound always matches the simulated backend.
pub(crate) fn mem_config_of(config: &SimConfig) -> MemConfig {
    config
        .mem_override
        .clone()
        .unwrap_or_else(|| MemConfig::paper_with(config.hierarchy))
}

/// The parallel-stepping quantum in cycles: the explicit override
/// ([`SimConfig::quantum`] / `MEDSIM_QUANTUM`) when set, else `mem`'s
/// minimum cross-core interaction latency
/// ([`MemConfig::quantum_bound`]) — the largest lookahead that is
/// *derivably* safe. Always ≥ 1; `1` is the degenerate per-cycle
/// lockstep schedule. An explicit override is taken as-is (results stay
/// bitwise identical for any value; larger quanta just park more).
#[must_use]
pub fn quantum_cycles(config: &SimConfig, mem: &MemConfig) -> u64 {
    config.quantum.unwrap_or_else(|| mem.quantum_bound()).max(1)
}

/// [`quantum_cycles`] with the memory configuration resolved exactly
/// the way the machine builds its cores (ablation override when
/// present, else the paper hierarchy's defaults).
#[must_use]
pub fn resolved_quantum(config: &SimConfig) -> u64 {
    quantum_cycles(config, &mem_config_of(config))
}

/// The §5.1 program-list scheduler generalized to `(core, tid)`
/// context order.
struct ProgramList {
    /// Current list slot per global context (`core × threads + tid`).
    ctx_slot: Vec<usize>,
    /// Next list slot to hand out.
    next_slot: usize,
    /// Which of the first eight list entries have completed.
    completed: [bool; PROGRAMS_TO_COMPLETE],
}

impl ProgramList {
    fn new(contexts: usize) -> Self {
        ProgramList {
            ctx_slot: (0..contexts).collect(),
            next_slot: contexts,
            completed: [false; PROGRAMS_TO_COMPLETE],
        }
    }

    fn all_done(&self) -> bool {
        self.completed.iter().all(|&x| x)
    }

    /// Refill the drained contexts of core `core` with the next
    /// programs in the list (run after every machine cycle, in fixed
    /// core order).
    fn refill(
        &mut self,
        core: usize,
        threads: usize,
        cpu: &mut Cpu,
        source_for: &impl Fn(usize) -> Box<dyn InstSource>,
    ) {
        for tid in 0..threads {
            if !cpu.thread_idle(tid) {
                continue;
            }
            let ctx = core * threads + tid;
            let slot = self.ctx_slot[ctx];
            if slot < PROGRAMS_TO_COMPLETE {
                self.completed[slot] = true;
            }
            cpu.note_program_completed(tid);
            if self.all_done() {
                continue;
            }
            cpu.attach_source(tid, source_for(self.next_slot));
            self.ctx_slot[ctx] = self.next_slot;
            self.next_slot += 1;
        }
    }
}

/// Build the machine's cores: private L1 levels each, one shared
/// L2/DRAM backend when there is more than one core (a single core
/// owns its backend exclusively — the zero-overhead pre-CMP layout).
/// Returns the shared backend handle alongside the cores so the
/// quantum merge can replay deferred traffic into it directly.
fn build_cores(config: &SimConfig, n_cores: usize) -> (Vec<Cpu>, Option<SharedL2>) {
    let mem_config = mem_config_of(config);
    let cpu_config = CpuConfig::paper(config.threads, config.isa)
        .with_policy(config.fetch_policy)
        .with_scheduler(config.scheduler)
        .with_stream_batch(config.stream_batch)
        .with_decouple(config.decouple)
        .with_decouple_depth(config.decouple_depth);
    let mut cores: Vec<Cpu>;
    let backend;
    if n_cores == 1 {
        cores = vec![Cpu::new(cpu_config, MemSystem::new(mem_config))];
        backend = None;
    } else {
        let shared = L2Backend::shared(&mem_config);
        cores = (0..n_cores)
            .map(|_| {
                Cpu::new(
                    cpu_config.clone(),
                    MemSystem::with_shared_backend(mem_config.clone(), shared.clone()),
                )
            })
            .collect();
        backend = Some(shared);
    }
    // Cosmetic trace-lane tags — never read by the timing model.
    #[allow(clippy::cast_possible_truncation)]
    for (i, cpu) in cores.iter_mut().enumerate() {
        cpu.set_obs_lane(i as u32);
    }
    (cores, backend)
}

/// End-of-run observability outputs: the per-run JSON report
/// (`MEDSIM_REPORT_JSON`) and the Chrome trace (`MEDSIM_TRACE_EVENTS`
/// naming a path). The event sink is process-global with one-run scope:
/// concurrent grid runs interleave their events and the last finisher
/// wins the file — point the knobs at single-run invocations (the
/// intended use), not at grid sweeps.
fn write_obs_outputs(
    config: &SimConfig,
    result: &RunResult,
    cores: &[&Cpu],
    sampler: Option<&Sampler>,
) {
    if medsim_obs::tracing() {
        medsim_obs::emit(
            result.cycles,
            LANE_MACHINE,
            EventKind::RunEnd,
            result.committed,
        );
        if let Some(path) = medsim_obs::trace_path() {
            let (events, dropped) = medsim_obs::drain_events();
            let json = medsim_obs::chrome_trace_json(&events, dropped);
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("medsim: failed to write trace {path}: {e}");
            }
        }
        // No path (programmatic buffer-only mode): leave the events in
        // the sink for the caller to drain.
    }
    if let Some(path) = medsim_obs::report_path() {
        let peak = mem_config_of(config).dram.bytes_per_cycle as f64;
        let roofline = Roofline::collect(cores, peak);
        let json = crate::runreport::report_json(config, result, roofline, sampler);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("medsim: failed to write run report {path}: {e}");
        }
    }
}

/// Marker letting an `impl Trait` return type name a lifetime it
/// captures without bounding by it (the scope's `'env` outlives the
/// factory anyway; stable Rust just needs it spelled out).
trait Captures<'a> {}
impl<T: ?Sized> Captures<'_> for T {}

/// The per-slot instruction-source factory both schedules share: trace
/// synthesis or packed decode through the cache, stream-length
/// clamping, and frontend realization (inline, or on a scoped producer
/// thread). Factored so the serial reference and the parallel schedule
/// can never drift apart — `tests/cmp_equivalence.rs` relies on the
/// two consuming identical instruction supplies.
fn source_factory<'s, 'env: 's, 'b: 's>(
    config: &'s SimConfig,
    cache: &'s TraceCache,
    frontend: &'s Frontend<'b>,
    scope: &'s std::thread::Scope<'s, 'env>,
) -> impl Fn(usize) -> Box<dyn InstSource> + Captures<'env> + 's {
    move |slot: usize| {
        let spec = config.spec;
        let isa = config.isa;
        let cap = config.max_stream_len;
        frontend.source(scope, move || {
            let s = cache.source_for(&spec, slot, isa);
            if cap < medsim_isa::MAX_STREAM_LEN {
                Box::new(ClampSource::new(s, cap))
            } else {
                s
            }
        })
    }
}

/// Contiguous chunk of cores owned by phase-A participant `p` (of
/// `participants` total; participant 0 is the coordinator). The single
/// source of truth for the partition — [`effective_workers`] and its
/// starvation test are defined against this exact formula.
fn chunk_range(p: usize, n_cores: usize, participants: usize) -> std::ops::Range<usize> {
    let per = n_cores.div_ceil(participants);
    (p * per).min(n_cores)..((p + 1) * per).min(n_cores)
}

/// The largest phase-A worker count (≤ `granted`) whose
/// [`chunk_range`] partition leaves no participant with an empty core
/// range: with few cores, `div_ceil` chunking can starve trailing
/// participants, and an empty chunk would burn a thread, a budget
/// permit and two barrier waits per cycle for nothing.
fn effective_workers(n_cores: usize, granted: usize) -> usize {
    let mut w = granted.min(n_cores.saturating_sub(1));
    while w > 0 {
        if !chunk_range(w, n_cores, w + 1).is_empty() {
            break;
        }
        w -= 1;
    }
    w
}

/// Process-wide count of runs the machine layer actually *executed*
/// (stepped pipeline cycles for), as opposed to runs served from the
/// result cache, which never reach this layer at all. The warm-grid
/// tests assert a zero delta across an all-hits grid.
static RUNS_EXECUTED: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide executed-run counter.
#[must_use]
pub fn runs_executed() -> u64 {
    RUNS_EXECUTED.load(Ordering::Relaxed)
}

/// Execute one run on the machine the config describes. This is what
/// [`crate::sim::Simulation::run_fronted`] calls.
///
/// # Panics
///
/// Panics if the run exceeds `config.max_cycles` (indicates a
/// deadlocked model — should never happen).
#[must_use]
pub fn run(config: &SimConfig, cache: &TraceCache, frontend: &Frontend) -> RunResult {
    RUNS_EXECUTED.fetch_add(1, Ordering::Relaxed);
    run_with(config, cache, frontend, true)
}

/// [`run`] with the machine-level idle fast-forward switchable
/// (differential testing: the jump must be stats-invisible).
///
/// # Panics
///
/// Panics if the run exceeds `config.max_cycles`.
#[must_use]
pub fn run_with(
    config: &SimConfig,
    cache: &TraceCache,
    frontend: &Frontend,
    fast_forward: bool,
) -> RunResult {
    let n_cores = config.cores.max(1);
    if n_cores > 1 && config.exec == ExecMode::Parallel {
        // Phase-A workers draw from the same budget as grid workers
        // and frontend shards; a dry pool means this run steps
        // serially instead of oversubscribing the host. Permits beyond
        // what the chunk partition can use go straight back.
        let mut claim = frontend.budget.claim_up_to(n_cores - 1);
        let workers = effective_workers(n_cores, claim.taken());
        claim.shrink_to(workers);
        if workers > 0 {
            return run_parallel(config, cache, frontend, fast_forward, n_cores, workers);
        }
    }
    run_serial(config, cache, frontend, fast_forward, n_cores)
}

/// The reference schedule: one thread steps every core, both phases,
/// in core order.
fn run_serial(
    config: &SimConfig,
    cache: &TraceCache,
    frontend: &Frontend,
    fast_forward: bool,
    n_cores: usize,
) -> RunResult {
    let mut list = ProgramList::new(n_cores * config.threads);
    let mut sampler = Sampler::from_knob(n_cores);
    if medsim_obs::tracing() {
        medsim_obs::emit(0, LANE_MACHINE, EventKind::RunBegin, n_cores as u64);
    }
    // All shard producers are scoped to this run: the scope joins them
    // before returning, and the cores are built (and dropped) *inside*
    // the scope — dropping a core drops its ring consumers, which
    // unblocks any producer still mid-program.
    std::thread::scope(|scope| {
        let (mut cores, _backend) = build_cores(config, n_cores);
        let source_for = source_factory(config, cache, frontend, scope);
        for (core, cpu) in cores.iter_mut().enumerate() {
            for tid in 0..config.threads {
                cpu.attach_source(tid, source_for(core * config.threads + tid));
            }
        }
        loop {
            let mut any_activity = false;
            for cpu in &mut cores {
                any_activity |= cpu.cycle_no_ff();
            }
            if fast_forward && !any_activity {
                chip_fast_forward(&mut cores);
            }
            if let Some(s) = sampler.as_mut() {
                let now = cores[0].now();
                s.maybe_sample(now, cores.iter_mut());
            }
            for (core, cpu) in cores.iter_mut().enumerate() {
                list.refill(core, config.threads, cpu, &source_for);
            }
            if list.all_done() {
                break;
            }
            assert!(
                cores[0].now() < config.max_cycles,
                "simulation exceeded {} cycles — model deadlock?",
                config.max_cycles
            );
        }
        let refs: Vec<&Cpu> = cores.iter().collect();
        let result = RunResult::collect_cores(config, &refs);
        write_obs_outputs(config, &result, &refs, sampler.as_ref());
        result
    })
}

/// A counted round barrier the coordinator can cancel. `wait` blocks
/// until all participants arrive, exactly like `std::sync::Barrier` —
/// unless `cancel` has been called, in which case every parked waiter
/// wakes immediately and every subsequent `wait` returns without
/// blocking. `wait` returns `true` iff the barrier was cancelled, so a
/// waiter can distinguish an orderly round release from a teardown.
///
/// The cancel path is what `std::sync::Barrier` cannot express: an
/// aborting coordinator has no way to know which gate each worker will
/// arrive at next (a worker released from one gate may or may not have
/// sampled an abort flag before parking at the following gate), so any
/// protocol built on counted waits has a lost-pairing window. A sticky
/// cancel needs no pairing at all.
struct RoundBarrier {
    participants: usize,
    state: Mutex<BarrierState>,
    cond: Condvar,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    cancelled: bool,
}

impl RoundBarrier {
    fn new(participants: usize) -> Self {
        RoundBarrier {
            participants,
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                cancelled: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// Blocks until all participants arrive (returns `false`) or the
    /// barrier is cancelled (returns `true`, immediately if cancel
    /// already happened).
    fn wait(&self) -> bool {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.cancelled {
            return true;
        }
        st.arrived += 1;
        if st.arrived == self.participants {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cond.notify_all();
            return false;
        }
        let gen = st.generation;
        while st.generation == gen && !st.cancelled {
            st = self.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.cancelled
    }

    /// Sticky: wakes every parked waiter and makes all future `wait`
    /// calls return `true` without blocking.
    fn cancel(&self) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.cancelled = true;
        self.cond.notify_all();
    }
}

/// Releases the phase-A workers and the frontend producers if the
/// coordinator unwinds mid-run — most importantly through the
/// `max_cycles` model-deadlock assert, whose diagnostic must reach the
/// user instead of hanging the scope join. On drop (armed): cancels the
/// round barrier so workers parked at (or headed for) either gate exit,
/// then detaches every core's ring consumers so producers blocked on
/// full rings unblock. The normal exit path shuts down inline through
/// the `done` flag and disarms the guard.
///
/// A panic *inside a worker's* phase A still hangs the coordinator at
/// the phase-A barrier — worker code is a `Cpu` stepping whose
/// invariants the serial schedule exercises identically first, so a
/// worker-only panic would require a scheduling-dependent model bug.
struct AbortGuard<'a> {
    cells: &'a [Mutex<Cpu>],
    barrier: &'a RoundBarrier,
    armed: bool,
}

impl Drop for AbortGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.barrier.cancel();
        for cell in self.cells {
            let mut cpu = match cell.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            cpu.detach_sources();
        }
    }
}

/// The quantum schedule: each round the coordinator publishes a cycle
/// count `k` — `0` for one per-cycle lockstep round (phase A fanned out
/// on `n_workers + 1` participants, phase B serial in core order), or
/// `k ≥ 2` for a quantum every participant steps its chunk of cores
/// through independently (deferred backend traffic, parking) before the
/// coordinator's boundary merge. The calling thread takes the first
/// chunk of cores either way.
fn run_parallel(
    config: &SimConfig,
    cache: &TraceCache,
    frontend: &Frontend,
    fast_forward: bool,
    n_cores: usize,
    n_workers: usize,
) -> RunResult {
    let (cores, backend) = build_cores(config, n_cores);
    let cells: Vec<Mutex<Cpu>> = cores.into_iter().map(Mutex::new).collect();
    let mut list = ProgramList::new(n_cores * config.threads);
    let mut sampler = Sampler::from_knob(n_cores);
    let mut sched = SchedCounters::default();
    if medsim_obs::tracing() {
        medsim_obs::emit(0, LANE_MACHINE, EventKind::RunBegin, n_cores as u64);
    }
    let barrier = RoundBarrier::new(n_workers + 1);
    let done = AtomicBool::new(false);
    // The coordinator publishes the next round's shape here strictly
    // before releasing the workers at the cycle-start gate, so a plain
    // load after that gate is ordered.
    let round = AtomicU64::new(0);
    let participants = n_workers + 1;
    let chunk = |p: usize| chunk_range(p, n_cores, participants);
    std::thread::scope(|scope| {
        for w in 1..=n_workers {
            let cells = &cells;
            let barrier = &barrier;
            let done = &done;
            let round = &round;
            let range = chunk(w);
            scope.spawn(move || loop {
                // A cancelled gate (either of them) is the abort
                // guard's teardown: exit without touching the cells.
                if barrier.wait() {
                    break;
                }
                // Normal termination: the coordinator sets `done`
                // strictly before arriving at this gate.
                if done.load(Ordering::Acquire) {
                    break;
                }
                match round.load(Ordering::Acquire) {
                    0 => {
                        for i in range.clone() {
                            cells[i].lock().expect("core poisoned").cycle_compute();
                        }
                    }
                    k => {
                        for i in range.clone() {
                            let mut cpu = cells[i].lock().expect("core poisoned");
                            cpu.mem_mut().begin_defer();
                            let bound = cpu.now() + k;
                            cpu.step_quantum(bound, fast_forward);
                        }
                    }
                }
                // `done` must NOT be checked after this gate: the
                // coordinator's normal-termination store happens during
                // the boundary work, concurrently, and an early exit
                // would strand the coordinator at the next gate. (An
                // abort-flag check here would have the mirror-image
                // race — seeing the flag and exiting without arriving
                // at a gate the aborter is counting on — which is why
                // teardown is a barrier cancel, not a flag.)
                if barrier.wait() {
                    break;
                }
            });
        }
        let mut abort = AbortGuard {
            cells: &cells,
            barrier: &barrier,
            armed: true,
        };

        let source_for = source_factory(config, cache, frontend, scope);
        let kq = quantum_cycles(config, &mem_config_of(config));
        let mut finished = false;
        let mut next_k = {
            let mut guards: Vec<MutexGuard<'_, Cpu>> = cells
                .iter()
                .map(|c| c.lock().expect("core poisoned"))
                .collect();
            for (core, cpu) in guards.iter_mut().enumerate() {
                for tid in 0..config.threads {
                    cpu.attach_source(tid, source_for(core * config.threads + tid));
                }
            }
            quantum_feasible(&mut guards, kq)
        };
        // The machine clock at the start of each round — every core
        // agrees on it at every round boundary (lockstep invariant).
        let mut clock: u64 = 0;
        loop {
            if finished {
                done.store(true, Ordering::Release);
            }
            let k = next_k;
            round.store(k, Ordering::Release);
            if k > 0 && medsim_obs::tracing() {
                medsim_obs::emit(clock, LANE_MACHINE, EventKind::QuantumBegin, k);
            }
            barrier.wait(); // release the workers into the round
            if finished {
                break;
            }
            if k == 0 {
                for i in chunk(0) {
                    cells[i].lock().expect("core poisoned").cycle_compute();
                }
            } else {
                for i in chunk(0) {
                    let mut cpu = cells[i].lock().expect("core poisoned");
                    cpu.mem_mut().begin_defer();
                    let bound = cpu.now() + k;
                    cpu.step_quantum(bound, fast_forward);
                }
            }
            barrier.wait(); // round complete everywhere

            // Boundary work under one lock acquisition per core: phase
            // B (or the quantum merge), fast-forward, refill, and the
            // next round's feasibility probe all share these guards.
            let mut guards: Vec<MutexGuard<'_, Cpu>> = cells
                .iter()
                .map(|c| c.lock().expect("core poisoned"))
                .collect();
            if k == 0 {
                // Phase B — the bus arbiter: fixed core order, one
                // thread.
                sched.lockstep_rounds += 1;
                let mut any_activity = false;
                for cpu in guards.iter_mut() {
                    cpu.cycle_mem_frontend();
                    any_activity |= cpu.cycle_finish();
                }
                if fast_forward && !any_activity {
                    let wake = guards.iter().filter_map(|c| c.fast_forward_wake()).min();
                    if let Some(w) = wake {
                        for cpu in guards.iter_mut() {
                            cpu.apply_fast_forward(w);
                        }
                    }
                }
            } else {
                let backend = backend
                    .as_ref()
                    .expect("a multi-core machine shares its backend");
                let replays = merge_quantum(&mut guards, backend, clock, clock + k);
                sched.quantum_rounds += 1;
                sched.quantum_cycles += k;
                sched.deferred_replays += replays;
                if medsim_obs::tracing() {
                    medsim_obs::emit(clock + k, LANE_MACHINE, EventKind::QuantumEnd, replays);
                }
            }
            if let Some(s) = sampler.as_mut() {
                let now = guards[0].now();
                s.maybe_sample(now, guards.iter_mut().map(|g| &mut **g));
            }
            for (core, cpu) in guards.iter_mut().enumerate() {
                list.refill(core, config.threads, cpu, &source_for);
            }
            finished = list.all_done();
            next_k = if finished {
                0
            } else {
                quantum_feasible(&mut guards, kq)
            };
            let now = guards[0].now();
            clock = now;
            // The abort guard's drop re-locks every cell: release these
            // guards before the assert below can unwind into it.
            drop(guards);
            if !finished {
                assert!(
                    now < config.max_cycles,
                    "simulation exceeded {} cycles — model deadlock?",
                    config.max_cycles
                );
            }
        }

        // Workers have observed `done` and exited; the inline shutdown
        // protocol replaced the guard's.
        abort.armed = false;
        let mut guards: Vec<_> = cells
            .iter()
            .map(|c| c.lock().expect("core poisoned"))
            .collect();
        // The cells outlive the scope (the phase-A workers borrow
        // them), so the ring consumers must be dropped explicitly
        // before the scope joins any producer still blocked on a full
        // ring.
        for g in &mut guards {
            g.detach_sources();
        }
        let refs: Vec<&Cpu> = guards.iter().map(|g| &**g).collect();
        let mut result = RunResult::collect_cores(config, &refs);
        // Parks came in with the per-core stats; the round and replay
        // counts live here in the scheduler.
        result.sched.lockstep_rounds = sched.lockstep_rounds;
        result.sched.quantum_rounds = sched.quantum_rounds;
        result.sched.quantum_cycles = sched.quantum_cycles;
        result.sched.deferred_replays = sched.deferred_replays;
        write_obs_outputs(config, &result, &refs, sampler.as_ref());
        result
    })
}

/// Machine-level idle fast-forward: every core just finished a cycle
/// with no activity anywhere, so jump the whole chip to the earliest
/// per-core wakeup (idle cycles touch no shared state, so each core's
/// replicated statistics are exact — see [`Cpu::apply_fast_forward`]).
fn chip_fast_forward(cores: &mut [Cpu]) {
    let wake = cores.iter().filter_map(|c| c.fast_forward_wake()).min();
    if let Some(w) = wake {
        for cpu in cores {
            cpu.apply_fast_forward(w);
        }
    }
}

/// The largest quantum (≤ `kq`, the lookahead bound) every core can
/// step without its in-quantum fetches ever querying an instruction
/// source or a context draining mid-quantum, or `0` when the next round
/// must run per-cycle lockstep. Quanta below 2 cycles cannot beat the
/// barrier round they replace, so they degenerate to it.
fn quantum_feasible(guards: &mut [MutexGuard<'_, Cpu>], kq: u64) -> u64 {
    if kq < 2 {
        return 0;
    }
    let mut h = kq;
    for g in guards.iter_mut() {
        h = h.min(g.quantum_horizon(kq));
        if h < 2 {
            return 0;
        }
    }
    h
}

/// The quantum-boundary synchronization: replay every core's deferred
/// backend traffic and finish every parked core, interleaved in
/// **(cycle, core) order** over `start..bound` — the exact per-cycle
/// bus-arbiter sequence the serial schedule produces, so the shared
/// backend observes an identical monotonic request stream. Catch-up
/// cycles step live (both phases, no fast-forward) so a formerly-parked
/// core's requests reach the backend at their true cycle: after every
/// other core's earlier traffic, before all later traffic.
///
/// Returns the number of deferred operations replayed (the
/// [`SchedCounters::deferred_replays`] contribution of this boundary).
fn merge_quantum(
    guards: &mut [MutexGuard<'_, Cpu>],
    backend: &SharedL2,
    start: u64,
    bound: u64,
) -> u64 {
    let logs: Vec<Vec<DeferredOp>> = guards.iter_mut().map(|g| g.mem_mut().end_defer()).collect();
    let replays = logs.iter().map(|l| l.len() as u64).sum();
    let mut idx = vec![0usize; logs.len()];
    for c in start..bound {
        for (i, g) in guards.iter_mut().enumerate() {
            let log = &logs[i];
            if idx[i] < log.len() && log[idx[i]].at == c {
                // Batch this core's cycle-c ops under one backend lock —
                // and never hold it across the live step below, which
                // takes the same lock from inside the core's MemSystem.
                let mut b = backend.lock().expect("L2 backend poisoned");
                while idx[i] < log.len() && log[idx[i]].at == c {
                    b.replay(log[idx[i]]);
                    idx[i] += 1;
                }
            }
            if g.now() == c {
                // A core live at cycle c either parked there (phase A
                // already done) or was caught up to it by the previous
                // sweep slot; either way exactly one cycle advances, so
                // the (cycle, core) interleaving stays exact.
                if g.parked() {
                    g.finish_parked_cycle();
                } else {
                    let _ = g.cycle_no_ff();
                }
            }
        }
    }
    for (i, g) in guards.iter().enumerate() {
        debug_assert_eq!(g.now(), bound, "core {i} short of the quantum boundary");
        debug_assert!(!g.parked(), "core {i} still parked after the merge");
        debug_assert_eq!(
            idx[i],
            logs[i].len(),
            "core {i} has unreplayed deferred ops"
        );
    }
    replays
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_mode_labels() {
        assert_eq!(ExecMode::Serial.label(), "serial");
        assert_eq!(ExecMode::Parallel.to_string(), "parallel");
    }

    #[test]
    fn env_knobs_freeze() {
        let mode = ExecMode::from_env();
        let cores = cores_from_env();
        crate::testenv::with_env_vars(&[("MEDSIM_EXEC", "serial"), ("MEDSIM_CORES", "7")], || {
            assert_eq!(ExecMode::from_env(), mode, "mode resolves once");
            assert_eq!(cores_from_env(), cores, "cores resolve once");
        });
    }

    #[test]
    fn quantum_cycles_derives_from_the_hierarchy_and_honors_overrides() {
        let mut cfg = SimConfig::new(medsim_workloads::trace::SimdIsa::Mmx, 2);
        cfg.quantum = None;
        let mem = mem_config_of(&cfg);
        assert_eq!(quantum_cycles(&cfg, &mem), mem.quantum_bound());
        assert!(quantum_cycles(&cfg, &mem) >= 1);
        let forced = cfg.clone().with_quantum(3);
        assert_eq!(quantum_cycles(&forced, &mem), 3);
        // `0` is clamped to the degenerate lockstep quantum.
        let degenerate = cfg.with_quantum(0);
        assert_eq!(quantum_cycles(&degenerate, &mem), 1);
    }

    #[test]
    fn program_list_cycles_and_terminates() {
        let mut list = ProgramList::new(2);
        assert_eq!(list.ctx_slot, vec![0, 1]);
        assert!(!list.all_done());
        for s in 0..PROGRAMS_TO_COMPLETE {
            list.completed[s] = true;
        }
        assert!(list.all_done());
    }

    #[test]
    fn chunks_cover_every_core_exactly_once_and_never_go_empty() {
        for n_cores in 1..=17usize {
            for granted in 0..=8usize {
                let workers = effective_workers(n_cores, granted);
                assert!(workers <= granted);
                let participants = workers + 1;
                let chunk = |p: usize| chunk_range(p, n_cores, participants);
                let mut seen = vec![0u32; n_cores];
                for p in 0..participants {
                    assert!(
                        !chunk(p).is_empty(),
                        "cores {n_cores} granted {granted}: participant {p} starved"
                    );
                    for i in chunk(p) {
                        seen[i] += 1;
                    }
                }
                assert!(
                    seen.iter().all(|&c| c == 1),
                    "cores {n_cores} x workers {workers}: {seen:?}"
                );
            }
        }
        // The reviewer's case: 5 cores, 3 permits granted — div_ceil
        // chunking would starve the 4th participant, so only 2 workers
        // are useful.
        assert_eq!(effective_workers(5, 3), 2);
        assert_eq!(effective_workers(4, 3), 3);
        assert_eq!(effective_workers(1, 8), 0);
    }
}
