//! # medsim-core — the simulator facade
//!
//! Ties the substrates together into the experiments of *"DLP + TLP
//! Processors for the Next Generation of Media Workloads"* (HPCA 2001):
//!
//! * [`sim`] — a single simulation run: the multiprogrammed §5.1
//!   methodology (program list cycling through the eight contexts until
//!   the first eight list entries complete) over a configured SMT
//!   processor and memory hierarchy;
//! * [`machine`] — the CMP machine layer: `MEDSIM_CORES` SMT cores
//!   with private L1 levels sharing one L2/DRAM backend behind a
//!   deterministic bus arbiter; `MEDSIM_EXEC=parallel` steps cores on
//!   budgeted worker threads in multi-cycle quanta bounded by the
//!   hierarchy's cross-core interaction latency (`MEDSIM_QUANTUM`
//!   overrides; `1` degenerates to the per-cycle barrier), bitwise
//!   identical to the serial reference (`tests/cmp_equivalence.rs`);
//! * [`metrics`] — IPC, the **EIPC** metric for cross-ISA comparison
//!   (`EIPC = (I_MMX / I_MOM) × IPC_MOM`, §5.1), and speedups;
//! * [`runner`] — the parallel experiment engine: [`runner::run_grid`]
//!   fans a grid of configurations out across OS threads over a shared
//!   memoized trace cache (packed `medsim-trace` encoding, layered over
//!   the persistent `MEDSIM_TRACE_DIR` store), bit-identical to serial
//!   execution;
//! * [`frontend`] — decoupled per-thread frontends: trace synthesis and
//!   packed decode for each simulated thread context run on worker
//!   threads drawn from the same `MEDSIM_JOBS` budget as the grid,
//!   feeding the cycle loop through bounded rings of decoded blocks —
//!   bitwise identical to the inline reference
//!   (`MEDSIM_FRONTEND=inline`);
//! * [`experiments`] — one driver per table/figure of the paper's
//!   evaluation (Tables 1–4, Figures 4–6, 8, 9), all routed through the
//!   grid runner;
//! * [`resultstore`] — the content-addressed **result** cache
//!   (`MEDSIM_RESULT_DIR`): write-once, versioned, checksummed files
//!   keyed by the complete simulation identity (every config knob plus
//!   the workload's packed-trace checksums), read through by
//!   [`sim::Simulation::run_resulted`] and the grid runner so warm
//!   sweeps cost file reads instead of simulation — multi-process safe
//!   via the same atomic temp-file + rename protocol as the trace
//!   store;
//! * [`report`] — plain-text rendering of the experiment results in the
//!   paper's table shapes;
//! * [`runreport`] — the machine-readable per-run JSON report
//!   (`MEDSIM_REPORT_JSON`): interval time-series sampling
//!   (`MEDSIM_SAMPLE_CYCLES`) and roofline analysis against the DRDRAM
//!   bandwidth roof.
//!
//! ## Example
//!
//! ```no_run
//! use medsim_core::sim::{SimConfig, Simulation};
//! use medsim_workloads::{trace::SimdIsa, WorkloadSpec};
//!
//! let config = SimConfig::new(SimdIsa::Mom, 8).with_spec(WorkloadSpec::new(0.001));
//! let result = Simulation::run(&config);
//! println!("equivalent IPC {:.2}", result.equiv_ipc());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod frontend;
pub mod machine;
pub mod metrics;
pub mod report;
pub mod resultstore;
pub mod runner;
pub mod runreport;
pub mod sim;

pub use frontend::{Frontend, FrontendKind, JobBudget};
pub use machine::ExecMode;
pub use metrics::{EipcFactor, RunResult, SchedCounters, VfetchCounters};
pub use resultstore::{ResultCache, ResultKey, ResultStore, RESULT_FORMAT_VERSION};
pub use runner::{run_grid, CacheStats, TraceCache};
pub use runreport::{Roofline, SampleRow, Sampler, REPORT_SCHEMA};
pub use sim::{SimConfig, Simulation};

#[cfg(test)]
pub(crate) mod testenv {
    //! Serialized environment mutation for knob tests: `cargo test`
    //! runs tests on concurrent threads, and `set_var`/`remove_var`
    //! racing other tests that *read* the environment is undefined
    //! behavior territory on POSIX. Every test that mutates the
    //! environment must go through [`with_env_vars`].

    /// Run `f` with `vars` set, restoring the previous values after —
    /// all under one process-wide lock.
    pub(crate) fn with_env_vars<T>(vars: &[(&str, &str)], f: impl FnOnce() -> T) -> T {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let prev: Vec<_> = vars
            .iter()
            .map(|(k, _)| (*k, std::env::var(k).ok()))
            .collect();
        for (k, v) in vars {
            std::env::set_var(k, v);
        }
        let out = f();
        for (k, v) in prev {
            match v {
                Some(v) => std::env::set_var(k, v),
                None => std::env::remove_var(k),
            }
        }
        out
    }
}
