//! Plain-text rendering of experiment results in the paper's shapes.

use crate::experiments::{
    CmpCurve, Curve, DecoupleRow, Headline, Table3Row, Table4Row, CORE_COUNTS, THREAD_COUNTS,
};
use crate::metrics::EipcFactor;
use medsim_workloads::trace::SimdIsa;
use medsim_workloads::Benchmark;
use std::fmt::Write as _;

/// Render a set of performance curves as a table with one column per
/// thread count (the shape of figures 4, 5, 6, 8, 9).
#[must_use]
pub fn format_curves(title: &str, curves: &[Curve]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = write!(out, "{:<28}", "configuration");
    for t in THREAD_COUNTS {
        let _ = write!(out, "{t:>9} thr");
    }
    let _ = writeln!(out);
    for c in curves {
        let label = format!("{}+{} {} [{}]", "SMT", c.isa, c.hierarchy, c.policy);
        let _ = write!(out, "{label:<28}");
        for t in THREAD_COUNTS {
            match c.at(t) {
                Some(v) => {
                    let _ = write!(out, "{v:>12.2}");
                }
                None => {
                    let _ = write!(out, "{:>12}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Render a set of CMP scaling curves as a table with one column per
/// core count.
#[must_use]
pub fn format_cmp_curves(title: &str, curves: &[CmpCurve]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = write!(out, "{:<28}", "configuration");
    for c in CORE_COUNTS {
        let _ = write!(out, "{c:>8} core");
    }
    let _ = writeln!(out);
    for c in curves {
        let label = format!("CMP+{} {}thr/core [{}]", c.isa, c.threads, c.hierarchy);
        let _ = write!(out, "{label:<28}");
        for n in CORE_COUNTS {
            match c.at(n) {
                Some(v) => {
                    let _ = write!(out, "{v:>12.2}");
                }
                None => {
                    let _ = write!(out, "{:>12}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// One-line note describing the host stepping schedule of a CMP run:
/// the exec mode and the resolved parallel-stepping quantum (derived
/// from the hierarchy's cross-core interaction latency, or forced by
/// `MEDSIM_QUANTUM` / `SimConfig::quantum`). The benches print it next
/// to wall-clock numbers so recorded timings say which schedule
/// produced them — the statistics themselves are bitwise identical
/// under every schedule.
#[must_use]
pub fn format_schedule_note(config: &crate::sim::SimConfig) -> String {
    let k = crate::machine::resolved_quantum(config);
    let origin = if config.quantum.is_some() {
        "forced"
    } else {
        "derived"
    };
    format!(
        "schedule: exec={} cores={} quantum={k} ({origin})",
        config.exec, config.cores
    )
}

/// One-line rendering of a run's quantum-scheduler counters
/// ([`crate::metrics::SchedCounters`]): barrier rounds taken as
/// multi-cycle quanta vs. per-cycle lockstep degenerations, the mean
/// quantum length, parks by cause, and deferred-op replays. All zeros
/// under a serial schedule (the counters describe the host's
/// scheduling decisions, not the simulated machine).
#[must_use]
pub fn format_sched_counters(result: &crate::metrics::RunResult) -> String {
    let s = &result.sched;
    let mean_k = if s.quantum_rounds == 0 {
        0.0
    } else {
        s.quantum_cycles as f64 / s.quantum_rounds as f64
    };
    format!(
        "sched: rounds={} (quantum={} lockstep={}) mean-quantum={:.1} \
         parks={} (backend-reply={} store-evict={}) replays={}",
        s.rounds(),
        s.quantum_rounds,
        s.lockstep_rounds,
        mean_k,
        s.parks(),
        s.parks_backend_reply,
        s.parks_store_evict,
        s.deferred_replays,
    )
}

/// Render the decoupled-vs-coupled sweep: per configuration, the IPC
/// and the achieved fraction of the DRAM roofline side by side, plus
/// the run-ahead unit's own counters. A `-` in a roofline column means
/// the run produced no DRAM traffic.
#[must_use]
pub fn format_decoupled_sweep(rows: &[DecoupleRow]) -> String {
    fn pct(p: Option<f64>) -> String {
        p.map_or_else(|| format!("{:>8}", "-"), |p| format!("{:>7.1}%", p * 100.0))
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Decoupled run-ahead vector fetch vs the coupled machine =="
    );
    let _ = writeln!(
        out,
        "{:<24} {:>9} {:>9} {:>8}  {:>8} {:>8}  {:>10} {:>8}",
        "configuration",
        "IPC off",
        "IPC on",
        "speedup",
        "roof off",
        "roof on",
        "ran-ahead",
        "flushes"
    );
    for r in rows {
        let label = format!("{} {} {}thr", r.isa, r.hierarchy, r.threads);
        let _ = writeln!(
            out,
            "{:<24} {:>9.2} {:>9.2} {:>7.2}x  {} {}  {:>10} {:>8}",
            label,
            r.coupled.ipc(),
            r.decoupled.ipc(),
            r.speedup(),
            pct(r.coupled_pct_of_roof()),
            pct(r.decoupled_pct_of_roof()),
            r.decoupled.vfetch.runahead_elems,
            r.decoupled.vfetch.flushes,
        );
    }
    out
}

/// Render Table 2 (the workload description).
#[must_use]
pub fn format_table2() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Table 2: multiprogrammed workload ==");
    let _ = writeln!(
        out,
        "{:<10} {:<55} {:<42} characteristics",
        "program", "description", "data set"
    );
    for b in Benchmark::ALL {
        let instances = Benchmark::PAPER_ORDER.iter().filter(|&&x| x == b).count();
        let name = format!("{} x{}", b.name(), instances);
        let _ = writeln!(
            out,
            "{:<10} {:<55} {:<42} {}",
            name,
            b.description(),
            b.data_set(),
            b.characteristics()
        );
    }
    out
}

/// Render Table 3 (instruction breakdown) with paper values alongside.
#[must_use]
pub fn format_table3(rows: &[Table3Row], suite_mmx: u64, suite_mom: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Table 3: instruction breakdown (%) and counts ==");
    let _ = writeln!(
        out,
        "{:<10} {:>4}  {:>6} {:>6} {:>6} {:>6}  {:>12}  {:>10}",
        "program", "isa", "INT%", "FP%", "SIMD%", "MEM%", "#ins (model)", "paper (M)"
    );
    for r in rows {
        let b = r.breakdown;
        let _ = writeln!(
            out,
            "{:<10} {:>4}  {:>6.1} {:>6.1} {:>6.1} {:>6.1}  {:>12}  {:>10.1}",
            r.benchmark.name(),
            r.isa.label(),
            b.integer_pct,
            b.fp_pct,
            b.simd_pct,
            b.memory_pct,
            b.total_insts,
            r.benchmark.paper_minsts(r.isa),
        );
    }
    let _ = writeln!(
        out,
        "suite totals: MMX {suite_mmx} / MOM {suite_mom} (paper: 1429M / 1087M, ratio 1.31)"
    );
    let _ = writeln!(
        out,
        "model ratio: {:.2}",
        suite_mmx as f64 / suite_mom.max(1) as f64
    );
    out
}

/// Render Table 4 (cache behaviour vs thread count).
#[must_use]
pub fn format_table4(rows: &[Table4Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Table 4: cache behaviour under the real memory system =="
    );
    let _ = write!(out, "{:<24}", "metric / ISA");
    for t in THREAD_COUNTS {
        let _ = write!(out, "{t:>9} thr");
    }
    let _ = writeln!(out);
    for (metric, get) in [
        ("I-cache hit rate", 0usize),
        ("L1 hit rate", 1),
        ("L1 latency (cycles)", 2),
    ] {
        for isa in SimdIsa::ALL {
            let label = format!("{metric} {}", isa.label());
            let _ = write!(out, "{label:<24}");
            for t in THREAD_COUNTS {
                if let Some(r) = rows.iter().find(|r| r.isa == isa && r.threads == t) {
                    let v = match get {
                        0 => r.icache_hit_rate * 100.0,
                        1 => r.l1_hit_rate * 100.0,
                        _ => r.l1_avg_latency,
                    };
                    if get == 2 {
                        let _ = write!(out, "{v:>12.2}");
                    } else {
                        let _ = write!(out, "{v:>11.1}%");
                    }
                } else {
                    let _ = write!(out, "{:>12}", "-");
                }
            }
            let _ = writeln!(out);
        }
    }
    out
}

/// Render the headline summary (abstract numbers).
#[must_use]
pub fn format_headline(h: &Headline, factor: &EipcFactor) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Headline (paper: MMX 2.1x, MOM 3.3x; degradation 30% / 15%) =="
    );
    let _ = writeln!(
        out,
        "baseline 1-thread MMX IPC          : {:.2}",
        h.baseline_ipc
    );
    let _ = writeln!(
        out,
        "SMT+MMX 8-thread speedup           : {:.2}x",
        h.mmx_speedup
    );
    let _ = writeln!(
        out,
        "SMT+MOM 8-thread EIPC speedup      : {:.2}x",
        h.mom_speedup
    );
    let _ = writeln!(
        out,
        "MMX degradation vs ideal memory    : {:.0}%",
        h.mmx_degradation * 100.0
    );
    let _ = writeln!(
        out,
        "MOM degradation vs ideal memory    : {:.0}%",
        h.mom_degradation * 100.0
    );
    let _ = writeln!(
        out,
        "workload instruction ratio I_MMX/I_MOM: {:.2} (paper 1.31)",
        factor.ratio()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsim_cpu::FetchPolicy;
    use medsim_mem::HierarchyKind;

    fn fake_curve(isa: SimdIsa) -> Curve {
        Curve {
            isa,
            hierarchy: HierarchyKind::Ideal,
            policy: FetchPolicy::RoundRobin,
            points: THREAD_COUNTS.iter().map(|&t| (t, t as f64)).collect(),
            runs: Vec::new(),
        }
    }

    #[test]
    fn curves_table_contains_all_columns() {
        let s = format_curves(
            "Figure 4",
            &[fake_curve(SimdIsa::Mmx), fake_curve(SimdIsa::Mom)],
        );
        assert!(s.contains("Figure 4"));
        assert!(s.contains("MMX"));
        assert!(s.contains("MOM"));
        assert!(s.contains("8 thr"));
        assert_eq!(s.lines().count(), 4, "title + header + 2 curves");
    }

    #[test]
    fn cmp_curves_table_contains_core_columns() {
        let curve = CmpCurve {
            isa: SimdIsa::Mom,
            threads: 2,
            hierarchy: HierarchyKind::Conventional,
            points: CORE_COUNTS.iter().map(|&c| (c, c as f64)).collect(),
            runs: Vec::new(),
        };
        let s = format_cmp_curves("CMP scaling", &[curve]);
        assert!(s.contains("CMP scaling"));
        assert!(s.contains("4 core"));
        assert!(s.contains("2thr/core"));
        assert_eq!(s.lines().count(), 3, "title + header + 1 curve");
    }

    #[test]
    fn schedule_note_reports_mode_and_quantum() {
        use crate::machine::ExecMode;
        use crate::sim::SimConfig;
        let mut cfg = SimConfig::new(SimdIsa::Mmx, 2)
            .with_cores(4)
            .with_exec(ExecMode::Parallel);
        cfg.quantum = None;
        let s = format_schedule_note(&cfg);
        assert!(s.contains("exec=parallel"), "{s}");
        assert!(s.contains("cores=4"), "{s}");
        assert!(s.contains("(derived)"), "{s}");
        let forced = format_schedule_note(&cfg.with_quantum(1));
        assert!(forced.contains("quantum=1 (forced)"), "{forced}");
    }

    #[test]
    fn table2_lists_all_programs() {
        let s = format_table2();
        for b in Benchmark::ALL {
            assert!(s.contains(b.name()), "{}", b.name());
        }
        assert!(
            s.contains("mpeg2dec x2"),
            "MPEG-2 decode appears twice in the list"
        );
    }

    #[test]
    fn headline_mentions_paper_targets() {
        let h = Headline {
            baseline_ipc: 2.4,
            mmx_speedup: 2.1,
            mom_speedup: 3.3,
            mmx_degradation: 0.3,
            mom_degradation: 0.15,
        };
        let f = EipcFactor {
            mmx_insts: 1429,
            mom_insts: 1087,
        };
        let s = format_headline(&h, &f);
        assert!(s.contains("2.10x"));
        assert!(s.contains("3.30x"));
        assert!(s.contains("1.31"));
    }

    #[test]
    fn decoupled_sweep_renders_ipc_and_roofline_side_by_side() {
        use crate::sim::SimConfig;
        let config = SimConfig::new(SimdIsa::Mom, 4);
        let cpu = medsim_cpu::Cpu::new(
            medsim_cpu::CpuConfig::paper(4, SimdIsa::Mom),
            medsim_mem::MemSystem::new(medsim_mem::MemConfig::ideal()),
        );
        let mut coupled = crate::metrics::RunResult::collect(&config, &cpu);
        coupled.cycles = 1000;
        coupled.committed = 2400;
        coupled.dram_bytes = 2000;
        let mut decoupled = coupled.clone();
        decoupled.cycles = 800;
        decoupled.vfetch.runahead_elems = 512;
        let row = DecoupleRow {
            isa: SimdIsa::Mom,
            hierarchy: HierarchyKind::Conventional,
            threads: 4,
            peak_bytes_per_cycle: 4.0,
            coupled,
            decoupled,
        };
        let s = format_decoupled_sweep(&[row]);
        assert!(s.contains("roof off"), "{s}");
        assert!(s.contains("2.40"), "coupled IPC: {s}");
        assert!(s.contains("3.00"), "decoupled IPC: {s}");
        assert!(s.contains("1.25x"), "speedup: {s}");
        assert!(s.contains("50.0%"), "coupled roofline fraction: {s}");
        assert!(s.contains("62.5%"), "decoupled roofline fraction: {s}");
        assert!(s.contains("512"), "run-ahead elements: {s}");
    }

    #[test]
    fn sched_counters_render_rounds_parks_and_replays() {
        use crate::metrics::SchedCounters;
        use crate::sim::SimConfig;

        let config = SimConfig::new(SimdIsa::Mom, 2);
        let cpu = medsim_cpu::Cpu::new(
            medsim_cpu::CpuConfig::paper(2, SimdIsa::Mom),
            medsim_mem::MemSystem::new(medsim_mem::MemConfig::ideal()),
        );
        let mut result = crate::metrics::RunResult::collect(&config, &cpu);
        result.sched = SchedCounters {
            lockstep_rounds: 5,
            quantum_rounds: 20,
            quantum_cycles: 400,
            parks_backend_reply: 3,
            parks_store_evict: 1,
            deferred_replays: 17,
        };
        let s = format_sched_counters(&result);
        assert!(s.contains("rounds=25"), "{s}");
        assert!(s.contains("quantum=20"), "{s}");
        assert!(s.contains("lockstep=5"), "{s}");
        assert!(s.contains("mean-quantum=20.0"), "{s}");
        assert!(s.contains("parks=4"), "{s}");
        assert!(s.contains("replays=17"), "{s}");

        result.sched = SchedCounters::default();
        let zero = format_sched_counters(&result);
        assert!(zero.contains("mean-quantum=0.0"), "{zero}");
    }
}
