//! The persistent content-addressed **result** store.
//!
//! The simulator is deterministic: a run's outcome is a pure function
//! of its complete configuration and workload content. A
//! [`ResultStore`] exploits that — a flat directory (pointed at by the
//! `MEDSIM_RESULT_DIR` environment variable) of write-once result
//! files, one per [`ResultKey`]: a stable 64-bit content hash of the
//! *entire* simulation identity. The key covers every [`SimConfig`]
//! field, the derived [`CpuConfig`] the machine would build (including
//! the process-frozen `MEDSIM_WHEEL_SLOTS` horizon — the one
//! [`EnvKnobs`] field `SimConfig` does not carry), the resolved
//! [`MemConfig`] (ablation override or paper defaults), and the
//! packed-trace checksums of the eight workload programs. Two runs
//! with equal keys are bitwise identical, so a stored [`RunResult`]
//! stands in for ~seconds of simulation at the cost of one file read.
//!
//! File layout, all little-endian:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"MRES"
//!      4     4  format version (RESULT_FORMAT_VERSION)
//!      8     8  FNV-1a checksum of the payload
//!     16   218  payload: the RunResult, fixed-width fields in
//!               declaration order (enums as u8 tags, f64 as raw bits,
//!               SchedCounters last as an advisory block)
//! ```
//!
//! Like the trace store, this is a *cache*, never a source of truth:
//! loads verify magic, version, exact length and checksum; any
//! mismatch counts as a fallback (per-reason [`StoreStats`] counters)
//! and deletes the offending file so the caller's write-back
//! self-heals it. Writes land through a uniquely named temp file plus
//! an atomic rename ([`medsim_trace::unique_tmp_name`]), so concurrent
//! writers — racing threads or racing *processes* sharing one
//! directory — never publish a torn file: every rename installs a
//! complete file, and because producers are deterministic the losers'
//! bytes equal the winner's.
//!
//! [`SchedCounters`] are stored but deliberately **excluded from the
//! key**, matching their exclusion from [`RunResult`] equality: they
//! record host scheduling decisions, not architectural outcomes.
//! Because the key does cover [`SimConfig::exec`] and
//! [`SimConfig::quantum`], the advisory block a warm hit returns
//! always came from an identically-scheduled cold run.
//!
//! [`ResultCache`] is the read-through/write-back layer
//! [`crate::sim::Simulation::run_resulted`] and
//! [`crate::runner::run_grid`] use. It deliberately re-reads the
//! environment per construction (no `OnceLock`): benches and tests
//! point `MEDSIM_RESULT_DIR` at scratch directories mid-process. It
//! also stands down whenever observability output is active
//! ([`medsim_obs::observing`]) — a run that never executes has no
//! timeline, samples or roofline to emit.

use crate::metrics::{RunResult, SchedCounters, VfetchCounters};
use crate::runner::TraceCache;
use crate::sim::SimConfig;
use medsim_cpu::{CpuConfig, EnvKnobs, FetchPolicy, SchedulerKind, SizingParams};
use medsim_mem::{CacheConfig, DramConfig, HierarchyKind, MemConfig};
use medsim_trace::{unique_tmp_name, StoreStats};
use medsim_workloads::trace::SimdIsa;
use medsim_workloads::Benchmark;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// On-disk format version of result files; bump on any change to the
/// header or the [`RunResult`] encoding. Mismatching files are ignored
/// and self-healed (simulation fallback + write-back).
pub const RESULT_FORMAT_VERSION: u32 = 1;

const MAGIC: [u8; 4] = *b"MRES";
const HEADER_LEN: usize = 16;
/// Serialized [`RunResult`] size: every field is fixed-width, so any
/// other payload length is corruption by construction.
const PAYLOAD_LEN: usize = 218;

/// Content key of one stored result: the FNV-1a hash of the complete
/// simulation identity. See [`ResultKey::of`] for what participates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResultKey {
    /// The 64-bit content hash (also the file-name stem).
    pub hash: u64,
}

impl ResultKey {
    /// The key of `config`'s run, drawing workload content checksums
    /// through `traces`. Covers, in order: every [`SimConfig`] field
    /// (enums as tags, floats as raw bits), the resolved [`MemConfig`]
    /// (ablation override when present, else the paper hierarchy's
    /// defaults — resolved exactly as the machine layer does), the
    /// derived [`CpuConfig`] including the process-frozen
    /// `MEDSIM_WHEEL_SLOTS` horizon, and the combined packed-trace
    /// checksum of the eight program slots. Like
    /// [`medsim_trace::TraceKey::content_hash`], the format version is
    /// deliberately *not* hashed: a key must map to the same file
    /// across format bumps so the header check can self-heal stale
    /// files instead of orphaning them.
    ///
    /// # Panics
    ///
    /// Panics if `config.threads` is not 1, 2, 4 or 8 (the same bound
    /// the machine layer enforces when it builds the cores).
    #[must_use]
    pub fn of(config: &SimConfig, traces: &TraceCache) -> Self {
        ResultKey::with_parts(
            config,
            EnvKnobs::get().wheel_slots,
            workload_checksum(config, traces),
        )
    }

    /// [`ResultKey::of`] with the two non-`SimConfig` inputs — the
    /// calendar-queue horizon and the combined workload checksum —
    /// supplied explicitly, so property tests can prove each
    /// participates in the hash without mutating process state.
    ///
    /// # Panics
    ///
    /// Panics if `config.threads` is not 1, 2, 4 or 8.
    #[must_use]
    pub fn with_parts(config: &SimConfig, wheel_slots: usize, workload_checksum: u64) -> Self {
        let mut h = Fnv::new();
        // Every SimConfig field, in declaration order. Exhaustive
        // destructuring: adding a field without deciding whether it is
        // part of the simulation identity must not compile.
        let SimConfig {
            isa,
            threads,
            cores,
            exec,
            hierarchy,
            fetch_policy,
            spec,
            max_cycles,
            mem_override,
            max_stream_len,
            scheduler,
            stream_batch,
            decouple,
            decouple_depth,
            quantum,
        } = config;
        h.u8(isa_tag(*isa));
        h.usz(*threads);
        h.usz(*cores);
        h.u8(*exec as u8);
        h.u8(hierarchy_tag(*hierarchy));
        h.u8(policy_tag(*fetch_policy));
        h.u64(spec.scale.to_bits());
        h.u64(spec.seed);
        h.u64(*max_cycles);
        h.u8(u8::from(mem_override.is_some()));
        h.u8(*max_stream_len);
        h.u8(scheduler_tag(*scheduler));
        h.u8(u8::from(*stream_batch));
        h.u8(u8::from(*decouple));
        h.usz(*decouple_depth);
        match quantum {
            None => h.u8(0),
            Some(k) => {
                h.u8(1);
                h.u64(*k);
            }
        }
        // The memory system the run would actually simulate, resolved
        // the same way the machine builds its cores — so an ablation
        // override and an identical explicit config hash identically.
        hash_mem(&mut h, &crate::machine::mem_config_of(config));
        // The derived per-core pipeline, built exactly as
        // machine::build_cores does, with the calendar-queue horizon
        // (the one EnvKnobs field SimConfig does not carry) overridden
        // by the caller.
        let mut cpu = CpuConfig::paper(config.threads, config.isa)
            .with_policy(config.fetch_policy)
            .with_scheduler(config.scheduler)
            .with_stream_batch(config.stream_batch)
            .with_decouple(config.decouple)
            .with_decouple_depth(config.decouple_depth);
        cpu.wheel_slots = wheel_slots;
        hash_cpu(&mut h, &cpu);
        // Workload content: what the traces *are*, not just how they
        // were asked for — a change to trace generation invalidates
        // results even at an identical spec.
        h.u64(workload_checksum);
        ResultKey { hash: h.finish() }
    }

    /// File name of this key inside a store directory, e.g.
    /// `run-9f1c2a338e55d01b.mres`.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("run-{:016x}.mres", self.hash)
    }
}

/// Combined content checksum of the packed program traces a §5.1 run
/// consumes (the eight list slots), drawn through `traces` so a warm
/// trace store or grid-shared memo pays for each at most once.
#[must_use]
pub fn workload_checksum(config: &SimConfig, traces: &TraceCache) -> u64 {
    let mut h = Fnv::new();
    for slot in 0..Benchmark::PAPER_ORDER.len() {
        h.u64(traces.trace_checksum(&config.spec, slot, config.isa));
    }
    h.finish()
}

/// A write-once directory of serialized [`RunResult`]s. See the module
/// docs for the protocol; [`StoreStats`] (shared with the trace store)
/// is the counter snapshot type.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    stats: StatCells,
}

#[derive(Debug, Default)]
struct StatCells {
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    version_mismatch: AtomicU64,
    writes: AtomicU64,
    io_errors: AtomicU64,
}

impl ResultStore {
    /// A store rooted at `dir` (created on first write).
    #[must_use]
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        ResultStore {
            dir: dir.into(),
            stats: StatCells::default(),
        }
    }

    /// The store configured by `MEDSIM_RESULT_DIR`, or `None` when the
    /// variable is unset or empty (persistence disabled).
    #[must_use]
    pub fn from_env() -> Option<Self> {
        match std::env::var("MEDSIM_RESULT_DIR") {
            Ok(dir) if !dir.is_empty() => Some(ResultStore::at(dir)),
            _ => None,
        }
    }

    /// The directory this store reads and writes.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file path a key maps to.
    #[must_use]
    pub fn path_for(&self, key: &ResultKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Snapshot of the store counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            corrupt: self.stats.corrupt.load(Ordering::Relaxed),
            version_mismatch: self.stats.version_mismatch.load(Ordering::Relaxed),
            writes: self.stats.writes.load(Ordering::Relaxed),
            io_errors: self.stats.io_errors.load(Ordering::Relaxed),
        }
    }

    /// Load the result stored under `key`, or `None` — counting the
    /// reason — when the file is absent, unreadable, corrupt or from a
    /// different format version. Never panics, never errors: the
    /// caller falls back to simulating (and writes the store back,
    /// healing whatever was wrong).
    #[must_use]
    pub fn load(&self, key: &ResultKey) -> Option<RunResult> {
        let path = self.path_for(key);
        let mut file = match std::fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(_) => {
                self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let mut bytes = Vec::new();
        if file.read_to_end(&mut bytes).is_err() {
            self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        match parse_result(&bytes) {
            Ok(result) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(result)
            }
            Err(ParseError::VersionMismatch) => {
                self.stats.version_mismatch.fetch_add(1, Ordering::Relaxed);
                // Self-heal: drop the stale file so the caller's
                // write-back replaces it with the current format.
                std::fs::remove_file(&path).ok();
                None
            }
            Err(ParseError::Corrupt) => {
                self.stats.corrupt.fetch_add(1, Ordering::Relaxed);
                std::fs::remove_file(&path).ok();
                None
            }
        }
    }

    /// Persist `result` under `key` (write-once: an existing file is
    /// kept as-is). The bytes land via a uniquely named temp file plus
    /// an atomic rename, so a reader — in this process or another —
    /// only ever observes complete files.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors (also counted in
    /// [`StoreStats::io_errors`]).
    pub fn store(&self, key: &ResultKey, result: &RunResult) -> std::io::Result<()> {
        let path = self.path_for(key);
        if path.exists() {
            return Ok(());
        }
        let outcome = (|| {
            std::fs::create_dir_all(&self.dir)?;
            let tmp = self.dir.join(unique_tmp_name(&key.file_name()));
            {
                let mut f = std::fs::File::create(&tmp)?;
                f.write_all(&serialize_result(result))?;
                f.sync_all()?;
            }
            std::fs::rename(&tmp, &path)
        })();
        match outcome {
            Ok(()) => {
                self.stats.writes.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Parse every `.mres` file in the directory, returning
    /// `(valid, invalid)` counts. Invalid files are left in place (the
    /// keyed load path self-heals them); the multi-process stress test
    /// uses this to prove no writer ever published a torn file.
    #[must_use]
    pub fn validate_all(&self) -> (usize, usize) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return (0, 0);
        };
        let (mut valid, mut invalid) = (0, 0);
        for entry in entries.flatten() {
            let name = entry.file_name();
            if !name.to_string_lossy().ends_with(".mres") {
                continue;
            }
            match std::fs::read(entry.path()) {
                Ok(bytes) if parse_result(&bytes).is_ok() => valid += 1,
                _ => invalid += 1,
            }
        }
        (valid, invalid)
    }
}

/// The read-through/write-back layer in front of a [`ResultStore`]:
/// what [`crate::sim::Simulation::run_resulted`] and the grid runner
/// consult. Inactive (every run simulates) unless a store directory is
/// configured, `MEDSIM_RESULT_CACHE` is not `0`, and no observability
/// output is requested.
#[derive(Debug)]
pub struct ResultCache {
    enabled: bool,
    store: Option<ResultStore>,
}

impl ResultCache {
    /// The cache the environment asks for: backed by
    /// `MEDSIM_RESULT_DIR` when set, disabled entirely by
    /// `MEDSIM_RESULT_CACHE=0`. Deliberately re-read per call — no
    /// process-wide freeze — so benches and tests can retarget the
    /// store directory mid-process.
    #[must_use]
    pub fn from_env() -> Self {
        let enabled = std::env::var("MEDSIM_RESULT_CACHE").map_or(true, |v| v != "0");
        ResultCache {
            enabled,
            store: if enabled {
                ResultStore::from_env()
            } else {
                None
            },
        }
    }

    /// A cache that never hits and never stores (the default when no
    /// store directory is configured).
    #[must_use]
    pub fn disabled() -> Self {
        ResultCache {
            enabled: false,
            store: None,
        }
    }

    /// A cache backed by a store at `dir` (tests and benches).
    #[must_use]
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        ResultCache {
            enabled: true,
            store: Some(ResultStore::at(dir)),
        }
    }

    /// Whether lookups and write-backs will happen at all. `false`
    /// when disabled or storeless — and whenever observability output
    /// is active ([`medsim_obs::observing`]): a warm hit performs zero
    /// pipeline cycles, so it has no events, samples or report to
    /// emit, and serving one would silently produce empty artifacts.
    #[must_use]
    pub fn active(&self) -> bool {
        self.enabled && self.store.is_some() && !medsim_obs::observing()
    }

    /// Counter snapshot of the underlying store (all zeros when
    /// storeless).
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.store
            .as_ref()
            .map(ResultStore::stats)
            .unwrap_or_default()
    }

    /// Read-through lookup; `None` when inactive or on any fallback.
    #[must_use]
    pub fn load(&self, key: &ResultKey) -> Option<RunResult> {
        if !self.active() {
            return None;
        }
        self.store.as_ref()?.load(key)
    }

    /// Write-back after a cold simulation. I/O errors are absorbed
    /// into the store counters: failing to cache must never fail the
    /// run that produced the result.
    pub fn save(&self, key: &ResultKey, result: &RunResult) {
        if !self.active() {
            return;
        }
        if let Some(store) = &self.store {
            store.store(key, result).ok();
        }
    }
}

enum ParseError {
    VersionMismatch,
    Corrupt,
}

fn serialize_result(r: &RunResult) -> Vec<u8> {
    let mut p = Vec::with_capacity(PAYLOAD_LEN);
    // Exhaustive destructuring: a new RunResult field must be given a
    // slot in the encoding (and RESULT_FORMAT_VERSION bumped) before
    // this compiles again.
    let RunResult {
        isa,
        threads,
        cores,
        hierarchy,
        cycles,
        committed,
        committed_equiv,
        programs_completed,
        mispredict_rate,
        icache_hit_rate,
        l1_hit_rate,
        l1_avg_latency,
        l2_hit_rate,
        vector_only_cycles,
        mem_stalls,
        dram_bytes,
        vfetch,
        sched,
    } = r;
    p.push(isa_tag(*isa));
    p.extend_from_slice(&(*threads as u64).to_le_bytes());
    p.extend_from_slice(&(*cores as u64).to_le_bytes());
    p.push(hierarchy_tag(*hierarchy));
    for v in [cycles, committed, committed_equiv, programs_completed] {
        p.extend_from_slice(&v.to_le_bytes());
    }
    for v in [
        mispredict_rate,
        icache_hit_rate,
        l1_hit_rate,
        l1_avg_latency,
        l2_hit_rate,
    ] {
        p.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    for v in [vector_only_cycles, mem_stalls, dram_bytes] {
        p.extend_from_slice(&v.to_le_bytes());
    }
    let VfetchCounters {
        runahead_elems,
        drains,
        max_runahead,
        flushes,
        flushed_elems,
        busy_cycles,
        occupancy_sum,
    } = vfetch;
    for v in [
        runahead_elems,
        drains,
        max_runahead,
        flushes,
        flushed_elems,
        busy_cycles,
        occupancy_sum,
    ] {
        p.extend_from_slice(&v.to_le_bytes());
    }
    // The advisory tail: host-scheduling counters, stored for
    // reporting but outside the key and outside RunResult equality.
    let SchedCounters {
        lockstep_rounds,
        quantum_rounds,
        quantum_cycles,
        parks_backend_reply,
        parks_store_evict,
        deferred_replays,
    } = sched;
    for v in [
        lockstep_rounds,
        quantum_rounds,
        quantum_cycles,
        parks_backend_reply,
        parks_store_evict,
        deferred_replays,
    ] {
        p.extend_from_slice(&v.to_le_bytes());
    }
    debug_assert_eq!(p.len(), PAYLOAD_LEN, "PAYLOAD_LEN is stale");
    let mut out = Vec::with_capacity(HEADER_LEN + PAYLOAD_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&RESULT_FORMAT_VERSION.to_le_bytes());
    let mut h = Fnv::new();
    h.bytes(&p);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out.extend_from_slice(&p);
    out
}

fn parse_result(bytes: &[u8]) -> Result<RunResult, ParseError> {
    let header = bytes.get(..HEADER_LEN).ok_or(ParseError::Corrupt)?;
    if header[..4] != MAGIC {
        return Err(ParseError::Corrupt);
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if version != RESULT_FORMAT_VERSION {
        return Err(ParseError::VersionMismatch);
    }
    let checksum = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    if bytes.len() != HEADER_LEN + PAYLOAD_LEN {
        return Err(ParseError::Corrupt);
    }
    let payload = &bytes[HEADER_LEN..];
    let mut h = Fnv::new();
    h.bytes(payload);
    if h.finish() != checksum {
        return Err(ParseError::Corrupt);
    }
    let mut c = Cursor { payload, pos: 0 };
    let result = RunResult {
        isa: match c.u8() {
            0 => SimdIsa::Mmx,
            1 => SimdIsa::Mom,
            _ => return Err(ParseError::Corrupt),
        },
        threads: c.u64() as usize,
        cores: c.u64() as usize,
        hierarchy: match c.u8() {
            0 => HierarchyKind::Ideal,
            1 => HierarchyKind::Conventional,
            2 => HierarchyKind::Decoupled,
            _ => return Err(ParseError::Corrupt),
        },
        cycles: c.u64(),
        committed: c.u64(),
        committed_equiv: c.u64(),
        programs_completed: c.u64(),
        mispredict_rate: c.f64(),
        icache_hit_rate: c.f64(),
        l1_hit_rate: c.f64(),
        l1_avg_latency: c.f64(),
        l2_hit_rate: c.f64(),
        vector_only_cycles: c.u64(),
        mem_stalls: c.u64(),
        dram_bytes: c.u64(),
        vfetch: VfetchCounters {
            runahead_elems: c.u64(),
            drains: c.u64(),
            max_runahead: c.u64(),
            flushes: c.u64(),
            flushed_elems: c.u64(),
            busy_cycles: c.u64(),
            occupancy_sum: c.u64(),
        },
        sched: SchedCounters {
            lockstep_rounds: c.u64(),
            quantum_rounds: c.u64(),
            quantum_cycles: c.u64(),
            parks_backend_reply: c.u64(),
            parks_store_evict: c.u64(),
            deferred_replays: c.u64(),
        },
    };
    debug_assert_eq!(c.pos, PAYLOAD_LEN, "PAYLOAD_LEN is stale");
    Ok(result)
}

/// Fixed-offset payload reader. The exact-length check in
/// [`parse_result`] runs before any read, so the slices cannot overrun.
struct Cursor<'a> {
    payload: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn u8(&mut self) -> u8 {
        let v = self.payload[self.pos];
        self.pos += 1;
        v
    }

    fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(
            self.payload[self.pos..self.pos + 8]
                .try_into()
                .expect("8 bytes"),
        );
        self.pos += 8;
        v
    }

    fn f64(&mut self) -> f64 {
        f64::from_bits(self.u64())
    }
}

fn isa_tag(isa: SimdIsa) -> u8 {
    match isa {
        SimdIsa::Mmx => 0,
        SimdIsa::Mom => 1,
    }
}

fn hierarchy_tag(h: HierarchyKind) -> u8 {
    match h {
        HierarchyKind::Ideal => 0,
        HierarchyKind::Conventional => 1,
        HierarchyKind::Decoupled => 2,
    }
}

fn policy_tag(p: FetchPolicy) -> u8 {
    match p {
        FetchPolicy::RoundRobin => 0,
        FetchPolicy::ICount => 1,
        FetchPolicy::OCount => 2,
        FetchPolicy::Balance => 3,
    }
}

fn scheduler_tag(s: SchedulerKind) -> u8 {
    match s {
        SchedulerKind::Wheel => 0,
        SchedulerKind::Heap => 1,
    }
}

fn hash_mem(h: &mut Fnv, mem: &MemConfig) {
    // Exhaustive destructuring: a new memory knob must be hashed (or
    // consciously skipped here) before this compiles.
    let MemConfig {
        hierarchy,
        l1d,
        l1i,
        l2,
        l1_latency,
        l2_latency,
        mshrs,
        write_buffer_depth,
        general_ports,
        scalar_ports,
        vector_ports,
        coherence_probe_penalty,
        dram,
    } = mem;
    h.u8(hierarchy_tag(*hierarchy));
    for cache in [l1d, l1i, l2] {
        let CacheConfig {
            size_bytes,
            ways,
            line_bytes,
            banks,
            write_back,
        } = cache;
        h.u64(*size_bytes);
        h.usz(*ways);
        h.u64(*line_bytes);
        h.usz(*banks);
        h.u8(u8::from(*write_back));
    }
    h.u64(*l1_latency);
    h.u64(*l2_latency);
    h.usz(*mshrs);
    h.usz(*write_buffer_depth);
    h.usz(*general_ports);
    h.usz(*scalar_ports);
    h.usz(*vector_ports);
    h.u64(*coherence_probe_penalty);
    let DramConfig {
        devices,
        row_bytes,
        bytes_per_cycle,
        row_hit_latency,
        row_miss_latency,
    } = dram;
    h.usz(*devices);
    h.u64(*row_bytes);
    h.u64(*bytes_per_cycle);
    h.u64(*row_hit_latency);
    h.u64(*row_miss_latency);
}

fn hash_cpu(h: &mut Fnv, cpu: &CpuConfig) {
    let CpuConfig {
        threads,
        isa,
        fetch_policy,
        fetch_threads,
        fetch_width,
        decode_width,
        int_issue,
        mem_issue,
        fp_issue,
        simd_issue,
        vector_lanes,
        commit_width,
        sizing,
        mispredict_penalty,
        lat_int_mul,
        lat_int_div,
        lat_fp_add,
        lat_fp_mul,
        lat_fp_div,
        lat_simd_mul,
        scheduler,
        wheel_slots,
        stream_batch,
        decouple,
        decouple_depth,
    } = cpu;
    h.usz(*threads);
    h.u8(isa_tag(*isa));
    h.u8(policy_tag(*fetch_policy));
    for v in [
        fetch_threads,
        fetch_width,
        decode_width,
        int_issue,
        mem_issue,
        fp_issue,
        simd_issue,
        vector_lanes,
        commit_width,
    ] {
        h.usz(*v);
    }
    let SizingParams {
        int_regs,
        fp_regs,
        simd_regs,
        stream_regs,
        acc_regs,
        queue_entries,
        rob_per_thread,
    } = sizing;
    for v in [
        int_regs,
        fp_regs,
        simd_regs,
        stream_regs,
        acc_regs,
        queue_entries,
        rob_per_thread,
    ] {
        h.usz(*v);
    }
    for v in [
        mispredict_penalty,
        lat_int_mul,
        lat_int_div,
        lat_fp_add,
        lat_fp_mul,
        lat_fp_div,
        lat_simd_mul,
    ] {
        h.u64(*v);
    }
    h.u8(scheduler_tag(*scheduler));
    h.usz(*wheel_slots);
    h.u8(u8::from(*stream_batch));
    h.u8(u8::from(*decouple));
    h.usz(*decouple_depth);
}

/// FNV-1a 64-bit — same function and constants as the trace store's,
/// kept private to each store module (it is an implementation detail
/// of the file format, not an API).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u8(&mut self, v: u8) {
        self.bytes(&[v]);
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn usz(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medsim_workloads::WorkloadSpec;

    fn unique_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "medsim-result-test-{tag}-{}-{n}",
            std::process::id()
        ))
    }

    fn sample_result() -> RunResult {
        RunResult {
            isa: SimdIsa::Mom,
            threads: 4,
            cores: 2,
            hierarchy: HierarchyKind::Decoupled,
            cycles: 123_456,
            committed: 98_765,
            committed_equiv: 143_210,
            programs_completed: 8,
            mispredict_rate: 0.031_25,
            icache_hit_rate: 0.998,
            l1_hit_rate: 0.942,
            l1_avg_latency: 1.375,
            l2_hit_rate: 0.874,
            vector_only_cycles: 4_242,
            mem_stalls: 1_717,
            dram_bytes: 9_000_000,
            vfetch: VfetchCounters {
                runahead_elems: 11,
                drains: 22,
                max_runahead: 3,
                flushes: 4,
                flushed_elems: 5,
                busy_cycles: 66,
                occupancy_sum: 77,
            },
            sched: SchedCounters {
                lockstep_rounds: 1,
                quantum_rounds: 2,
                quantum_cycles: 24,
                parks_backend_reply: 3,
                parks_store_evict: 4,
                deferred_replays: 5,
            },
        }
    }

    fn key() -> ResultKey {
        ResultKey {
            hash: 0x1234_5678_9abc_def0,
        }
    }

    #[test]
    fn payload_is_exactly_the_declared_length() {
        let bytes = serialize_result(&sample_result());
        assert_eq!(bytes.len(), HEADER_LEN + PAYLOAD_LEN);
    }

    #[test]
    fn round_trip_preserves_every_field_including_advisory_sched() {
        let r = sample_result();
        let Ok(back) = parse_result(&serialize_result(&r)) else {
            panic!("round trip failed to parse");
        };
        assert_eq!(back, r, "architectural fields");
        // RunResult equality skips sched; the store must not.
        assert_eq!(back.sched, r.sched, "advisory block survives the disk");
    }

    #[test]
    fn store_round_trip_and_stats() {
        let dir = unique_dir("roundtrip");
        let store = ResultStore::at(&dir);
        let r = sample_result();
        assert!(store.load(&key()).is_none(), "empty store misses");
        store.store(&key(), &r).expect("write");
        let back = store.load(&key()).expect("warm load");
        assert_eq!(back, r);
        assert_eq!(back.sched, r.sched);
        let stats = store.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.fallbacks(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writes_are_write_once() {
        let dir = unique_dir("once");
        let store = ResultStore::at(&dir);
        let r = sample_result();
        store.store(&key(), &r).expect("first write");
        store.store(&key(), &r).expect("second write is a no-op");
        assert_eq!(store.stats().writes, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_writers_race_to_one_valid_file() {
        let dir = unique_dir("race");
        let store = ResultStore::at(&dir);
        let r = sample_result();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..16 {
                        store.store(&key(), &r).expect("racing write");
                    }
                });
            }
        });
        assert_eq!(store.load(&key()).expect("winner is valid"), r);
        let (valid, invalid) = store.validate_all();
        assert_eq!((valid, invalid), (1, 0));
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("dir")
            .map(|e| e.expect("entry").file_name().into_string().expect("utf8"))
            .filter(|n| n.starts_with(".tmp-"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disabled_cache_never_hits_or_stores() {
        let cache = ResultCache::disabled();
        assert!(!cache.active());
        assert!(cache.load(&key()).is_none());
        cache.save(&key(), &sample_result());
        assert_eq!(cache.stats(), StoreStats::default());
    }

    #[test]
    fn workload_checksum_distinguishes_isas_and_specs() {
        let traces = TraceCache::disabled();
        let spec = WorkloadSpec {
            scale: 1.0e-5,
            seed: 7,
        };
        let base = SimConfig::new(SimdIsa::Mmx, 1).with_spec(spec);
        let mut other_isa = base.clone();
        other_isa.isa = SimdIsa::Mom;
        let other_seed = base.clone().with_spec(WorkloadSpec {
            scale: 1.0e-5,
            seed: 8,
        });
        let a = workload_checksum(&base, &traces);
        assert_eq!(a, workload_checksum(&base, &traces), "stable");
        assert_ne!(a, workload_checksum(&other_isa, &traces));
        assert_ne!(a, workload_checksum(&other_seed, &traces));
    }
}
