//! The machine-readable per-run JSON report: interval time-series and
//! roofline analysis for one machine run.
//!
//! When `MEDSIM_REPORT_JSON` names a path, the machine layer writes a
//! versioned report there at the end of every run (schema
//! [`REPORT_SCHEMA`], versioned like the persistent trace store). The
//! report has four sections:
//!
//! * `config` — what was simulated (ISA, threads, cores, hierarchy,
//!   workload scale/seed, schedule);
//! * `result` — the end-of-run [`RunResult`] counters and rates;
//! * `sched` — the machine layer's quantum-scheduler counters
//!   ([`SchedCounters`]);
//! * `roofline` — operational intensity and achieved vs. DRAM-bound
//!   bandwidth from the DRDRAM channel model (see [`Roofline`]);
//! * `samples` — the interval sampler's per-core time-series
//!   (`MEDSIM_SAMPLE_CYCLES` sets the period; omitted rows when off).
//!
//! JSON is hand-emitted (the workspace's `serde` is an offline no-op
//! shim) and the schema-shape test validates it with the
//! dependency-free parser in `medsim-obs`.

use crate::metrics::RunResult;
use crate::sim::SimConfig;
use medsim_cpu::Cpu;
use medsim_obs::{escape_json, json_f64};

/// Schema tag of the per-run report (bump on breaking shape changes).
pub const REPORT_SCHEMA: &str = "medsim-run-report/v1";

/// One row of the interval time-series: one core over one sampling
/// interval. Rates are **interval deltas** (what happened since the
/// previous sample), occupancies are instantaneous at the sample
/// cycle, park counts are cumulative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleRow {
    /// Machine cycle the sample was taken at.
    pub cycle: u64,
    /// Core index.
    pub core: u32,
    /// Committed instructions per cycle over the interval.
    pub ipc: f64,
    /// L1 data read hit rate over the interval (1.0 when no reads).
    pub l1d_hit_rate: f64,
    /// I-cache read hit rate over the interval (1.0 when no reads).
    pub l1i_hit_rate: f64,
    /// Write-buffer entries occupied at the sample cycle.
    pub wbuf_occupancy: usize,
    /// Write-buffer capacity.
    pub wbuf_capacity: usize,
    /// Scalar-data MSHRs outstanding at the sample cycle.
    pub mshr_outstanding: usize,
    /// Scalar-data MSHR capacity.
    pub mshr_capacity: usize,
    /// Cumulative quantum-edge parks (both causes) on this core.
    pub parks: u64,
}

/// Per-core counter snapshot the sampler diffs against.
#[derive(Debug, Clone, Copy, Default)]
struct CoreSnap {
    cycle: u64,
    committed: u64,
    l1d_hits: u64,
    l1d_reads: u64,
    l1i_hits: u64,
    l1i_reads: u64,
}

fn snap_of(cpu: &Cpu, cycle: u64) -> CoreSnap {
    let d = cpu.mem().l1d_stats();
    let i = cpu.mem().l1i_stats();
    CoreSnap {
        cycle,
        committed: cpu.stats().committed(),
        l1d_hits: d.hits,
        l1d_reads: d.reads(),
        l1i_hits: i.hits,
        l1i_reads: i.reads(),
    }
}

/// The interval sampler: snapshots every core every
/// `MEDSIM_SAMPLE_CYCLES` machine cycles into [`SampleRow`]s. The
/// machine layer probes it once per boundary; with the knob off no
/// sampler exists and the probe is a `None` check. Idle fast-forward
/// can jump the clock across several intervals — the sampler records
/// one row batch at the crossing and skips the intervals the jump
/// proved empty. Under a quantum-parallel schedule samples land on
/// quantum boundaries, so the effective granularity is
/// `max(interval, quantum)`.
#[derive(Debug)]
pub struct Sampler {
    interval: u64,
    next: u64,
    last: Vec<CoreSnap>,
    rows: Vec<SampleRow>,
}

impl Sampler {
    /// A sampler when `MEDSIM_SAMPLE_CYCLES` (or its programmatic
    /// override) is a positive period, else `None`.
    #[must_use]
    pub fn from_knob(n_cores: usize) -> Option<Sampler> {
        let interval = medsim_obs::sample_cycles();
        (interval > 0).then(|| Sampler {
            interval,
            next: interval,
            last: vec![CoreSnap::default(); n_cores],
            rows: Vec::new(),
        })
    }

    /// The configured period in cycles.
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The rows collected so far.
    #[must_use]
    pub fn rows(&self) -> &[SampleRow] {
        &self.rows
    }

    /// Record a row batch if `clock` reached the next sample boundary.
    pub fn maybe_sample<'a>(&mut self, clock: u64, cores: impl Iterator<Item = &'a mut Cpu>) {
        if clock < self.next {
            return;
        }
        for (core, cpu) in cores.enumerate() {
            let snap = snap_of(cpu, clock);
            let prev = self.last[core];
            let dc = snap.cycle - prev.cycle;
            let rate = |hits: u64, reads: u64| {
                if reads == 0 {
                    1.0
                } else {
                    hits as f64 / reads as f64
                }
            };
            let now = cpu.now();
            let (wbuf_occupancy, wbuf_capacity) = cpu.mem_mut().wbuf_occupancy(now);
            let (mshr_outstanding, mshr_capacity) = cpu.mem_mut().dmshr_occupancy(now);
            #[allow(clippy::cast_possible_truncation)]
            self.rows.push(SampleRow {
                cycle: clock,
                core: core as u32,
                ipc: if dc == 0 {
                    0.0
                } else {
                    (snap.committed - prev.committed) as f64 / dc as f64
                },
                l1d_hit_rate: rate(
                    snap.l1d_hits - prev.l1d_hits,
                    snap.l1d_reads - prev.l1d_reads,
                ),
                l1i_hit_rate: rate(
                    snap.l1i_hits - prev.l1i_hits,
                    snap.l1i_reads - prev.l1i_reads,
                ),
                wbuf_occupancy,
                wbuf_capacity,
                mshr_outstanding,
                mshr_capacity,
                parks: cpu.stats().parks_backend_reply + cpu.stats().parks_store_evict,
            });
            self.last[core] = snap;
        }
        // One batch per crossing: intervals a fast-forward jumped over
        // were provably idle, so their rows would repeat this one.
        self.next = (clock / self.interval + 1) * self.interval;
    }
}

/// The roofline section: operational intensity of the run against the
/// DRDRAM channel's bandwidth roof.
///
/// The FLOP proxy is the equivalent committed FP + SIMD-arithmetic
/// operation count (stream-length expanded — the paper's comparison
/// currency), and bytes are actual DRAM channel traffic, so the
/// operational intensity is `flop_proxy / dram_bytes`. The only roof
/// the model derives from first principles is the memory roof
/// (`peak_bytes_per_cycle` from the DRDRAM config, 4 B/cycle for the
/// paper's channel); no compute ceiling is fabricated, so
/// `pct_of_memory_roof` is exactly the achieved fraction of channel
/// bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Equivalent committed FP + SIMD-arithmetic operations.
    pub flop_proxy: u64,
    /// Bytes moved over the DRAM channel.
    pub dram_bytes: u64,
    /// Run length in cycles.
    pub cycles: u64,
    /// The channel's peak transfer rate in bytes per cycle.
    pub peak_bytes_per_cycle: f64,
}

impl Roofline {
    /// Gather roofline inputs from a finished machine's cores.
    #[must_use]
    pub fn collect(cores: &[&Cpu], peak_bytes_per_cycle: f64) -> Roofline {
        let flop_proxy = cores
            .iter()
            .map(|c| {
                let by_kind = c.stats().committed_by_kind;
                by_kind[1] + by_kind[2] // Fp + SimdArith
            })
            .sum();
        Roofline {
            flop_proxy,
            // The DRAM channel is chip-shared: read it once.
            dram_bytes: cores[0].mem().dram_stats().bytes,
            cycles: cores[0].stats().cycles,
            peak_bytes_per_cycle,
        }
    }

    /// Operational intensity in FLOP-proxy per DRAM byte; `None` when
    /// the run produced no DRAM traffic (e.g. the ideal hierarchy).
    #[must_use]
    pub fn operational_intensity(&self) -> Option<f64> {
        (self.dram_bytes > 0).then(|| self.flop_proxy as f64 / self.dram_bytes as f64)
    }

    /// Achieved FLOP-proxy throughput per cycle.
    #[must_use]
    pub fn achieved_flops_per_cycle(&self) -> f64 {
        self.flop_proxy as f64 / self.cycles.max(1) as f64
    }

    /// Achieved DRAM bandwidth in bytes per cycle.
    #[must_use]
    pub fn achieved_bytes_per_cycle(&self) -> f64 {
        self.dram_bytes as f64 / self.cycles.max(1) as f64
    }

    /// The memory roof at this intensity: the FLOP-proxy rate the run
    /// would reach if it saturated the channel (`OI × peak BW`).
    #[must_use]
    pub fn memory_roof_flops_per_cycle(&self) -> Option<f64> {
        self.operational_intensity()
            .map(|oi| oi * self.peak_bytes_per_cycle)
    }

    /// Fraction of the memory roof achieved, in `[0, 1]` — identically
    /// the channel-bandwidth utilization.
    #[must_use]
    pub fn pct_of_memory_roof(&self) -> Option<f64> {
        (self.dram_bytes > 0).then(|| self.achieved_bytes_per_cycle() / self.peak_bytes_per_cycle)
    }

    /// Coarse classification for the report: `"dram-bound"` above 80%
    /// channel utilization, `"below-memory-roof"` otherwise,
    /// `"no-dram-traffic"` when the channel never moved a byte.
    #[must_use]
    pub fn bound(&self) -> &'static str {
        match self.pct_of_memory_roof() {
            None => "no-dram-traffic",
            Some(p) if p >= 0.8 => "dram-bound",
            Some(_) => "below-memory-roof",
        }
    }

    fn to_json(self) -> String {
        let oi = self
            .operational_intensity()
            .map_or("null".to_string(), json_f64);
        let roof = self
            .memory_roof_flops_per_cycle()
            .map_or("null".to_string(), json_f64);
        let pct = self
            .pct_of_memory_roof()
            .map_or("null".to_string(), json_f64);
        format!(
            "{{\n      \"flop_proxy\": {},\n      \"dram_bytes\": {},\n      \"cycles\": {},\n      \
             \"operational_intensity\": {},\n      \"achieved_flops_per_cycle\": {},\n      \
             \"achieved_bytes_per_cycle\": {},\n      \"peak_bytes_per_cycle\": {},\n      \
             \"memory_roof_flops_per_cycle\": {},\n      \"pct_of_memory_roof\": {},\n      \
             \"bound\": \"{}\"\n    }}",
            self.flop_proxy,
            self.dram_bytes,
            self.cycles,
            oi,
            self.achieved_flops_per_cycle(),
            json_f64(self.achieved_bytes_per_cycle()),
            json_f64(self.peak_bytes_per_cycle),
            roof,
            pct,
            self.bound(),
        )
    }
}

fn sample_row_json(r: &SampleRow) -> String {
    format!(
        "{{\"cycle\": {}, \"core\": {}, \"ipc\": {}, \"l1d_hit_rate\": {}, \
         \"l1i_hit_rate\": {}, \"wbuf_occupancy\": {}, \"wbuf_capacity\": {}, \
         \"mshr_outstanding\": {}, \"mshr_capacity\": {}, \"parks\": {}}}",
        r.cycle,
        r.core,
        json_f64(r.ipc),
        json_f64(r.l1d_hit_rate),
        json_f64(r.l1i_hit_rate),
        r.wbuf_occupancy,
        r.wbuf_capacity,
        r.mshr_outstanding,
        r.mshr_capacity,
        r.parks,
    )
}

/// Render the full per-run report as JSON (schema [`REPORT_SCHEMA`]).
#[must_use]
pub fn report_json(
    config: &SimConfig,
    result: &RunResult,
    roofline: Roofline,
    sampler: Option<&Sampler>,
) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{}\",\n", REPORT_SCHEMA));
    out.push_str(&format!(
        "  \"config\": {{\n    \"isa\": \"{}\",\n    \"threads\": {},\n    \"cores\": {},\n    \
         \"hierarchy\": \"{}\",\n    \"scale\": {},\n    \"seed\": {},\n    \"exec\": \"{}\",\n    \
         \"quantum\": {}\n  }},\n",
        escape_json(&format!("{:?}", config.isa)),
        config.threads,
        config.cores.max(1),
        escape_json(&format!("{:?}", config.hierarchy)),
        json_f64(config.spec.scale),
        config.spec.seed,
        config.exec.label(),
        crate::machine::resolved_quantum(config),
    ));
    out.push_str(&format!(
        "  \"result\": {{\n    \"cycles\": {},\n    \"committed\": {},\n    \
         \"committed_equiv\": {},\n    \"ipc\": {},\n    \"equiv_ipc\": {},\n    \
         \"programs_completed\": {},\n    \"mispredict_rate\": {},\n    \
         \"icache_hit_rate\": {},\n    \"l1_hit_rate\": {},\n    \"l1_avg_latency\": {},\n    \
         \"l2_hit_rate\": {},\n    \"vector_only_cycles\": {},\n    \"mem_stalls\": {}\n  }},\n",
        result.cycles,
        result.committed,
        result.committed_equiv,
        json_f64(result.ipc()),
        json_f64(result.equiv_ipc()),
        result.programs_completed,
        json_f64(result.mispredict_rate),
        json_f64(result.icache_hit_rate),
        json_f64(result.l1_hit_rate),
        json_f64(result.l1_avg_latency),
        json_f64(result.l2_hit_rate),
        result.vector_only_cycles,
        result.mem_stalls,
    ));
    let s = &result.sched;
    out.push_str(&format!(
        "  \"sched\": {{\n    \"lockstep_rounds\": {},\n    \"quantum_rounds\": {},\n    \
         \"quantum_cycles\": {},\n    \"parks_backend_reply\": {},\n    \
         \"parks_store_evict\": {},\n    \"deferred_replays\": {}\n  }},\n",
        s.lockstep_rounds,
        s.quantum_rounds,
        s.quantum_cycles,
        s.parks_backend_reply,
        s.parks_store_evict,
        s.deferred_replays,
    ));
    out.push_str(&format!("  \"roofline\": {},\n", roofline.to_json()));
    match sampler {
        Some(sampler) => {
            out.push_str(&format!(
                "  \"samples\": {{\n    \"interval_cycles\": {},\n    \"rows\": [",
                sampler.interval()
            ));
            for (i, r) in sampler.rows().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("\n      ");
                out.push_str(&sample_row_json(r));
            }
            out.push_str("\n    ]\n  }\n");
        }
        None => out.push_str("  \"samples\": null\n"),
    }
    out.push('}');
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::SchedCounters;
    use medsim_mem::HierarchyKind;
    use medsim_workloads::trace::SimdIsa;

    fn tiny_result() -> RunResult {
        RunResult {
            isa: SimdIsa::Mom,
            threads: 2,
            cores: 1,
            hierarchy: HierarchyKind::Conventional,
            cycles: 100,
            committed: 150,
            committed_equiv: 400,
            programs_completed: 8,
            mispredict_rate: 0.03,
            icache_hit_rate: 0.98,
            l1_hit_rate: 0.91,
            l1_avg_latency: 2.4,
            l2_hit_rate: 0.7,
            vector_only_cycles: 9,
            mem_stalls: 3,
            dram_bytes: 0,
            vfetch: crate::metrics::VfetchCounters::default(),
            sched: SchedCounters::default(),
        }
    }

    #[test]
    fn roofline_derivations() {
        let r = Roofline {
            flop_proxy: 800,
            dram_bytes: 400,
            cycles: 1000,
            peak_bytes_per_cycle: 4.0,
        };
        assert_eq!(r.operational_intensity(), Some(2.0));
        assert!((r.achieved_flops_per_cycle() - 0.8).abs() < 1e-12);
        assert!((r.achieved_bytes_per_cycle() - 0.4).abs() < 1e-12);
        assert_eq!(r.memory_roof_flops_per_cycle(), Some(8.0));
        assert_eq!(r.pct_of_memory_roof(), Some(0.1));
        assert_eq!(r.bound(), "below-memory-roof");

        let saturated = Roofline {
            dram_bytes: 4000,
            ..r
        };
        assert_eq!(saturated.pct_of_memory_roof(), Some(1.0));
        assert_eq!(saturated.bound(), "dram-bound");

        let ideal = Roofline { dram_bytes: 0, ..r };
        assert_eq!(ideal.operational_intensity(), None);
        assert_eq!(ideal.bound(), "no-dram-traffic");
    }

    #[test]
    fn report_json_is_valid_and_tagged() {
        let config = SimConfig::new(SimdIsa::Mom, 2);
        let result = tiny_result();
        let roofline = Roofline {
            flop_proxy: 10,
            dram_bytes: 5,
            cycles: 100,
            peak_bytes_per_cycle: 4.0,
        };
        let json = report_json(&config, &result, roofline, None);
        medsim_obs::validate_json(&json).expect("report must be valid JSON");
        assert!(json.contains(REPORT_SCHEMA));
        assert!(json.contains("\"samples\": null"));
        assert!(json.contains("\"roofline\""));
    }
}
