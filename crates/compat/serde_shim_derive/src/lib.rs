//! No-op derive macros backing the offline `serde` shim.
//!
//! The simulator derives `Serialize`/`Deserialize` on its config and
//! result types but never routes them through a serde serializer (JSON
//! output is hand-emitted), so the derives only need to exist, accept
//! `#[serde(...)]` attributes, and expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; the `serde::Serialize` marker trait has a
/// blanket implementation, so deriving is purely declarative.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see [`derive_serialize`].
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
