//! Offline shim for the `serde` facade.
//!
//! Provides the two marker traits and re-exports the no-op derive
//! macros so `#[derive(Serialize, Deserialize)]` and `use
//! serde::{Serialize, Deserialize}` compile unchanged. Nothing in this
//! workspace serializes *through* serde (JSON is hand-emitted by
//! `medsim-bench`), so blanket implementations are sufficient and keep
//! the derives trivially correct for any type shape.

#![forbid(unsafe_code)]

pub use serde_shim_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
