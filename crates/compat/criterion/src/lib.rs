//! Offline shim for the `criterion` benchmark harness.
//!
//! Implements the subset the workspace's benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! calibrate-then-sample wall-clock measurement. Reported numbers are
//! median ns/iter over several samples; set `CRITERION_SAMPLE_MS` to
//! change the per-sample budget (default 100 ms, floor 1 iteration).
//!
//! When `CRITERION_JSON_PATH` is set, results are also appended to that
//! file as JSON lines (`{"name": ..., "ns_per_iter": ...}`), which the
//! CI smoke-bench job folds into `BENCH_runs.json`.

#![forbid(unsafe_code)]

pub use std::hint::black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    sample_budget: Duration,
    ns_per_iter: f64,
}

impl Bencher {
    /// Measure `f`: calibrate an iteration count to the sample budget,
    /// then take five samples and keep the median ns/iter.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Calibration: grow the per-sample iteration count until one
        // sample fills the budget.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.sample_budget || iters >= 1 << 30 {
                break elapsed.as_secs_f64() / iters as f64;
            }
            let growth = (self.sample_budget.as_secs_f64() / elapsed.as_secs_f64().max(1e-9))
                .clamp(2.0, 100.0);
            iters = (iters as f64 * growth).ceil() as u64;
        };
        let _ = per_iter;
        let mut samples = [0f64; 5];
        for s in &mut samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            *s = start.elapsed().as_secs_f64() / iters as f64;
        }
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[2] * 1e9;
    }
}

/// Top-level benchmark registry and reporter.
pub struct Criterion {
    sample_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(100);
        Criterion {
            sample_budget: Duration::from_millis(ms.max(1)),
        }
    }
}

impl Criterion {
    /// Run one named benchmark and report its median ns/iter.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            sample_budget: self.sample_budget,
            ns_per_iter: f64::NAN,
        };
        f(&mut b);
        println!("{name:<40} {:>14.1} ns/iter", b.ns_per_iter);
        if let Ok(path) = std::env::var("CRITERION_JSON_PATH") {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(
                    file,
                    "{{\"name\": \"{}\", \"ns_per_iter\": {:.1}}}",
                    name.replace('"', "'"),
                    b.ns_per_iter
                );
            }
        }
        self
    }
}

/// Bundle benchmark functions into a group runner, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups, as upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::remove_var("CRITERION_JSON_PATH");
        let mut c = Criterion {
            sample_budget: Duration::from_millis(2),
        };
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }
}
