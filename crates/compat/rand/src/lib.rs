//! Offline shim for the `rand` crate surface this workspace uses:
//! [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::SmallRng`].
//!
//! `SmallRng` is xoshiro256++ seeded through SplitMix64 — the same
//! family upstream `rand` uses for its 64-bit `SmallRng`. Upstream
//! documents the `SmallRng` output stream as an implementation detail,
//! so matching the family (not the exact stream) keeps the shim honest:
//! everything in this workspace that consumes it only needs determinism
//! within this tree.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level entropy source: 64 random bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value methods, blanket-implemented over
/// [`RngCore`] like upstream `rand`.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open, `low..high`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seeding interface (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draw one sample using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// `u64` in `[0, 2^53)` mapped to `[0.0, 1.0)` with full f64 precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty sample range");
                // Span fits in u128 for every supported integer width;
                // modulo keeps the shim simple (any bias is far below
                // what the trace generators can observe).
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty sample range");
                let unit = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = SmallRng::seed_from_u64(99);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(-500..500);
            assert!((-500..500).contains(&v));
            let f: f64 = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let b: u8 = r.gen_range(0..16);
            assert!(b < 16);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits} of 10000 at p=0.25");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
