//! Figure 4: performance with perfect cache.
//!
//! Paper: SMT+MMX IPC 2.47 → 5.0 (2.02×); SMT+MOM EIPC 2.98 → 6.19
//! (2.08×); MOM 20% better than MMX at one thread; overall SMT+MOM 2.5×
//! an 8-way superscalar with MMX.

use medsim_bench::{spec_from_env, timed};
use medsim_core::experiments::fig4_ideal;
use medsim_core::report::format_curves;

fn main() {
    let spec = spec_from_env();
    let curves = timed("fig4", || fig4_ideal(&spec));
    println!(
        "{}",
        format_curves("Figure 4: ideal memory (MMX = IPC, MOM = EIPC)", &curves)
    );
    let mmx = &curves[0];
    let mom = &curves[1];
    println!(
        "MMX SMT speedup (8 thr / 1 thr): {:.2}x   (paper 2.02x)",
        mmx.at(8).unwrap() / mmx.at(1).unwrap()
    );
    println!(
        "MOM SMT speedup (8 thr / 1 thr): {:.2}x   (paper 2.08x)",
        mom.at(8).unwrap() / mom.at(1).unwrap()
    );
    println!(
        "MOM vs MMX at 1 thread: {:+.0}%        (paper +20%)",
        (mom.at(1).unwrap() / mmx.at(1).unwrap() - 1.0) * 100.0
    );
    println!(
        "SMT+MOM (8 thr) vs MMX superscalar (1 thr): {:.2}x (paper 2.5x)",
        mom.at(8).unwrap() / mmx.at(1).unwrap()
    );
}
