//! Figure 5: performance under the real memory system.
//!
//! Paper phenomena: (a) diminishing returns — 4-thread performance is
//! *higher* than 8-thread under the conventional hierarchy; (b) MOM is
//! more robust — ~12% average degradation vs ~30% for MMX.

use medsim_bench::{spec_from_env, timed};
use medsim_core::experiments::fig5_real;
use medsim_core::report::format_curves;

fn main() {
    let spec = spec_from_env();
    let fig = timed("fig5", || fig5_real(&spec));
    println!(
        "{}",
        format_curves("Figure 5a: ideal memory (reference)", &fig.ideal)
    );
    println!(
        "{}",
        format_curves("Figure 5b: real (conventional) memory", &fig.real)
    );
    for (ideal, real) in fig.ideal.iter().zip(fig.real.iter()) {
        let label = ideal.isa.label();
        let mut degr_sum = 0.0;
        for &(t, v_ideal) in &ideal.points {
            let v_real = real.at(t).unwrap();
            degr_sum += 1.0 - v_real / v_ideal;
        }
        println!(
            "{label}: average degradation vs ideal {:.0}%  (paper: MMX ~30%, MOM ~12%)",
            degr_sum / ideal.points.len() as f64 * 100.0
        );
        let v4 = real.at(4).unwrap();
        let v8 = real.at(8).unwrap();
        println!(
            "{label}: 4-thread {v4:.2} vs 8-thread {v8:.2} -> {}",
            if v4 >= v8 {
                "diminishing returns (paper: yes)"
            } else {
                "still scaling"
            }
        );
    }
}
