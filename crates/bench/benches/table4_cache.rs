//! Table 4: instruction-cache hit rate, L1 hit rate and average L1
//! latency vs thread count, under the conventional hierarchy.
//!
//! Paper values (MMX): I-hit 99.0→93.7%, L1-hit 98.7→86.8%, latency
//! 1.39→6.81 cycles from 1 to 8 threads; MOM degrades less (L1-hit
//! 98.4→93.7%, latency 1.74→4.51) thanks to fewer, more regular stream
//! accesses.

use medsim_bench::{spec_from_env, timed};
use medsim_core::experiments::table4_cache;
use medsim_core::report::format_table4;

fn main() {
    let spec = spec_from_env();
    let rows = timed("table4", || table4_cache(&spec));
    println!("{}", format_table4(&rows));
    println!("paper (MMX): I 99.0/97.8/96.9/93.7  L1 98.7/97.6/94.2/86.8  lat 1.39/1.59/2.38/6.81");
    println!("paper (MOM): I 98.7/98.2/96.6/93.9  L1 98.4/98.1/96.9/93.7  lat 1.74/1.86/2.43/4.51");
}
