//! Criterion micro-benchmarks of the simulator's own machinery: the
//! functional kernels, trace generation, cache model and pipeline
//! throughput. These are engineering benchmarks (simulator speed), not
//! paper results.

use criterion::{criterion_group, criterion_main, Criterion};
use medsim_core::sim::{SimConfig, Simulation};
use medsim_isa::Inst;
use medsim_mem::mshr::MshrOutcome;
use medsim_mem::{
    AccessKind, Cache, CacheConfig, CacheModel, MemConfig, MemRequest, MemSystem, MshrFile,
};
use medsim_trace::{PackedStream, PackedTrace};
use medsim_workloads::kernels::{dct, motion};
use medsim_workloads::trace::SimdIsa;
use medsim_workloads::{Benchmark, InstStream, StreamIter, WorkloadSpec};
use std::hint::black_box;
use std::sync::Arc;

fn bench_kernels(c: &mut Criterion) {
    let mut block = [0i16; 64];
    for (i, b) in block.iter_mut().enumerate() {
        *b = (i as i16 - 32) * 3;
    }
    c.bench_function("dct_8x8_forward", |b| {
        b.iter(|| dct::forward(black_box(&block)));
    });

    let cur = motion::Plane::new(176, 144, 128);
    let reference = motion::Plane::new(176, 144, 127);
    c.bench_function("full_search_16x16_r2", |b| {
        b.iter(|| motion::full_search(black_box(&cur), black_box(&reference), 64, 64, 2));
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("trace_mpeg2enc_mmx_1mb", |b| {
        b.iter(|| {
            let spec = WorkloadSpec {
                scale: 1e-5,
                seed: 1,
            };
            let mut s = Benchmark::Mpeg2Enc.stream(0, SimdIsa::Mmx, &spec);
            let mut n = 0u64;
            while s.next_inst().is_some() {
                n += 1;
            }
            black_box(n)
        });
    });
}

fn bench_packed_trace(c: &mut Criterion) {
    let spec = WorkloadSpec {
        scale: 1e-4,
        seed: 1,
    };
    let insts: Vec<Inst> = StreamIter(Benchmark::Mpeg2Enc.stream(0, SimdIsa::Mmx, &spec)).collect();
    let packed = Arc::new(PackedTrace::pack(insts.iter().copied()));
    println!(
        "{:<40} {:>10} insts, {:.2} B/inst packed vs {} B/inst Vec<Inst>",
        "packed_trace (mpeg2enc @1e-4)",
        packed.len(),
        packed.bytes_per_inst(),
        std::mem::size_of::<Inst>(),
    );

    c.bench_function("trace_pack_mpeg2enc", |b| {
        b.iter(|| black_box(PackedTrace::pack(insts.iter().copied()).packed_bytes()));
    });
    c.bench_function("trace_decode_packed_mpeg2enc", |b| {
        b.iter(|| black_box(StreamIter(PackedStream::new(Arc::clone(&packed))).count()));
    });
    // The Vec<Inst> replay baseline the packed decoder competes with.
    c.bench_function("trace_replay_vec_mpeg2enc", |b| {
        b.iter(|| {
            let mut n = 0u64;
            for i in &insts {
                black_box(*i);
                n += 1;
            }
            black_box(n)
        });
    });

    // One-shot decode throughput in insts/sec, in the same spirit as
    // the pipeline throughput line below.
    let start = std::time::Instant::now();
    let n = StreamIter(PackedStream::new(Arc::clone(&packed))).count();
    let secs = start.elapsed().as_secs_f64();
    println!(
        "{:<40} {:>14.0} insts/sec decode",
        "trace_decode_packed_mpeg2enc (throughput)",
        n as f64 / secs.max(1e-9)
    );
}

/// The hit path the simulator spends its memory time on: repeated
/// loads over a resident working set in the paper's L1D geometry
/// (32 KB direct-mapped, 32 B lines, 8 banks, write-through), timed
/// for both line-state models so the packed planes' advantage over
/// the reference `Vec<Line>` stays visible.
fn bench_cache_hit_path(c: &mut Criterion) {
    let l1d = CacheConfig {
        size_bytes: 32 * 1024,
        ways: 1,
        line_bytes: 32,
        banks: 8,
        write_back: false,
    };
    for (name, model) in [
        ("cache_hit_path_packed", CacheModel::Packed),
        ("cache_hit_path_ref", CacheModel::Ref),
    ] {
        let mut cache = Cache::with_model(l1d, model);
        // Warm a quarter of the capacity so every timed access hits.
        let lines = 256u64;
        for i in 0..lines {
            let _ = cache.access(0, i * 32, false);
        }
        c.bench_function(name, |b| {
            let mut now = 1;
            b.iter(|| {
                let mut hits = 0u32;
                // Element-granular traffic, as the pipeline issues it:
                // four 8-byte elements walk each 32-byte line before
                // moving on, so the MRU line filter sees the repeats.
                for i in 0..lines {
                    for e in 0..4u64 {
                        let a = cache.access(now, black_box(i * 32 + e * 8), false);
                        hits += u32::from(a.hit);
                    }
                    now += 1;
                }
                black_box(hits)
            });
        });
    }
}

/// The MSHR duty cycle under a miss burst: allocate to capacity,
/// coalesce repeats, retire, repeat — the scan `outstanding` and
/// `register` perform every miss.
fn bench_mshr_scan(c: &mut Criterion) {
    for (name, model) in [
        ("mshr_scan_packed", CacheModel::Packed),
        ("mshr_scan_ref", CacheModel::Ref),
    ] {
        c.bench_function(name, |b| {
            let mut mshr = MshrFile::with_model(16, model);
            let mut now = 0;
            b.iter(|| {
                let mut allocated = 0u32;
                for i in 0..64u64 {
                    let line = (i % 16) * 64;
                    match mshr.register(now, black_box(line)) {
                        MshrOutcome::Allocated => {
                            mshr.set_fill_time(line, now + 20);
                            allocated += 1;
                        }
                        MshrOutcome::Coalesced(_) | MshrOutcome::Full => {}
                    }
                    allocated += mshr.outstanding(now) as u32;
                    now += 1;
                }
                now += 40; // drain before the next iteration
                black_box(allocated)
            });
        });
    }
}

fn bench_memory(c: &mut Criterion) {
    c.bench_function("memsystem_1k_requests", |b| {
        b.iter(|| {
            let mut m = MemSystem::new(MemConfig::paper());
            let mut now = 0;
            for i in 0..1000u64 {
                let req = MemRequest {
                    tid: 0,
                    addr: (i * 64) % (1 << 20),
                    size: 8,
                    kind: AccessKind::ScalarLoad,
                };
                if m.request(now, req).is_err() {
                    now += 1;
                }
                now += 1;
            }
            black_box(now)
        });
    });
}

fn bench_pipeline(c: &mut Criterion) {
    c.bench_function("simulate_1thread_tiny", |b| {
        b.iter(|| {
            let cfg = SimConfig::new(SimdIsa::Mmx, 1).with_spec(WorkloadSpec {
                scale: 5e-6,
                seed: 3,
            });
            black_box(Simulation::run(&cfg).cycles)
        });
    });
    // The same run expressed as raw hot-path throughput: simulated
    // cycles per wall-clock second (the metric BENCH_runs.json tracks).
    let cfg = SimConfig::new(SimdIsa::Mmx, 1).with_spec(WorkloadSpec {
        scale: 5e-6,
        seed: 3,
    });
    let start = std::time::Instant::now();
    let cycles = Simulation::run(&cfg).cycles;
    let secs = start.elapsed().as_secs_f64();
    println!(
        "{:<40} {:>14.0} sim cycles/sec",
        "simulate_1thread_tiny (throughput)",
        cycles as f64 / secs.max(1e-9)
    );
}

fn bench_grid(c: &mut Criterion) {
    c.bench_function("run_grid_2isa_x_2threads_tiny", |b| {
        b.iter(|| {
            let spec = WorkloadSpec {
                scale: 5e-6,
                seed: 3,
            };
            let configs: Vec<SimConfig> = SimdIsa::ALL
                .iter()
                .flat_map(|&isa| {
                    [1usize, 2]
                        .iter()
                        .map(move |&t| SimConfig::new(isa, t).with_spec(spec))
                })
                .collect();
            black_box(medsim_core::runner::run_grid(&configs).len())
        });
    });
}

criterion_group!(
    benches,
    bench_kernels,
    bench_trace_generation,
    bench_packed_trace,
    bench_cache_hit_path,
    bench_mshr_scan,
    bench_memory,
    bench_pipeline,
    bench_grid
);
criterion_main!(benches);
