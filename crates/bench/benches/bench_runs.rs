//! Simulator-performance tracking: times the headline drivers and
//! emits `BENCH_runs.json` (see [`medsim_bench::BenchRecorder`]).
//!
//! Measured rows:
//!
//! * `fig5_real` — the full figure-5 grid through the parallel engine
//!   at the `MEDSIM_SCALE` workload scale (the PR-over-PR wall-clock
//!   target);
//! * `grid_parallel` vs `grid_serial` — the same 8-run grid through
//!   [`medsim_core::runner::run_grid`] and through serial
//!   [`Simulation::run`] calls, printing the observed speedup;
//! * `pipeline_1thread` — a single small run, whose
//!   `sim_cycles_per_sec` is the raw hot-path throughput metric.
//!
//! `MEDSIM_JOBS` caps the worker threads; the grid comparison uses a
//! reduced scale (one quarter of `MEDSIM_SCALE`) to keep smoke runs
//! fast.

use medsim_bench::{spec_from_env, timed_secs, BenchRecorder};
use medsim_core::experiments::fig5_real;
use medsim_core::runner::{effective_jobs, run_grid};
use medsim_core::sim::{SimConfig, Simulation};
use medsim_workloads::trace::SimdIsa;
use medsim_workloads::WorkloadSpec;

fn main() {
    let spec = spec_from_env();
    let mut recorder = BenchRecorder::new();

    let fig5 = recorder.measure(
        "fig5_real",
        || fig5_real(&spec),
        |fig| {
            fig.ideal
                .iter()
                .chain(fig.real.iter())
                .flat_map(|c| c.runs.iter().map(|r| r.cycles))
                .sum()
        },
    );
    println!(
        "fig5_real: {} runs, {:.2}s wall",
        fig5.ideal.len() * 4 + fig5.real.len() * 4,
        recorder.entries()[0].wall_s
    );

    // Grid vs serial on an 8-run sweep (both ISAs × thread counts).
    let grid_spec = WorkloadSpec {
        scale: (spec.scale / 4.0).max(1e-6),
        ..spec
    };
    let configs: Vec<SimConfig> = SimdIsa::ALL
        .iter()
        .flat_map(|&isa| {
            [1usize, 2, 4, 8]
                .iter()
                .map(move |&t| SimConfig::new(isa, t).with_spec(grid_spec))
        })
        .collect();
    let (parallel, par_s) = timed_secs(|| run_grid(&configs));
    recorder.record(
        "grid_parallel",
        par_s,
        parallel.iter().map(|r| r.cycles).sum(),
    );
    let (serial, ser_s) = timed_secs(|| configs.iter().map(Simulation::run).collect::<Vec<_>>());
    recorder.record("grid_serial", ser_s, serial.iter().map(|r| r.cycles).sum());
    assert_eq!(
        parallel, serial,
        "run_grid must be bit-identical to the serial path"
    );
    println!(
        "grid of {}: parallel {par_s:.2}s vs serial {ser_s:.2}s ({:.2}x, {} jobs)",
        configs.len(),
        ser_s / par_s.max(1e-9),
        effective_jobs(configs.len()),
    );

    // Raw pipeline throughput.
    let tiny = SimConfig::new(SimdIsa::Mmx, 1).with_spec(WorkloadSpec {
        scale: 5e-6,
        seed: 3,
    });
    let (run, wall_s) = timed_secs(|| Simulation::run(&tiny));
    recorder.record("pipeline_1thread", wall_s, run.cycles);
    println!(
        "pipeline_1thread: {:.0} simulated cycles/sec",
        recorder
            .entries()
            .last()
            .expect("just recorded")
            .sim_cycles_per_sec()
    );

    recorder.write_default().expect("write BENCH_runs.json");
}
