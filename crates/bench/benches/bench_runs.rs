//! Simulator-performance tracking: times the headline drivers and
//! emits `BENCH_runs.json` (see [`medsim_bench::BenchRecorder`]).
//!
//! Measured rows:
//!
//! * `fig5_real` — the full figure-5 grid through the parallel engine
//!   at the `MEDSIM_SCALE` workload scale (the PR-over-PR wall-clock
//!   target);
//! * `grid_parallel` vs `grid_serial` — the same 8-run grid through
//!   [`medsim_core::runner::run_grid`] and through serial
//!   [`Simulation::run`] calls, printing the observed speedup;
//! * `pipeline_1thread` — a single small run, whose
//!   `sim_cycles_per_sec` is the raw hot-path throughput metric;
//! * `obs_off_overhead` — a mid-size SMT+MOM run with every
//!   observability knob off: the wall-clock price of the dormant
//!   `medsim_obs::tracing()` checks threaded through the hot paths,
//!   which must stay indistinguishable from zero (gated);
//! * `packed_decode` — full decode of one packed program trace through
//!   the per-instruction pull interface; its `sim_cycles` column holds
//!   *instructions decoded*, so `sim_cycles_per_sec` reads as decode
//!   insts/sec;
//! * `packed_block_decode` — the same trace through
//!   [`PackedStream::next_block_into`] (whole blocks into a reused
//!   buffer, memoized word decode) — the decoder the CPU model and the
//!   sharded frontend actually drive, printed against the per-inst
//!   row;
//! * `sharded_frontend` — one fig5-scale 8-thread SMT+MOM run with the
//!   sharded frontend (per-context producer threads behind bounded
//!   rings, budgeted by `MEDSIM_JOBS`), printed against the inline
//!   reference run on an identical fresh cache; results are asserted
//!   bitwise equal;
//! * `event_queue` — a synthetic completion stream through the
//!   calendar-queue scheduler (`sim_cycles` holds *operations*, so
//!   `sim_cycles_per_sec` reads as queue ops/sec), printed against the
//!   seed binary heap on the same stream;
//! * `stream_batch` — a stream-heavy SMT+MOM run with the batched
//!   `request_stream` path (the default), printed against the
//!   per-element reference path;
//! * `decoupled_vector` — the stream-heavy run again with the
//!   decoupled run-ahead vector-fetch unit on (gated), printed against
//!   the coupled reference; a depth-0 run is asserted bitwise equal to
//!   the coupled machine (the structural off-path);
//! * `cmp_4core` — a 4-core × 2-thread CMP run (private L1s, one
//!   shared L2/DRAM backend) under the environment-default machine;
//!   the serial reference schedule is timed alongside and asserted
//!   bitwise equal;
//! * `cmp_4core_quantum` — the same machine forced onto the
//!   quantum-parallel schedule with an explicit roomy budget (so the
//!   worker/quantum path is exercised and asserted bitwise-equal on
//!   every CI axis); its wall-clock is the tentpole speedup metric on
//!   the jobs=4 axis, where real phase-A workers exist;
//! * `fig5_real_cold_store` / `fig5_real_warm_store` — the figure-5
//!   grid with a persistent trace store (`MEDSIM_TRACE_DIR`), first
//!   against an empty directory (synthesize + write-back), then against
//!   the populated one (decode-only) — the PR's trace-store headline.
//!
//! `MEDSIM_JOBS` caps the worker threads; the grid comparison uses a
//! reduced scale (one quarter of `MEDSIM_SCALE`) to keep smoke runs
//! fast.

use medsim_bench::{spec_from_env, timed_secs, BenchRecorder};
use medsim_core::experiments::fig5_real;
use medsim_core::frontend::{self, Frontend, JobBudget};
use medsim_core::runner::{effective_jobs, run_grid, TraceCache};
use medsim_core::sim::{SimConfig, Simulation};
use medsim_cpu::{CompletionQueue, SchedulerKind};
use medsim_isa::Inst;
use medsim_trace::{PackedStream, PackedTrace};
use medsim_workloads::trace::SimdIsa;
use medsim_workloads::{Benchmark, StreamIter, WorkloadSpec};
use std::sync::Arc;

fn main() {
    let spec = spec_from_env();
    let mut recorder = BenchRecorder::new();

    let fig5 = recorder.measure("fig5_real", || fig5_real(&spec), sum_fig5_cycles);
    println!(
        "fig5_real: {} runs, {:.2}s wall",
        fig5.ideal.len() * 4 + fig5.real.len() * 4,
        recorder.entries()[0].wall_s
    );

    // Grid vs serial on an 8-run sweep (both ISAs × thread counts).
    let grid_spec = WorkloadSpec {
        scale: (spec.scale / 4.0).max(1e-6),
        ..spec
    };
    let configs: Vec<SimConfig> = SimdIsa::ALL
        .iter()
        .flat_map(|&isa| {
            [1usize, 2, 4, 8]
                .iter()
                .map(move |&t| SimConfig::new(isa, t).with_spec(grid_spec))
        })
        .collect();
    let (parallel, par_s) = timed_secs(|| run_grid(&configs));
    recorder.record(
        "grid_parallel",
        par_s,
        parallel.iter().map(|r| r.cycles).sum(),
    );
    let (serial, ser_s) = timed_secs(|| configs.iter().map(Simulation::run).collect::<Vec<_>>());
    recorder.record("grid_serial", ser_s, serial.iter().map(|r| r.cycles).sum());
    assert_eq!(
        parallel, serial,
        "run_grid must be bit-identical to the serial path"
    );
    println!(
        "grid of {}: parallel {par_s:.2}s vs serial {ser_s:.2}s ({:.2}x, {} jobs)",
        configs.len(),
        ser_s / par_s.max(1e-9),
        effective_jobs(configs.len()),
    );

    // Raw pipeline throughput.
    let tiny = SimConfig::new(SimdIsa::Mmx, 1).with_spec(WorkloadSpec {
        scale: 5e-6,
        seed: 3,
    });
    let (run, wall_s) = timed_secs(|| Simulation::run(&tiny));
    recorder.record("pipeline_1thread", wall_s, run.cycles);
    println!(
        "pipeline_1thread: {:.0} simulated cycles/sec",
        recorder
            .entries()
            .last()
            .expect("just recorded")
            .sim_cycles_per_sec()
    );

    // Observability off-path: a mid-size run with every obs knob off,
    // so the row prices the dormant `tracing()` checks on the fetch /
    // issue / commit / miss paths. The assert keeps the row honest —
    // if a knob leaks on in the bench environment, fail loudly rather
    // than silently measuring the on-path.
    assert!(
        !medsim_obs::tracing() && medsim_obs::sample_cycles() == 0,
        "obs_off_overhead must run with observability off"
    );
    let obs_cfg = SimConfig::new(SimdIsa::Mom, 4).with_spec(WorkloadSpec {
        scale: 5e-5,
        seed: 3,
    });
    let (obs_run, obs_s) = timed_secs(|| Simulation::run(&obs_cfg));
    recorder.record("obs_off_overhead", obs_s, obs_run.cycles);
    println!(
        "obs_off_overhead: {:.0} simulated cycles/sec with tracing/sampling off",
        obs_run.cycles as f64 / obs_s.max(1e-9),
    );

    // Packed-trace density and decode throughput.
    let insts: Vec<Inst> = StreamIter(Benchmark::Mpeg2Enc.stream(0, SimdIsa::Mmx, &spec)).collect();
    let packed = Arc::new(PackedTrace::pack(insts.iter().copied()));
    let (decoded, dec_s) =
        timed_secs(|| StreamIter(PackedStream::new(Arc::clone(&packed))).count() as u64);
    recorder.record("packed_decode", dec_s, decoded);
    println!(
        "packed_decode: {:.2} B/inst ({}x vs Vec<Inst>), {:.0} insts/sec",
        packed.bytes_per_inst(),
        (std::mem::size_of::<Inst>() as f64 / packed.bytes_per_inst()).round(),
        decoded as f64 / dec_s.max(1e-9),
    );

    // Block decode of the same trace: whole blocks into a reused
    // buffer — the replay path the CPU model and the sharded frontend
    // producers drive.
    let (block_decoded, blk_s) = timed_secs(|| {
        let mut s = PackedStream::new(Arc::clone(&packed));
        let mut buf: Vec<Inst> = Vec::new();
        let mut n = 0u64;
        while s.next_block_into(&mut buf) {
            n += buf.len() as u64;
        }
        n
    });
    assert_eq!(block_decoded, decoded, "both decoders cover the trace");
    recorder.record("packed_block_decode", blk_s, block_decoded);
    println!(
        "packed_block_decode: {:.0} insts/sec ({:.2}x the per-inst decode)",
        block_decoded as f64 / blk_s.max(1e-9),
        dec_s / blk_s.max(1e-9),
    );

    // Completion-scheduler microbenchmark: a pipeline-shaped event
    // stream (bursts of short-latency completions, a DRAM-class tail)
    // through the calendar queue, printed against the seed heap.
    let queue_ops = |kind: SchedulerKind| -> u64 {
        let mut q = CompletionQueue::new(kind, 256);
        let mut now = 0u64;
        let mut i = 0u64;
        let mut ops = 0u64;
        while ops < 3_000_000 {
            for _ in 0..3 {
                i += 1;
                let lat = match i % 64 {
                    0 => 320,    // DRAM-class overflow event
                    1..=4 => 40, // L2-ish
                    _ => 1 + (i % 6),
                };
                q.push(now + lat, (i & 0xffff) as u32);
                ops += 1;
            }
            now += 1;
            while q.pop_due(now).is_some() {
                ops += 1;
            }
        }
        while q.pop_due(u64::MAX).is_some() {
            ops += 1;
        }
        ops
    };
    let (wheel_ops, wheel_s) = timed_secs(|| queue_ops(SchedulerKind::Wheel));
    recorder.record("event_queue", wheel_s, wheel_ops);
    let (heap_ops, heap_s) = timed_secs(|| queue_ops(SchedulerKind::Heap));
    assert_eq!(wheel_ops, heap_ops, "both schedulers process every event");
    println!(
        "event_queue: wheel {:.0} ops/sec vs heap {:.0} ops/sec ({:.2}x)",
        wheel_ops as f64 / wheel_s.max(1e-9),
        heap_ops as f64 / heap_s.max(1e-9),
        heap_s / wheel_s.max(1e-9),
    );

    // Batched stream requests on a stream-heavy SMT+MOM run over the
    // decoupled hierarchy (§5.4 — every vector element otherwise pays
    // its own L2 tag walk), printed against the per-element reference
    // path (identical results, by the differential suite).
    let mom = SimConfig::new(SimdIsa::Mom, 4)
        .with_hierarchy(medsim_mem::HierarchyKind::Decoupled)
        .with_spec(WorkloadSpec {
            scale: 2e-5,
            seed: 3,
        });
    let (batched, batched_s) = timed_secs(|| Simulation::run(&mom.clone().with_stream_batch(true)));
    recorder.record("stream_batch", batched_s, batched.cycles);
    let (per_elem, per_elem_s) =
        timed_secs(|| Simulation::run(&mom.clone().with_stream_batch(false)));
    assert_eq!(batched, per_elem, "stream batching must be invisible");
    println!(
        "stream_batch: batched {batched_s:.3}s vs per-element {per_elem_s:.3}s ({:.2}x)",
        per_elem_s / batched_s.max(1e-9),
    );

    // Decoupled run-ahead vector fetch on the same stream-heavy
    // SMT+MOM configuration: the gated row times the unit on; the
    // coupled reference is timed alongside and its simulated-cycle
    // delta printed (the run-ahead unit is a *timing* feature — the
    // two runs legitimately differ). The depth-0 leg pins the
    // structural off-path: decoupled with an empty window must be
    // bitwise the coupled machine.
    let (dec_on, dec_on_s) = timed_secs(|| Simulation::run(&mom.clone().with_decouple(true)));
    recorder.record("decoupled_vector", dec_on_s, dec_on.cycles);
    let (dec_off, dec_off_s) = timed_secs(|| Simulation::run(&mom.clone().with_decouple(false)));
    let depth0 = Simulation::run(&mom.clone().with_decouple(true).with_decouple_depth(0));
    assert_eq!(
        depth0, dec_off,
        "an empty run-ahead window must be bitwise the coupled machine"
    );
    println!(
        "decoupled_vector: on {dec_on_s:.3}s vs coupled {dec_off_s:.3}s; \
         {} cycles vs {} coupled ({:+.2}% sim cycles, {} elems run ahead)",
        dec_on.cycles,
        dec_off.cycles,
        (dec_on.cycles as f64 / dec_off.cycles.max(1) as f64 - 1.0) * 100.0,
        dec_on.vfetch.runahead_elems,
    );

    // Memory-hierarchy hot path: the same stream-heavy run under the
    // packed line-state model (the default) and under the
    // `MEDSIM_CACHE=ref` reference model. The packed planes are a
    // representation change, not a model change, so the two runs must
    // be bitwise identical — the row gates the memory hot path's wall
    // clock and re-proves the equivalence end to end on every CI axis.
    // The model knob is read at cache construction, so the legs force
    // it explicitly and restore the ambient value afterwards (this
    // section runs no worker threads).
    let prev_cache = std::env::var("MEDSIM_CACHE").ok();
    std::env::set_var("MEDSIM_CACHE", "packed");
    let (mem_packed, mem_packed_s) = timed_secs(|| Simulation::run(&mom));
    std::env::set_var("MEDSIM_CACHE", "ref");
    let (mem_ref, mem_ref_s) = timed_secs(|| Simulation::run(&mom));
    match prev_cache {
        Some(v) => std::env::set_var("MEDSIM_CACHE", v),
        None => std::env::remove_var("MEDSIM_CACHE"),
    }
    assert_eq!(
        mem_packed, mem_ref,
        "packed and reference line-state models must be stat-identical"
    );
    recorder.record("mem_hot_path", mem_packed_s, mem_packed.cycles);
    println!(
        "mem_hot_path: packed {mem_packed_s:.3}s vs ref {mem_ref_s:.3}s ({:.2}x)",
        mem_ref_s / mem_packed_s.max(1e-9),
    );

    // Sharded vs inline frontend on one big 8-thread SMT+MOM run at
    // the full MEDSIM_SCALE (a fig5-style grid point). Fresh caches on
    // both sides: trace synthesis/decode is the work the producer
    // threads overlap with the cycle loop. An explicit roomy budget
    // (not the MEDSIM_JOBS pool) guarantees the producer/ring path is
    // actually exercised — and thus gated — even on the jobs=1 CI
    // axis, where the global pool would silently fall back inline; the
    // *speedup* still needs a multi-core host, producers merely
    // timeslice on one core.
    let big = SimConfig::new(SimdIsa::Mom, 8).with_spec(spec);
    let (inline_run, inline_s) =
        timed_secs(|| Simulation::run_fronted(&big, &TraceCache::from_env(), &Frontend::inline()));
    let shard_stats_before = frontend::stats();
    let shard_budget = JobBudget::new(8);
    let sharded_frontend = Frontend::sharded_with(&shard_budget);
    let (sharded_run, sharded_s) =
        timed_secs(|| Simulation::run_fronted(&big, &TraceCache::from_env(), &sharded_frontend));
    assert_eq!(
        sharded_run, inline_run,
        "the sharded frontend must be invisible"
    );
    recorder.record("sharded_frontend", sharded_s, sharded_run.cycles);
    println!(
        "sharded_frontend: sharded {sharded_s:.2}s vs inline {inline_s:.2}s ({:.2}x, \
         {} shards on {} workers)",
        inline_s / sharded_s.max(1e-9),
        frontend::stats().sharded - shard_stats_before.sharded,
        frontend::total_workers(),
    );

    // A 4-core × 2-thread CMP run (8 contexts, one shared L2/DRAM
    // backend) at the full MEDSIM_SCALE. Three runs: the serial
    // reference schedule; a quantum-parallel run on an explicit roomy
    // budget (so the worker/quantum path is *exercised and asserted
    // bitwise-equal* even on the jobs=1 CI axis, where the global pool
    // would fall back serial) — recorded as `cmp_4core_quantum`, the
    // tentpole wall-clock row whose speedup over serial is only
    // meaningful on the multi-core jobs=4 axis (BENCH_runs-jobs4; a
    // 4-participant schedule timeslicing one host core measures
    // context-switch overhead, not the quantum); and the
    // environment-default machine (MEDSIM_JOBS decides whether phase-A
    // workers spawn), recorded as `cmp_4core` — what a user actually
    // gets, stable on every axis.
    let cmp = SimConfig::new(SimdIsa::Mom, 2)
        .with_cores(4)
        .with_spec(spec);
    println!(
        "{}",
        medsim_core::report::format_schedule_note(
            &cmp.clone().with_exec(medsim_core::ExecMode::Parallel)
        )
    );
    let (cmp_serial, cmp_serial_s) = timed_secs(|| {
        Simulation::run_fronted(
            &cmp.clone().with_exec(medsim_core::ExecMode::Serial),
            &TraceCache::from_env(),
            &Frontend::inline(),
        )
    });
    let cmp_budget = JobBudget::new(8);
    let cmp_frontend = Frontend::sharded_with(&cmp_budget);
    let (cmp_parallel, cmp_parallel_s) = timed_secs(|| {
        Simulation::run_fronted(
            &cmp.clone().with_exec(medsim_core::ExecMode::Parallel),
            &TraceCache::from_env(),
            &cmp_frontend,
        )
    });
    assert_eq!(
        cmp_parallel, cmp_serial,
        "quantum-parallel core stepping must be invisible"
    );
    recorder.record("cmp_4core_quantum", cmp_parallel_s, cmp_parallel.cycles);
    let (cmp_default, cmp_default_s) = timed_secs(|| {
        Simulation::run_fronted(
            &cmp.clone().with_exec(medsim_core::ExecMode::Parallel),
            &TraceCache::from_env(),
            &Frontend::from_env(),
        )
    });
    assert_eq!(
        cmp_default, cmp_serial,
        "the default-budget machine must match the reference schedule"
    );
    recorder.record("cmp_4core", cmp_default_s, cmp_default.cycles);
    println!(
        "cmp_4core: default {cmp_default_s:.2}s, serial {cmp_serial_s:.2}s, \
         quantum-parallel {cmp_parallel_s:.2}s ({:.2}x serial; 4 cores x 2 threads, \
         shared L2 hit rate {:.1}%)",
        cmp_serial_s / cmp_parallel_s.max(1e-9),
        cmp_default.l2_hit_rate * 100.0,
    );

    // Cold vs warm persistent trace store around the fig5 grid. The
    // cold row is only meaningful against an *empty* store, so a
    // scratch directory is always used (a user-set MEDSIM_TRACE_DIR
    // would already be populated by the measurements above) and the
    // prior value is restored afterwards.
    let preset_dir = std::env::var("MEDSIM_TRACE_DIR").ok();
    let store_dir = std::env::temp_dir().join(format!("medsim-bench-store-{}", std::process::id()));
    std::fs::remove_dir_all(&store_dir).ok();
    std::env::set_var("MEDSIM_TRACE_DIR", &store_dir);
    let cold = recorder.measure("fig5_real_cold_store", || fig5_real(&spec), sum_fig5_cycles);
    let warm = recorder.measure("fig5_real_warm_store", || fig5_real(&spec), sum_fig5_cycles);
    assert_eq!(cold, warm, "store replay must be bit-identical");
    let rows = recorder.entries();
    let (cold_s, warm_s) = (rows[rows.len() - 2].wall_s, rows[rows.len() - 1].wall_s);
    println!(
        "trace store ({}): fig5_real cold {cold_s:.2}s vs warm {warm_s:.2}s ({:.2}x)",
        store_dir.display(),
        cold_s / warm_s.max(1e-9),
    );
    match preset_dir {
        Some(d) => std::env::set_var("MEDSIM_TRACE_DIR", d),
        None => std::env::remove_var("MEDSIM_TRACE_DIR"),
    }
    std::fs::remove_dir_all(&store_dir).ok();

    // Cold vs warm *result* store around the same grid: where the
    // trace store only skips synthesis, a warm result store skips the
    // pipelines entirely (`MEDSIM_RESULT_DIR` read-through in
    // `run_grid`). Same scratch-directory discipline as above.
    let preset_results = std::env::var("MEDSIM_RESULT_DIR").ok();
    let result_dir =
        std::env::temp_dir().join(format!("medsim-bench-results-{}", std::process::id()));
    std::fs::remove_dir_all(&result_dir).ok();
    std::env::set_var("MEDSIM_RESULT_DIR", &result_dir);
    let (grid_cold, grid_cold_s) = timed_secs(|| fig5_real(&spec));
    let grid_warm = recorder.measure("warm_grid", || fig5_real(&spec), sum_fig5_cycles);
    assert_eq!(
        grid_cold, grid_warm,
        "result-cache replay must be bit-identical"
    );
    let grid_warm_s = recorder.entries().last().expect("row just recorded").wall_s;
    println!(
        "result store ({}): fig5_real cold {grid_cold_s:.2}s vs warm {grid_warm_s:.2}s ({:.2}x)",
        result_dir.display(),
        grid_cold_s / grid_warm_s.max(1e-9),
    );
    // The whole point of the cache: warm sweeps are (nearly) free. Only
    // enforced when the cold run is long enough to measure — at smoke
    // scales both sides sit in process-startup noise.
    assert!(
        grid_cold_s >= 5.0 * grid_warm_s || grid_cold_s < 0.25,
        "warm grid should be >= 5x faster than cold \
         ({grid_cold_s:.3}s cold vs {grid_warm_s:.3}s warm)"
    );
    match preset_results {
        Some(d) => std::env::set_var("MEDSIM_RESULT_DIR", d),
        None => std::env::remove_var("MEDSIM_RESULT_DIR"),
    }
    std::fs::remove_dir_all(&result_dir).ok();

    recorder.write_default().expect("write BENCH_runs.json");
}

fn sum_fig5_cycles(fig: &medsim_core::experiments::Fig5) -> u64 {
    fig.ideal
        .iter()
        .chain(fig.real.iter())
        .flat_map(|c| c.runs.iter().map(|r| r.cycles))
        .sum()
}
