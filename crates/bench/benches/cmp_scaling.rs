//! CMP scaling: the machine model scaled along the scale-out axis —
//! 1/2/4 SMT cores with private L1 levels sharing one L2/DRAM backend,
//! swept over both ISAs at 1 and 2 thread contexts per core.
//!
//! This is the scenario family the paper stops short of: vector-heavy
//! media kernels are low-operational-intensity workloads, so shared-L2
//! contention (bank slots, MSHRs, the DRDRAM channel) decides how far
//! core count scales throughput. The single-core column reproduces the
//! paper's machine unchanged.

use medsim_bench::{spec_from_env, timed};
use medsim_core::experiments::cmp_scaling;
use medsim_core::report::{format_cmp_curves, format_schedule_note};
use medsim_core::sim::SimConfig;
use medsim_workloads::trace::SimdIsa;

fn main() {
    let spec = spec_from_env();
    // The sweep's largest machine, as one run would configure it: the
    // note records which host schedule (exec mode + stepping quantum)
    // produced the wall-clock numbers below.
    println!(
        "{}",
        format_schedule_note(&SimConfig::new(SimdIsa::Mom, 2).with_cores(4))
    );
    let curves = timed("cmp_scaling", || cmp_scaling(&spec));
    println!(
        "{}",
        format_cmp_curves(
            "CMP scaling: cores sharing one L2/DRAM backend (conventional hierarchy)",
            &curves
        )
    );
    for c in &curves {
        let (Some(one), Some(four)) = (c.at(1), c.at(4)) else {
            continue;
        };
        println!(
            "CMP+{} {}thr/core: 4-core scaling {:.2}x over 1 core",
            c.isa,
            c.threads,
            four / one.max(1e-12),
        );
    }
}
