//! Figure 6: impact of the fetch policies (conventional hierarchy).
//!
//! Paper: policies only matter at high thread counts (≤9% gain at 8
//! threads); ICOUNT best for SMT+MMX, OCOUNT best for SMT+MOM; BALANCE
//! is the cost-effective alternative; 4 threads still beat 8.

use medsim_bench::{spec_from_env, timed};
use medsim_core::experiments::fig_fetch_policies;
use medsim_core::report::format_curves;
use medsim_mem::HierarchyKind;
use medsim_workloads::trace::SimdIsa;

fn main() {
    let spec = spec_from_env();
    let curves = timed("fig6", || {
        fig_fetch_policies(&spec, HierarchyKind::Conventional)
    });
    println!(
        "{}",
        format_curves("Figure 6: fetch policies, conventional hierarchy", &curves)
    );
    for isa in SimdIsa::ALL {
        let rr = curves
            .iter()
            .find(|c| c.isa == isa && c.policy == medsim_cpu::FetchPolicy::RoundRobin)
            .expect("round-robin curve");
        let best = curves
            .iter()
            .filter(|c| c.isa == isa)
            .max_by(|a, b| a.at(8).unwrap().total_cmp(&b.at(8).unwrap()))
            .expect("curves present");
        println!(
            "{}: best policy at 8 threads = {} ({:+.1}% over RR; paper: up to +9%)",
            isa.label(),
            best.policy,
            (best.at(8).unwrap() / rr.at(8).unwrap() - 1.0) * 100.0
        );
    }
}
