//! Ablation sweeps over the design choices DESIGN.md calls out:
//!
//! * **stream length** — MOM's benefit vs the maximum stream length
//!   (1 ≈ plain MMX semantics, 16 = full MOM);
//! * **write-buffer depth** — the coalescing write buffer (0-ish…16);
//! * **MSHR count** — memory-level parallelism under 8 threads;
//! * **coherence probe penalty** — cost sensitivity of the decoupled
//!   hierarchy's exclusive-bit policy;
//! * **register sizing** — the Table-1 saturation argument.
//!
//! Reduce the runtime with `MEDSIM_SCALE` (e.g. 0.0005) if needed.

use medsim_bench::{spec_from_env, timed};
use medsim_core::sim::{SimConfig, Simulation};
use medsim_mem::{HierarchyKind, MemConfig};
use medsim_workloads::trace::SimdIsa;

fn main() {
    let spec = spec_from_env();

    println!("== Ablation: MOM maximum stream length (8 threads, decoupled) ==");
    for cap in [1u8, 2, 4, 8, 16] {
        let r = timed(&format!("vl={cap}"), || {
            Simulation::run(
                &SimConfig::new(SimdIsa::Mom, 8)
                    .with_hierarchy(HierarchyKind::Decoupled)
                    .with_spec(spec)
                    .with_max_stream_len(cap),
            )
        });
        println!("max vl {cap:>2}: equivalent IPC {:.2}  cycles {}", r.equiv_ipc(), r.cycles);
    }
    println!();

    println!("== Ablation: write-buffer depth (8 threads, MMX, conventional) ==");
    for depth in [1usize, 2, 4, 8, 16] {
        let mut mem = MemConfig::paper_with(HierarchyKind::Conventional);
        mem.write_buffer_depth = depth;
        let r = timed(&format!("wb={depth}"), || {
            Simulation::run(&SimConfig::new(SimdIsa::Mmx, 8).with_spec(spec).with_mem(mem.clone()))
        });
        println!("depth {depth:>2}: IPC {:.2}  write-buffer stalls {}", r.ipc(), r.mem_stalls);
    }
    println!();

    println!("== Ablation: MSHR count (8 threads, MMX, conventional) ==");
    for mshrs in [1usize, 2, 4, 8, 16] {
        let mut mem = MemConfig::paper_with(HierarchyKind::Conventional);
        mem.mshrs = mshrs;
        let r = timed(&format!("mshr={mshrs}"), || {
            Simulation::run(&SimConfig::new(SimdIsa::Mmx, 8).with_spec(spec).with_mem(mem.clone()))
        });
        println!("mshrs {mshrs:>2}: IPC {:.2}  avg L1 latency {:.2}", r.ipc(), r.l1_avg_latency);
    }
    println!();

    println!("== Ablation: exclusive-bit probe penalty (8 threads, MOM, decoupled) ==");
    for pen in [0u64, 2, 8, 16] {
        let mut mem = MemConfig::paper_with(HierarchyKind::Decoupled);
        mem.coherence_probe_penalty = pen;
        let r = timed(&format!("probe={pen}"), || {
            Simulation::run(&SimConfig::new(SimdIsa::Mom, 8).with_spec(spec).with_mem(mem.clone()))
        });
        println!("penalty {pen:>2}: equivalent IPC {:.2}", r.equiv_ipc());
    }
    println!();

    println!("== Ablation: Table-1 sizing saturation (8 threads, MMX) ==");
    // The SimConfig API fixes sizing to the paper's table; approximating
    // the sweep by thread count shows the same saturation argument: the
    // 8-thread sizing run at 4 threads wastes no performance.
    for threads in [4usize, 8] {
        let r = timed(&format!("threads={threads}"), || {
            Simulation::run(&SimConfig::new(SimdIsa::Mmx, threads).with_spec(spec))
        });
        println!(
            "threads {threads}: IPC {:.2}  (queue entries {}, int regs {})",
            r.ipc(),
            medsim_cpu::SizingParams::for_threads(threads).queue_entries,
            medsim_cpu::SizingParams::for_threads(threads).int_regs
        );
    }
}
