//! Ablation sweeps over the design choices DESIGN.md calls out:
//!
//! * **stream length** — MOM's benefit vs the maximum stream length
//!   (1 ≈ plain MMX semantics, 16 = full MOM);
//! * **write-buffer depth** — the coalescing write buffer (0-ish…16);
//! * **MSHR count** — memory-level parallelism under 8 threads;
//! * **coherence probe penalty** — cost sensitivity of the decoupled
//!   hierarchy's exclusive-bit policy;
//! * **register sizing** — the Table-1 saturation argument.
//!
//! Every sweep fans out through the parallel grid runner. Reduce the
//! runtime with `MEDSIM_SCALE` (e.g. 0.0005) if needed.

use medsim_bench::{spec_from_env, timed};
use medsim_core::runner::{effective_jobs, run_grid_with, TraceCache};
use medsim_core::sim::SimConfig;
use medsim_mem::{HierarchyKind, MemConfig};
use medsim_workloads::trace::SimdIsa;

fn main() {
    let spec = spec_from_env();
    // One shared cache: every sweep reuses the same eight program
    // traces instead of regenerating them per run_grid call.
    let cache = TraceCache::from_env();
    let grid =
        |configs: &[SimConfig]| run_grid_with(configs, effective_jobs(configs.len()), &cache);

    println!("== Ablation: MOM maximum stream length (8 threads, decoupled) ==");
    let caps = [1u8, 2, 4, 8, 16];
    let configs: Vec<SimConfig> = caps
        .iter()
        .map(|&cap| {
            SimConfig::new(SimdIsa::Mom, 8)
                .with_hierarchy(HierarchyKind::Decoupled)
                .with_spec(spec)
                .with_max_stream_len(cap)
        })
        .collect();
    for (cap, r) in caps
        .iter()
        .zip(timed("stream-length sweep", || grid(&configs)))
    {
        println!(
            "max vl {cap:>2}: equivalent IPC {:.2}  cycles {}",
            r.equiv_ipc(),
            r.cycles
        );
    }
    println!();

    println!("== Ablation: write-buffer depth (8 threads, MMX, conventional) ==");
    let depths = [1usize, 2, 4, 8, 16];
    let configs: Vec<SimConfig> = depths
        .iter()
        .map(|&depth| {
            let mut mem = MemConfig::paper_with(HierarchyKind::Conventional);
            mem.write_buffer_depth = depth;
            SimConfig::new(SimdIsa::Mmx, 8)
                .with_spec(spec)
                .with_mem(mem)
        })
        .collect();
    for (depth, r) in depths
        .iter()
        .zip(timed("write-buffer sweep", || grid(&configs)))
    {
        println!(
            "depth {depth:>2}: IPC {:.2}  write-buffer stalls {}",
            r.ipc(),
            r.mem_stalls
        );
    }
    println!();

    println!("== Ablation: MSHR count (8 threads, MMX, conventional) ==");
    let mshr_counts = [1usize, 2, 4, 8, 16];
    let configs: Vec<SimConfig> = mshr_counts
        .iter()
        .map(|&mshrs| {
            let mut mem = MemConfig::paper_with(HierarchyKind::Conventional);
            mem.mshrs = mshrs;
            SimConfig::new(SimdIsa::Mmx, 8)
                .with_spec(spec)
                .with_mem(mem)
        })
        .collect();
    for (mshrs, r) in mshr_counts
        .iter()
        .zip(timed("MSHR sweep", || grid(&configs)))
    {
        println!(
            "mshrs {mshrs:>2}: IPC {:.2}  avg L1 latency {:.2}",
            r.ipc(),
            r.l1_avg_latency
        );
    }
    println!();

    println!("== Ablation: exclusive-bit probe penalty (8 threads, MOM, decoupled) ==");
    let penalties = [0u64, 2, 8, 16];
    let configs: Vec<SimConfig> = penalties
        .iter()
        .map(|&pen| {
            let mut mem = MemConfig::paper_with(HierarchyKind::Decoupled);
            mem.coherence_probe_penalty = pen;
            SimConfig::new(SimdIsa::Mom, 8)
                .with_spec(spec)
                .with_mem(mem)
        })
        .collect();
    for (pen, r) in penalties
        .iter()
        .zip(timed("probe-penalty sweep", || grid(&configs)))
    {
        println!("penalty {pen:>2}: equivalent IPC {:.2}", r.equiv_ipc());
    }
    println!();

    println!("== Ablation: Table-1 sizing saturation (8 threads, MMX) ==");
    // The SimConfig API fixes sizing to the paper's table; approximating
    // the sweep by thread count shows the same saturation argument: the
    // 8-thread sizing run at 4 threads wastes no performance.
    let thread_counts = [4usize, 8];
    let configs: Vec<SimConfig> = thread_counts
        .iter()
        .map(|&threads| SimConfig::new(SimdIsa::Mmx, threads).with_spec(spec))
        .collect();
    for (threads, r) in thread_counts
        .iter()
        .zip(timed("sizing sweep", || grid(&configs)))
    {
        println!(
            "threads {threads}: IPC {:.2}  (queue entries {}, int regs {})",
            r.ipc(),
            medsim_cpu::SizingParams::for_threads(*threads).queue_entries,
            medsim_cpu::SizingParams::for_threads(*threads).int_regs
        );
    }
}
