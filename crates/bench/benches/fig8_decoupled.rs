//! Figure 8: fetch policies under the decoupled cache hierarchy.
//!
//! Paper: decoupling solves the cache-degradation problem — 8 threads
//! now beat 4; fetch policies barely help MMX but give up to ~7% for
//! MOM.
//!
//! Figure 7 (the two port organizations) is structural; its parameters
//! are printed below for reference.

use medsim_bench::{spec_from_env, timed};
use medsim_core::experiments::fig_fetch_policies;
use medsim_core::report::format_curves;
use medsim_mem::{HierarchyKind, MemConfig};
use medsim_workloads::trace::SimdIsa;

fn main() {
    let spec = spec_from_env();
    let conv = MemConfig::paper();
    println!("== Figure 7 (organizations) ==");
    println!(
        "conventional: {} general-purpose L1 ports, {}-bank L1, {}-bank L2",
        conv.general_ports, conv.l1d.banks, conv.l2.banks
    );
    println!(
        "decoupled   : {} scalar ports -> L1, {} vector ports -> L2 via crossbar, exclusive-bit coherence (+{} cycles on probe)",
        conv.scalar_ports, conv.vector_ports, conv.coherence_probe_penalty
    );
    println!();

    let curves = timed("fig8", || {
        fig_fetch_policies(&spec, HierarchyKind::Decoupled)
    });
    println!(
        "{}",
        format_curves("Figure 8: fetch policies, decoupled hierarchy", &curves)
    );
    for isa in SimdIsa::ALL {
        let rr = curves
            .iter()
            .find(|c| c.isa == isa && c.policy == medsim_cpu::FetchPolicy::RoundRobin)
            .expect("round-robin curve");
        let v4 = rr.at(4).unwrap();
        let v8 = rr.at(8).unwrap();
        println!(
            "{}: 8-thread {:.2} vs 4-thread {:.2} -> {}",
            isa.label(),
            v8,
            v4,
            if v8 > v4 {
                "8 > 4 restored (paper: yes)"
            } else {
                "still capped"
            }
        );
        let best = curves
            .iter()
            .filter(|c| c.isa == isa)
            .max_by(|a, b| a.at(8).unwrap().total_cmp(&b.at(8).unwrap()))
            .expect("curves");
        println!(
            "{}: best policy gain over RR at 8 threads: {:+.1}% ({}; paper: MMX ~0%, MOM up to +7%)",
            isa.label(),
            (best.at(8).unwrap() / rr.at(8).unwrap() - 1.0) * 100.0,
            best.policy
        );
    }
}
