//! Table 2: the multiprogrammed workload description, plus the §5.1 run
//! order and the per-benchmark work-unit counts at the current scale.

use medsim_bench::spec_from_env;
use medsim_core::report::format_table2;
use medsim_workloads::Benchmark;

fn main() {
    println!("{}", format_table2());
    let spec = spec_from_env();
    println!(
        "== §5.1 run order and scaled work units (scale {:.4}) ==",
        spec.scale
    );
    for (slot, b) in Benchmark::PAPER_ORDER.iter().enumerate() {
        println!(
            "slot {slot}: {:<10} {:>8} work units ({:>7} at full scale; paper {:.1}M MMX instructions)",
            b.name(),
            b.units(spec.scale),
            b.units_full(),
            b.paper_minsts(medsim_workloads::trace::SimdIsa::Mmx),
        );
    }
}
