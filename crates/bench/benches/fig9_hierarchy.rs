//! Figure 9: performance benefits of bypassing L1 on vector accesses —
//! ideal vs conventional vs decoupled, best fetch policy per ISA
//! (ICOUNT for MMX, OCOUNT for MOM), plus the paper's headline numbers.
//!
//! Paper: bypassing helps with many threads; at 8 threads SMT+MOM ends
//! 15% below ideal memory (MMX: 30%); final speedups vs the 1-thread
//! MMX baseline: SMT+MMX 2.1×, SMT+MOM 3.3×.

use medsim_bench::{spec_from_env, timed};
use medsim_core::experiments::{fig9_hierarchy, headline};
use medsim_core::metrics::EipcFactor;
use medsim_core::report::{format_curves, format_headline};

fn main() {
    let spec = spec_from_env();
    let curves = timed("fig9", || fig9_hierarchy(&spec));
    println!(
        "{}",
        format_curves("Figure 9: hierarchies (MMX: ICOUNT, MOM: OCOUNT)", &curves)
    );
    let h = headline(&curves);
    let factor = EipcFactor::compute(&spec);
    println!("{}", format_headline(&h, &factor));
}
