//! Table 1: architectural parameters based on number of threads.
//!
//! The paper sized physical registers and window entries by "preliminary
//! simulations … to achieve reasonable (near saturation) processor
//! performance for 1, 2, 4 and 8 threads". This target prints our
//! sizing and demonstrates saturation: halving the register pools at 8
//! threads must cost performance, and doubling them must not help much.

use medsim_bench::{spec_from_env, timed};
use medsim_core::sim::{SimConfig, Simulation};
use medsim_cpu::SizingParams;
use medsim_workloads::trace::SimdIsa;

fn main() {
    println!("== Table 1: architectural parameters by thread count ==");
    println!(
        "{:<8} {:>8} {:>8} {:>9} {:>11} {:>8} {:>12} {:>10}",
        "threads",
        "int-regs",
        "fp-regs",
        "mmx-regs",
        "stream-regs",
        "accums",
        "queue-entries",
        "rob/thread"
    );
    for t in [1usize, 2, 4, 8] {
        let s = SizingParams::for_threads(t);
        println!(
            "{:<8} {:>8} {:>8} {:>9} {:>11} {:>8} {:>12} {:>10}",
            t,
            s.int_regs,
            s.fp_regs,
            s.simd_regs,
            s.stream_regs,
            s.acc_regs,
            s.queue_entries,
            s.rob_per_thread
        );
    }
    println!();

    // Saturation demonstration at 8 threads, MMX, real memory.
    let spec = spec_from_env();
    let baseline = timed("table1 baseline", || {
        Simulation::run(&SimConfig::new(SimdIsa::Mmx, 8).with_spec(spec))
    });
    println!(
        "8-thread MMX with Table-1 sizing: IPC {:.2} ({} cycles)",
        baseline.ipc(),
        baseline.cycles
    );
    println!();
    println!("(sizing sensitivity is swept in `cargo bench -p medsim-bench --bench ablations`)");
}
