//! Table 3: instruction breakdown (%) and instruction counts per
//! benchmark under both ISAs, plus the §4.2 aggregate claims:
//!
//! * under MMX the workload is integer-dominated (62% average) with only
//!   16% SIMD arithmetic;
//! * MOM reduces integer instructions ~20%, memory ~7% and vector
//!   instructions ~62%, yet *increases* the integer share.

use medsim_bench::{spec_from_env, timed};
use medsim_core::experiments::{table3_breakdown, table3_suite_mix};
use medsim_core::report::format_table3;
use medsim_workloads::trace::SimdIsa;

fn main() {
    let spec = spec_from_env();
    let rows = timed("table3 rows", || table3_breakdown(&spec));
    let mmx = timed("table3 mmx suite", || table3_suite_mix(&spec, SimdIsa::Mmx));
    let mom = timed("table3 mom suite", || table3_suite_mix(&spec, SimdIsa::Mom));
    println!("{}", format_table3(&rows, mmx.total(), mom.total()));

    let bm = mmx.breakdown();
    let bo = mom.breakdown();
    println!("== §4.2 aggregates ==");
    println!(
        "suite under MMX: INT {:.1}% FP {:.1}% SIMD {:.1}% MEM {:.1}%  (paper: INT 62%, SIMD 16%)",
        bm.integer_pct, bm.fp_pct, bm.simd_pct, bm.memory_pct
    );
    println!(
        "suite under MOM: INT {:.1}% FP {:.1}% SIMD {:.1}% MEM {:.1}%  (paper: integer share rises)",
        bo.integer_pct, bo.fp_pct, bo.simd_pct, bo.memory_pct
    );
    let red = |a: u64, b: u64| (1.0 - b as f64 / a.max(1) as f64) * 100.0;
    println!(
        "MOM reductions vs MMX: integer {:.0}% (paper ~20%), memory {:.0}% (paper ~7%), vector {:.0}% (paper ~62%)",
        red(mmx.integer, mom.integer),
        red(mmx.memory, mom.memory),
        red(mmx.simd, mom.simd),
    );
    println!(
        "raw (fetched) instruction reduction: {:.0}% — the fetch/issue bandwidth MOM frees",
        red(mmx.raw, mom.raw)
    );
}
