//! Decoupled run-ahead vector fetch vs the coupled machine, over the
//! §5 workload (both ISAs × both real hierarchies, 4-thread SMT).
//!
//! Each configuration runs twice — `MEDSIM_DECOUPLE` off (the
//! paper-faithful coupled pipeline) and on — and the table reports the
//! IPC next to the achieved fraction of the DRAM roofline, so the
//! unit's benefit shows up in the same units the run report's roofline
//! section uses: a machine that was memory-bound and moves closer to
//! the roof is converting run-ahead into bandwidth, not just hiding
//! latency. Only MOM stream loads decouple — the MMX rows are the
//! control pair and must come out bitwise identical.

use medsim_bench::{spec_from_env, timed};
use medsim_core::experiments::decoupled_sweep;
use medsim_core::report::format_decoupled_sweep;
use medsim_workloads::trace::SimdIsa;

fn main() {
    let spec = spec_from_env();
    let rows = timed("decoupled_sweep", || decoupled_sweep(&spec));
    println!("{}", format_decoupled_sweep(&rows));
    for r in &rows {
        assert_eq!(
            r.coupled.vfetch,
            Default::default(),
            "{} {}: the coupled leg must never wake the unit",
            r.isa,
            r.hierarchy
        );
        match r.isa {
            // Only MOM stream loads decouple; the MMX machine must be
            // bitwise unaffected by the knob.
            SimdIsa::Mmx => assert_eq!(
                r.decoupled, r.coupled,
                "{}: the unit must not touch a streamless machine",
                r.hierarchy
            ),
            SimdIsa::Mom => assert!(
                r.decoupled.vfetch.runahead_elems > 0,
                "{}: the decoupled leg must actually run ahead",
                r.hierarchy
            ),
        }
    }
}
