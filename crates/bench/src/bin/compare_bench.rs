//! Trend comparison of two `BENCH_runs.json` reports — the CI perf gate.
//!
//! ```text
//! compare_bench <previous.json> <current.json> [threshold-percent] [--noise-floor <seconds>]
//! ```
//!
//! Prints a per-row table, then classifies every wall-clock regression
//! beyond the threshold (default 10%):
//!
//! * regressions on the **gated rows** (`fig5_real`,
//!   `pipeline_1thread`) print a GitHub Actions `::error::` line and
//!   the process exits non-zero — unless `MEDSIM_BENCH_GATE=warn`
//!   downgrades the gate to warnings;
//! * regressions elsewhere print `::warning::` lines only;
//! * rows faster than the noise floor (default 50 ms) in both reports
//!   are ignored — sub-floor timings are scheduler noise on shared CI
//!   runners;
//! * rows present in only one report are listed as added/removed (a
//!   removed row also prints a `::warning::` — it silently left the
//!   trend, and if it was gated, it silently left the gate);
//! * reports measured at different `MEDSIM_SCALE`s are declared
//!   incomparable (the baseline resets) instead of producing bogus
//!   regressions;
//! * the per-row delta table is additionally emitted as one
//!   `::notice::` workflow command so the trend lands in the GitHub
//!   Actions run summary, not only in the raw log.

use medsim_bench::{
    evaluate_gate, notice_delta_table, parse_compare_args, parse_report, row_changes, GateMode,
};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_compare_args(&argv).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });

    let old = parse_report(&read_or_exit(&args.old_path));
    let new = parse_report(&read_or_exit(&args.new_path));
    if new.runs.is_empty() {
        // An unparseable *current* report must not silently pass the
        // gate — it means the benchmark or the parser broke.
        eprintln!("current report {} has no parseable rows", args.new_path);
        std::process::exit(2);
    }
    if old.runs.is_empty() {
        println!("previous report has no rows; nothing to compare");
        return;
    }

    println!(
        "{:<28} {:>10} {:>10} {:>8}",
        "benchmark", "prev s", "now s", "delta"
    );
    for n in &new.runs {
        match old.runs.iter().find(|o| o.name == n.name) {
            Some(o) if o.wall_s > 0.0 => {
                let delta = (n.wall_s / o.wall_s - 1.0) * 100.0;
                println!(
                    "{:<28} {:>10.3} {:>10.3} {:>+7.1}%",
                    n.name, o.wall_s, n.wall_s, delta
                );
            }
            _ => println!("{:<28} {:>10} {:>10.3}     (new)", n.name, "-", n.wall_s),
        }
    }
    // Rows present in only one report enter/leave the trend visibly:
    // skipping them silently would also silently un-gate them.
    let (added, removed) = row_changes(&old.runs, &new.runs);
    for name in &removed {
        let o = old
            .runs
            .iter()
            .find(|o| &o.name == name)
            .expect("removed row");
        println!("{:<28} {:>10.3} {:>10}     (removed)", name, o.wall_s, "-");
    }
    if !added.is_empty() || !removed.is_empty() {
        println!(
            "rows added since baseline: [{}]; rows removed: [{}]",
            added.join(", "),
            removed.join(", ")
        );
    }
    for name in &removed {
        println!("::warning title=bench row removed::{name}: present in the baseline but missing from the current report");
    }
    // The same per-row table as a single ::notice so the deltas surface
    // in the GitHub Actions run summary, not only in the raw log.
    if let Some(notice) = notice_delta_table(&old.runs, &new.runs) {
        println!("{notice}");
    }

    let decision = evaluate_gate(&old, &new, args.threshold, args.noise_floor_s);
    if !decision.comparable {
        println!(
            "workload scale changed ({:?} -> {:?}): baseline reset, nothing to gate",
            old.scale, new.scale
        );
        return;
    }

    let gate = GateMode::from_env();
    for (name, old_s, new_s) in &decision.ungated {
        println!(
            "::warning title=bench regression::{name}: {old_s:.3}s -> {new_s:.3}s \
             (+{:.0}%, threshold {:.0}%)",
            (new_s / old_s - 1.0) * 100.0,
            args.threshold * 100.0
        );
    }
    for (name, old_s, new_s) in &decision.gated {
        let level = if gate == GateMode::Fail {
            "error"
        } else {
            "warning"
        };
        println!(
            "::{level} title=bench regression (gated)::{name}: {old_s:.3}s -> {new_s:.3}s \
             (+{:.0}%, threshold {:.0}%)",
            (new_s / old_s - 1.0) * 100.0,
            args.threshold * 100.0
        );
    }
    if decision.gated.is_empty() && decision.ungated.is_empty() {
        println!(
            "no wall-clock regressions beyond {:.0}% (noise floor {}s)",
            args.threshold * 100.0,
            args.noise_floor_s
        );
    }
    if !decision.gated.is_empty() && gate == GateMode::Fail {
        eprintln!(
            "{} gated benchmark(s) regressed beyond {:.0}%; set MEDSIM_BENCH_GATE=warn to bypass",
            decision.gated.len(),
            args.threshold * 100.0
        );
        std::process::exit(1);
    }
}

fn read_or_exit(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    })
}
