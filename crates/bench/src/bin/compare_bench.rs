//! Trend comparison of two `BENCH_runs.json` reports.
//!
//! ```text
//! compare_bench <previous.json> <current.json> [threshold-percent]
//! ```
//!
//! Prints a per-row table, and a GitHub Actions `::warning::` line for
//! every benchmark whose wall clock regressed by more than the
//! threshold (default 10%). Always exits 0 — the comparison warns, it
//! does not gate: smoke-scale CI timings on shared runners are too
//! noisy to fail a build on.

use medsim_bench::{parse_runs, regressions};

/// Rows faster than this in both reports are ignored (scheduler noise).
const NOISE_FLOOR_S: f64 = 0.05;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (Some(old_path), Some(new_path)) = (args.get(1), args.get(2)) else {
        eprintln!("usage: compare_bench <previous.json> <current.json> [threshold-percent]");
        std::process::exit(2);
    };
    let threshold = args
        .get(3)
        .and_then(|v| v.parse::<f64>().ok())
        .map_or(0.10, |pct| pct / 100.0);

    let old = parse_runs(&read_or_exit(old_path));
    let new = parse_runs(&read_or_exit(new_path));
    if old.is_empty() || new.is_empty() {
        println!(
            "nothing to compare (old: {} rows, new: {} rows)",
            old.len(),
            new.len()
        );
        return;
    }

    println!(
        "{:<28} {:>10} {:>10} {:>8}",
        "benchmark", "prev s", "now s", "delta"
    );
    for n in &new {
        match old.iter().find(|o| o.name == n.name) {
            Some(o) if o.wall_s > 0.0 => {
                let delta = (n.wall_s / o.wall_s - 1.0) * 100.0;
                println!(
                    "{:<28} {:>10.3} {:>10.3} {:>+7.1}%",
                    n.name, o.wall_s, n.wall_s, delta
                );
            }
            _ => println!("{:<28} {:>10} {:>10.3}     (new)", n.name, "-", n.wall_s),
        }
    }

    let regs = regressions(&old, &new, threshold, NOISE_FLOOR_S);
    for (name, old_s, new_s) in &regs {
        println!(
            "::warning title=bench regression::{name}: {old_s:.3}s -> {new_s:.3}s \
             (+{:.0}%, threshold {:.0}%)",
            (new_s / old_s - 1.0) * 100.0,
            threshold * 100.0
        );
    }
    if regs.is_empty() {
        println!(
            "no wall-clock regressions beyond {:.0}% (noise floor {NOISE_FLOOR_S}s)",
            threshold * 100.0
        );
    }
}

fn read_or_exit(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    })
}
