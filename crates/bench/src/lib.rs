//! # medsim-bench — the table/figure regeneration harness
//!
//! One bench target per table and figure of the paper (run with
//! `cargo bench -p medsim-bench --bench <target>`), plus ablation
//! sweeps and Criterion micro-benchmarks. `cargo bench --workspace`
//! regenerates everything.
//!
//! The workload scale defaults to [`DEFAULT_SCALE`] (fractions of the
//! paper's full-size instruction counts) and can be overridden with the
//! `MEDSIM_SCALE` environment variable, e.g.
//! `MEDSIM_SCALE=0.01 cargo bench -p medsim-bench --bench fig5_real`.

use medsim_workloads::WorkloadSpec;
use std::io::Write as _;
use std::time::Instant;

/// Default workload scale for bench runs: large enough for stable
/// shapes, small enough to regenerate every figure in minutes.
pub const DEFAULT_SCALE: f64 = 0.001;

/// Workload spec for bench targets, honoring `MEDSIM_SCALE` and
/// `MEDSIM_SEED` environment overrides.
#[must_use]
pub fn spec_from_env() -> WorkloadSpec {
    let scale = std::env::var("MEDSIM_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(DEFAULT_SCALE);
    let mut spec = WorkloadSpec::new(scale);
    if let Some(seed) = std::env::var("MEDSIM_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        spec.seed = seed;
    }
    spec
}

/// Run `f`, printing its wall-clock time with a label.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    eprintln!("[{label}: {:.1}s]", start.elapsed().as_secs_f64());
    out
}

/// Run `f`, returning its result and wall-clock seconds.
pub fn timed_secs<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// One measured entry of a bench-run report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Benchmark / driver name.
    pub name: String,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Total simulated cycles covered by the measurement (0 when not
    /// applicable, e.g. pure trace generation).
    pub sim_cycles: u64,
}

impl BenchEntry {
    /// Simulated cycles per wall-clock second — the simulator's
    /// headline throughput metric.
    #[must_use]
    pub fn sim_cycles_per_sec(&self) -> f64 {
        if self.wall_s <= 0.0 {
            0.0
        } else {
            self.sim_cycles as f64 / self.wall_s
        }
    }
}

/// Collects [`BenchEntry`] rows and emits `BENCH_runs.json` so the
/// perf trajectory of the simulator itself is tracked PR over PR (the
/// CI smoke-bench job uploads the file as an artifact and
/// `compare_bench` gates on it).
#[derive(Debug, Default)]
pub struct BenchRecorder {
    entries: Vec<BenchEntry>,
}

impl BenchRecorder {
    /// Empty recorder.
    #[must_use]
    pub fn new() -> Self {
        BenchRecorder::default()
    }

    /// Record one measurement.
    pub fn record(&mut self, name: &str, wall_s: f64, sim_cycles: u64) {
        self.entries.push(BenchEntry {
            name: name.to_string(),
            wall_s,
            sim_cycles,
        });
    }

    /// Time `f`, record it under `name` with the simulated-cycle count
    /// its result reports via `cycles_of`, and pass the result through.
    pub fn measure<T>(
        &mut self,
        name: &str,
        f: impl FnOnce() -> T,
        cycles_of: impl FnOnce(&T) -> u64,
    ) -> T {
        let (out, wall_s) = timed_secs(f);
        self.record(name, wall_s, cycles_of(&out));
        out
    }

    /// The rows recorded so far.
    #[must_use]
    pub fn entries(&self) -> &[BenchEntry] {
        &self.entries
    }

    /// Render the report as a JSON document (hand-emitted: the
    /// environment's serde is a no-op shim). The top-level `scale`
    /// records the workload scale the rows were measured at, so trend
    /// comparison can refuse to compare across scale changes.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"schema\": \"medsim-bench-runs/v2\",\n  \"scale\": {},\n  \"runs\": [\n",
            spec_from_env().scale
        );
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"wall_s\": {:.6}, \"sim_cycles\": {}, \"sim_cycles_per_sec\": {:.1}}}{comma}\n",
                escape_json(&e.name),
                e.wall_s,
                e.sim_cycles,
                e.sim_cycles_per_sec(),
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write the report to `MEDSIM_BENCH_JSON` (default
    /// `BENCH_runs.json` in the working directory).
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn write_default(&self) -> std::io::Result<()> {
        let path = std::env::var("MEDSIM_BENCH_JSON").unwrap_or_else(|_| "BENCH_runs.json".into());
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_json().as_bytes())?;
        eprintln!("[bench report -> {path}]");
        Ok(())
    }
}

/// A parsed `BENCH_runs.json` document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchReport {
    /// Workload scale the rows were measured at (absent in v1 reports).
    pub scale: Option<f64>,
    /// Measured rows.
    pub runs: Vec<BenchEntry>,
}

/// Parse a `BENCH_runs.json` document — the inverse of
/// [`BenchRecorder::to_json`], hand-rolled for the same reason that
/// emitter is (the workspace serde is a no-op shim). Tolerant of
/// unknown fields; rows missing `name`/`wall_s`/`sim_cycles` are
/// skipped; v1 reports (no top-level `scale`) parse with `scale: None`.
#[must_use]
pub fn parse_report(json: &str) -> BenchReport {
    let scale = json
        .split('{')
        .nth(1)
        .and_then(|head| extract_number(head, "\"scale\": "));
    BenchReport {
        scale,
        runs: parse_runs(json),
    }
}

/// Parse just the rows of a `BENCH_runs.json` document (see
/// [`parse_report`] for the scale-aware variant).
#[must_use]
pub fn parse_runs(json: &str) -> Vec<BenchEntry> {
    let mut out = Vec::new();
    for row in json.split('{').skip(1) {
        let Some(name) = extract_string(row, "\"name\": \"") else {
            continue;
        };
        let Some(wall_s) = extract_number(row, "\"wall_s\": ") else {
            continue;
        };
        let Some(sim_cycles) = extract_number(row, "\"sim_cycles\": ") else {
            continue;
        };
        out.push(BenchEntry {
            name,
            wall_s,
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            sim_cycles: sim_cycles as u64,
        });
    }
    out
}

/// Compare two parsed reports; returns `(name, old_wall_s, new_wall_s)`
/// for every entry whose wall clock regressed by more than
/// `threshold` (fractional, e.g. `0.10`). Entries below `noise_floor_s`
/// in both reports are ignored — sub-50 ms rows are scheduler noise on
/// shared CI runners.
#[must_use]
pub fn regressions(
    old: &[BenchEntry],
    new: &[BenchEntry],
    threshold: f64,
    noise_floor_s: f64,
) -> Vec<(String, f64, f64)> {
    let mut out = Vec::new();
    for n in new {
        let Some(o) = old.iter().find(|o| o.name == n.name) else {
            continue;
        };
        if o.wall_s < noise_floor_s && n.wall_s < noise_floor_s {
            continue;
        }
        if n.wall_s > o.wall_s * (1.0 + threshold) {
            out.push((n.name.clone(), o.wall_s, n.wall_s));
        }
    }
    out
}

/// How `compare_bench` responds to a regression on a gated row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateMode {
    /// Gated regressions fail the build (the default).
    Fail,
    /// Everything only warns (opt-out: `MEDSIM_BENCH_GATE=warn`).
    Warn,
}

impl GateMode {
    /// Gate mode selected by `MEDSIM_BENCH_GATE` (`warn`/`off`/`0`
    /// disable the failing gate; anything else, or unset, enforces it).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("MEDSIM_BENCH_GATE") {
            Ok(v)
                if v.eq_ignore_ascii_case("warn") || v.eq_ignore_ascii_case("off") || v == "0" =>
            {
                GateMode::Warn
            }
            _ => GateMode::Fail,
        }
    }
}

/// The headline rows whose wall-clock regressions fail CI: the
/// figure-5 grid (end-to-end), the raw single-thread hot path, the
/// sharded-frontend single big run, the packed block-decode throughput,
/// the 4-core CMP run under both the environment-default machine
/// and the forced quantum-parallel schedule, the observability
/// off-path (a run with every `MEDSIM_TRACE_EVENTS`-family knob off —
/// the price of the dormant `obs::tracing()` checks on the hot path,
/// which must stay zero), the decoupled vector-fetch run so the
/// run-ahead path's wall clock cannot rot unnoticed, and the
/// memory-hierarchy hot-path row (the packed line-state model timed
/// against the reference model, with identical stats asserted). All are
/// still subject to the `--noise-floor` guard — rows under the floor in
/// both reports never gate.
pub const GATED_ROWS: &[&str] = &[
    "fig5_real",
    "pipeline_1thread",
    "sharded_frontend",
    "packed_block_decode",
    "cmp_4core",
    "cmp_4core_quantum",
    "obs_off_overhead",
    "decoupled_vector",
    "warm_grid",
    "mem_hot_path",
];

/// Rows present in only one of two reports: `(added, removed)` relative
/// to the old one. The gate only compares rows present in both, so new
/// rows (a fresh CMP configuration, say) and vanished rows (a silently
/// un-gated benchmark) must be reported rather than skipped.
#[must_use]
pub fn row_changes(old: &[BenchEntry], new: &[BenchEntry]) -> (Vec<String>, Vec<String>) {
    let added = new
        .iter()
        .filter(|n| !old.iter().any(|o| o.name == n.name))
        .map(|n| n.name.clone())
        .collect();
    let removed = old
        .iter()
        .filter(|o| !new.iter().any(|n| n.name == o.name))
        .map(|o| o.name.clone())
        .collect();
    (added, removed)
}

/// Whether a regression on `name` fails the build (vs warns).
#[must_use]
pub fn is_gated(name: &str) -> bool {
    GATED_ROWS.contains(&name)
}

/// The verdict of a trend comparison between two reports.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GateDecision {
    /// Regressions on [`GATED_ROWS`] — these fail the build in
    /// [`GateMode::Fail`].
    pub gated: Vec<(String, f64, f64)>,
    /// Regressions on other rows — always warnings.
    pub ungated: Vec<(String, f64, f64)>,
    /// `false` when the two reports were measured at different workload
    /// scales: wall clocks are incomparable and the baseline resets.
    pub comparable: bool,
}

/// Compare two reports and classify every regression. Reports measured
/// at different scales (e.g. after a CI smoke-scale change) are
/// declared incomparable rather than producing bogus regressions. A v1
/// baseline (no recorded scale) against a v2 report is likewise
/// incomparable — the old artifact may have been measured at any scale,
/// and guessing would fabricate regressions on the first run after the
/// schema change; two legacy reports still compare best-effort.
#[must_use]
pub fn evaluate_gate(
    old: &BenchReport,
    new: &BenchReport,
    threshold: f64,
    noise_floor_s: f64,
) -> GateDecision {
    let comparable = match (old.scale, new.scale) {
        (Some(a), Some(b)) => (a - b).abs() <= a.abs() * 1e-9,
        (None, None) => true,
        _ => false,
    };
    if !comparable {
        return GateDecision {
            comparable: false,
            ..GateDecision::default()
        };
    }
    let (gated, ungated) = regressions(&old.runs, &new.runs, threshold, noise_floor_s)
        .into_iter()
        .partition(|(name, _, _)| is_gated(name));
    GateDecision {
        gated,
        ungated,
        comparable: true,
    }
}

/// The per-row delta table as one GitHub Actions `::notice::` workflow
/// command, so the PR-over-PR trend surfaces in the run summary instead
/// of only in the log. Multi-line content uses the `%0A` escape the
/// workflow-command grammar requires. Rows present in only one report
/// are skipped (they are reported separately as added/removed); `None`
/// when no row is comparable.
#[must_use]
pub fn notice_delta_table(old: &[BenchEntry], new: &[BenchEntry]) -> Option<String> {
    let mut lines = Vec::new();
    for n in new {
        let Some(o) = old.iter().find(|o| o.name == n.name) else {
            continue;
        };
        if o.wall_s <= 0.0 {
            continue;
        }
        let delta = (n.wall_s / o.wall_s - 1.0) * 100.0;
        lines.push(format!(
            "{}: {:.3}s -> {:.3}s ({:+.1}%)",
            n.name, o.wall_s, n.wall_s, delta
        ));
    }
    if lines.is_empty() {
        return None;
    }
    Some(format!(
        "::notice title=bench deltas::{}",
        lines.join("%0A")
    ))
}

/// Parsed `compare_bench` command line.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareArgs {
    /// Previous report path.
    pub old_path: String,
    /// Current report path.
    pub new_path: String,
    /// Regression threshold as a fraction (CLI takes percent).
    pub threshold: f64,
    /// Rows faster than this (seconds) in both reports are ignored.
    pub noise_floor_s: f64,
}

/// Parse `compare_bench` arguments:
/// `<previous.json> <current.json> [threshold-percent] [--noise-floor <seconds>]`.
///
/// # Errors
///
/// Returns a usage message when paths are missing or a value fails to
/// parse.
pub fn parse_compare_args(args: &[String]) -> Result<CompareArgs, String> {
    const USAGE: &str = "usage: compare_bench <previous.json> <current.json> [threshold-percent] \
         [--noise-floor <seconds>]";
    let mut positional = Vec::new();
    let mut noise_floor_s = 0.05;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--noise-floor" {
            let v = it
                .next()
                .ok_or(format!("--noise-floor needs a value\n{USAGE}"))?;
            noise_floor_s = v
                .parse::<f64>()
                .map_err(|_| format!("bad --noise-floor {v:?}\n{USAGE}"))?;
        } else {
            positional.push(a.clone());
        }
    }
    let (Some(old_path), Some(new_path)) = (positional.first(), positional.get(1)) else {
        return Err(USAGE.to_string());
    };
    let threshold = match positional.get(2) {
        Some(v) => {
            v.parse::<f64>()
                .map_err(|_| format!("bad threshold {v:?}\n{USAGE}"))?
                / 100.0
        }
        None => 0.10,
    };
    Ok(CompareArgs {
        old_path: old_path.clone(),
        new_path: new_path.clone(),
        threshold,
        noise_floor_s,
    })
}

fn extract_string(row: &str, key: &str) -> Option<String> {
    let rest = &row[row.find(key)? + key.len()..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

fn extract_number(row: &str, key: &str) -> Option<f64> {
    let rest = &row[row.find(key)? + key.len()..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Escape a string for inclusion in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_positive_scale() {
        let s = spec_from_env();
        assert!(s.scale > 0.0);
    }

    #[test]
    fn timed_passes_value_through() {
        assert_eq!(timed("test", || 42), 42);
    }

    #[test]
    fn recorder_emits_valid_json_shape() {
        let mut r = BenchRecorder::new();
        r.record("alpha", 2.0, 1_000_000);
        let x = r.measure("beta", || 7u64, |&v| v);
        assert_eq!(x, 7);
        assert_eq!(r.entries().len(), 2);
        assert_eq!(r.entries()[0].sim_cycles_per_sec(), 500_000.0);
        let json = r.to_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"name\": \"alpha\""));
        assert!(json.contains("\"sim_cycles_per_sec\": 500000.0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut r = BenchRecorder::new();
        r.record("quote\" back\\ tab\tnl\n", 1.0, 1);
        let json = r.to_json();
        assert!(json.contains(r#"quote\" back\\ tab\tnl\n"#), "{json}");
    }

    #[test]
    fn parse_runs_inverts_to_json() {
        let mut r = BenchRecorder::new();
        r.record("fig5_real", 5.25, 123_456_789);
        r.record("name with \"quotes\"\t", 0.5, 42);
        let parsed = parse_runs(&r.to_json());
        assert_eq!(parsed, r.entries());
    }

    #[test]
    fn parse_runs_tolerates_junk() {
        assert!(parse_runs("").is_empty());
        assert!(parse_runs("{\"schema\": \"x\", \"runs\": []}").is_empty());
        assert!(parse_runs("not json at all").is_empty());
    }

    #[test]
    fn regressions_flag_slowdowns_over_threshold() {
        let old = vec![
            BenchEntry {
                name: "a".into(),
                wall_s: 1.0,
                sim_cycles: 1,
            },
            BenchEntry {
                name: "b".into(),
                wall_s: 1.0,
                sim_cycles: 1,
            },
            BenchEntry {
                name: "tiny".into(),
                wall_s: 0.001,
                sim_cycles: 1,
            },
        ];
        let new = vec![
            BenchEntry {
                name: "a".into(),
                wall_s: 1.05,
                sim_cycles: 1,
            },
            BenchEntry {
                name: "b".into(),
                wall_s: 1.2,
                sim_cycles: 1,
            },
            BenchEntry {
                name: "tiny".into(),
                wall_s: 0.04,
                sim_cycles: 1,
            },
            BenchEntry {
                name: "new_row".into(),
                wall_s: 9.0,
                sim_cycles: 1,
            },
        ];
        let regs = regressions(&old, &new, 0.10, 0.05);
        assert_eq!(regs.len(), 1, "only b regressed beyond 10%: {regs:?}");
        assert_eq!(regs[0].0, "b");
    }

    #[test]
    fn report_records_and_parses_scale() {
        let mut r = BenchRecorder::new();
        r.record("fig5_real", 1.0, 10);
        let report = parse_report(&r.to_json());
        assert_eq!(report.scale, Some(DEFAULT_SCALE));
        assert_eq!(report.runs, r.entries());
        // v1 documents (no scale) parse with None.
        let v1 = "{\n \"schema\": \"medsim-bench-runs/v1\",\n \"runs\": [\n \
                  {\"name\": \"a\", \"wall_s\": 1.0, \"sim_cycles\": 2}\n ]\n}\n";
        let legacy = parse_report(v1);
        assert_eq!(legacy.scale, None);
        assert_eq!(legacy.runs.len(), 1);
    }

    fn entry(name: &str, wall_s: f64) -> BenchEntry {
        BenchEntry {
            name: name.into(),
            wall_s,
            sim_cycles: 1,
        }
    }

    fn report(scale: Option<f64>, runs: Vec<BenchEntry>) -> BenchReport {
        BenchReport { scale, runs }
    }

    #[test]
    fn gate_partitions_gated_and_ungated_regressions() {
        let old = report(
            Some(1e-4),
            vec![entry("fig5_real", 1.0), entry("grid_serial", 1.0)],
        );
        let new = report(
            Some(1e-4),
            vec![entry("fig5_real", 1.5), entry("grid_serial", 1.5)],
        );
        let d = evaluate_gate(&old, &new, 0.10, 0.05);
        assert!(d.comparable);
        assert_eq!(d.gated.len(), 1);
        assert_eq!(d.gated[0].0, "fig5_real");
        assert_eq!(d.ungated.len(), 1);
        assert_eq!(d.ungated[0].0, "grid_serial");
    }

    #[test]
    fn new_frontend_and_block_decode_rows_are_gated() {
        assert!(is_gated("sharded_frontend"));
        assert!(is_gated("packed_block_decode"));
        let old = report(
            Some(1e-4),
            vec![
                entry("sharded_frontend", 1.0),
                entry("packed_block_decode", 0.01),
            ],
        );
        // sharded_frontend regresses over the floor => gated failure;
        // packed_block_decode doubles but stays under the noise floor
        // in both reports => ignored.
        let new = report(
            Some(1e-4),
            vec![
                entry("sharded_frontend", 1.5),
                entry("packed_block_decode", 0.02),
            ],
        );
        let d = evaluate_gate(&old, &new, 0.10, 0.05);
        assert_eq!(d.gated.len(), 1);
        assert_eq!(d.gated[0].0, "sharded_frontend");
        assert!(d.ungated.is_empty());
    }

    #[test]
    fn gate_respects_threshold_and_noise_floor() {
        let old = report(
            Some(1e-4),
            vec![entry("fig5_real", 1.0), entry("pipeline_1thread", 0.01)],
        );
        // +9% on fig5_real (under threshold); pipeline_1thread doubles
        // but sits under the noise floor in both reports.
        let new = report(
            Some(1e-4),
            vec![entry("fig5_real", 1.09), entry("pipeline_1thread", 0.02)],
        );
        let d = evaluate_gate(&old, &new, 0.10, 0.05);
        assert!(d.comparable);
        assert!(d.gated.is_empty(), "{:?}", d.gated);
        assert!(d.ungated.is_empty());
        // A tighter threshold flags the +9%.
        let d = evaluate_gate(&old, &new, 0.05, 0.05);
        assert_eq!(d.gated.len(), 1);
    }

    #[test]
    fn gate_refuses_cross_scale_comparison() {
        let old = report(Some(1e-5), vec![entry("fig5_real", 0.06)]);
        let new = report(Some(1e-4), vec![entry("fig5_real", 0.60)]);
        let d = evaluate_gate(&old, &new, 0.10, 0.05);
        assert!(!d.comparable, "scale change must reset the baseline");
        assert!(d.gated.is_empty() && d.ungated.is_empty());
        // A v1 baseline (unknown scale) against a v2 report must also
        // reset: the old artifact may have been measured at any scale.
        let legacy = report(None, vec![entry("fig5_real", 0.06)]);
        assert!(!evaluate_gate(&legacy, &new, 0.10, 0.05).comparable);
        // Two legacy reports still compare best-effort.
        let legacy2 = report(None, vec![entry("fig5_real", 0.10)]);
        let d = evaluate_gate(&legacy, &legacy2, 0.10, 0.05);
        assert!(d.comparable);
        assert_eq!(d.gated.len(), 1);
    }

    #[test]
    fn gated_rows_are_the_headline_benchmarks() {
        assert!(is_gated("fig5_real"));
        assert!(is_gated("pipeline_1thread"));
        assert!(is_gated("cmp_4core"));
        assert!(is_gated("cmp_4core_quantum"));
        assert!(is_gated("obs_off_overhead"));
        assert!(is_gated("decoupled_vector"));
        assert!(is_gated("warm_grid"));
        assert!(!is_gated("grid_serial"));
        assert!(!is_gated("fig5_real_warm_store"));
    }

    #[test]
    fn notice_delta_table_renders_one_workflow_command() {
        let old = vec![entry("fig5_real", 1.0), entry("vanished", 1.0)];
        let new = vec![entry("fig5_real", 1.1), entry("added", 2.0)];
        let notice = notice_delta_table(&old, &new).expect("one comparable row");
        assert!(notice.starts_with("::notice title=bench deltas::"));
        assert!(notice.contains("fig5_real: 1.000s -> 1.100s (+10.0%)"));
        assert!(!notice.contains("vanished"), "removed rows are skipped");
        assert!(!notice.contains("added:"), "new rows are skipped");
        assert!(!notice.contains('\n'), "workflow commands are one line");
        // Multi-row tables join with the %0A escape.
        let old2 = vec![entry("a", 1.0), entry("b", 2.0)];
        let new2 = vec![entry("a", 1.0), entry("b", 1.0)];
        let n2 = notice_delta_table(&old2, &new2).expect("two rows");
        assert_eq!(n2.matches("%0A").count(), 1);
        assert!(n2.contains("b: 2.000s -> 1.000s (-50.0%)"));
        // Nothing comparable: no command at all.
        assert!(notice_delta_table(&old, &[entry("other", 1.0)]).is_none());
    }

    #[test]
    fn row_changes_report_added_and_removed() {
        let old = vec![entry("fig5_real", 1.0), entry("vanished", 1.0)];
        let new = vec![entry("fig5_real", 1.0), entry("cmp_4core", 2.0)];
        let (added, removed) = row_changes(&old, &new);
        assert_eq!(added, vec!["cmp_4core".to_string()]);
        assert_eq!(removed, vec!["vanished".to_string()]);
        let (added, removed) = row_changes(&new, &new);
        assert!(added.is_empty() && removed.is_empty());
    }

    #[test]
    fn compare_args_parse_positionals_and_flags() {
        let args = |v: &[&str]| v.iter().map(|s| (*s).to_string()).collect::<Vec<_>>();
        let a = parse_compare_args(&args(&["old.json", "new.json"])).unwrap();
        assert_eq!(a.threshold, 0.10);
        assert_eq!(a.noise_floor_s, 0.05);
        let a = parse_compare_args(&args(&[
            "old.json",
            "new.json",
            "25",
            "--noise-floor",
            "0.2",
        ]))
        .unwrap();
        assert_eq!(a.threshold, 0.25);
        assert_eq!(a.noise_floor_s, 0.2);
        assert_eq!(a.old_path, "old.json");
        assert_eq!(a.new_path, "new.json");
        // Flag order does not matter.
        let a = parse_compare_args(&args(&["--noise-floor", "0.1", "o", "n", "5"])).unwrap();
        assert_eq!(a.threshold, 0.05);
        assert_eq!(a.noise_floor_s, 0.1);
        assert!(parse_compare_args(&args(&["only-one.json"])).is_err());
        assert!(parse_compare_args(&args(&["o", "n", "not-a-number"])).is_err());
        assert!(parse_compare_args(&args(&["o", "n", "--noise-floor"])).is_err());
    }

    #[test]
    fn gate_mode_defaults_to_fail() {
        // No env mutation (tests run in parallel): just the default.
        assert_eq!(GateMode::from_env(), GateMode::Fail);
    }

    #[test]
    fn zero_wall_time_does_not_divide_by_zero() {
        let e = BenchEntry {
            name: "x".into(),
            wall_s: 0.0,
            sim_cycles: 5,
        };
        assert_eq!(e.sim_cycles_per_sec(), 0.0);
    }
}
