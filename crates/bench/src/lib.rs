//! # medsim-bench — the table/figure regeneration harness
//!
//! One bench target per table and figure of the paper (run with
//! `cargo bench -p medsim-bench --bench <target>`), plus ablation
//! sweeps and Criterion micro-benchmarks. `cargo bench --workspace`
//! regenerates everything.
//!
//! The workload scale defaults to [`DEFAULT_SCALE`] (fractions of the
//! paper's full-size instruction counts) and can be overridden with the
//! `MEDSIM_SCALE` environment variable, e.g.
//! `MEDSIM_SCALE=0.01 cargo bench -p medsim-bench --bench fig5_real`.

use medsim_workloads::WorkloadSpec;
use std::time::Instant;

/// Default workload scale for bench runs: large enough for stable
/// shapes, small enough to regenerate every figure in minutes.
pub const DEFAULT_SCALE: f64 = 0.001;

/// Workload spec for bench targets, honoring `MEDSIM_SCALE` and
/// `MEDSIM_SEED` environment overrides.
#[must_use]
pub fn spec_from_env() -> WorkloadSpec {
    let scale = std::env::var("MEDSIM_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(DEFAULT_SCALE);
    let mut spec = WorkloadSpec::new(scale);
    if let Some(seed) = std::env::var("MEDSIM_SEED").ok().and_then(|s| s.parse::<u64>().ok()) {
        spec.seed = seed;
    }
    spec
}

/// Run `f`, printing its wall-clock time with a label.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    eprintln!("[{label}: {:.1}s]", start.elapsed().as_secs_f64());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_positive_scale() {
        let s = spec_from_env();
        assert!(s.scale > 0.0);
    }

    #[test]
    fn timed_passes_value_through() {
        assert_eq!(timed("test", || 42), 42);
    }
}
