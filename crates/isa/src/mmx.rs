//! MMX-like packed μ-SIMD extension.
//!
//! The paper models "an approximation of SSE integer opcodes with **67
//! instructions** and **32 logical registers** (as opposed to 8)", plus
//! "some extra features, such as new reduction operations and multiple
//! source registers, not present in the original SSE" (§3).
//!
//! This module enumerates exactly those 67 opcodes. The set covers the
//! SSE/MMX integer families (packed add/sub with wrap and signed/unsigned
//! saturation, multiplies, compares, logicals, shifts, pack/unpack, the
//! SSE additions avg/min/max/sad/shuffle) plus the paper's reduction
//! extras (`pred*`).

use crate::elem::ElemType;
use serde::{Deserialize, Serialize};

/// An MMX-like packed μ-SIMD opcode operating on 64-bit registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum MmxOp {
    // -- packed add/sub, wrapping (6) --------------------------------
    PaddB,
    PaddW,
    PaddD,
    PsubB,
    PsubW,
    PsubD,
    // -- packed add/sub, saturating (8) ------------------------------
    PaddsB,
    PaddsW,
    PaddusB,
    PaddusW,
    PsubsB,
    PsubsW,
    PsubusB,
    PsubusW,
    // -- multiplies (4) ----------------------------------------------
    /// Packed multiply, low 16 bits of the 16×16 product.
    PmullW,
    /// Packed multiply, high 16 bits of the signed product.
    PmulhW,
    /// Packed multiply, high 16 bits of the unsigned product (SSE).
    PmulhuW,
    /// Packed multiply-add: 16×16 products summed pairwise into 32-bit lanes.
    PmaddWd,
    // -- compares (6) -------------------------------------------------
    PcmpeqB,
    PcmpeqW,
    PcmpeqD,
    PcmpgtB,
    PcmpgtW,
    PcmpgtD,
    // -- logicals (4) --------------------------------------------------
    Pand,
    Pandn,
    Por,
    Pxor,
    // -- shifts (8) -----------------------------------------------------
    PsllW,
    PsllD,
    PsllQ,
    PsrlW,
    PsrlD,
    PsrlQ,
    PsraW,
    PsraD,
    // -- pack / unpack (9) ----------------------------------------------
    /// Pack signed words to signed-saturated bytes.
    PackssWb,
    /// Pack signed dwords to signed-saturated words.
    PackssDw,
    /// Pack signed words to unsigned-saturated bytes.
    PackusWb,
    PunpcklBw,
    PunpcklWd,
    PunpcklDq,
    PunpckhBw,
    PunpckhWd,
    PunpckhDq,
    // -- SSE integer additions (11) --------------------------------------
    /// Packed rounded average of unsigned bytes.
    PavgB,
    /// Packed rounded average of unsigned words.
    PavgW,
    PmaxUb,
    PmaxSw,
    PminUb,
    PminSw,
    /// Sum of absolute byte differences into a single 16-bit result.
    PsadBw,
    /// Extract the byte sign mask into an integer register.
    PmovmskB,
    /// Shuffle words by an immediate control.
    PshufW,
    /// Insert a word from an integer register.
    PinsrW,
    /// Extract a word to an integer register.
    PextrW,
    // -- data movement (3) ------------------------------------------------
    /// Register-to-register 64-bit move.
    MovQ,
    /// Move a 32-bit value from an integer register into an MMX register.
    MovdToMmx,
    /// Move the low 32 bits of an MMX register to an integer register.
    MovdFromMmx,
    // -- memory (4) --------------------------------------------------------
    /// 64-bit packed load.
    LoadQ,
    /// 64-bit packed store.
    StoreQ,
    /// 32-bit packed load (zero-extended into the register).
    LoadMovD,
    /// 32-bit packed store (low half).
    StoreMovD,
    // -- paper's reduction additions (4) ------------------------------------
    /// Horizontal add of the four words into a scalar (paper extra).
    PredaddW,
    /// Horizontal add of the two dwords into a scalar (paper extra).
    PredaddD,
    /// Horizontal maximum of the four words (paper extra).
    PredmaxW,
    /// Horizontal minimum of the four words (paper extra).
    PredminW,
}

impl MmxOp {
    /// All 67 MMX opcodes in a stable order.
    pub const ALL: [MmxOp; 67] = [
        MmxOp::PaddB,
        MmxOp::PaddW,
        MmxOp::PaddD,
        MmxOp::PsubB,
        MmxOp::PsubW,
        MmxOp::PsubD,
        MmxOp::PaddsB,
        MmxOp::PaddsW,
        MmxOp::PaddusB,
        MmxOp::PaddusW,
        MmxOp::PsubsB,
        MmxOp::PsubsW,
        MmxOp::PsubusB,
        MmxOp::PsubusW,
        MmxOp::PmullW,
        MmxOp::PmulhW,
        MmxOp::PmulhuW,
        MmxOp::PmaddWd,
        MmxOp::PcmpeqB,
        MmxOp::PcmpeqW,
        MmxOp::PcmpeqD,
        MmxOp::PcmpgtB,
        MmxOp::PcmpgtW,
        MmxOp::PcmpgtD,
        MmxOp::Pand,
        MmxOp::Pandn,
        MmxOp::Por,
        MmxOp::Pxor,
        MmxOp::PsllW,
        MmxOp::PsllD,
        MmxOp::PsllQ,
        MmxOp::PsrlW,
        MmxOp::PsrlD,
        MmxOp::PsrlQ,
        MmxOp::PsraW,
        MmxOp::PsraD,
        MmxOp::PackssWb,
        MmxOp::PackssDw,
        MmxOp::PackusWb,
        MmxOp::PunpcklBw,
        MmxOp::PunpcklWd,
        MmxOp::PunpcklDq,
        MmxOp::PunpckhBw,
        MmxOp::PunpckhWd,
        MmxOp::PunpckhDq,
        MmxOp::PavgB,
        MmxOp::PavgW,
        MmxOp::PmaxUb,
        MmxOp::PmaxSw,
        MmxOp::PminUb,
        MmxOp::PminSw,
        MmxOp::PsadBw,
        MmxOp::PmovmskB,
        MmxOp::PshufW,
        MmxOp::PinsrW,
        MmxOp::PextrW,
        MmxOp::MovQ,
        MmxOp::MovdToMmx,
        MmxOp::MovdFromMmx,
        MmxOp::LoadQ,
        MmxOp::StoreQ,
        MmxOp::LoadMovD,
        MmxOp::StoreMovD,
        MmxOp::PredaddW,
        MmxOp::PredaddD,
        MmxOp::PredmaxW,
        MmxOp::PredminW,
    ];

    /// Number of MMX opcodes (67 exactly, per §3 of the paper).
    pub const COUNT: usize = Self::ALL.len();

    /// Whether this opcode accesses memory.
    #[must_use]
    pub const fn is_mem(self) -> bool {
        matches!(
            self,
            MmxOp::LoadQ | MmxOp::StoreQ | MmxOp::LoadMovD | MmxOp::StoreMovD
        )
    }

    /// Whether this opcode writes memory.
    #[must_use]
    pub const fn is_store(self) -> bool {
        matches!(self, MmxOp::StoreQ | MmxOp::StoreMovD)
    }

    /// Whether this opcode uses the packed-multiply pipe (longer latency).
    #[must_use]
    pub const fn is_mul(self) -> bool {
        matches!(
            self,
            MmxOp::PmullW | MmxOp::PmulhW | MmxOp::PmulhuW | MmxOp::PmaddWd | MmxOp::PsadBw
        )
    }

    /// Whether this opcode performs a horizontal reduction (the paper's
    /// extra reduction operations).
    #[must_use]
    pub const fn is_reduction(self) -> bool {
        matches!(
            self,
            MmxOp::PredaddW | MmxOp::PredaddD | MmxOp::PredmaxW | MmxOp::PredminW | MmxOp::PsadBw
        )
    }

    /// The element type the operation's lanes are interpreted as.
    #[must_use]
    pub const fn elem_type(self) -> ElemType {
        match self {
            MmxOp::PaddB
            | MmxOp::PsubB
            | MmxOp::PcmpeqB
            | MmxOp::PcmpgtB
            | MmxOp::PunpcklBw
            | MmxOp::PunpckhBw
            | MmxOp::PmovmskB => ElemType::I8,
            MmxOp::PaddusB
            | MmxOp::PsubusB
            | MmxOp::PavgB
            | MmxOp::PmaxUb
            | MmxOp::PminUb
            | MmxOp::PsadBw => ElemType::U8,
            MmxOp::PaddsB | MmxOp::PsubsB | MmxOp::PackssWb | MmxOp::PackusWb => ElemType::I8,
            MmxOp::PaddW
            | MmxOp::PsubW
            | MmxOp::PaddsW
            | MmxOp::PsubsW
            | MmxOp::PmullW
            | MmxOp::PmulhW
            | MmxOp::PmaddWd
            | MmxOp::PcmpeqW
            | MmxOp::PcmpgtW
            | MmxOp::PsllW
            | MmxOp::PsrlW
            | MmxOp::PsraW
            | MmxOp::PackssDw
            | MmxOp::PunpcklWd
            | MmxOp::PunpckhWd
            | MmxOp::PmaxSw
            | MmxOp::PminSw
            | MmxOp::PshufW
            | MmxOp::PinsrW
            | MmxOp::PextrW
            | MmxOp::PredaddW
            | MmxOp::PredmaxW
            | MmxOp::PredminW => ElemType::I16,
            MmxOp::PaddusW | MmxOp::PsubusW | MmxOp::PavgW | MmxOp::PmulhuW => ElemType::U16,
            MmxOp::PaddD
            | MmxOp::PsubD
            | MmxOp::PcmpeqD
            | MmxOp::PcmpgtD
            | MmxOp::PsllD
            | MmxOp::PsrlD
            | MmxOp::PsraD
            | MmxOp::PunpcklDq
            | MmxOp::PunpckhDq
            | MmxOp::PredaddD => ElemType::I32,
            MmxOp::PsllQ
            | MmxOp::PsrlQ
            | MmxOp::Pand
            | MmxOp::Pandn
            | MmxOp::Por
            | MmxOp::Pxor
            | MmxOp::MovQ
            | MmxOp::MovdToMmx
            | MmxOp::MovdFromMmx
            | MmxOp::LoadQ
            | MmxOp::StoreQ
            | MmxOp::LoadMovD
            | MmxOp::StoreMovD => ElemType::Q64,
        }
    }

    /// Access size in bytes for memory opcodes (0 for non-memory ops).
    #[must_use]
    pub const fn mem_size(self) -> u8 {
        match self {
            MmxOp::LoadQ | MmxOp::StoreQ => 8,
            MmxOp::LoadMovD | MmxOp::StoreMovD => 4,
            _ => 0,
        }
    }

    /// Mnemonic used by the disassembler.
    #[must_use]
    pub const fn mnemonic(self) -> &'static str {
        match self {
            MmxOp::PaddB => "padd.b",
            MmxOp::PaddW => "padd.w",
            MmxOp::PaddD => "padd.d",
            MmxOp::PsubB => "psub.b",
            MmxOp::PsubW => "psub.w",
            MmxOp::PsubD => "psub.d",
            MmxOp::PaddsB => "padds.b",
            MmxOp::PaddsW => "padds.w",
            MmxOp::PaddusB => "paddus.b",
            MmxOp::PaddusW => "paddus.w",
            MmxOp::PsubsB => "psubs.b",
            MmxOp::PsubsW => "psubs.w",
            MmxOp::PsubusB => "psubus.b",
            MmxOp::PsubusW => "psubus.w",
            MmxOp::PmullW => "pmull.w",
            MmxOp::PmulhW => "pmulh.w",
            MmxOp::PmulhuW => "pmulhu.w",
            MmxOp::PmaddWd => "pmadd.wd",
            MmxOp::PcmpeqB => "pcmpeq.b",
            MmxOp::PcmpeqW => "pcmpeq.w",
            MmxOp::PcmpeqD => "pcmpeq.d",
            MmxOp::PcmpgtB => "pcmpgt.b",
            MmxOp::PcmpgtW => "pcmpgt.w",
            MmxOp::PcmpgtD => "pcmpgt.d",
            MmxOp::Pand => "pand",
            MmxOp::Pandn => "pandn",
            MmxOp::Por => "por",
            MmxOp::Pxor => "pxor",
            MmxOp::PsllW => "psll.w",
            MmxOp::PsllD => "psll.d",
            MmxOp::PsllQ => "psll.q",
            MmxOp::PsrlW => "psrl.w",
            MmxOp::PsrlD => "psrl.d",
            MmxOp::PsrlQ => "psrl.q",
            MmxOp::PsraW => "psra.w",
            MmxOp::PsraD => "psra.d",
            MmxOp::PackssWb => "packss.wb",
            MmxOp::PackssDw => "packss.dw",
            MmxOp::PackusWb => "packus.wb",
            MmxOp::PunpcklBw => "punpckl.bw",
            MmxOp::PunpcklWd => "punpckl.wd",
            MmxOp::PunpcklDq => "punpckl.dq",
            MmxOp::PunpckhBw => "punpckh.bw",
            MmxOp::PunpckhWd => "punpckh.wd",
            MmxOp::PunpckhDq => "punpckh.dq",
            MmxOp::PavgB => "pavg.b",
            MmxOp::PavgW => "pavg.w",
            MmxOp::PmaxUb => "pmax.ub",
            MmxOp::PmaxSw => "pmax.sw",
            MmxOp::PminUb => "pmin.ub",
            MmxOp::PminSw => "pmin.sw",
            MmxOp::PsadBw => "psad.bw",
            MmxOp::PmovmskB => "pmovmsk.b",
            MmxOp::PshufW => "pshuf.w",
            MmxOp::PinsrW => "pinsr.w",
            MmxOp::PextrW => "pextr.w",
            MmxOp::MovQ => "movq",
            MmxOp::MovdToMmx => "movd.to",
            MmxOp::MovdFromMmx => "movd.from",
            MmxOp::LoadQ => "ldq.m",
            MmxOp::StoreQ => "stq.m",
            MmxOp::LoadMovD => "ldd.m",
            MmxOp::StoreMovD => "std.m",
            MmxOp::PredaddW => "predadd.w",
            MmxOp::PredaddD => "predadd.d",
            MmxOp::PredmaxW => "predmax.w",
            MmxOp::PredminW => "predmin.w",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn exactly_67_opcodes_per_paper() {
        assert_eq!(MmxOp::COUNT, 67);
        let set: HashSet<_> = MmxOp::ALL.iter().collect();
        assert_eq!(set.len(), 67, "duplicate opcode in ALL");
    }

    #[test]
    fn mnemonics_unique() {
        let set: HashSet<_> = MmxOp::ALL.iter().map(|o| o.mnemonic()).collect();
        assert_eq!(set.len(), 67);
    }

    #[test]
    fn memory_classification() {
        assert!(MmxOp::LoadQ.is_mem());
        assert!(MmxOp::StoreQ.is_mem());
        assert!(MmxOp::StoreQ.is_store());
        assert!(!MmxOp::LoadQ.is_store());
        assert!(!MmxOp::PaddB.is_mem());
        assert_eq!(MmxOp::LoadQ.mem_size(), 8);
        assert_eq!(MmxOp::LoadMovD.mem_size(), 4);
        assert_eq!(MmxOp::Pxor.mem_size(), 0);
    }

    #[test]
    fn multiply_pipe_classification() {
        assert!(MmxOp::PmaddWd.is_mul());
        assert!(MmxOp::PsadBw.is_mul());
        assert!(!MmxOp::PaddB.is_mul());
    }

    #[test]
    fn reduction_classification() {
        assert!(MmxOp::PredaddW.is_reduction());
        assert!(MmxOp::PsadBw.is_reduction());
        assert!(!MmxOp::PaddW.is_reduction());
    }

    #[test]
    fn elem_types_are_sensible() {
        assert_eq!(MmxOp::PaddB.elem_type().lanes(), 8);
        assert_eq!(MmxOp::PaddW.elem_type().lanes(), 4);
        assert_eq!(MmxOp::PaddD.elem_type().lanes(), 2);
        assert_eq!(MmxOp::Pand.elem_type(), ElemType::Q64);
        assert!(MmxOp::PaddusB.elem_type() == ElemType::U8);
        assert!(MmxOp::PaddsW.elem_type().is_signed());
    }
}
