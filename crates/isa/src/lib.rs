//! # medsim-isa — instruction-set model for the DLP+TLP media simulator
//!
//! This crate defines the three instruction sets evaluated by
//! *"DLP + TLP Processors for the Next Generation of Media Workloads"*
//! (Corbal, Espasa, Valero — HPCA 2001):
//!
//! * a **scalar RISC ISA** (stand-in for the paper's Alpha base ISA):
//!   integer ALU, floating point, memory and control-flow operations;
//! * an **MMX-like packed μ-SIMD extension** modeled on the integer subset
//!   of Intel SSE with the paper's additions (reductions, extra logical
//!   registers) — exactly [`mmx::MmxOp::COUNT`] = 67 opcodes over 32
//!   logical 64-bit registers;
//! * the **MOM streaming μ-SIMD extension** — exactly
//!   [`mom::MomOp::COUNT`] = 121 opcodes over 16 logical *stream*
//!   registers (each 16 × 64-bit element groups), two 192-bit packed
//!   accumulators and a stream-length register renamed through the
//!   integer pool, with strided stream memory accesses.
//!
//! Besides the opcode enumerations the crate provides:
//!
//! * [`inst::Inst`] — the decoded-instruction record that traces carry and
//!   the pipeline model consumes;
//! * [`semantics`] — executable functional semantics for the packed and
//!   streaming operations (used by the workload kernels and heavily
//!   unit/property tested);
//! * [`encode`] — a fixed-width 64-bit binary encoding with lossless
//!   round-tripping of all architectural fields;
//! * [`disasm`] — a textual disassembler.
//!
//! ## Example
//!
//! ```
//! use medsim_isa::prelude::*;
//!
//! // A packed saturating add of two MMX registers.
//! let inst = Inst::mmx(MmxOp::PaddsW, simd(0), simd(1), simd(2));
//! assert_eq!(inst.queue(), QueueKind::Simd);
//!
//! // Its functional semantics: 0x7fff + 1 saturates.
//! let r = medsim_isa::semantics::exec_mmx_rr(MmxOp::PaddsW, 0x7fff, 0x0001);
//! assert_eq!(r & 0xffff, 0x7fff);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disasm;
pub mod elem;
pub mod encode;
pub mod inst;
pub mod mmx;
pub mod mom;
pub mod op;
pub mod regs;
pub mod scalar;
pub mod semantics;

pub use elem::ElemType;
pub use inst::{BranchInfo, Inst, MemRef};
pub use mmx::MmxOp;
pub use mom::MomOp;
pub use op::{Op, OpKind, QueueKind};
pub use regs::{LogicalReg, RegClass};
pub use scalar::{CtlOp, FpOp, IntOp, MemOp};

/// Maximum stream length of a MOM instruction (number of MMX-like
/// 64-bit element groups a single stream instruction covers).
pub const MAX_STREAM_LEN: u8 = 16;

/// Number of 64-bit element groups in a MOM stream register.
pub const STREAM_REG_GROUPS: usize = 16;

/// Width of a packed accumulator in bits (MDMX-style).
pub const ACC_BITS: u32 = 192;

/// Convenience re-exports for downstream crates and doctests.
pub mod prelude {
    pub use crate::elem::ElemType;
    pub use crate::inst::{BranchInfo, Inst, MemRef};
    pub use crate::mmx::MmxOp;
    pub use crate::mom::MomOp;
    pub use crate::op::{Op, OpKind, QueueKind};
    pub use crate::regs::{acc, fp, int, simd, stream, LogicalReg, RegClass};
    pub use crate::scalar::{CtlOp, FpOp, IntOp, MemOp};
    pub use crate::{ACC_BITS, MAX_STREAM_LEN, STREAM_REG_GROUPS};
}
